"""Crash-safety of the serving daemon under seeded service-level chaos.

Runs ``gpu-blob serve`` as a real subprocess and drives it through four
phases over one persistent cache + journal directory:

1. **reference** — a clean daemon computes every trace key; warm
   responses are recorded as the byte-level ground truth.
2. **chaos burst** — a fresh daemon under ``--chaos-plan heavy`` (slow
   and failing backends, journal stalls) takes the same bursty trace
   and is ``SIGKILL``-ed mid-burst, stranding accepted jobs in the
   write-ahead journal.
3. **replay** — a clean daemon restarted over the crashed state repairs
   the journal tail, replays every stranded job, and must then answer
   each trace key byte-identically to phase 1; the journal must show no
   accepted job dropped (every ``accept`` reaches ``complete``).
4. **blackout** — ``--chaos-plan blackout`` fails ~every execution;
   answers must degrade to stale cache hits (never 500) and
   ``/readyz`` must flip while every breaker is open.

Finally the crashed-and-recovered artifact directory must pass
``fsck`` with zero findings.  Writes ``results/BENCH_serve_chaos.json``.
Runnable standalone::

    PYTHONPATH=src:benchmarks python benchmarks/bench_serve_chaos.py
    PYTHONPATH=src:benchmarks python benchmarks/bench_serve_chaos.py --check

``--check`` exits non-zero on any dropped accepted job, divergent
replayed byte, missing degraded answer, un-bounded chaos p99, any 500
anywhere, or an fsck finding.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from harness import RESULTS_DIR, run_once
from repro.core.fsck import fsck_paths
from repro.serve.client import ServeClient

SEED = 20260808
#: successful responses under heavy chaos must still land within this
P99_BOUND_S = 10.0

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"


def trace_bodies() -> list:
    """Distinct small configurations: each is one cold sweep."""
    bodies = []
    for i, max_dim in enumerate((64, 80, 96, 112)):
        for system in ("dawn", "lumi"):
            bodies.append({
                "system": system,
                "kernel": "gemm" if i % 2 == 0 else "gemv",
                "problem": "square",
                "precision": "single",
                "iterations": 8,
                "paradigm": "once",
                "min_dim": 1,
                "max_dim": max_dim,
                "step": 16,
            })
    return bodies


def blackout_bodies() -> list:
    """One system only (so its breaker opening flips ``/readyz``) at an
    iteration count the trace never computed: every request is a miss
    that must degrade to a stale nearby entry."""
    return [
        {"system": "dawn", "kernel": "gemm", "problem": "square",
         "precision": "single", "iterations": 16, "paradigm": "once",
         "min_dim": 1, "max_dim": max_dim, "step": 16}
        for max_dim in (64, 96)
    ]


class Daemon:
    """One ``gpu-blob serve`` subprocess on an ephemeral port."""

    def __init__(self, cache_dir: Path, *extra: str) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port", "0", "--cache-dir", str(cache_dir),
             "--workers", "2", *extra],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.host, self.port = self._await_listening()

    def _await_listening(self):
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"daemon exited early (rc={self.proc.poll()})"
                )
            if "listening on http://" in line:
                addr = line.split("http://", 1)[1].split(" ", 1)[0].strip()
                host, _, port = addr.rpartition(":")
                return host, int(port)
        raise RuntimeError("daemon never announced its port")

    def kill9(self) -> None:
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30)

    def terminate(self) -> None:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=30)
        self.proc.stdout.close()


def _percentile(samples, q: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


async def _post_all(daemon: Daemon, bodies, stagger_s: float = 0.0):
    """Fire one request per body concurrently (optionally staggered);
    returns (status, body_bytes | None) per request, with transport
    failures — the daemon died under us — recorded as status 0."""

    async def one(index: int, body: dict):
        if stagger_s:
            await asyncio.sleep(stagger_s * index)
        client = ServeClient(daemon.host, daemon.port)
        t0 = time.perf_counter()
        try:
            response = await client.post("/v1/threshold", body)
            return response.status, response.body, time.perf_counter() - t0
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            return 0, None, time.perf_counter() - t0
        finally:
            await client.close()

    return await asyncio.gather(
        *(one(i, body) for i, body in enumerate(bodies))
    )


async def _fetch(daemon: Daemon, path: str):
    client = ServeClient(daemon.host, daemon.port)
    try:
        response = await client.get(path)
        return response.status, response.json()
    finally:
        await client.close()


async def _await_replay_done(daemon: Daemon, timeout_s: float = 60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        _, metrics = await _fetch(daemon, "/metrics")
        wal = metrics["wal"]
        if wal["jobs"]["pending"] == 0:
            return metrics
        await asyncio.sleep(0.1)
    raise RuntimeError("journal replay did not finish in time")


def _phase_reference(workdir: Path, bodies) -> dict:
    daemon = Daemon(workdir / "reference")
    try:
        t0 = time.perf_counter()
        cold = asyncio.run(_post_all(daemon, bodies))
        assert all(status == 200 for status, _, _ in cold), (
            "reference run must succeed"
        )
        warm = asyncio.run(_post_all(daemon, bodies))
        reference = [payload for _, payload, _ in warm]
        elapsed = time.perf_counter() - t0
    finally:
        daemon.terminate()
    return {"elapsed_s": round(elapsed, 3), "requests": 2 * len(bodies),
            "payloads": reference}


def _phase_chaos_kill(cache: Path, bodies) -> dict:
    daemon = Daemon(
        cache, "--chaos-plan", f"heavy:{SEED}", "--request-timeout", "60"
    )

    async def burst_and_kill():
        burst = asyncio.ensure_future(
            _post_all(daemon, bodies, stagger_s=0.02)
        )
        # long enough to accept and journal work, short enough that the
        # heavy plan's slowed sweeps are still in flight
        await asyncio.sleep(0.35)
        daemon.kill9()
        return await burst

    results = asyncio.run(burst_and_kill())
    latencies = [dt for status, _, dt in results if status == 200]
    statuses = sorted({status for status, _, _ in results})
    wal_path = cache / "serve-wal.jsonl"
    stranded = 0
    if wal_path.exists():
        seen, completed = set(), set()
        for line in wal_path.read_text().splitlines():
            try:
                rec = json.loads(line)
            except ValueError:
                continue  # the torn tail the restart will repair
            if rec.get("t") == "accept":
                seen.add(rec["id"])
            elif rec.get("t") in ("complete", "dead"):
                completed.add(rec["id"])
        stranded = len(seen - completed)
    return {
        "requests": len(bodies),
        "completed": sum(1 for s, _, _ in results if s == 200),
        "interrupted": sum(1 for s, _, _ in results if s == 0),
        "statuses_seen": statuses,
        "p99_s": round(_percentile(latencies, 0.99), 3),
        "stranded_accepts": stranded,
    }


def _phase_replay(cache: Path, bodies, reference) -> dict:
    daemon = Daemon(cache)
    try:
        metrics = asyncio.run(_await_replay_done(daemon))
        warm = asyncio.run(_post_all(daemon, bodies))
        identical = sum(
            1 for (status, payload, _), want in zip(warm, reference)
            if status == 200 and payload == want
        )
    finally:
        daemon.terminate()

    # after drain, the journal must show no accepted job dropped
    seen, resolved = set(), set()
    for line in (cache / "serve-wal.jsonl").read_text().splitlines():
        rec = json.loads(line)
        if rec.get("t") == "accept":
            seen.add(rec["id"])
        elif rec.get("t") in ("complete", "dead"):
            resolved.add(rec["id"])
    return {
        "jobs_replayed": metrics["jobs"]["replayed"],
        "jobs_dead": metrics["wal"]["jobs"]["dead"],
        "pending_after": metrics["wal"]["jobs"]["pending"],
        "byte_identical": identical,
        "expected_identical": len(bodies),
        "dropped_accepts": len(seen - resolved),
        "journal_corrupt_records": metrics["wal"]["corrupt_records"],
    }


def _phase_blackout(cache: Path, bodies) -> dict:
    daemon = Daemon(
        cache, "--chaos-plan", f"blackout:{SEED}", "--breaker-threshold", "1"
    )
    try:
        results = asyncio.run(_post_all(daemon, bodies))
        degraded = sum(
            1 for status, payload, _ in results
            if status == 200 and json.loads(payload).get("degraded")
        )
        statuses = sorted({status for status, _, _ in results})
        ready_status, ready = asyncio.run(_fetch(daemon, "/readyz"))
        _, metrics = asyncio.run(_fetch(daemon, "/metrics"))
    finally:
        daemon.terminate()
    return {
        "requests": len(bodies),
        "degraded_answers": degraded,
        "statuses_seen": statuses,
        "server_500s": metrics["statuses"].get("500", 0),
        "readyz_status": ready_status,
        "breakers_closed": ready["breakers_closed"],
        "breakers": metrics["breakers"],
    }


def measure() -> dict:
    bodies = trace_bodies()
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        cache = workdir / "crashed"
        reference = _phase_reference(workdir, bodies)
        payloads = reference.pop("payloads")
        chaos = _phase_chaos_kill(cache, bodies)
        replay = _phase_replay(cache, bodies, payloads)
        blackout = _phase_blackout(cache, blackout_bodies())
        findings = fsck_paths([cache])
        fsck = {"findings": len(findings),
                "details": [str(f) for f in findings]}
    return {
        "config": {"seed": SEED, "trace_keys": len(bodies),
                   "p99_bound_s": P99_BOUND_S},
        "reference": reference,
        "chaos": chaos,
        "replay": replay,
        "blackout": blackout,
        "fsck": fsck,
    }


def violations(data: dict) -> list:
    problems = []
    if data["replay"]["dropped_accepts"]:
        problems.append(
            f"{data['replay']['dropped_accepts']} accepted job(s) dropped"
        )
    if data["replay"]["pending_after"]:
        problems.append(
            f"{data['replay']['pending_after']} job(s) still pending "
            "after replay"
        )
    if data["replay"]["byte_identical"] != data["replay"]["expected_identical"]:
        problems.append(
            f"only {data['replay']['byte_identical']}/"
            f"{data['replay']['expected_identical']} replayed keys are "
            "byte-identical to the uninterrupted run"
        )
    if not data["blackout"]["degraded_answers"]:
        problems.append("blackout produced no degraded answers")
    if data["blackout"]["server_500s"]:
        problems.append(
            f"{data['blackout']['server_500s']} response(s) were 500s"
        )
    if 500 in data["chaos"]["statuses_seen"]:
        problems.append("chaos burst surfaced a 500")
    if data["blackout"]["readyz_status"] != 503:
        problems.append(
            "/readyz did not flip while every breaker was open"
        )
    if data["chaos"]["p99_s"] > P99_BOUND_S:
        problems.append(
            f"chaos p99 {data['chaos']['p99_s']}s exceeds the "
            f"{P99_BOUND_S}s bound"
        )
    if data["fsck"]["findings"]:
        problems.append(
            f"fsck found {data['fsck']['findings']} problem(s): "
            + "; ".join(data["fsck"]["details"])
        )
    return problems


def report(data: dict) -> str:
    chaos, replay, blackout = (
        data["chaos"], data["replay"], data["blackout"]
    )
    return "\n".join([
        f"serve chaos — {data['config']['trace_keys']} trace keys, "
        f"seed {data['config']['seed']}",
        f"  chaos burst : {chaos['completed']} ok, "
        f"{chaos['interrupted']} interrupted by kill -9, "
        f"p99 {chaos['p99_s']}s, {chaos['stranded_accepts']} stranded",
        f"  replay      : {replay['jobs_replayed']} job(s) replayed, "
        f"{replay['byte_identical']}/{replay['expected_identical']} "
        f"byte-identical, {replay['dropped_accepts']} dropped",
        f"  blackout    : {blackout['degraded_answers']}/"
        f"{blackout['requests']} degraded answers, "
        f"readyz {blackout['readyz_status']}, "
        f"{blackout['server_500s']} five-hundreds",
        f"  fsck        : {data['fsck']['findings']} finding(s)",
    ])


def write_json(data: dict) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "BENCH_serve_chaos.json"
    path.write_text(json.dumps(data, indent=2) + "\n")


def test_serve_chaos(benchmark):
    data = run_once(benchmark, measure)
    write_json(data)
    print("\n" + report(data))
    assert violations(data) == []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="fail on dropped jobs, divergent replays, missing degraded "
        "answers, unbounded p99, any 500, or fsck findings",
    )
    args = parser.parse_args(argv)
    data = measure()
    write_json(data)
    print(report(data))
    if args.check:
        problems = violations(data)
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1 if problems else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
