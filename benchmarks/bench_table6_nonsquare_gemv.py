"""Table VI — iteration count at which each non-square GEMV problem type
first yields a Transfer-Once offload threshold.

Headline structure: DAWN never offloads any non-square GEMV; on LUMI the
wide shapes (N considerably larger than M) never win while M=16N does
with re-use; Isambard yields for every type at one iteration.
"""

from __future__ import annotations

from harness import SYSTEMS, run_once, sweep_all_iterations, write_text
from repro.core.problem import NONSQUARE_GEMV_TYPES
from repro.core.tables import first_threshold_iteration, render_table
from repro.types import ALL_PRECISIONS, Kernel, Precision

IDENTS = tuple(pt.ident for pt in NONSQUARE_GEMV_TYPES)


def test_table6_nonsquare_gemv(benchmark):
    def build():
        return {
            system: sweep_all_iterations(system, problem_idents=IDENTS,
                                         kernels=(Kernel.GEMV,))
            for system in SYSTEMS
        }

    all_runs = run_once(benchmark, build)

    first: dict[tuple[str, str, Precision], int | None] = {}
    rows = []
    for pt in NONSQUARE_GEMV_TYPES:
        row = [pt.name]
        for system in SYSTEMS:
            cells = []
            for precision in (Precision.SINGLE, Precision.DOUBLE):
                it = first_threshold_iteration(
                    all_runs[system], Kernel.GEMV, pt.ident, precision
                )
                first[(system, pt.ident, precision)] = it
                cells.append("—" if it is None else str(it))
            row.append(" : ".join(cells))
        rows.append(row)
    table = render_table(
        ["Problem Type"] + list(SYSTEMS), rows,
        title="Table VI: first Transfer-Once threshold iteration (S : D)",
    )
    print("\n" + table)
    write_text("table6", "nonsquare_gemv_first_threshold.txt", table)

    # DAWN: non-square GEMV is never worth offloading.
    for pt in NONSQUARE_GEMV_TYPES:
        for precision in ALL_PRECISIONS:
            assert first[("dawn", pt.ident, precision)] is None

    # Isambard: every type yields at one iteration.
    for pt in NONSQUARE_GEMV_TYPES:
        for precision in ALL_PRECISIONS:
            assert first[("isambard-ai", pt.ident, precision)] == 1

    # LUMI: tall M=16N yields with re-use; the widest shape (M=32, N>=1)
    # never does.
    assert first[("lumi", "m16n", Precision.SINGLE)] is not None
    assert first[("lumi", "m32_n", Precision.SINGLE)] is None
    assert first[("lumi", "m32_n", Precision.DOUBLE)] is None
    assert first[("lumi", "n16m", Precision.SINGLE)] is None
