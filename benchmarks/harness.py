"""Shared helpers for the table/figure reproduction benchmarks.

Each ``bench_*.py`` regenerates one table or figure from the paper: it
sweeps the relevant simulated system(s) through the real GPU-BLOB runner,
prints the same rows/series the paper reports, and writes the raw data
under ``results/``.  ``pytest benchmarks/ --benchmark-only`` times each
harness once (``pedantic`` with a single round — these are result
generators, not microbenchmarks).

Sweeps are strided (``STEP``) so the full suite runs in minutes; the
threshold granularity this introduces is far smaller than the paper-vs-
reproduction deltas recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

from repro.backends.simulated import AnalyticBackend
from repro.core.config import RunConfig
from repro.core.runner import RunResult, run_sweep
from repro.systems.catalog import make_model
from repro.types import PAPER_ITERATION_COUNTS

#: Dimension sweep stride used by all benchmarks.
STEP = 8
#: The paper's dimension range (``-s 1 -d 4096``).
MIN_DIM, MAX_DIM = 1, 4096

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

SYSTEMS = ("dawn", "lumi", "isambard-ai")

_sweep_cache: dict[tuple, RunResult] = {}
_backend_cache: dict[tuple, AnalyticBackend] = {}


def backend_for(
    system: str,
    *,
    cpu_library: str | None = None,
    gpu_library: str | None = None,
    cpu_threads: int | None = None,
) -> AnalyticBackend:
    """One analytic backend per distinct system configuration.

    Benches sweep the same system at five iteration counts and several
    problem families; rebuilding the model (and its calibrated library
    curves) for each sweep dominated harness setup time.  The backend is
    stateless across runs, so sharing one instance is safe.
    """
    key = (system, cpu_library, gpu_library, cpu_threads)
    if key not in _backend_cache:
        model = make_model(
            system,
            cpu_library=cpu_library,
            gpu_library=gpu_library,
            cpu_threads=cpu_threads,
        )
        _backend_cache[key] = AnalyticBackend(model)
    return _backend_cache[key]


def sweep(
    system: str,
    iterations: int,
    *,
    problem_idents: tuple[str, ...],
    kernels=None,
    cpu_library: str | None = None,
    gpu_library: str | None = None,
    cpu_threads: int | None = None,
    min_dim: int = MIN_DIM,
    max_dim: int = MAX_DIM,
    step: int = STEP,
) -> RunResult:
    """One cached GPU-BLOB sweep on a simulated system."""
    # Several bench files pass ``kernels`` as a list; normalize so the
    # cache key stays hashable.
    kernels_key = tuple(kernels) if kernels is not None else None
    key = (system, iterations, tuple(problem_idents), kernels_key,
           cpu_library, gpu_library, cpu_threads, min_dim, max_dim, step)
    if key in _sweep_cache:
        return _sweep_cache[key]
    backend = backend_for(
        system,
        cpu_library=cpu_library,
        gpu_library=gpu_library,
        cpu_threads=cpu_threads,
    )
    kwargs = {}
    if kernels is not None:
        kwargs["kernels"] = kernels
    config = RunConfig(
        min_dim=min_dim,
        max_dim=max_dim,
        iterations=iterations,
        step=step,
        problem_idents=problem_idents,
        **kwargs,
    )
    result = run_sweep(backend, config, system_name=system)
    _sweep_cache[key] = result
    return result


def sweep_all_iterations(
    system: str, *, problem_idents: tuple[str, ...], kernels=None, **kwargs
) -> dict[int, RunResult]:
    """Paper-style: one sweep per iteration count in {1, 8, 32, 64, 128}."""
    return {
        i: sweep(system, i, problem_idents=problem_idents, kernels=kernels,
                 **kwargs)
        for i in PAPER_ITERATION_COUNTS
    }


def results_dir(experiment: str) -> Path:
    out = RESULTS_DIR / experiment
    out.mkdir(parents=True, exist_ok=True)
    return out


def write_text(experiment: str, name: str, content: str) -> Path:
    path = results_dir(experiment) / name
    path.write_text(content if content.endswith("\n") else content + "\n")
    return path


def write_csv_rows(experiment: str, name: str, rows) -> Path:
    return write_text(
        experiment, name, "\n".join(",".join(row) for row in rows)
    )


def run_once(benchmark, fn):
    """Time a result-generating harness exactly once and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
