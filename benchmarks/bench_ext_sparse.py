"""Extension — sparse SpMV offload thresholds (paper future work, §V).

The paper ends by asking which sparse problem subset to benchmark; this
harness sweeps the two axes the sparse literature always needs: matrix
size at fixed density, and required data re-use per (system, pattern).
It also validates the three real SpMV kernel implementations against
each other, GPU-BLOB checksum style.
"""

from __future__ import annotations

import numpy as np
import pytest

from harness import SYSTEMS, run_once, write_csv_rows
from repro.core.checksum import checksum, checksums_match
from repro.errors import DeferredFeatureError
from repro.sparse import (
    BANDED,
    RANDOM,
    SparseNodeModel,
    SpmvProblem,
    make_spmv_operands,
    random_csr,
    spmv_coo,
    spmv_csr,
    spmv_ell,
)
from repro.systems.catalog import make_model

try:  # probe once; this build may still defer the sparse extension
    SparseNodeModel(make_model(SYSTEMS[0]))
except DeferredFeatureError as exc:
    pytest.skip(f"sparse extension deferred: {exc}", allow_module_level=True)

DENSITIES = (0.001, 0.01, 0.05)
ITERS = (1, 32, 512)


def _experiment():
    size_thresholds = {}
    reuse_thresholds = {}
    for system in SYSTEMS:
        sparse = SparseNodeModel(make_model(system))
        for density in DENSITIES:
            for iters in ITERS:
                r = sparse.size_threshold(density, iters)
                size_thresholds[(system, density, iters)] = (
                    r.dims.m if r.found else None
                )
        for pattern in (BANDED, RANDOM):
            problem = SpmvProblem(n=16384, density=0.002, pattern=pattern)
            reuse_thresholds[(system, pattern.name)] = (
                sparse.reuse_threshold(problem)
            )
    return size_thresholds, reuse_thresholds


def test_ext_sparse_offload(benchmark):
    size_thresholds, reuse_thresholds = run_once(benchmark, _experiment)

    print("\nSpMV size offload threshold (matrix dimension n), "
          "random pattern, double precision:")
    rows = [["system", "density", "i=1", "i=32", "i=512"]]
    for system in SYSTEMS:
        for density in DENSITIES:
            cells = [
                str(size_thresholds[(system, density, i)] or "—")
                for i in ITERS
            ]
            print(f"  {system:12s} density={density:<6g} "
                  + "  ".join(f"i={i}: {c:>6s}"
                              for i, c in zip(ITERS, cells)))
            rows.append([system, str(density)] + cells)
    write_csv_rows("ext_sparse", "size_thresholds.csv", rows)

    print("\nRe-use needed to offload a 16384^2, 0.2% dense SpMV:")
    rows = [["system", "banded", "random"]]
    for system in SYSTEMS:
        b = reuse_thresholds[(system, "banded")]
        r = reuse_thresholds[(system, "random")]
        print(f"  {system:12s} banded={b or '—'}  random={r or '—'}")
        rows.append([system, str(b or "—"), str(r or "—")])
    write_csv_rows("ext_sparse", "reuse_thresholds.csv", rows)

    # DAWN (parallel CPU, PCIe): one pass never offloads, re-use can.
    for density in DENSITIES:
        assert size_thresholds[("dawn", density, 1)] is None
    assert size_thresholds[("dawn", 0.05, 512)] is not None

    # LUMI: the serial-GEMV pathology makes even one-pass SpMV offloadable
    # at scale.
    assert size_thresholds[("lumi", 0.01, 1)] is not None

    # Isambard: thresholds exist with re-use and never exceed DAWN's.
    for density in DENSITIES:
        isam = size_thresholds[("isambard-ai", density, 512)]
        dawn = size_thresholds[("dawn", density, 512)]
        assert isam is not None
        if dawn is not None:
            assert isam <= dawn


def test_ext_sparse_kernel_validation(benchmark):
    """Three independent SpMV implementations agree within 0.1%."""

    def build():
        results = []
        for seed in (1, 2, 3):
            a = random_csr(256, 256, 0.05, seed=seed)
            x, y = make_spmv_operands(a, seed=seed)
            csr = checksum(spmv_csr(a, x, y.copy()))
            coo = checksum(spmv_coo(a.to_coo(), x, y.copy()))
            ell = checksum(spmv_ell(a.to_ell(), x, y.copy()))
            dense = checksum(a.to_dense() @ x)
            results.append((seed, csr, coo, ell, dense))
        return results

    results = run_once(benchmark, build)
    rows = [["seed", "csr", "coo", "ell", "dense"]]
    for seed, csr, coo, ell, dense in results:
        rows.append([str(seed)] + [repr(v) for v in (csr, coo, ell, dense)])
        for other in (coo, ell, dense):
            assert checksums_match(csr, other)
    write_csv_rows("ext_sparse", "kernel_checksums.csv", rows)
    assert np.isfinite([r[1] for r in results]).all()
