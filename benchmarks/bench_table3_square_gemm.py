"""Table III — square GEMM (M=N=K) GPU offload thresholds.

Regenerates the paper's per-system table: rows are iteration counts
{1, 8, 32, 64, 128}, columns Transfer-Once / Transfer-Always / USM, cells
``SGEMM : DGEMM`` threshold dimensions.  Checks the headline structure:
Isambard near {26}, DAWN near the oneMKL 629 cliff at one iteration,
LUMI's Transfer-Once collapse under data re-use, and Transfer-Always
thresholds rising with the iteration count.
"""

from __future__ import annotations

from harness import SYSTEMS, run_once, sweep_all_iterations, write_text
from repro.core.tables import threshold_table_for_runs
from repro.core.threshold import threshold_for_series
from repro.types import Kernel, Precision, TransferType


def _threshold(runs, i, precision, transfer):
    series = runs[i].series_for(Kernel.GEMM, "square", precision)
    return threshold_for_series(series, transfer)


def test_table3_square_gemm(benchmark):
    def build():
        return {
            system: sweep_all_iterations(system, problem_idents=("square",),
                                         kernels=(Kernel.GEMM,))
            for system in SYSTEMS
        }

    all_runs = run_once(benchmark, build)

    report = []
    for system in SYSTEMS:
        table = threshold_table_for_runs(
            all_runs[system], Kernel.GEMM, "square",
            title=f"Table III ({system}): square GEMM thresholds, S : D",
        )
        print("\n" + table)
        report.append(table)
    write_text("table3", "square_gemm_thresholds.txt", "\n\n".join(report))

    dawn, lumi, isam = (all_runs[s] for s in SYSTEMS)

    # DAWN's 1-iteration threshold sits on the oneMKL 629 drop.
    r = _threshold(dawn, 1, Precision.SINGLE, TransferType.ONCE)
    assert r.found and 560 <= r.dims.m <= 700

    # Isambard: very low thresholds at every iteration count.
    for i in (1, 8, 32, 64, 128):
        r = _threshold(isam, i, Precision.SINGLE, TransferType.ONCE)
        assert r.found and r.dims.m <= 64

    # LUMI Transfer-Once collapses to near-zero by 32+ iterations.
    r = _threshold(lumi, 128, Precision.SINGLE, TransferType.ONCE)
    assert r.found and r.dims.m <= 16

    # Transfer-Always thresholds rise with iterations on DAWN and LUMI.
    for runs in (dawn, lumi):
        lo = _threshold(runs, 1, Precision.SINGLE, TransferType.ALWAYS)
        hi = _threshold(runs, 128, Precision.SINGLE, TransferType.ALWAYS)
        assert lo.found and hi.found and hi.dims.m > lo.dims.m

    # LUMI USM consistently above Transfer-Once (page-migration heuristics).
    for i in (8, 32, 128):
        once = _threshold(lumi, i, Precision.SINGLE, TransferType.ONCE)
        usm = _threshold(lumi, i, Precision.SINGLE, TransferType.UNIFIED)
        assert usm.found and once.found and usm.dims.m > once.dims.m
