"""Fig. 3 — square SGEMM on Isambard-AI for different CPU libraries.

Compares NVPL with 72 threads, NVPL pinned to one thread, and ArmPL over
the first 192 problem sizes at 1 and 8 iterations.  The paper's finding:
NVPL wakes every thread regardless of size, so at small sizes both ArmPL
and single-threaded NVPL "perform considerably better" — one cause of
Isambard's extremely low offload thresholds.
"""

from __future__ import annotations

from harness import run_once, write_csv_rows
from repro.analysis.graphs import Curve, CurveSet, ascii_plot
from repro.backends.simulated import AnalyticBackend
from repro.blas.registry import NVPL, get_gpu_library
from repro.core.config import RunConfig
from repro.core.runner import run_sweep
from repro.sim.perfmodel import NodePerfModel
from repro.systems import ISAMBARD_AI
from repro.systems.catalog import make_model
from repro.types import Kernel, Precision

MAX_DIM = 192


def _cpu_only_curve(model, iterations: int, label: str) -> Curve:
    cfg = RunConfig(min_dim=1, max_dim=MAX_DIM, iterations=iterations,
                    precisions=(Precision.SINGLE,), kernels=(Kernel.GEMM,),
                    problem_idents=("square",), gpu_enabled=False,
                    transfers=())
    run = run_sweep(AnalyticBackend(model), cfg)
    samples = run.series[0].cpu_samples()
    return Curve(label=label,
                 sizes=tuple(s.dims.m for s in samples),
                 gflops=tuple(s.gflops for s in samples))


def test_fig3_isambard_cpu_libraries(benchmark):
    def build():
        nvpl_72 = make_model("isambard-ai")
        nvpl_1 = NodePerfModel(ISAMBARD_AI, NVPL.with_threads(1),
                               get_gpu_library("cublas"))
        armpl = make_model("isambard-ai", cpu_library="armpl")
        out = {}
        for iterations in (1, 8):
            out[iterations] = [
                _cpu_only_curve(nvpl_72, iterations, "NVPL 72 threads"),
                _cpu_only_curve(nvpl_1, iterations, "NVPL 1 thread"),
                _cpu_only_curve(armpl, iterations, "ArmPL 72 threads"),
            ]
        return out

    curves_by_iter = run_once(benchmark, build)

    for iterations, curves in curves_by_iter.items():
        cs = CurveSet(
            title=f"Fig. 3: Isambard square SGEMM CPU libraries, i={iterations}",
            curves=curves,
        )
        write_csv_rows("fig3", f"isambard_libs_i{iterations}.csv",
                       cs.to_csv_rows())
        print("\n" + ascii_plot(cs))

    for iterations in (1, 8):
        nvpl_72, nvpl_1, armpl = curves_by_iter[iterations]
        # Small sizes: both alternatives clearly beat NVPL-72T.
        for size in (8, 16, 32, 64):
            assert nvpl_1.at(size) > 1.3 * nvpl_72.at(size)
            assert armpl.at(size) > 1.5 * nvpl_72.at(size)
        # By the top of this window the 72-thread build has caught up
        # with (or passed) the single-threaded one.
        assert nvpl_72.at(MAX_DIM) > 0.8 * nvpl_1.at(MAX_DIM)
