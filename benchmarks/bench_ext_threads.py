"""Extension — thread-count sensitivity of the offload threshold.

The paper pins one full socket per system (OMP_NUM_THREADS=48/56/72,
§IV), noting that BLAS is typically not solved across sockets.  This
study asks the inverse question: how does *under*-provisioning the CPU
move the offload threshold?  Fewer threads weaken the CPU, pulling the
threshold down — quantifying how much of each system's threshold is
bought by its thread count.
"""

from __future__ import annotations

from harness import run_once, write_csv_rows
from repro.backends.simulated import AnalyticBackend
from repro.core.config import RunConfig
from repro.core.runner import run_sweep
from repro.core.threshold import threshold_for_series
from repro.systems.catalog import make_model
from repro.types import Kernel, Precision, TransferType

THREADS = {"dawn": (1, 8, 24, 48), "isambard-ai": (1, 8, 36, 72)}
ITERATIONS = 8


def _threshold_for(system: str, threads: int):
    model = make_model(system, cpu_threads=threads)
    cfg = RunConfig(min_dim=1, max_dim=4096, iterations=ITERATIONS, step=8,
                    precisions=(Precision.SINGLE,), kernels=(Kernel.GEMM,),
                    problem_idents=("square",))
    run = run_sweep(AnalyticBackend(model), cfg)
    series = run.series_for(Kernel.GEMM, "square", Precision.SINGLE)
    return threshold_for_series(series, TransferType.ONCE)


def _experiment():
    return {
        (system, threads): _threshold_for(system, threads)
        for system, counts in THREADS.items()
        for threads in counts
    }


def test_ext_thread_count_sensitivity(benchmark):
    thresholds = run_once(benchmark, _experiment)

    print("\nSquare SGEMM Transfer-Once threshold vs CPU thread count "
          f"({ITERATIONS} iterations):")
    rows = [["system", "threads", "threshold"]]
    for (system, threads), result in thresholds.items():
        cell = str(result.dims.m) if result.found else "—"
        print(f"  {system:12s} {threads:3d} threads -> {cell}")
        rows.append([system, str(threads), cell])
    write_csv_rows("ext_threads", "threshold_vs_threads.csv", rows)

    def series(system):
        return [
            thresholds[(system, t)].dims.m
            if thresholds[(system, t)].found else 0
            for t in THREADS[system]
        ]

    # DAWN (oneMKL scales threads with size): more threads -> stronger
    # CPU -> monotonically higher threshold, 4x+ from 1 to 48 threads.
    dawn = series("dawn")
    assert all(a <= b + 8 for a, b in zip(dawn, dawn[1:])), dawn
    assert dawn[-1] > 4 * dawn[0]

    # Isambard (NVPL wakes every thread at every size): the threshold
    # *falls* as threads are added — each extra thread makes the CPU
    # worse exactly where the threshold lives, the Fig. 3 pathology
    # measured through a different lens.
    isam = series("isambard-ai")
    assert all(a >= b for a, b in zip(isam, isam[1:])), isam
    assert isam[0] > isam[-1]
