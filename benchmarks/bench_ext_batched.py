"""Extension — batched BLAS and the offload threshold (paper §V).

The paper's future work asks how batched kernels change the offload
threshold, given that batching "can greatly improve GEMM performance for
small problem sizes if many can be computed concurrently".  Two regimes
emerge from the model:

* **No data re-use (1 pass)**: batching aggregates FLOPs *and* transfer
  bytes equally, so on PCIe-class systems the low arithmetic intensity of
  small GEMMs still forbids offload — batching alone cannot beat the
  link.  Only the GH200's on-package link lets tiny batched GEMMs win.
* **With re-use (32 passes over resident batches)**: the batched launch
  amortizes dispatch and fills the device, collapsing the dimension
  threshold on every system.
"""

from __future__ import annotations

from harness import SYSTEMS, run_once, write_csv_rows
from repro.analysis.batching import (
    batch_offload_threshold,
    dimension_threshold_for_batch,
)
from repro.systems.catalog import make_model
from repro.types import Dims, Precision

SHAPES = (Dims(8, 8, 8), Dims(16, 16, 16), Dims(32, 32, 32), Dims(64, 64, 64))
BATCHES = (1, 8, 64, 512)
REUSE_ITERATIONS = 32


def _experiment():
    models = {system: make_model(system) for system in SYSTEMS}
    min_batch = {
        (system, dims.m, iters): batch_offload_threshold(
            models[system], dims, Precision.SINGLE, iterations=iters
        )
        for system in SYSTEMS
        for dims in SHAPES
        for iters in (1, REUSE_ITERATIONS)
    }
    dim_thresholds = {
        (system, batch): dimension_threshold_for_batch(
            models[system], batch, Precision.SINGLE,
            iterations=REUSE_ITERATIONS, step=2,
        )
        for system in SYSTEMS
        for batch in BATCHES
    }
    return min_batch, dim_thresholds


def test_ext_batched_offload(benchmark):
    min_batch, dim_thresholds = run_once(benchmark, _experiment)

    for iters in (1, REUSE_ITERATIONS):
        print("\nMinimum batch size for GPU offload "
              f"(square SGEMM, Transfer-Once, {iters} pass(es)):")
        rows = [["shape"] + list(SYSTEMS)]
        for dims in SHAPES:
            cells = []
            for system in SYSTEMS:
                b = min_batch[(system, dims.m, iters)]
                cells.append("—" if b is None else str(b))
            print(f"  {str(dims):16s} " + "  ".join(
                f"{system}={c}" for system, c in zip(SYSTEMS, cells)))
            rows.append([str(dims.m)] + cells)
        write_csv_rows("ext_batched", f"min_batch_i{iters}.csv", rows)

    print("\nSquare SGEMM dimension threshold vs batch width "
          f"({REUSE_ITERATIONS} passes):")
    rows = [["batch"] + list(SYSTEMS)]
    for batch in BATCHES:
        cells = []
        for system in SYSTEMS:
            r = dim_thresholds[(system, batch)]
            cells.append(str(r.dims.m) if r.found else "—")
        print(f"  batch={batch:4d}  " + "  ".join(
            f"{system}={c}" for system, c in zip(SYSTEMS, cells)))
        rows.append([str(batch)] + cells)
    write_csv_rows("ext_batched", "dim_threshold_vs_batch.csv", rows)

    # Regime 1 (no re-use): PCIe-class systems cannot offload tiny GEMMs
    # no matter how wide the batch — the link, not dispatch, binds.
    for system in ("dawn", "lumi"):
        assert min_batch[(system, 16, 1)] is None

    # Regime 2 (re-use): on LUMI and Isambard a (small) finite batch makes
    # every 16^3+ shape offloadable...
    for system in ("lumi", "isambard-ai"):
        for dims in SHAPES[1:]:
            assert min_batch[(system, dims.m, REUSE_ITERATIONS)] is not None
        # ...and larger shapes need no wider batches.
        b16 = min_batch[(system, 16, REUSE_ITERATIONS)]
        b64 = min_batch[(system, 64, REUSE_ITERATIONS)]
        assert b64 <= b16
    # ...while DAWN's strong CPU keeps 16^3 GEMMs resident even batched —
    # the batched analogue of its fixed-32 "never offload" result.
    assert min_batch[("dawn", 16, REUSE_ITERATIONS)] is None

    # Wider batches collapse the dimension threshold wherever the CPU was
    # winning on dispatch-amortized grounds (DAWN, Isambard).  On LUMI the
    # first batching step *raises* the threshold from ~1: batching also
    # rescues the CPU from AOCL's 6 us per-call overhead — library
    # behaviour shaping the threshold again.
    for system in ("dawn", "isambard-ai"):
        values = [
            dim_thresholds[(system, b)].dims.m
            if dim_thresholds[(system, b)].found else 10**9
            for b in BATCHES
        ]
        assert all(b <= a for a, b in zip(values, values[1:])), (system,
                                                                 values)
    dawn_first = dim_thresholds[("dawn", 1)]
    dawn_last = dim_thresholds[("dawn", BATCHES[-1])]
    assert dawn_last.found and dawn_first.found
    assert dawn_last.dims.m < dawn_first.dims.m
    lumi_b1 = dim_thresholds[("lumi", 1)]
    lumi_b8 = dim_thresholds[("lumi", 8)]
    assert lumi_b1.found and lumi_b8.found
    assert lumi_b8.dims.m > lumi_b1.dims.m
