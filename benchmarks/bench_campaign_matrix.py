"""Campaign orchestration overhead and determinism.

Runs the committed ``campaigns/ci-smoke.toml`` matrix (2 systems x 2
problem types x 2 precisions x 2 paradigms at i=8) through
:func:`repro.core.campaign.run_campaign` serially and sharded, and
asserts the two aggregated reports are byte-identical *and* match the
committed golden under ``results/campaign/ci-smoke/`` — the same
contract the CI ``campaign-smoke`` job enforces, measured here.

Writes ``results/BENCH_campaign_matrix.json``.  Runnable standalone::

    PYTHONPATH=src:benchmarks python benchmarks/bench_campaign_matrix.py
    PYTHONPATH=src:benchmarks python benchmarks/bench_campaign_matrix.py --check

``--check`` exits non-zero on any report divergence or golden drift.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

from harness import RESULTS_DIR, run_once
from repro.core.campaign import (
    check_drift,
    load_campaign,
    run_campaign,
    write_report,
)

CAMPAIGN = Path(__file__).resolve().parent.parent / "campaigns" / "ci-smoke.toml"


def _timed(campaign, jobs: int, out: Path) -> float:
    start = time.perf_counter()
    result = run_campaign(campaign, jobs=jobs, cache_dir=None)
    elapsed = time.perf_counter() - start
    assert result.complete, f"jobs={jobs} campaign did not complete"
    write_report(result, out)
    return elapsed


def measure() -> dict:
    campaign = load_campaign(CAMPAIGN)
    with tempfile.TemporaryDirectory() as tmp:
        serial_dir = Path(tmp) / "serial"
        parallel_dir = Path(tmp) / "parallel"
        serial_s = _timed(campaign, 1, serial_dir)
        parallel_s = _timed(campaign, 2, parallel_dir)
        csv_bytes = (serial_dir / "campaign_report.csv").read_bytes()
        identical = (
            csv_bytes == (parallel_dir / "campaign_report.csv").read_bytes()
            and (serial_dir / "campaign_report.json").read_bytes()
            == (parallel_dir / "campaign_report.json").read_bytes()
        )
        golden = campaign.golden_path()
        drift_free = (
            golden is not None
            and golden.is_file()
            and csv_bytes == golden.read_bytes()
        )
        rows = csv_bytes.decode().count("\r\n") - 1
    return {
        "campaign": campaign.name,
        "matrix_size": campaign.matrix_size,
        "scenarios": len(campaign.systems) * len(campaign.iterations),
        "report_rows": rows,
        "serial": {"seconds": serial_s},
        "parallel": {
            "jobs": 2,
            "seconds": parallel_s,
            "speedup_vs_serial": serial_s / parallel_s,
        },
        "reports_byte_identical": identical,
        "golden_drift_free": drift_free,
    }


def report(data: dict) -> str:
    return "\n".join([
        f"campaign {data['campaign']} — {data['matrix_size']} matrix "
        f"cells over {data['scenarios']} scenario sweep(s), "
        f"{data['report_rows']} report rows",
        f"  serial : {data['serial']['seconds']:7.3f} s",
        f"  jobs=2 : {data['parallel']['seconds']:7.3f} s "
        f"({data['parallel']['speedup_vs_serial']:.2f}x)",
        f"  byte-identical reports: {data['reports_byte_identical']}",
        f"  golden drift-free     : {data['golden_drift_free']}",
    ])


def write_json(data: dict) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "BENCH_campaign_matrix.json"
    path.write_text(json.dumps(data, indent=2) + "\n")


def test_campaign_matrix(benchmark):
    data = run_once(benchmark, measure)
    write_json(data)
    print("\n" + report(data))
    assert data["reports_byte_identical"]
    assert data["golden_drift_free"]
    # check_drift on own rows must also be clean (the CLI path)
    campaign = load_campaign(CAMPAIGN)
    result = run_campaign(campaign, cache_dir=None)
    assert check_drift(result.rows(), campaign.golden_path()) == []


def main(argv=None) -> int:
    check = "--check" in (argv if argv is not None else sys.argv[1:])
    data = measure()
    write_json(data)
    print(report(data))
    healthy = data["reports_byte_identical"] and data["golden_drift_free"]
    if check and not healthy:
        print("FAIL: campaign reports diverged or drifted from the golden",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
