"""Extension — CPU matrix engines and the offload threshold (§V).

The paper's first future-work item: "analyse the impact of CPU matrix
engines on the offload threshold".  We model two engines on the paper's
own CPUs — Intel AMX on DAWN's Xeon 8468 (the silicon actually has it;
oneMKL simply wasn't dispatching it for FP32) and Arm SME on a
hypothetical Grace successor — as BF16 rate multipliers, and measure how
far the BF16 GEMM offload threshold moves once the CPU fights back.
"""

from __future__ import annotations

from dataclasses import replace

from harness import run_once, write_csv_rows
from repro.backends.simulated import AnalyticBackend
from repro.core.config import RunConfig
from repro.core.runner import run_sweep
from repro.core.threshold import threshold_for_series
from repro.systems import DAWN, ISAMBARD_AI
from repro.systems.catalog import make_model
from repro.systems.specs import MatrixEngineSpec
from repro.types import Kernel, Precision, TransferType

AMX = MatrixEngineSpec(
    name="intel-amx",
    speedups=(("bfloat16", 8.0), ("half", 8.0)),
)
SME = MatrixEngineSpec(
    name="arm-sme",
    speedups=(("bfloat16", 4.0), ("half", 4.0)),
)

VARIANTS = (
    ("dawn", DAWN, None),
    ("dawn+amx", DAWN, AMX),
    ("isambard-ai", ISAMBARD_AI, None),
    ("isambard-ai+sme", ISAMBARD_AI, SME),
)


def _threshold_for(spec, engine):
    if engine is not None:
        spec = replace(spec, name=f"{spec.name}+{engine.name}",
                       cpu=replace(spec.cpu, matrix_engine=engine))
    model = make_model(spec)
    cfg = RunConfig(min_dim=1, max_dim=4096, iterations=8, step=8,
                    precisions=(Precision.BFLOAT16,),
                    kernels=(Kernel.GEMM,), problem_idents=("square",))
    run = run_sweep(AnalyticBackend(model), cfg)
    series = run.series_for(Kernel.GEMM, "square", Precision.BFLOAT16)
    return threshold_for_series(series, TransferType.ONCE)


def _experiment():
    return {
        name: _threshold_for(spec, engine)
        for name, spec, engine in VARIANTS
    }


def test_ext_matrix_engines(benchmark):
    thresholds = run_once(benchmark, _experiment)

    print("\nBF16 square GEMM Transfer-Once thresholds "
          "(8 iterations), with and without CPU matrix engines:")
    rows = [["variant", "threshold"]]
    for name, result in thresholds.items():
        cell = str(result.dims.m) if result.found else "—"
        print(f"  {name:18s} {cell}")
        rows.append([name, cell])
    write_csv_rows("ext_matrix_engines", "bf16_thresholds.csv", rows)

    # An 8x BF16 matrix engine on DAWN's Xeon pushes the threshold up
    # substantially — all the way back to the oneMKL 629 cliff, which then
    # caps it (the same library heuristic that pins the SGEMM threshold).
    base = thresholds["dawn"]
    amx = thresholds["dawn+amx"]
    assert base.found and amx.found
    assert amx.dims.m > 1.5 * base.dims.m
    assert 560 <= amx.dims.m <= 700  # pinned at the cliff

    # Even on the GH200 SoC an SME engine visibly raises the threshold.
    base = thresholds["isambard-ai"]
    sme = thresholds["isambard-ai+sme"]
    assert base.found and sme.found
    assert sme.dims.m > base.dims.m
