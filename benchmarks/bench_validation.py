"""§III validation harness: FLOP model exactness and checksum machinery.

Exercises the parts of GPU-BLOB that guarantee the *numbers* are right:
the exact FLOP counts behind every GFLOP/s figure, the constant-seed
operand initialisation, and the 0.1% checksum comparison between two
independent kernel implementations (our NumPy kernels vs the blocked
GotoBLAS-style kernel, standing in for the CPU/GPU library pair).
"""

from __future__ import annotations

import numpy as np

from harness import run_once, write_csv_rows
from repro.blas import numpy_backend as nb
from repro.blas.blocked import BlockingParams, blocked_gemm
from repro.core.checksum import checksum, checksums_match
from repro.core.flops import flops_for, naive_flops
from repro.core.problem import ALL_PROBLEM_TYPES


def _validate_pairs() -> list[tuple[str, float, float, bool]]:
    """Run each problem type once through two kernels; compare checksums."""
    rows = []
    for pt in ALL_PROBLEM_TYPES:
        params = pt.param_range(1, 64)
        dims = pt.dims_at(params[-1])
        dtype = np.dtype(np.float32)
        if dims.is_gemm:
            a, b, c1 = nb.make_operands_gemm(dims.m, dims.n, dims.k, dtype)
            c2 = c1.copy(order="F")
            nb.gemm(dims.m, dims.n, dims.k, 1.0, a, dims.m, b, dims.k,
                    0.0, c1, dims.m)
            blocked_gemm(dims.m, dims.n, dims.k, 1.0, a, dims.m, b, dims.k,
                         0.0, c2, dims.m, blocking=BlockingParams(16, 16, 16))
            ref, got = checksum(c1), checksum(c2)
        else:
            a, x, y1 = nb.make_operands_gemv(dims.m, dims.n, dtype)
            y2 = y1.copy()
            nb.gemv(dims.m, dims.n, 1.0, a, dims.m, x, 1, 0.0, y1, 1)
            # Independent evaluation in float64 for the reference side.
            y2[:] = (a.astype(np.float64) @ x.astype(np.float64)).astype(dtype)
            ref, got = checksum(y1), checksum(y2)
        rows.append((
            f"{pt.kernel.value} {pt.name}", ref, got,
            checksums_match(ref, got),
        ))
    return rows


def test_validation_checksums(benchmark):
    rows = run_once(benchmark, _validate_pairs)
    out = [["problem", "checksum_a", "checksum_b", "match"]]
    print("\nChecksum validation (two independent kernels, 0.1% margin):")
    for name, ref, got, ok in rows:
        print(f"  {name:24s} {ref:16.6f} {got:16.6f} {'OK' if ok else 'FAIL'}")
        out.append([name, repr(ref), repr(got), str(ok)])
    write_csv_rows("validation", "checksums.csv", out)
    assert all(ok for *_, ok in rows)


def test_validation_flop_model(benchmark):
    """The paper's exact counts vs the common 2MNK/2MN approximation."""

    def build():
        rows = [["problem", "exact_flops", "naive_flops", "relative_error"]]
        worst_err = 0.0
        for pt in ALL_PROBLEM_TYPES:
            params = pt.param_range(1, 4096)
            dims = pt.dims_at(params[-1])
            exact = flops_for(dims)
            approx = naive_flops(dims)
            err = abs(exact - approx) / exact
            worst_err = max(worst_err, err)
            rows.append([pt.name, str(exact), str(approx), f"{err:.3e}"])
        return rows, worst_err

    out, worst = run_once(benchmark, build)
    write_csv_rows("validation", "flop_model.csv", out)
    # The paper refuses the approximation because some problem types keep
    # a small K or N: the error must be material for at least one type...
    assert worst > 0.01
    # ...while being negligible for large square GEMM.
    from repro.types import Dims

    square = Dims(4096, 4096, 4096)
    err = abs(flops_for(square) - naive_flops(square)) / flops_for(square)
    assert err < 1e-3
