"""Ablation — threshold-detector smoothing vs measurement noise.

The paper's detector considers "the previous and current problem size"
to reject momentary performance dips (§III-D).  This bench sweeps the
injected noise amplitude and compares three detector variants: no
smoothing (first win counts), the paper's prev+current rule, and a wider
window — measuring how far each drifts from the noise-free threshold.
"""

from __future__ import annotations

import statistics

from harness import run_once, write_csv_rows
from repro.backends.simulated import AnalyticBackend
from repro.core.config import RunConfig
from repro.core.runner import run_sweep
from repro.core.threshold import threshold_for_series
from repro.sim.noise import NO_NOISE, DeterministicNoise
from repro.systems.catalog import make_model
from repro.types import Kernel, Precision, TransferType

AMPLITUDES = (0.0, 0.01, 0.03, 0.06)
SEEDS = (1, 2, 3, 4, 5)
WINDOWS = (1, 2, 4)

CFG = RunConfig(min_dim=1, max_dim=1024, iterations=8, step=2,
                precisions=(Precision.SINGLE,), kernels=(Kernel.GEMM,),
                problem_idents=("square",),
                transfers=(TransferType.ONCE,))


def _series_for(noise):
    model = make_model("dawn", noise=noise)
    run = run_sweep(AnalyticBackend(model), CFG)
    return run.series[0]


def _experiment():
    reference = threshold_for_series(
        _series_for(NO_NOISE), TransferType.ONCE
    )
    assert reference.found
    ref_m = reference.dims.m

    table = []
    for amplitude in AMPLITUDES:
        for window in WINDOWS:
            drifts = []
            misses = 0
            for seed in SEEDS:
                noise = DeterministicNoise(amplitude=amplitude, seed=seed)
                series = _series_for(noise)
                result = threshold_for_series(
                    series, TransferType.ONCE, min_consecutive=window
                )
                if result.found:
                    drifts.append(abs(result.dims.m - ref_m))
                else:
                    misses += 1
            table.append((amplitude, window,
                          statistics.mean(drifts) if drifts else None,
                          misses))
    return ref_m, table


def test_ablation_threshold_smoothing(benchmark):
    ref_m, table = run_once(benchmark, _experiment)
    print(f"\nNoise-free threshold: m={ref_m}")
    print(f"{'amplitude':>10s} {'window':>7s} {'mean drift':>11s} {'misses':>7s}")
    rows = [["amplitude", "window", "mean_drift", "misses"]]
    for amplitude, window, drift, misses in table:
        drift_s = "—" if drift is None else f"{drift:.1f}"
        print(f"{amplitude:10.2f} {window:7d} {drift_s:>11s} {misses:7d}")
        rows.append([f"{amplitude}", str(window), drift_s, str(misses)])
    write_csv_rows("ablation_threshold", "smoothing.csv", rows)

    by_key = {(a, w): (d, m) for a, w, d, m in table}
    # Zero noise: every variant lands exactly on the reference.
    for window in WINDOWS:
        drift, misses = by_key[(0.0, window)]
        assert drift == 0.0 and misses == 0

    # At higher noise, the paper's smoothing drifts no more than the
    # unsmoothed detector on average.
    for amplitude in (0.03, 0.06):
        raw_drift, _ = by_key[(amplitude, 1)]
        smooth_drift, _ = by_key[(amplitude, 2)]
        if raw_drift is not None and smooth_drift is not None:
            assert smooth_drift <= raw_drift + 2.0
