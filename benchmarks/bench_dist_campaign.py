"""Fault tolerance of distributed campaigns, with real processes.

Runs the same small campaign four ways over real ``gpu-blob``
subprocesses and holds every aggregated report against the single-node
golden, byte for byte:

1. **golden** — a single-node ``gpu-blob campaign`` run; its
   ``campaign_report.csv``/``.json`` bytes are the ground truth.
2. **worker kill** — 3 subprocess workers under
   ``--chaos-plan node-kill``: the dispatcher SIGKILLs one worker right
   after handing it a scenario, steals the orphaned scenario, and must
   still finish with zero lost scenarios and identical bytes.
3. **partition** — ``--chaos-plan partition``: a worker's messages are
   withheld past its lease; the scenario is stolen and the stale
   duplicate finish deduped.
4. **dispatcher kill -9 + resume** — the *dispatcher* process is
   SIGKILL-ed mid-campaign, then the same command re-runs with
   ``--resume``: the dispatch ledger replays, survivors' result shards
   are salvaged, and the report still matches.

Finally the crashed-and-recovered dist dir (ledger + result shards)
must pass ``fsck`` with zero findings.  Writes
``results/BENCH_dist_campaign.json``.  Runnable standalone::

    PYTHONPATH=src:benchmarks python benchmarks/bench_dist_campaign.py
    PYTHONPATH=src:benchmarks python benchmarks/bench_dist_campaign.py --check

``--check`` exits non-zero on any lost scenario, divergent report
byte, missing steal/replay evidence, or fsck finding.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import textwrap
import time
from pathlib import Path

from harness import RESULTS_DIR, run_once
from repro.core.fsck import fsck_paths
from repro.dist.ledger import LEDGER_FILENAME, load_ledger_state

SEED = 20260808

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"

#: 8 scenarios (4 iteration counts x 2 systems): enough runway that a
#: mid-campaign dispatcher kill genuinely interrupts work in flight.
CAMPAIGN_TOML = textwrap.dedent(
    """\
    schema = 1
    name = "bench-dist"

    [matrix]
    systems = ["dawn", "lumi"]
    kernels = ["gemm"]
    problems = ["square"]
    precisions = ["single"]
    transfers = ["once"]
    iterations = [4, 8, 16, 32]

    [sweep]
    min_dim = 1
    max_dim = 384
    step = 8
    """
)
SCENARIOS = 8


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def run_cli(args, timeout=300.0):
    """One ``gpu-blob`` subprocess; returns (rc, stdout+stderr)."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_env(),
        timeout=timeout,
    )
    return proc.returncode, proc.stdout


def report_bytes(out_dir: Path):
    return (
        (out_dir / "campaign_report.csv").read_bytes(),
        (out_dir / "campaign_report.json").read_bytes(),
    )


def campaign_args(toml_path, out_dir, dist_dir, *extra):
    return [
        "campaign", str(toml_path),
        "--output", str(out_dir),
        "--dist-dir", str(dist_dir),
        "--no-cache",
        "--workers", "3",
        "--lease", "6",
        *extra,
    ]


def phase_chaos(toml_path, root: Path, golden, kind: str) -> dict:
    out = root / f"out-{kind}"
    dist = root / f"dist-{kind}"
    t0 = time.monotonic()
    rc, log = run_cli(campaign_args(
        toml_path, out, dist, "--chaos-plan", f"{kind}:{SEED}",
    ))
    elapsed = time.monotonic() - t0
    csv_b, json_b = report_bytes(out) if rc == 0 else (b"", b"")
    state = load_ledger_state(dist / LEDGER_FILENAME)
    counts = state.counts()
    return {
        "kind": kind,
        "rc": rc,
        "elapsed_s": round(elapsed, 3),
        "chaos_fired": "chaos:" in log,
        "steal_logged": "stealing scenario" in log or "salvage" in log,
        "ledger_complete": counts["complete"],
        "ledger_dead": counts["dead"],
        "lost_scenarios": SCENARIOS - counts["complete"] - counts["dead"],
        "csv_identical": csv_b == golden[0],
        "json_identical": json_b == golden[1],
    }


def phase_dispatcher_kill(toml_path, root: Path, golden) -> dict:
    """SIGKILL the dispatcher once the ledger shows work in flight,
    then re-run the same command with ``--resume``."""
    out = root / "out-restart"
    dist = root / "dist-restart"
    ledger_path = dist / LEDGER_FILENAME
    argv = [sys.executable, "-m", "repro.cli",
            *campaign_args(toml_path, out, dist)]
    proc = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=_env(),
    )
    killed_mid_flight = False
    deadline = time.monotonic() + 240.0
    while time.monotonic() < deadline and proc.poll() is None:
        state = load_ledger_state(ledger_path)
        counts = state.counts()
        # at least one complete, at least one still in flight: the
        # most interesting instant to die
        if counts["complete"] >= 1 and state.in_flight():
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            killed_mid_flight = True
            break
        time.sleep(0.02)
    if not killed_mid_flight and proc.poll() is None:
        proc.kill()
        proc.wait(timeout=30)
    proc.stdout.read()
    proc.stdout.close()

    pre = load_ledger_state(ledger_path).counts()
    t0 = time.monotonic()
    rc, log = run_cli(campaign_args(toml_path, out, dist, "--resume"))
    elapsed = time.monotonic() - t0
    csv_b, json_b = report_bytes(out) if rc == 0 else (b"", b"")
    counts = load_ledger_state(ledger_path).counts()
    return {
        "kind": "dispatcher-restart",
        "rc": rc,
        "elapsed_s": round(elapsed, 3),
        "killed_mid_flight": killed_mid_flight,
        "complete_before_resume": pre["complete"],
        "replay_logged": "replayed from the ledger" in log,
        "ledger_complete": counts["complete"],
        "ledger_dead": counts["dead"],
        "lost_scenarios": SCENARIOS - counts["complete"] - counts["dead"],
        "csv_identical": csv_b == golden[0],
        "json_identical": json_b == golden[1],
    }


def measure() -> dict:
    with tempfile.TemporaryDirectory() as td:
        root = Path(td)
        toml_path = root / "bench-dist.toml"
        toml_path.write_text(CAMPAIGN_TOML)

        golden_dir = root / "golden"
        t0 = time.monotonic()
        rc, _ = run_cli([
            "campaign", str(toml_path),
            "--output", str(golden_dir), "--no-cache",
        ])
        assert rc == 0, "single-node golden run failed"
        golden = report_bytes(golden_dir)
        golden_s = time.monotonic() - t0

        phases = [
            phase_chaos(toml_path, root, golden, "node-kill"),
            phase_chaos(toml_path, root, golden, "partition"),
            phase_dispatcher_kill(toml_path, root, golden),
        ]

        findings = fsck_paths([root / "dist-restart"])
        return {
            "campaign": {"scenarios": SCENARIOS, "golden_s":
                         round(golden_s, 3)},
            "phases": phases,
            "fsck": {"findings": len(findings),
                     "details": [str(f) for f in findings]},
        }


def violations(data: dict) -> list:
    problems = []
    for phase in data["phases"]:
        kind = phase["kind"]
        if phase["rc"] != 0:
            problems.append(f"{kind}: campaign exited {phase['rc']}")
        if phase["lost_scenarios"] != 0:
            problems.append(
                f"{kind}: {phase['lost_scenarios']} scenario(s) lost"
            )
        if phase["ledger_dead"] != 0:
            problems.append(
                f"{kind}: {phase['ledger_dead']} scenario(s) dead-lettered"
            )
        if not (phase["csv_identical"] and phase["json_identical"]):
            problems.append(f"{kind}: report bytes diverge from golden")
    if data["fsck"]["findings"]:
        problems.append(
            f"fsck: {data['fsck']['findings']} finding(s) in the "
            "crashed-and-recovered dist dir"
        )
    return problems


def report(data: dict) -> str:
    lines = [
        f"distributed campaign chaos "
        f"({data['campaign']['scenarios']} scenarios, golden "
        f"{data['campaign']['golden_s']}s):"
    ]
    for phase in data["phases"]:
        identical = phase["csv_identical"] and phase["json_identical"]
        lines.append(
            f"  {phase['kind']:<19}: rc={phase['rc']} "
            f"complete={phase['ledger_complete']}/"
            f"{data['campaign']['scenarios']} "
            f"lost={phase['lost_scenarios']} "
            f"bytes={'identical' if identical else 'DIVERGED'} "
            f"({phase['elapsed_s']}s)"
        )
    lines.append(f"  fsck               : {data['fsck']['findings']} "
                 "finding(s)")
    return "\n".join(lines)


def write_json(data: dict) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "BENCH_dist_campaign.json"
    path.write_text(json.dumps(data, indent=2) + "\n")


def test_dist_campaign(benchmark):
    data = run_once(benchmark, measure)
    write_json(data)
    print("\n" + report(data))
    assert violations(data) == []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="fail on lost scenarios, divergent bytes, or fsck findings",
    )
    args = parser.parse_args(argv)
    data = measure()
    write_json(data)
    print(report(data))
    if args.check:
        problems = violations(data)
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1 if problems else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
