"""Fig. 7 (Appendix A) — implicit vs explicit scaling on DAWN's GPU.

The Max 1550 has two tiles; implicit scaling (treating the GPU as one
device) "yields much lower and less-consistent performance than explicit
scaling, despite having twice the compute resources" — the reason the
paper pins GPU-BLOB to a single tile.
"""

from __future__ import annotations

import statistics

from harness import run_once, sweep, write_csv_rows
from repro.analysis.graphs import CurveSet, ascii_plot, gpu_curve
from repro.types import Kernel, Precision, TransferType

ITERATIONS = 32


def test_fig7_implicit_vs_explicit_scaling(benchmark):
    def build():
        explicit_run = sweep("dawn", ITERATIONS, problem_idents=("square",),
                             kernels=(Kernel.GEMM,))
        implicit_run = sweep("dawn", ITERATIONS, problem_idents=("square",),
                             kernels=(Kernel.GEMM,),
                             gpu_library="onemkl-gpu-implicit")
        return (
            explicit_run.series_for(Kernel.GEMM, "square", Precision.SINGLE),
            implicit_run.series_for(Kernel.GEMM, "square", Precision.SINGLE),
        )

    explicit_series, implicit_series = run_once(benchmark, build)

    explicit = gpu_curve(explicit_series, TransferType.ONCE,
                         label="Explicit scaling (single tile)")
    implicit = gpu_curve(implicit_series, TransferType.ONCE,
                         label="Implicit scaling (whole GPU)")
    cs = CurveSet(
        title=f"Fig. 7: DAWN SGEMM GPU scaling modes, {ITERATIONS} iterations",
        curves=[explicit, implicit],
    )
    write_csv_rows("fig7", "dawn_scaling_modes.csv", cs.to_csv_rows())
    print("\n" + ascii_plot(cs))

    # Consider the established regime (mid/large sizes).
    pairs = [
        (e, i)
        for s, e, i in zip(explicit.sizes, explicit.gflops, implicit.gflops)
        if s >= 512
    ]
    explicit_vals = [e for e, _ in pairs]
    implicit_vals = [i for _, i in pairs]

    # Lower: implicit scaling loses on average.
    assert statistics.mean(implicit_vals) < 0.8 * statistics.mean(explicit_vals)

    # Less consistent: point-to-point relative variation is much larger.
    def roughness(values):
        ratios = [abs(b - a) / a for a, b in zip(values, values[1:])]
        return statistics.mean(ratios)

    assert roughness(implicit_vals) > 3.0 * roughness(explicit_vals)
