"""Ablation — discrete-event backend vs closed-form analytic backend.

The DES executes every measurement as explicit commands on simulated DMA
and compute engines; the analytic model sums closed-form costs.  They
must agree exactly (the harness is single-stream, so no overlap exists),
and this bench quantifies the simulation-speed price of the DES — the
reason full 1..4096 sweeps default to the analytic path.
"""

from __future__ import annotations

import time

from harness import run_once, write_csv_rows
from repro.backends.simulated import AnalyticBackend, DesBackend
from repro.core.config import RunConfig
from repro.core.runner import run_sweep
from repro.systems.catalog import make_model
from repro.types import Precision

CFG = RunConfig(min_dim=1, max_dim=256, iterations=8, step=4,
                precisions=(Precision.SINGLE,),
                problem_idents=("square",))


def _run_both():
    model = make_model("lumi")
    out = {}
    for name, backend in (("analytic", AnalyticBackend(model)),
                          ("des", DesBackend(model))):
        start = time.perf_counter()
        result = run_sweep(backend, CFG)
        out[name] = (time.perf_counter() - start, result)
    return out


def test_ablation_des_vs_analytic(benchmark):
    out = run_once(benchmark, _run_both)
    analytic_wall, analytic_run = out["analytic"]
    des_wall, des_run = out["des"]

    mismatches = 0
    total = 0
    worst = 0.0
    for series_a, series_d in zip(analytic_run.series, des_run.series):
        for sample_a, sample_d in zip(series_a.samples, series_d.samples):
            total += 1
            rel = abs(sample_a.seconds - sample_d.seconds) / sample_a.seconds
            worst = max(worst, rel)
            if rel > 1e-9:
                mismatches += 1

    slowdown = des_wall / analytic_wall
    print(f"\nDES vs analytic: {total} samples, worst relative "
          f"difference {worst:.2e}, DES harness cost {slowdown:.1f}x")
    write_csv_rows("ablation_des", "agreement.csv", [
        ["samples", "worst_rel_diff", "mismatches", "des_slowdown_x"],
        [str(total), f"{worst:.3e}", str(mismatches), f"{slowdown:.2f}"],
    ])

    assert mismatches == 0
    assert total > 500
