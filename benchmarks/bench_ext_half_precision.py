"""Extension — FP16/BF16 offload thresholds (paper future work, §V).

The paper could not include half precision ("not all BLAS libraries
support HGEMM, and some that do are not intuitive to use").  The model
supports it: GPUs run HGEMM through their matrix units (tensor cores /
XMX / Matrix Cores) while CPUs without matrix engines convert to FP32
SIMD — so the GPU compute advantage widens, and transfer bytes halve,
pulling every offload threshold down relative to SGEMM.
"""

from __future__ import annotations

from harness import SYSTEMS, run_once, sweep, write_csv_rows
from repro.core.threshold import threshold_for_series
from repro.types import Kernel, Precision, TransferType

PRECISIONS = (Precision.SINGLE, Precision.HALF, Precision.BFLOAT16)


def _experiment():
    out = {}
    for system in SYSTEMS:
        run = sweep(system, 8, problem_idents=("square",),
                    kernels=(Kernel.GEMM,))
        out[(system, Precision.SINGLE)] = threshold_for_series(
            run.series_for(Kernel.GEMM, "square", Precision.SINGLE),
            TransferType.ONCE,
        )
    # Half/bf16 need their own sweeps (not in the default precision set).
    from repro.backends.simulated import AnalyticBackend
    from repro.core.config import RunConfig
    from repro.core.runner import run_sweep
    from repro.systems.catalog import make_model

    for system in SYSTEMS:
        model = make_model(system)
        for precision in (Precision.HALF, Precision.BFLOAT16):
            cfg = RunConfig(min_dim=1, max_dim=4096, iterations=8, step=8,
                            precisions=(precision,),
                            kernels=(Kernel.GEMM,),
                            problem_idents=("square",))
            run = run_sweep(AnalyticBackend(model), cfg)
            out[(system, precision)] = threshold_for_series(
                run.series_for(Kernel.GEMM, "square", precision),
                TransferType.ONCE,
            )
    return out


def test_ext_half_precision_thresholds(benchmark):
    thresholds = run_once(benchmark, _experiment)

    print("\nSquare GEMM Transfer-Once thresholds by precision (8 iters):")
    rows = [["system"] + [p.value for p in PRECISIONS]]
    for system in SYSTEMS:
        cells = []
        for precision in PRECISIONS:
            r = thresholds[(system, precision)]
            cells.append(str(r.dims.m) if r.found else "—")
        print(f"  {system:12s} " + "  ".join(
            f"{p.blas_prefix}gemm={c}" for p, c in zip(PRECISIONS, cells)))
        rows.append([system] + cells)
    write_csv_rows("ext_half", "precision_thresholds.csv", rows)

    for system in SYSTEMS:
        sgemm = thresholds[(system, Precision.SINGLE)]
        for precision in (Precision.HALF, Precision.BFLOAT16):
            r = thresholds[(system, precision)]
            assert r.found, (system, precision)
            # Matrix units + halved transfer bytes: HGEMM offloads no
            # later than SGEMM everywhere.
            assert r.dims.m <= sgemm.dims.m if sgemm.found else True

    # The effect is strongest on the discrete systems, where the CPU has
    # no reduced-precision advantage at all.
    dawn_s = thresholds[("dawn", Precision.SINGLE)].dims.m
    dawn_h = thresholds[("dawn", Precision.HALF)].dims.m
    assert dawn_h < 0.75 * dawn_s
