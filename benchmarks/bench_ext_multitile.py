"""Ablation — structural two-tile model vs the measured Fig. 7 quirk.

Appendix A attributes implicit scaling's loss to cross-tile
communication.  An *idealized* structural model (perfect work split,
MDFI-limited sharing, shape-dependent imbalance) says two tiles should
win beyond mid sizes; the measured behaviour (our calibrated quirk,
reproducing Fig. 7) loses everywhere.  The gap quantifies how far the
software stack was from the fabric's structural limit — and why the
paper (and Intel's guidance) pins GPU-BLOB to one tile.
"""

from __future__ import annotations

import statistics

import pytest

from harness import run_once, write_csv_rows
from repro.blas.registry import get_gpu_library
from repro.core.flops import flops_for
from repro.errors import DeferredFeatureError
from repro.sim.gpu import GpuModel
from repro.sim.multitile import MultiTileGpu
from repro.sim.noise import NO_NOISE
from repro.systems.dawn import MAX_1550_TILE
from repro.types import Dims, Precision

try:  # probe once; this build may still defer the structural model
    MultiTileGpu(
        GpuModel(MAX_1550_TILE, get_gpu_library("onemkl-gpu"), noise=NO_NOISE)
    )
except DeferredFeatureError as exc:
    pytest.skip(
        f"structural multi-tile model deferred: {exc}", allow_module_level=True
    )

SIZES = tuple(range(256, 4097, 128))
P = Precision.SINGLE


def _experiment():
    tile = GpuModel(MAX_1550_TILE, get_gpu_library("onemkl-gpu"),
                    noise=NO_NOISE)
    quirked = GpuModel(MAX_1550_TILE,
                       get_gpu_library("onemkl-gpu-implicit"),
                       noise=NO_NOISE)
    structural = MultiTileGpu(tile)
    rows = []
    for m in SIZES:
        dims = Dims(m, m, m)
        flops = flops_for(dims)
        rows.append((
            m,
            flops / tile.kernel_time(dims, P) / 1e9,
            flops / quirked.kernel_time(dims, P) / 1e9,
            flops / structural.kernel_time(dims, P) / 1e9,
        ))
    return rows


def test_ext_multitile_ablation(benchmark):
    rows = run_once(benchmark, _experiment)

    csv_rows = [["m", "explicit_single_tile", "implicit_measured_quirk",
                 "implicit_ideal_structural"]]
    for m, single, quirk, structural in rows:
        csv_rows.append([str(m)] + [f"{v:.1f}" for v in
                                    (single, quirk, structural)])
    write_csv_rows("ext_multitile", "scaling_models.csv", csv_rows)

    big = [r for r in rows if r[0] >= 1024]
    mean_single = statistics.mean(r[1] for r in big)
    mean_quirk = statistics.mean(r[2] for r in big)
    mean_structural = statistics.mean(r[3] for r in big)
    software_gap = mean_structural / mean_quirk
    print("\nDAWN GPU SGEMM mean GFLOP/s (m >= 1024):")
    print(f"  explicit single tile          {mean_single:10.0f}")
    print(f"  implicit, measured (quirk)    {mean_quirk:10.0f}")
    print(f"  implicit, ideal structural    {mean_structural:10.0f}")
    print(f"  => software gap: the stack delivered 1/{software_gap:.1f} "
          "of the fabric's structural limit")

    # Measured implicit scaling loses to a single tile (Fig. 7)...
    assert mean_quirk < mean_single
    # ...while the idealized split would have won...
    assert mean_structural > mean_single
    # ...leaving a large software gap.
    assert software_gap > 1.5
