"""Table IV — square GEMV (M=N) GPU offload thresholds.

Headline structure: Transfer-Always never yields a threshold on any
system; nothing yields at one iteration; DAWN's thresholds are high
(~4089/~2900 — the LLC boundary) and near-static; Isambard pins to the
NVPL ~{256, 256} drop; LUMI's thresholds fall as re-use grows.
"""

from __future__ import annotations

from harness import SYSTEMS, run_once, sweep_all_iterations, write_text
from repro.core.tables import threshold_table_for_runs
from repro.core.threshold import threshold_for_series
from repro.types import (ALL_PRECISIONS, PAPER_ITERATION_COUNTS,
                         Kernel, Precision, TransferType)


def _threshold(runs, i, precision, transfer):
    series = runs[i].series_for(Kernel.GEMV, "square", precision)
    return threshold_for_series(series, transfer)


def test_table4_square_gemv(benchmark):
    def build():
        return {
            system: sweep_all_iterations(system, problem_idents=("square",),
                                         kernels=(Kernel.GEMV,))
            for system in SYSTEMS
        }

    all_runs = run_once(benchmark, build)

    report = []
    for system in SYSTEMS:
        table = threshold_table_for_runs(
            all_runs[system], Kernel.GEMV, "square",
            title=f"Table IV ({system}): square GEMV thresholds, S : D",
        )
        print("\n" + table)
        report.append(table)
    write_text("table4", "square_gemv_thresholds.txt", "\n\n".join(report))

    for system in SYSTEMS:
        runs = all_runs[system]
        # Transfer-Always: never, at any iteration count (paper §V).
        for i in PAPER_ITERATION_COUNTS:
            for precision in ALL_PRECISIONS:
                assert not _threshold(runs, i, precision,
                                      TransferType.ALWAYS).found
        # Nothing at one iteration.
        for transfer in (TransferType.ONCE, TransferType.UNIFIED):
            for precision in ALL_PRECISIONS:
                assert not _threshold(runs, 1, precision, transfer).found

    dawn, lumi, isam = (all_runs[s] for s in SYSTEMS)

    # DAWN: high, near-static thresholds; DGEMV below SGEMV (footnote 6).
    s32 = _threshold(dawn, 32, Precision.SINGLE, TransferType.ONCE)
    d32 = _threshold(dawn, 32, Precision.DOUBLE, TransferType.ONCE)
    assert s32.found and s32.dims.m > 3300
    assert d32.found and d32.dims.m < s32.dims.m

    # Isambard: pinned near the NVPL {256, 256} drop, all re-use levels.
    for i in (8, 32, 64, 128):
        r = _threshold(isam, i, Precision.SINGLE, TransferType.ONCE)
        assert r.found and 200 <= r.dims.m <= 320

    # LUMI: decreasing with iteration count.
    r8 = _threshold(lumi, 8, Precision.SINGLE, TransferType.ONCE)
    r128 = _threshold(lumi, 128, Precision.SINGLE, TransferType.ONCE)
    assert r8.found and r128.found and r128.dims.m < r8.dims.m
