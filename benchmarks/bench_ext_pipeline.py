"""Extension — double-buffered Transfer-Always (pipeline ablation).

The paper's Transfer-Always serializes h2d -> kernel -> d2h every
iteration, which is why its thresholds *rise* with data re-use.  This
bench runs the overlapped (double-buffered) schedule through the
discrete-event engine and measures how much of that penalty an
application could recover: the speedup over the serial schedule, and
where the Transfer-Always offload threshold would move.
"""

from __future__ import annotations

from harness import SYSTEMS, run_once, write_csv_rows
from repro.core.threshold import find_offload_threshold
from repro.sim.pipeline import pipelined_always_time, serial_always_time
from repro.systems.catalog import make_model
from repro.types import Dims, Precision

ITERATIONS = 32
SIZES = tuple(range(64, 2049, 64))


def _experiment():
    out = {}
    for system in SYSTEMS:
        model = make_model(system)
        rows = []
        for m in SIZES:
            dims = Dims(m, m, m)
            serial = serial_always_time(model, dims, Precision.SINGLE,
                                        ITERATIONS)
            piped = pipelined_always_time(model, dims, Precision.SINGLE,
                                          ITERATIONS)
            cpu = model.cpu_time(dims, Precision.SINGLE, ITERATIONS)
            rows.append((m, cpu, serial, piped))
        out[system] = rows
    return out


def _threshold(rows, gpu_index):
    # find_offload_threshold compares *seconds* (GPU wins when faster),
    # so hand it the timing curves directly.
    sizes = [Dims(m, m, m) for m, *_ in rows]
    cpu = [r[1] for r in rows]
    gpu = [r[gpu_index] for r in rows]
    return find_offload_threshold(sizes, cpu, gpu)


def test_ext_pipelined_transfer_always(benchmark):
    data = run_once(benchmark, _experiment)

    print("\nTransfer-Always, serial vs double-buffered "
          f"({ITERATIONS} iterations, square SGEMM):")
    csv_rows = [["system", "serial_threshold", "pipelined_threshold",
                 "max_speedup"]]
    for system in SYSTEMS:
        rows = data[system]
        serial_thr = _threshold(rows, 2)
        piped_thr = _threshold(rows, 3)
        speedups = [serial / piped for _, _, serial, piped in rows]
        best = max(speedups)
        s_cell = str(serial_thr.dims.m) if serial_thr.found else "—"
        p_cell = str(piped_thr.dims.m) if piped_thr.found else "—"
        print(f"  {system:12s} threshold {s_cell:>5s} -> {p_cell:>5s}   "
              f"max overlap speedup {best:.2f}x")
        csv_rows.append([system, s_cell, p_cell, f"{best:.3f}"])
    write_csv_rows("ext_pipeline", "pipelined_always.csv", csv_rows)

    for system in SYSTEMS:
        rows = data[system]
        # Overlap never loses, and buys a real factor somewhere.
        assert all(piped <= serial * (1 + 1e-9)
                   for _, _, serial, piped in rows)
        assert max(serial / piped for _, _, serial, piped in rows) > 1.3

        # The pipelined threshold is never above the serial one.
        serial_thr = _threshold(rows, 2)
        piped_thr = _threshold(rows, 3)
        s = serial_thr.dims.m if serial_thr.found else 10**9
        p = piped_thr.dims.m if piped_thr.found else 10**9
        assert p <= s
