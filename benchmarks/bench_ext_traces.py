"""Extension — end-to-end application traces under threshold-guided
placement.

§III-D argues the offload threshold saves porting effort by predicting,
per BLAS phase, where an application should run.  This bench quantifies
that: three canonical application traces (MLP training, K-means, a
Newton-Krylov solver) replayed on each system under CPU-only, GPU-only
and threshold-guided hybrid placement.
"""

from __future__ import annotations

from harness import SYSTEMS, run_once, write_csv_rows
from repro.analysis.trace import (
    TraceEvaluator,
    implicit_solver_trace,
    kmeans_trace,
    mlp_training_trace,
)
from repro.systems.catalog import make_model

TRACES = (
    ("mlp-training", mlp_training_trace()),
    ("kmeans", kmeans_trace()),
    ("newton-krylov", implicit_solver_trace()),
)


def _experiment():
    out = {}
    for system in SYSTEMS:
        evaluator = TraceEvaluator(make_model(system))
        for name, trace in TRACES:
            out[(system, name)] = evaluator.evaluate(trace)
    return out


def test_ext_application_traces(benchmark):
    reports = run_once(benchmark, _experiment)

    print("\nEnd-to-end trace times (ms): cpu-only / gpu-only / hybrid")
    rows = [["system", "trace", "cpu_only_ms", "gpu_only_ms", "hybrid_ms",
             "hybrid_gain", "offloaded_phases"]]
    for (system, name), report in reports.items():
        gain = report.hybrid_speedup_vs_best_single
        offloaded = len(report.offloaded_phases())
        total = len(report.placements)
        print(f"  {system:12s} {name:14s} "
              f"{report.cpu_only_s * 1e3:10.2f} / "
              f"{report.gpu_only_s * 1e3:10.2f} / "
              f"{report.hybrid_s * 1e3:10.2f}   "
              f"gain {gain:5.2f}x  ({offloaded}/{total} phases offloaded)")
        rows.append([system, name,
                     f"{report.cpu_only_s * 1e3:.3f}",
                     f"{report.gpu_only_s * 1e3:.3f}",
                     f"{report.hybrid_s * 1e3:.3f}",
                     f"{gain:.3f}",
                     f"{offloaded}/{total}"])
    write_csv_rows("ext_traces", "placement.csv", rows)

    for key, report in reports.items():
        # Hybrid placement can never lose to either all-or-nothing port.
        assert report.hybrid_s <= report.cpu_only_s + 1e-12, key
        assert report.hybrid_s <= report.gpu_only_s + 1e-12, key

    # K-means carries a Transfer-Always GEMV the GPU should not take on
    # the discrete systems: hybrid strictly beats the GPU-only port.
    for system in ("dawn", "lumi"):
        report = reports[(system, "kmeans")]
        assert report.hybrid_s < 0.95 * report.gpu_only_s
    # On LUMI the distance GEMM still belongs on the GPU (weak CPU); on
    # DAWN the strong Xeon keeps even that phase — a genuinely mixed
    # placement across systems.
    assert "distances" in reports[("lumi", "kmeans")].offloaded_phases()
    assert not reports[("dawn", "kmeans")].offloaded_phases()

    # The GH200 offloads every MLP phase (Table V: everything wins).
    isam = reports[("isambard-ai", "mlp-training")]
    assert len(isam.offloaded_phases()) == len(isam.placements)
