"""Fig. 6 — AOCL vs OpenBLAS square DGEMV CPU performance on LUMI.

The paper discovered (via ``perf stat``: 0.89 CPUs used) that AOCL does
not parallelize GEMV; switching to OpenBLAS with 56 threads brings a
large improvement at mid/large sizes — despite poorer small-size
performance — and eliminates every GEMV offload threshold on LUMI.
"""

from __future__ import annotations

from harness import run_once, sweep, write_csv_rows
from repro.analysis.graphs import CurveSet, ascii_plot, cpu_curve
from repro.core.threshold import threshold_for_series
from repro.types import Kernel, Precision, TransferType

ITERATIONS = 128


def test_fig6_aocl_vs_openblas_dgemv(benchmark):
    def build():
        aocl_run = sweep("lumi", ITERATIONS, problem_idents=("square",),
                         kernels=(Kernel.GEMV,))
        openblas_run = sweep("lumi", ITERATIONS, problem_idents=("square",),
                             kernels=(Kernel.GEMV,), cpu_library="openblas")
        return (
            aocl_run.series_for(Kernel.GEMV, "square", Precision.DOUBLE),
            openblas_run.series_for(Kernel.GEMV, "square", Precision.DOUBLE),
        )

    aocl_series, openblas_series = run_once(benchmark, build)

    aocl = cpu_curve(aocl_series, label="AOCL 4.1 (serial GEMV)")
    openblas = cpu_curve(openblas_series, label="OpenBLAS 0.3.24 (56 threads)")
    cs = CurveSet(
        title=f"Fig. 6: LUMI square DGEMV CPU, {ITERATIONS} iterations",
        curves=[aocl, openblas],
    )
    write_csv_rows("fig6", "lumi_dgemv_cpu_libraries.csv", cs.to_csv_rows())
    print("\n" + ascii_plot(cs))

    table_a = dict(zip(aocl.sizes, aocl.gflops))
    table_o = dict(zip(openblas.sizes, openblas.gflops))

    def at(table, size):
        return table[min(table, key=lambda s: abs(s - size))]

    # Mid/large sizes: OpenBLAS far ahead (the parallelization win).
    for size in (1024, 2048, 4096):
        assert at(table_o, size) > 3.0 * at(table_a, size), size

    # Small sizes: OpenBLAS is *poorer*, as the paper notes.
    assert at(table_o, 33) < at(table_a, 33)

    # With OpenBLAS, no GEMV offload threshold for any transfer type.
    for transfer in openblas_series.transfer_types():
        assert not threshold_for_series(openblas_series, transfer).found

    # With AOCL, the Transfer-Once threshold exists at 128 iterations.
    assert threshold_for_series(aocl_series, TransferType.ONCE).found
