"""Fig. 4 — square DGEMV performance (1 iteration) on all three systems.

The paper's point: at one iteration no system produces an offload
threshold, *but* on DAWN and Isambard-AI a CPU performance drop opens a
considerable mid-range window where the GPU wins anyway — while on LUMI
the CPU leads everywhere by a healthy (narrowing) margin.
"""

from __future__ import annotations

from harness import SYSTEMS, run_once, sweep, write_csv_rows, write_text
from repro.analysis.compare import gpu_win_windows
from repro.analysis.graphs import ascii_plot, performance_curves
from repro.core.threshold import threshold_for_series
from repro.types import Kernel, Precision, TransferType


def test_fig4_square_dgemv_one_iteration(benchmark):
    def build():
        out = {}
        for system in SYSTEMS:
            run = sweep(system, 1, problem_idents=("square",),
                        kernels=(Kernel.GEMV,))
            out[system] = run.series_for(Kernel.GEMV, "square",
                                         Precision.DOUBLE)
        return out

    series_by_system = run_once(benchmark, build)

    for system, series in series_by_system.items():
        curves = performance_curves(
            series, title=f"Fig. 4: {system} square DGEMV, 1 iteration"
        )
        write_csv_rows("fig4", f"{system}_dgemv_1iter.csv",
                       curves.to_csv_rows())
        print("\n" + ascii_plot(curves))

        # No offload threshold anywhere at one iteration.
        for transfer in series.transfer_types():
            assert not threshold_for_series(series, transfer).found, \
                (system, transfer)

    windows_report = []
    for system, series in series_by_system.items():
        windows = gpu_win_windows(series, TransferType.ONCE)
        windows_report.append(
            f"{system}: " + (", ".join(f"{lo}..{hi}" for lo, hi in windows)
                             or "no GPU win window")
        )
    text = "\n".join(windows_report)
    write_text("fig4", "gpu_win_windows.txt", text)
    print("\nGPU win windows (Transfer-Once):\n" + text)

    # DAWN and Isambard: a substantial mid-range GPU window exists.
    for system in ("dawn", "isambard-ai"):
        windows = gpu_win_windows(series_by_system[system],
                                  TransferType.ONCE)
        assert windows, system
        lo, hi = max(windows, key=lambda w: w[1].m - w[0].m)
        assert hi.m - lo.m > 200, (system, lo, hi)

    # LUMI: the CPU wins everywhere.
    assert not gpu_win_windows(series_by_system["lumi"], TransferType.ONCE)
