"""Pytest configuration for the benchmark harness."""

import sys
from pathlib import Path

# Make the sibling `harness` module importable from every bench file.
sys.path.insert(0, str(Path(__file__).resolve().parent))
