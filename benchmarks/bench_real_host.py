"""Real-host mode: the GPU-BLOB code path on this machine's actual CPU.

Runs a small sweep with genuine wall-clock timing of our NumPy kernels
(the paper's LUMI CPU-only workflow), pairs it with the simulated
Isambard GPU through the combined backend, and produces a real offload
threshold for this (host CPU, simulated GH200) pairing — demonstrating
that the benchmark logic is identical in real and simulated modes.
"""

from __future__ import annotations

from harness import run_once, write_csv_rows, write_text
from repro.analysis.graphs import performance_curves
from repro.backends.host import CombinedBackend, HostCpuBackend
from repro.backends.simulated import AnalyticBackend
from repro.core.config import RunConfig
from repro.core.csvio import write_run
from repro.core.runner import run_sweep
from repro.core.tables import run_summary
from repro.systems.catalog import make_model
from repro.types import DeviceKind, Kernel, Precision

CFG = RunConfig(min_dim=16, max_dim=256, iterations=4, step=16,
                precisions=(Precision.SINGLE,), kernels=(Kernel.GEMM,),
                problem_idents=("square",))


def _run():
    backend = CombinedBackend(
        HostCpuBackend(), AnalyticBackend(make_model("isambard-ai"))
    )
    return run_sweep(backend, CFG, system_name="host+simulated-gh200")


def test_real_host_sweep(benchmark):
    result = run_once(benchmark, _run)
    (series,) = result.series

    summary = run_summary(result)
    print("\n" + summary)
    write_text("real_host", "summary.txt", summary)
    curves = performance_curves(series, title="Real host CPU vs simulated GH200")
    write_csv_rows("real_host", "curves.csv", curves.to_csv_rows())
    import harness

    write_run(result, harness.results_dir("real_host"))

    cpu = [s for s in series.samples if s.device is DeviceKind.CPU]
    # Real measurements: positive durations and checksums recorded.
    assert cpu and all(s.seconds > 0 for s in cpu)
    # Real NumPy GEMM on any host manages more than 1 GFLOP/s at size 256.
    assert cpu[-1].gflops > 1.0
