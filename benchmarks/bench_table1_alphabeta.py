"""Table I — SGEMM run-times for different alpha/beta values.

The paper ran 100 iterations of an M=N=8192, K=4 SGEMM on five
device/library pairs with (alpha, beta) in {(1,0), (4,0), (1,2)} and
found: beta=0 gives a 1.2x-1.7x speedup over beta=2 (libraries skip the
``beta*C + AB`` update), while alpha's value changes nothing (~1%).

This reproduction measures the same three scalar configurations through
(a) the calibrated device models (A100 is substituted by the H100 model —
the only Table I device without a system model here) and (b) a *real*
NumPy execution of our own kernels on this host, which implements the
same beta=0 fast path.  CPU model rows are single-threaded, as in the
paper.
"""

from __future__ import annotations

import time

import numpy as np

from harness import run_once, write_csv_rows
from repro.blas import numpy_backend as nb
from repro.blas.registry import get_cpu_library, get_gpu_library
from repro.sim.gpu import GpuModel
from repro.sim.cpu import CpuModel
from repro.systems.dawn import MAX_1550_TILE, XEON_8468
from repro.systems.isambard import H100_GH200
from repro.systems.lumi import EPYC_7A53, MI250X_GCD
from repro.types import Dims, Precision

M, N, K = 8192, 8192, 4
ITERATIONS = 100
CASES = (("alpha=1 beta=0", 1.0, 0.0),
         ("alpha=4 beta=0", 4.0, 0.0),
         ("alpha=1 beta=2", 1.0, 2.0))


def _model_rows() -> list[tuple[str, dict[str, float]]]:
    dims = Dims(M, N, K)
    devices = [
        ("cuBLAS / H100 (for A100)",
         GpuModel(H100_GH200, get_gpu_library("cublas"))),
        ("rocBLAS / MI250X GCD",
         GpuModel(MI250X_GCD, get_gpu_library("rocblas"))),
        ("oneMKL / Max 1550 tile",
         GpuModel(MAX_1550_TILE, get_gpu_library("onemkl-gpu"))),
        ("oneMKL / Xeon 8468 (1 thread)",
         CpuModel(XEON_8468, get_cpu_library("onemkl"), max_threads=1)),
        ("AOCL / EPYC 7A53 (1 thread, for 7543P)",
         CpuModel(EPYC_7A53, get_cpu_library("aocl"), max_threads=1)),
    ]
    rows = []
    for label, model in devices:
        times = {}
        for case, alpha, beta in CASES:
            if isinstance(model, GpuModel):
                t = model.noisy_kernel_time(
                    dims, Precision.SINGLE, ITERATIONS, alpha=alpha, beta=beta
                )
            else:
                t = model.time(
                    dims, Precision.SINGLE, ITERATIONS, alpha=alpha, beta=beta
                )
            times[case] = t * 1e3  # ms
        rows.append((label, times))
    return rows


def _real_host_row() -> tuple[str, dict[str, float]]:
    # Smaller M=N so the real run stays quick; the fast-path structure is
    # identical at any size.
    m = n = 2048
    a, b, c = nb.make_operands_gemm(m, n, K, np.dtype(np.float32))
    times = {}
    for case, alpha, beta in CASES:
        nb.gemm(m, n, K, alpha, a, m, b, K, beta, c, m)  # warm-up
        start = time.perf_counter()
        for _ in range(20):
            nb.gemm(m, n, K, alpha, a, m, b, K, beta, c, m)
        times[case] = (time.perf_counter() - start) * 1e3
    return (f"NumPy kernels on this host (M=N={m}, 20 iters)", times)


def test_table1_alpha_beta(benchmark):
    rows = run_once(benchmark, _model_rows)
    rows.append(_real_host_row())

    header = ["Device / library"] + [case for case, _, _ in CASES] + [
        "beta2/beta0", "alpha4/alpha1",
    ]
    out_rows = [header]
    print("\nTable I — SGEMM run-times (ms), varying alpha and beta")
    print(f"{header[0]:44s} {header[1]:>16s} {header[2]:>16s} "
          f"{header[3]:>16s} {header[4]:>12s} {header[5]:>13s}")
    for label, times in rows:
        beta_ratio = times["alpha=1 beta=2"] / times["alpha=1 beta=0"]
        alpha_ratio = times["alpha=4 beta=0"] / times["alpha=1 beta=0"]
        print(f"{label:44s} "
              f"{times['alpha=1 beta=0']:14.2f}ms "
              f"{times['alpha=4 beta=0']:14.2f}ms "
              f"{times['alpha=1 beta=2']:14.2f}ms "
              f"{beta_ratio:11.2f}x {alpha_ratio:12.3f}x")
        out_rows.append([label] + [f"{times[c]:.3f}" for c, _, _ in CASES]
                        + [f"{beta_ratio:.3f}", f"{alpha_ratio:.3f}"])

    write_csv_rows("table1", "alphabeta.csv", out_rows)

    # Paper shape: beta=0 is a 1.2x-1.7x win; alpha is noise (<~2%).
    for label, times in rows[:-1]:  # model rows are noise-free enough
        beta_ratio = times["alpha=1 beta=2"] / times["alpha=1 beta=0"]
        alpha_ratio = times["alpha=4 beta=0"] / times["alpha=1 beta=0"]
        assert 1.1 <= beta_ratio <= 1.9, (label, beta_ratio)
        assert 0.95 <= alpha_ratio <= 1.05, (label, alpha_ratio)
