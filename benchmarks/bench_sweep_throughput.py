"""Sweep-executor throughput: serial-scalar vs vectorized vs parallel.

Times the Table III configuration (square GEMM and GEMV on dawn, the
full 1-4096 range at stride 8, both precisions, all three transfer
paradigms) through the execution strategies of
:func:`repro.core.runner.run_sweep` and reports cells/second for each.
Two kernels x two precisions give the parallel executor four shards to
spread over the warm worker pool; each worker runs the vectorized fast
path internally, so the ``vectorized+jobs=N`` rows measure the combined
stack: warm-pool dispatch + shared-memory results + batched kernels.
All strategies produce bit-identical series — asserted here on every
run — so the numbers compare pure executor overhead.

Writes ``results/BENCH_sweep_throughput.json``.  Runnable standalone::

    PYTHONPATH=src:benchmarks python benchmarks/bench_sweep_throughput.py
    PYTHONPATH=src:benchmarks python benchmarks/bench_sweep_throughput.py --check

``--check`` exits non-zero unless the vectorized path clears 5x the
serial-scalar cells/s AND the combined vectorized+jobs=4 path clears 3x
(the CI perf-smoke floors; measured margins are larger).
"""

from __future__ import annotations

import json
import sys
import time

from harness import RESULTS_DIR, backend_for, run_once
from repro.core import workerpool
from repro.core.config import RunConfig
from repro.core.runner import run_sweep
from repro.types import Kernel

SYSTEM = "dawn"
SPEEDUP_FLOOR = 5.0
#: combined floor for the warm-pool parallel path at jobs=4 — below the
#: vectorized floor because pool dispatch and shared-memory decode are
#: real overhead on a core-starved runner, but far above the cold-pool
#: era (~1.3x) now that spawns amortize across sweeps
PARALLEL_FLOOR = 3.0
PARALLEL_JOBS = (2, 4)
#: timing repeats per strategy (after one untimed warmup); best-of wins
ROUNDS = 3


class _ScalarOnly:
    """Proxy hiding a backend's batch entry points, forcing the
    per-cell reference path through the runner."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        if name.endswith("_batch"):
            raise AttributeError(name)
        return getattr(self._inner, name)

    @property
    def gpu_transfers(self):
        return self._inner.gpu_transfers

    @property
    def has_gpu(self):
        return self._inner.has_gpu


def _table3_config() -> RunConfig:
    return RunConfig(
        min_dim=1,
        max_dim=4096,
        step=8,
        iterations=8,
        kernels=(Kernel.GEMM, Kernel.GEMV),
        problem_idents=("square",),
    )


def _cell_count(result) -> int:
    return sum(len(series.all_samples()) for series in result.series)


def measure() -> dict:
    config = _table3_config()
    backend = backend_for(SYSTEM)

    def timed(run):
        """Best wall time of ``ROUNDS`` repeats after one warmup: the
        sweep is deterministic, so the minimum is the least-noisy
        estimate of its cost.  The warmup also spawns the warm worker
        pool, so the timed parallel rounds measure steady-state reuse
        — exactly what campaigns and the serving daemon see."""
        result = run()
        best = float("inf")
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            result = run()
            best = min(best, time.perf_counter() - t0)
        return result, best

    serial_result, serial_s = timed(
        lambda: run_sweep(_ScalarOnly(backend), config, SYSTEM)
    )
    vector_result, vector_s = timed(
        lambda: run_sweep(backend, config, SYSTEM)
    )
    assert vector_result.series == serial_result.series, (
        "vectorized sweep diverged from the scalar reference"
    )

    cells = _cell_count(serial_result)
    scaling = []
    for jobs in PARALLEL_JOBS:
        workerpool.shutdown_all()
        workerpool.reset_stats()
        par_result, par_s = timed(
            lambda jobs=jobs: run_sweep(backend, config, SYSTEM, jobs=jobs)
        )
        pool = workerpool.pool_stats()
        assert par_result.series == serial_result.series, (
            f"jobs={jobs} sweep diverged from the scalar reference"
        )
        scaling.append({
            "mode": f"vectorized+jobs={jobs}",
            "jobs": jobs,
            "seconds": par_s,
            "cells_per_s": cells / par_s,
            "speedup_vs_serial": serial_s / par_s,
            # warm-pool telemetry over the 1 warmup + ROUNDS timed
            # sweeps: one spawn, the rest reuse, zero pickle fallbacks
            "pool_warm_reuse": pool["reuses"],
            "pool_spawns": pool["spawns"],
            "shard_bytes_transferred": pool["shm_bytes"],
            "pickle_fallbacks": pool["pickle_fallbacks"],
        })
    workerpool.shutdown_all()

    return {
        "config": {
            "system": SYSTEM,
            "problem": "gemm:square+gemv:square",
            "min_dim": config.min_dim,
            "max_dim": config.max_dim,
            "step": config.step,
            "iterations": config.iterations,
            "cells": cells,
        },
        "serial": {"seconds": serial_s, "cells_per_s": cells / serial_s},
        "vectorized": {
            "seconds": vector_s,
            "cells_per_s": cells / vector_s,
            "speedup_vs_serial": serial_s / vector_s,
        },
        "parallel": scaling,
    }


def report(data: dict) -> str:
    lines = [
        f"sweep throughput — {data['config']['system']} "
        f"{data['config']['problem']}, {data['config']['cells']} cells",
        f"  serial-scalar      : {data['serial']['cells_per_s']:10.0f} cells/s",
        f"  vectorized         : "
        f"{data['vectorized']['cells_per_s']:10.0f} cells/s"
        f"  ({data['vectorized']['speedup_vs_serial']:.1f}x)",
    ]
    for row in data["parallel"]:
        lines.append(
            f"  {row['mode']:<19}: {row['cells_per_s']:10.0f} cells/s"
            f"  ({row['speedup_vs_serial']:.1f}x, "
            f"{row['pool_warm_reuse']} warm reuse(s), "
            f"{row['shard_bytes_transferred']} shm bytes)"
        )
    return "\n".join(lines)


def write_json(data: dict) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "BENCH_sweep_throughput.json"
    path.write_text(json.dumps(data, indent=2) + "\n")


def _jobs4_speedup(data: dict) -> float:
    return max(
        row["speedup_vs_serial"]
        for row in data["parallel"]
        if row["jobs"] == max(PARALLEL_JOBS)
    )


def test_sweep_throughput(benchmark):
    data = run_once(benchmark, measure)
    write_json(data)
    print("\n" + report(data))
    assert data["vectorized"]["speedup_vs_serial"] >= SPEEDUP_FLOOR
    assert _jobs4_speedup(data) >= PARALLEL_FLOOR


def main(argv=None) -> int:
    check = "--check" in (argv if argv is not None else sys.argv[1:])
    data = measure()
    write_json(data)
    print(report(data))
    failed = False
    speedup = data["vectorized"]["speedup_vs_serial"]
    if check and speedup < SPEEDUP_FLOOR:
        print(
            f"FAIL: vectorized speedup {speedup:.1f}x is below the "
            f"{SPEEDUP_FLOOR:.0f}x floor",
            file=sys.stderr,
        )
        failed = True
    parallel = _jobs4_speedup(data)
    if check and parallel < PARALLEL_FLOOR:
        print(
            f"FAIL: vectorized+jobs={max(PARALLEL_JOBS)} speedup "
            f"{parallel:.1f}x is below the {PARALLEL_FLOOR:.0f}x floor",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
