"""Chaos resilience — sweeps under a seeded fault plan stay trustworthy.

Runs the same LUMI sweep three ways: clean, under an aggressive seeded
fault plan with retries enabled, and chaos checkpointed-then-resumed
through the JSONL journal.  The fault plan mixes raising faults (kernel
failures, DMA errors) with hangs; the retry policy's per-sample deadline
converts hangs into timeouts, so every sample the chaos sweep *keeps*
carries clean timing and its surviving thresholds can be held against
the clean sweep.  Reports retry/quarantine counts and threshold
agreement under ``results/chaos_resilience/``.
"""

from __future__ import annotations

import tempfile
import warnings
from pathlib import Path

from harness import run_once, write_csv_rows, write_text
from repro.backends.simulated import AnalyticBackend
from repro.core.config import RunConfig
from repro.core.runner import RetryPolicy, run_sweep
from repro.errors import PartialSweepWarning
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.systems.catalog import make_model
from repro.types import Precision

CFG = RunConfig(min_dim=1, max_dim=2048, iterations=8, step=16,
                precisions=(Precision.SINGLE,),
                problem_idents=("square",))
# Raising faults plus hangs; no ECC, so kept samples keep exact timings
# and surviving thresholds are comparable against the clean sweep.
PLAN = FaultPlan(seed=2024, rates={
    FaultKind.KERNEL: 0.25,
    FaultKind.TRANSFER: 0.25,
    FaultKind.HANG: 0.25,
}, hang_s=30.0)
RETRY = RetryPolicy(max_retries=3, sample_timeout_s=10.0)


def _chaos_backend():
    return FaultInjector(AnalyticBackend(make_model("lumi")), PLAN)


def _run_all():
    clean = run_sweep(AnalyticBackend(make_model("lumi")), CFG)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", PartialSweepWarning)
        chaos = run_sweep(_chaos_backend(), CFG, retry=RETRY)
        with tempfile.TemporaryDirectory() as td:
            ck = Path(td) / "ck.jsonl"
            # journal a full run, then resume it — a maximal replay
            run_sweep(_chaos_backend(), CFG, retry=RETRY, checkpoint=ck)
            resumed = run_sweep(_chaos_backend(), CFG, retry=RETRY,
                                checkpoint=ck, resume=True)
    return clean, chaos, resumed


def test_chaos_resilience(benchmark):
    clean, chaos, resumed = run_once(benchmark, _run_all)

    # resume identity: the journaled replay equals the straight-through run
    assert resumed.series == chaos.series
    assert resumed.quarantine == chaos.quarantine

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", PartialSweepWarning)
        clean_thr = clean.thresholds()
        chaos_thr = chaos.thresholds()
    step = CFG.step
    found = {k for k, v in chaos_thr.items() if v.found}
    agree = {
        k for k in found
        if clean_thr[k].found
        and abs(chaos_thr[k].dims.m - clean_thr[k].dims.m) <= 2 * step
    }

    cells = sum(len(s.all_samples()) for s in chaos.series)
    total = sum(len(s.all_samples()) for s in clean.series)
    print(
        f"\nchaos sweep: {cells}/{total} cells kept, "
        f"{len(chaos.quarantine)} quarantined, "
        f"{chaos.stats.retries} retries "
        f"({chaos.stats.backoff_s:.1f}s simulated backoff); "
        f"{len(agree)}/{len(found)} thresholds within {2 * step} of clean"
    )
    write_csv_rows("chaos_resilience", "summary.csv", [
        ["cells_kept", "cells_total", "quarantined", "retries",
         "backoff_s", "thresholds_found", "thresholds_agree"],
        [str(cells), str(total), str(len(chaos.quarantine)),
         str(chaos.stats.retries), f"{chaos.stats.backoff_s:.3f}",
         str(len(found)), str(len(agree))],
    ])
    write_csv_rows("chaos_resilience", "thresholds.csv", [
        ["blas", "ident", "transfer", "clean", "chaos"],
        *[
            [k[0], k[1], k[2].value, str(clean_thr[k]), str(chaos_thr[k])]
            for k in sorted(chaos_thr, key=lambda k: (k[0], k[1], k[2].value))
        ],
    ])
    write_text("chaos_resilience", "quarantine.txt", "\n".join(
        str(e) for e in chaos.quarantine
    ) or "(empty)")

    # chaos never crashes the sweep: every cell is kept or quarantined
    assert cells + len(chaos.quarantine) == total
    assert chaos.stats.retries > 0
    # the fault rate is high enough that some cells do get quarantined...
    assert chaos.quarantine
    # ...yet every surviving threshold stays faithful to the clean sweep
    assert found and agree == found
