"""Fig. 5 — square SGEMV performance (128 iterations), Isambard vs DAWN.

The paper contrasts Isambard's *steep* Transfer-Once/USM curves (the
GH200's NVLink-C2C feeds memory-bound kernels well) with DAWN's shallow,
slowly-rising GPU curves — which is why Isambard's GEMV threshold sits at
~256 while DAWN's is pinned near the top of the sweep.
"""

from __future__ import annotations

from harness import run_once, sweep, write_csv_rows
from repro.analysis.graphs import ascii_plot, gpu_curve, performance_curves
from repro.core.threshold import threshold_for_series
from repro.types import Kernel, Precision, TransferType


def test_fig5_square_sgemv_128_iterations(benchmark):
    def build():
        out = {}
        for system in ("isambard-ai", "dawn"):
            run = sweep(system, 128, problem_idents=("square",),
                        kernels=(Kernel.GEMV,))
            out[system] = run.series_for(Kernel.GEMV, "square",
                                         Precision.SINGLE)
        return out

    series_by_system = run_once(benchmark, build)

    for system, series in series_by_system.items():
        curves = performance_curves(
            series, title=f"Fig. 5: {system} square SGEMV, 128 iterations"
        )
        write_csv_rows("fig5", f"{system}_sgemv_128iter.csv",
                       curves.to_csv_rows())
        print("\n" + ascii_plot(curves))

    isam = series_by_system["isambard-ai"]
    dawn = series_by_system["dawn"]

    # Steep vs shallow: at the top of the sweep Isambard's Transfer-Once
    # GEMV throughput towers over DAWN's (HBM3 behind NVLink-C2C vs a
    # PCIe-fed tile).
    def top(series):
        curve = gpu_curve(series, TransferType.ONCE)
        return curve.gflops[-1]

    assert top(isam) > 2.0 * top(dawn)

    # Threshold contrast: Isambard near the 256 NVPL drop; DAWN near the
    # LLC boundary (~4089).
    r_isam = threshold_for_series(isam, TransferType.ONCE)
    r_dawn = threshold_for_series(dawn, TransferType.ONCE)
    assert r_isam.found and r_isam.dims.m <= 320
    assert r_dawn.found and r_dawn.dims.m > 2800
