"""Table V — iteration count at which each non-square GEMM problem type
first yields a Transfer-Once offload threshold.

Headline structure: Isambard yields at one iteration for every type
except {M=N, K=32}; on DAWN the fixed-32 types (lowest arithmetic
intensity) never yield while the 16:1 ratio types yield at one
iteration; LUMI needs more re-use than Isambard on most types.
"""

from __future__ import annotations

from harness import SYSTEMS, run_once, sweep_all_iterations, write_text
from repro.core.problem import NONSQUARE_GEMM_TYPES
from repro.core.tables import first_threshold_iteration, render_table
from repro.types import ALL_PRECISIONS, Kernel, Precision

IDENTS = tuple(pt.ident for pt in NONSQUARE_GEMM_TYPES)


def test_table5_nonsquare_gemm(benchmark):
    def build():
        return {
            system: sweep_all_iterations(system, problem_idents=IDENTS,
                                         kernels=(Kernel.GEMM,))
            for system in SYSTEMS
        }

    all_runs = run_once(benchmark, build)

    first: dict[tuple[str, str, Precision], int | None] = {}
    rows = []
    for pt in NONSQUARE_GEMM_TYPES:
        row = [pt.name]
        for system in SYSTEMS:
            cells = []
            for precision in (Precision.SINGLE, Precision.DOUBLE):
                it = first_threshold_iteration(
                    all_runs[system], Kernel.GEMM, pt.ident, precision
                )
                first[(system, pt.ident, precision)] = it
                cells.append("—" if it is None else str(it))
            row.append(" : ".join(cells))
        rows.append(row)
    table = render_table(
        ["Problem Type"] + list(SYSTEMS), rows,
        title="Table V: first Transfer-Once threshold iteration (S : D)",
    )
    print("\n" + table)
    write_text("table5", "nonsquare_gemm_first_threshold.txt", table)

    # Isambard: one iteration everywhere except {M=N, K=32} (8 iters).
    for pt in NONSQUARE_GEMM_TYPES:
        expected = 8 if pt.ident == "mn_k32" else 1
        for precision in ALL_PRECISIONS:
            assert first[("isambard-ai", pt.ident, precision)] == expected, \
                (pt.ident, precision)

    # DAWN: fixed-32 problem types never produce a threshold.
    for ident in ("mn32_k", "kn32_m", "mk32_n"):
        for precision in ALL_PRECISIONS:
            assert first[("dawn", ident, precision)] is None

    # DAWN: the 16:1 ratio types yield with little or no re-use.
    for ident in ("mn_k16m", "mn_m16k"):
        assert first[("dawn", ident, Precision.DOUBLE)] == 1

    # {M=N, K=16M} yields at one iteration on all three systems (§IV-C).
    for system in SYSTEMS:
        assert first[(system, "mn_k16m", Precision.DOUBLE)] == 1

    # LUMI: every non-square type eventually yields a threshold.
    for pt in NONSQUARE_GEMM_TYPES:
        assert first[("lumi", pt.ident, Precision.SINGLE)] is not None
