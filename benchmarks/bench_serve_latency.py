"""Serving-daemon latency under a bursty open-loop trace.

Starts the ``repro.serve`` daemon in-process on an ephemeral port and
replays a seeded trace of threshold queries against it: mostly *hot*
keys (a small pool of repeated configurations the cache absorbs) mixed
with *cold* keys (unique configurations that each force one sweep),
issued in bursts by ``--concurrency`` open-loop senders that fire at
scheduled arrival times whether or not earlier responses are back.

Reports client-side p50/p99 latency split by hot/cold, end-to-end
throughput, and the daemon's own ``/metrics`` view (hit rate, coalesced
jobs, sweeps executed).  Writes ``results/BENCH_serve_latency.json``.
Runnable standalone::

    PYTHONPATH=src:benchmarks python benchmarks/bench_serve_latency.py
    PYTHONPATH=src:benchmarks python benchmarks/bench_serve_latency.py --check

``--check`` exits non-zero unless the daemon's hit rate clears
``HIT_RATE_FLOOR`` and a warm ``include_series`` response is
byte-identical to the CSV the sweep writer produces for the same
configuration (the serving contract: the API is the CSV, served hot).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import tempfile
import time
from pathlib import Path

from harness import RESULTS_DIR, run_once
from repro.backends import make_backend
from repro.core.config import RunConfig
from repro.core.csvio import write_series
from repro.core.runner import run_sweep
from repro.serve.client import ServeClient
from repro.serve.service import ServeConfig, start_server
from repro.types import Kernel, Precision

SYSTEM = "dawn"
SEED = 20260808
#: daemon-level cache hit-rate floor for --check (the trace is ~80%
#: hot traffic over a handful of keys; measured rates sit near 0.75)
HIT_RATE_FLOOR = 0.5

#: the hot pool: few configurations, queried over and over
HOT_BODIES = [
    {"system": "dawn", "kernel": "gemm", "problem": "square",
     "precision": "single", "iterations": 8, "paradigm": "once",
     "min_dim": 1, "max_dim": 96, "step": 16},
    {"system": "dawn", "kernel": "gemm", "problem": "square",
     "precision": "double", "iterations": 8, "paradigm": "always",
     "min_dim": 1, "max_dim": 96, "step": 16},
    {"system": "lumi", "kernel": "gemv", "problem": "square",
     "precision": "single", "iterations": 4, "paradigm": "once",
     "min_dim": 1, "max_dim": 96, "step": 16},
    {"system": "isambard-ai", "kernel": "gemm", "problem": "mn_k32",
     "precision": "single", "iterations": 8, "paradigm": "unified",
     "min_dim": 1, "max_dim": 96, "step": 16},
]


def _cold_body(index: int) -> dict:
    """A unique configuration: every cold request is a forced miss."""
    return {
        "system": ("dawn", "lumi", "isambard-ai")[index % 3],
        "kernel": "gemm",
        "problem": "square",
        "precision": "single",
        "iterations": 8,
        "paradigm": "once",
        "min_dim": 1,
        "max_dim": 64 + 8 * index,
        "step": 16,
    }


def build_trace(requests: int, hot_fraction: float, rng: random.Random):
    """The open-loop schedule: ``(arrival_s, kind, body)`` tuples in
    bursts of 4–12 back-to-back requests separated by short gaps."""
    trace = []
    arrival = 0.0
    cold_index = 0
    emitted = 0
    while emitted < requests:
        burst = min(rng.randint(4, 12), requests - emitted)
        for _ in range(burst):
            if rng.random() < hot_fraction:
                kind, body = "hot", rng.choice(HOT_BODIES)
            else:
                kind, body = "cold", _cold_body(cold_index)
                cold_index += 1
            trace.append((arrival, kind, body))
            emitted += 1
        arrival += rng.uniform(0.01, 0.05)
    return trace


def _percentile(samples, q: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def _latency_block(samples) -> dict:
    return {
        "count": len(samples),
        "p50_ms": round(_percentile(samples, 0.50) * 1e3, 4),
        "p99_ms": round(_percentile(samples, 0.99) * 1e3, 4),
        "max_ms": round(max(samples) * 1e3, 4) if samples else 0.0,
    }


async def _replay(handle, trace, concurrency: int) -> dict:
    """Open-loop senders: each worker fires its slice of the schedule
    at the planned arrival times, never waiting for other workers."""
    latencies = {"hot": [], "cold": []}
    failures = []
    start = time.perf_counter()

    async def worker(slot: int):
        client = ServeClient(handle.host, handle.port)
        try:
            for arrival, kind, body in trace[slot::concurrency]:
                delay = arrival - (time.perf_counter() - start)
                if delay > 0:
                    await asyncio.sleep(delay)
                t0 = time.perf_counter()
                response = await client.post("/v1/threshold", body)
                latency = time.perf_counter() - t0
                if response.status == 200:
                    latencies[kind].append(latency)
                else:
                    failures.append(response.status)
        finally:
            await client.close()

    await asyncio.gather(*(worker(slot) for slot in range(concurrency)))
    elapsed = time.perf_counter() - start

    status, metrics = await _fetch_metrics(handle)
    assert status == 200
    completed = len(latencies["hot"]) + len(latencies["cold"])
    return {
        "elapsed_s": round(elapsed, 4),
        "completed": completed,
        "failed": len(failures),
        "throughput_rps": round(completed / elapsed, 2),
        "latency": {
            "hot": _latency_block(latencies["hot"]),
            "cold": _latency_block(latencies["cold"]),
            "all": _latency_block(latencies["hot"] + latencies["cold"]),
        },
        "hit_rate": metrics["cache"]["hit_rate"],
        "server": {
            "cache": metrics["cache"],
            "jobs": metrics["jobs"],
            "threshold_latency": metrics["latency"].get("threshold"),
        },
    }


async def _fetch_metrics(handle):
    client = ServeClient(handle.host, handle.port)
    try:
        response = await client.get("/metrics")
        return response.status, response.json()
    finally:
        await client.close()


async def _verify_byte_identity(handle, cache_dir: Path) -> None:
    """A warm API response must be the CSV, byte for byte."""
    body = dict(HOT_BODIES[0], include_series=True)
    client = ServeClient(handle.host, handle.port)
    try:
        response = await client.post("/v1/threshold", body)
    finally:
        await client.close()
    assert response.status == 200, response.body
    payload = response.json()
    assert payload["cache"]["hit"] is True, "trace should have warmed this key"
    series_payload = payload["series"]

    backend = make_backend("analytic", system=body["system"])
    config = RunConfig(
        min_dim=body["min_dim"], max_dim=body["max_dim"],
        iterations=body["iterations"], step=body["step"],
        kernels=(Kernel(body["kernel"]),),
        problem_idents=(body["problem"],),
        precisions=(Precision(body["precision"]),),
    )
    result = run_sweep(
        backend, config, system_name=body["system"], cache_dir=cache_dir
    )
    assert result.cache_hit, "the reference sweep should replay from cache"
    (series,) = result.series
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = write_series(series, Path(tmp) / series_payload["filename"])
        expected = csv_path.read_bytes()
    lines = [",".join(series_payload["fieldnames"])]
    lines += [
        ",".join(row[name] for name in series_payload["fieldnames"])
        for row in series_payload["rows"]
    ]
    rebuilt = ("\r\n".join(lines) + "\r\n").encode()
    assert rebuilt == expected, "API series diverged from the CSV bytes"


async def _measure_async(requests: int, concurrency: int,
                         hot_fraction: float) -> dict:
    rng = random.Random(SEED)
    trace = build_trace(requests, hot_fraction, rng)
    with tempfile.TemporaryDirectory() as cache_dir:
        handle = await start_server(
            ServeConfig(port=0, cache_dir=cache_dir, workers=2)
        )
        try:
            data = await _replay(handle, trace, concurrency)
            await _verify_byte_identity(handle, Path(cache_dir))
        finally:
            await handle.drain(30.0)
    data["config"] = {
        "system_pool": sorted({b["system"] for b in HOT_BODIES}),
        "requests": requests,
        "concurrency": concurrency,
        "hot_fraction": hot_fraction,
        "hot_keys": len(HOT_BODIES),
        "seed": SEED,
    }
    return data


def measure(requests: int = 200, concurrency: int = 8,
            hot_fraction: float = 0.8) -> dict:
    return asyncio.run(_measure_async(requests, concurrency, hot_fraction))


def report(data: dict) -> str:
    config = data["config"]
    hot, cold = data["latency"]["hot"], data["latency"]["cold"]
    return "\n".join([
        f"serve latency — {config['requests']} requests, "
        f"{config['concurrency']} senders, "
        f"{config['hot_fraction']:.0%} hot over {config['hot_keys']} keys",
        f"  throughput : {data['throughput_rps']:8.1f} req/s "
        f"({data['completed']} ok, {data['failed']} failed)",
        f"  hit rate   : {data['hit_rate']:8.3f}",
        f"  hot  p50   : {hot['p50_ms']:8.2f} ms   p99: "
        f"{hot['p99_ms']:8.2f} ms",
        f"  cold p50   : {cold['p50_ms']:8.2f} ms   p99: "
        f"{cold['p99_ms']:8.2f} ms",
        f"  coalesced  : {data['server']['cache']['coalesced']:8d} "
        f"(sweeps executed: {data['server']['jobs']['sweeps_executed']})",
    ])


def write_json(data: dict) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "BENCH_serve_latency.json"
    path.write_text(json.dumps(data, indent=2) + "\n")


def test_serve_latency(benchmark):
    data = run_once(benchmark, lambda: measure(requests=120, concurrency=6))
    write_json(data)
    print("\n" + report(data))
    assert data["failed"] == 0
    assert data["hit_rate"] >= HIT_RATE_FLOOR


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--hot-fraction", type=float, default=0.8)
    parser.add_argument(
        "--check", action="store_true",
        help=f"fail unless hit rate >= {HIT_RATE_FLOOR} and the warm "
        "series payload is byte-identical to its CSV",
    )
    args = parser.parse_args(argv)
    data = measure(args.requests, args.concurrency, args.hot_fraction)
    write_json(data)
    print(report(data))
    if args.check:
        if data["failed"]:
            print(f"FAIL: {data['failed']} request(s) failed", file=sys.stderr)
            return 1
        if data["hit_rate"] < HIT_RATE_FLOOR:
            print(
                f"FAIL: hit rate {data['hit_rate']:.3f} is below the "
                f"{HIT_RATE_FLOOR} floor",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
