"""Fig. 2 — square SGEMM performance (1 iteration) on DAWN.

Regenerates the CPU and GPU (three transfer types) GFLOP/s curves and
checks the feature the paper highlights: a sharp CPU performance drop at
{629, 629, 629} that is gradually recovered from — without which the
1-iteration offload thresholds "would have likely been much higher".
"""

from __future__ import annotations

from harness import run_once, sweep, write_csv_rows, write_text
from repro.analysis.graphs import ascii_plot, cpu_curve, performance_curves
from repro.types import Kernel, Precision


def test_fig2_dawn_sgemm_curves(benchmark):
    def build():
        run = sweep("dawn", 1, problem_idents=("square",),
                    kernels=(Kernel.GEMM,), step=4)
        return run.series_for(Kernel.GEMM, "square", Precision.SINGLE)

    series = run_once(benchmark, build)
    curves = performance_curves(series, title="Fig. 2: DAWN square SGEMM, 1 iteration")
    write_csv_rows("fig2", "dawn_sgemm_1iter.csv", curves.to_csv_rows())
    plot = ascii_plot(curves)
    write_text("fig2", "dawn_sgemm_1iter.txt", plot)
    print("\n" + plot)

    cpu = cpu_curve(series)
    by_size = dict(zip(cpu.sizes, cpu.gflops))

    def at(size: int) -> float:
        key = min(by_size, key=lambda s: abs(s - size))
        return by_size[key]

    # The 629 cliff: performance halves overnight...
    assert at(629) < 0.55 * at(625)
    # ...and recovers gradually (monotone improvement through the dip).
    assert at(629) < at(900) < at(1400)
    # Before the drop the CPU beats every GPU transfer type.
    for transfer_curve in curves.curves[1:]:
        gpu_at_500 = dict(zip(transfer_curve.sizes,
                              transfer_curve.gflops))
        key = min(gpu_at_500, key=lambda s: abs(s - 500))
        assert gpu_at_500[key] < at(500)
