"""Extension — energy offload thresholds (motivated by Favaro et al., §II).

For each system, compares the paper's runtime offload threshold against
the *energy* offload threshold on square SGEMM with moderate re-use, and
reports the window where the GPU is slower yet greener.
"""

from __future__ import annotations

from harness import SYSTEMS, run_once, write_csv_rows
from repro.analysis.energy import EnergyModel, profile_for
from repro.systems.catalog import make_model
from repro.types import Dims, Precision, TransferType

ITERATIONS = 8
P = Precision.SINGLE


def _experiment():
    out = {}
    for system in SYSTEMS:
        energy_model = EnergyModel(make_model(system), profile_for(system))
        time_thr = energy_model.time_offload_threshold(P, ITERATIONS)
        energy_thr = energy_model.energy_offload_threshold(P, ITERATIONS)
        # Efficiency at a mid-size problem for the summary row.
        mid = Dims(2048, 2048, 2048)
        cpu_jpg = energy_model.energy_per_gflop(mid, P, ITERATIONS)
        gpu_jpg = energy_model.energy_per_gflop(
            mid, P, ITERATIONS, TransferType.ONCE
        )
        out[system] = (time_thr, energy_thr, cpu_jpg, gpu_jpg)
    return out


def test_ext_energy_thresholds(benchmark):
    data = run_once(benchmark, _experiment)

    print("\nRuntime vs energy offload thresholds "
          f"(square SGEMM, Transfer-Once, {ITERATIONS} iterations):")
    rows = [["system", "time_threshold", "energy_threshold",
             "cpu_J_per_GFLOP@2048", "gpu_J_per_GFLOP@2048"]]
    for system in SYSTEMS:
        time_thr, energy_thr, cpu_jpg, gpu_jpg = data[system]
        t_cell = str(time_thr.dims.m) if time_thr.found else "—"
        e_cell = str(energy_thr.dims.m) if energy_thr.found else "—"
        print(f"  {system:12s} time {t_cell:>5s} | energy {e_cell:>5s} | "
              f"J/GFLOP cpu {cpu_jpg:7.4f} gpu {gpu_jpg:7.4f}")
        rows.append([system, t_cell, e_cell,
                     f"{cpu_jpg:.5f}", f"{gpu_jpg:.5f}"])
    write_csv_rows("ext_energy", "thresholds.csv", rows)

    for system in SYSTEMS:
        time_thr, energy_thr, cpu_jpg, gpu_jpg = data[system]
        assert time_thr.found and energy_thr.found
        # At scale the GPU is the more efficient device everywhere.
        assert gpu_jpg < cpu_jpg

    # On the discrete systems the efficiency advantage arrives no later
    # than the speed advantage (a slower-but-greener window can exist)...
    for system in ("dawn", "lumi"):
        time_thr, energy_thr, *_ = data[system]
        assert energy_thr.dims.m <= time_thr.dims.m
    dawn_time, dawn_energy, *_ = data["dawn"]
    assert dawn_energy.dims.m < dawn_time.dims.m
    # ...while on the GH200 the order flips: the GPU is already *faster*
    # at sizes where its 450 W draw still loses on energy.  Either way the
    # two thresholds nearly coincide on the SoC.
    isam_time, isam_energy, *_ = data["isambard-ai"]
    assert abs(isam_energy.dims.m - isam_time.dims.m) <= 32
