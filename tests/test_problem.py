"""Problem-type dimension relations (paper Table II)."""

from __future__ import annotations

import pytest

from repro.core.problem import (
    ALL_PROBLEM_TYPES,
    GEMM_PROBLEM_TYPES,
    GEMV_PROBLEM_TYPES,
    get_problem_type,
)
from repro.errors import UnknownProblemTypeError
from repro.types import Kernel


def test_square_gemm_all_dims_equal():
    pt = get_problem_type(Kernel.GEMM, "square")
    d = pt.dims_at(37)
    assert (d.m, d.n, d.k) == (37, 37, 37)


@pytest.mark.parametrize(
    "ident,relation",
    [
        ("mn_m16k", lambda d: d.m == d.n == 16 * d.k),
        ("mn_k16m", lambda d: d.m == d.n and d.k == 16 * d.m),
        ("mk_n16k", lambda d: d.m == d.k and d.n == 16 * d.k),
        ("kn_m16k", lambda d: d.n == d.k and d.m == 16 * d.k),
    ],
)
def test_ratio16_gemm_relations(ident, relation):
    pt = get_problem_type(Kernel.GEMM, ident)
    assert pt.ratio16
    for p in (1, 7, 256):
        assert relation(pt.dims_at(p))


@pytest.mark.parametrize(
    "ident,relation",
    [
        ("mn_k32", lambda d: d.m == d.n and d.k == 32),
        ("mn32_k", lambda d: d.m == d.n == 32),
        ("mk32_n", lambda d: d.m == d.k == 32),
        ("kn32_m", lambda d: d.n == d.k == 32),
    ],
)
def test_fixed32_gemm_relations(ident, relation):
    pt = get_problem_type(Kernel.GEMM, ident)
    for p in (1, 33, 4096):
        assert relation(pt.dims_at(p))


@pytest.mark.parametrize(
    "ident,relation",
    [
        ("square", lambda d: d.m == d.n),
        ("m16n", lambda d: d.m == 16 * d.n),
        ("n16m", lambda d: d.n == 16 * d.m),
        ("m32_n", lambda d: d.m == 32),
        ("n32_m", lambda d: d.n == 32),
    ],
)
def test_gemv_relations(ident, relation):
    pt = get_problem_type(Kernel.GEMV, ident)
    for p in (1, 100):
        d = pt.dims_at(p)
        assert not d.is_gemm and d.k == 0
        assert relation(d)


def test_ratio16_param_range_keeps_dims_in_bounds():
    for pt in ALL_PROBLEM_TYPES:
        if not pt.ratio16:
            continue
        params = pt.param_range(1, 4096)
        assert params
        largest = pt.dims_at(params[-1])
        assert largest.max_dim <= 4096
        # A ratio-16 type swept to d=4096 tops out at {4096, ..., 256}.
        assert largest.max_dim == 4096


def test_square_param_range_is_the_full_interval():
    pt = get_problem_type(Kernel.GEMM, "square")
    assert list(pt.param_range(3, 10)) == list(range(3, 11))


def test_dims_at_rejects_nonpositive_param():
    pt = get_problem_type(Kernel.GEMM, "square")
    with pytest.raises(ValueError):
        pt.dims_at(0)


def test_unknown_problem_type_raises():
    with pytest.raises(UnknownProblemTypeError):
        get_problem_type(Kernel.GEMM, "no_such_shape")
    # GEMM-only idents do not exist for GEMV.
    with pytest.raises(UnknownProblemTypeError):
        get_problem_type(Kernel.GEMV, "mn_k32")


def test_problem_family_partitions():
    assert all(t.kernel is Kernel.GEMM for t in GEMM_PROBLEM_TYPES)
    assert all(t.kernel is Kernel.GEMV for t in GEMV_PROBLEM_TYPES)
    idents = [(t.kernel, t.ident) for t in ALL_PROBLEM_TYPES]
    assert len(idents) == len(set(idents))
