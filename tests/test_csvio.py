"""CSV persistence round-trips (artifact-style outputs)."""

from __future__ import annotations

from repro.core.csvio import (
    FIELDNAMES,
    read_run_dir,
    read_samples,
    series_filename,
    write_run,
    write_series,
)
from repro.core.problem import get_problem_type
from repro.core.records import PerfSample, ProblemSeries
from repro.types import DeviceKind, Dims, Kernel, Precision, TransferType


def _series(iterations=8):
    series = ProblemSeries(
        problem_type=get_problem_type(Kernel.GEMM, "square"),
        precision=Precision.SINGLE,
        iterations=iterations,
    )
    for s in (16, 32, 64):
        dims = Dims(s, s, s)
        series.add(
            PerfSample.from_seconds(
                DeviceKind.CPU, None, dims, iterations, 1.5e-6 * s,
                checksum_ok=True,
            )
        )
        for transfer in (TransferType.ONCE, TransferType.ALWAYS):
            series.add(
                PerfSample.from_seconds(
                    DeviceKind.GPU, transfer, dims, iterations, 2.0e-6 * s
                )
            )
    return series


def test_series_filename_matches_artifact_convention():
    assert series_filename(_series(8)) == "sgemm_square_i8.csv"
    gemv = ProblemSeries(
        problem_type=get_problem_type(Kernel.GEMV, "n16m"),
        precision=Precision.DOUBLE,
        iterations=128,
    )
    assert series_filename(gemv) == "dgemv_n16m_i128.csv"


def test_write_read_series_round_trip_is_exact(tmp_path):
    series = _series()
    path = write_series(series, tmp_path / "s.csv")
    restored = read_samples(path)
    assert restored == series.samples  # exact: repr()-written floats


def test_round_trip_preserves_optional_fields(tmp_path):
    series = _series()
    restored = read_samples(write_series(series, tmp_path / "s.csv"))
    cpu = [r for r in restored if r.device is DeviceKind.CPU]
    gpu = [r for r in restored if r.device is DeviceKind.GPU]
    assert all(r.transfer is None and r.checksum_ok is True for r in cpu)
    assert all(r.transfer is not None and r.checksum_ok is None for r in gpu)


def test_csv_header_is_stable(tmp_path):
    path = write_series(_series(), tmp_path / "s.csv")
    header = path.read_text().splitlines()[0]
    assert header == ",".join(FIELDNAMES)


def test_write_run_and_read_run_dir(tmp_path):
    class FakeRun:
        series = [_series(1), _series(8)]

    paths = write_run(FakeRun(), tmp_path / "out")
    assert sorted(p.name for p in paths) == [
        "sgemm_square_i1.csv", "sgemm_square_i8.csv",
    ]
    table = read_run_dir(tmp_path / "out")
    assert set(table) == {"sgemm_square_i1", "sgemm_square_i8"}
    assert table["sgemm_square_i8"] == _series(8).samples


def test_gflops_consistent_with_seconds():
    sample = _series().samples[0]
    from repro.core.flops import flops_for

    expected = sample.iterations * flops_for(sample.dims) / sample.seconds / 1e9
    assert abs(sample.gflops - expected) < 1e-12 * expected
