"""Warm worker pool: reuse, respawn after death, clean exit teardown.

The pool in :mod:`repro.core.workerpool` outlives individual sweeps —
these tests pin the lifecycle contract: consecutive ``run_sweep`` calls
reuse one spawn, a worker death retires the pool and the next sweep
respawns it transparently (still bit-identical), and a process that
used the pool exits promptly without hanging in atexit joins.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from repro import AnalyticBackend, make_model, run_sweep
from repro.core import workerpool
from repro.core.config import RunConfig
from repro.core.csvio import write_run
from repro.types import Kernel

MODEL = make_model("dawn")
CONFIG = RunConfig(
    max_dim=96, step=16, iterations=8,
    kernels=(Kernel.GEMM, Kernel.GEMV), problem_idents=("square",),
)


def _csv_bytes(result, directory):
    return {p.name: p.read_bytes() for p in write_run(result, directory)}


def setup_function(_fn):
    # each test observes its own lifecycle counters from a cold pool
    workerpool.shutdown_all()
    workerpool.reset_stats()


def teardown_module(_module):
    workerpool.shutdown_all()


def test_pool_reused_across_sweeps(tmp_path):
    serial = run_sweep(AnalyticBackend(MODEL), CONFIG, "dawn")
    first = run_sweep(AnalyticBackend(MODEL), CONFIG, "dawn", jobs=2)
    second = run_sweep(AnalyticBackend(MODEL), CONFIG, "dawn", jobs=2)
    stats = workerpool.pool_stats()
    assert stats["spawns"] == 1
    assert stats["reuses"] >= 1
    assert stats["respawns"] == 0
    assert stats["shards_executed"] == 8  # 4 shards x 2 sweeps
    assert stats["pickle_fallbacks"] == 0
    assert stats["shm_bytes"] > 0
    assert first == serial and second == serial
    assert _csv_bytes(first, tmp_path / "a") == _csv_bytes(
        serial, tmp_path / "b"
    )


def test_worker_death_retries_and_respawns_warm_pool(tmp_path, monkeypatch):
    serial = run_sweep(AnalyticBackend(MODEL), CONFIG, "dawn")
    monkeypatch.setenv("REPRO_CHAOS_KILL_SHARD", "0")
    chaos = run_sweep(AnalyticBackend(MODEL), CONFIG, "dawn", jobs=2)
    assert chaos.complete
    assert chaos.stats.worker_retries >= 1
    monkeypatch.delenv("REPRO_CHAOS_KILL_SHARD")
    # the poisoned pool was retired; the next sweep respawns it warm
    # and keeps reusing it afterwards
    after = run_sweep(AnalyticBackend(MODEL), CONFIG, "dawn", jobs=2)
    stats = workerpool.pool_stats()
    assert stats["retired"] >= 1
    assert stats["respawns"] >= 1
    assert after == serial
    assert _csv_bytes(chaos, tmp_path / "a") == _csv_bytes(
        serial, tmp_path / "b"
    )
    assert _csv_bytes(after, tmp_path / "c") == _csv_bytes(
        serial, tmp_path / "d"
    )


def test_interpreter_exits_cleanly_with_live_pool():
    """A process that ran a parallel sweep and never shut the warm pool
    down must still exit promptly (the module's exit hook runs before
    concurrent.futures' join — a hang here would deadlock every CLI
    invocation that used jobs=N)."""
    src = Path(__file__).resolve().parent.parent / "src"
    script = (
        "from repro import AnalyticBackend, make_model, run_sweep\n"
        "from repro.core.config import RunConfig\n"
        "from repro.core import workerpool\n"
        "from repro.types import Kernel\n"
        "config = RunConfig(max_dim=64, step=16, iterations=4,\n"
        "                   kernels=(Kernel.GEMM,),\n"
        "                   problem_idents=('square',))\n"
        "run_sweep(AnalyticBackend(make_model('dawn')), config, 'dawn',\n"
        "          jobs=2)\n"
        "assert workerpool.pool_stats()['pools_alive'] == 1\n"
        "print('OK')\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, timeout=120,
        env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    assert "OK" in proc.stdout
