"""End-to-end engine behaviour: models, runner, thresholds, invariants.

Small strided sweeps keep this tier-1 fast while still exercising the
paper's qualitative structure.
"""

from __future__ import annotations

import pytest

from repro import (
    AnalyticBackend,
    Kernel,
    Precision,
    RunConfig,
    TransferType,
    make_model,
    run_sweep,
    system_names,
    threshold_for_series,
)
from repro.errors import DeferredFeatureError, UnknownSystemError


@pytest.fixture(scope="module")
def sweeps():
    """(system, iterations) -> RunResult for a fast strided square sweep."""
    out = {}
    for system in system_names():
        backend = AnalyticBackend(make_model(system))
        for i in (1, 128):
            out[(system, i)] = run_sweep(
                backend, RunConfig(max_dim=2048, iterations=i, step=16)
            )
    return out


def _thr(sweeps, system, i, kernel, precision, transfer):
    series = sweeps[(system, i)].series_for(kernel, "square", precision)
    return threshold_for_series(series, transfer)


def test_catalog_knows_the_three_paper_systems():
    assert {"dawn", "lumi", "isambard-ai"} <= set(system_names())


def test_unknown_system_raises():
    with pytest.raises(UnknownSystemError):
        make_model("frontier")


def test_run_sweep_produces_one_series_per_problem_and_precision(sweeps):
    result = sweeps[("dawn", 1)]
    # (GEMM square + GEMV square) x (single, double)
    assert len(result.series) == 4
    assert result.system_name == "dawn"
    for series in result.series:
        assert len(series.cpu_samples()) == len(series.sizes())
        for t in TransferType:
            assert len(series.gpu_samples(t)) == len(series.sizes())


def test_cpu_time_scales_with_work():
    from repro.types import Dims

    model = make_model("dawn")
    small = model.cpu_time(Dims(64, 64, 64), Precision.SINGLE)
    large = model.cpu_time(Dims(1024, 1024, 1024), Precision.SINGLE)
    assert 0 < small < large


def test_gpu_time_orders_transfers_at_high_reuse():
    from repro.types import Dims

    model = make_model("lumi")
    dims = Dims(1024, 1024, 1024)
    once = model.gpu_time(dims, Precision.SINGLE, 128, TransferType.ONCE)
    always = model.gpu_time(dims, Precision.SINGLE, 128, TransferType.ALWAYS)
    assert once < always  # re-sending operands every pass must cost more


# -- the paper's four qualitative invariants ------------------------------


@pytest.mark.parametrize("system", ("dawn", "lumi", "isambard-ai"))
def test_invariant_transfer_once_threshold_shrinks_with_reuse(sweeps, system):
    lo = _thr(sweeps, system, 1, Kernel.GEMM, Precision.SINGLE, TransferType.ONCE)
    hi = _thr(sweeps, system, 128, Kernel.GEMM, Precision.SINGLE, TransferType.ONCE)
    assert lo.found and hi.found
    assert hi.dims.m < lo.dims.m


@pytest.mark.parametrize("system", ("dawn", "lumi", "isambard-ai"))
def test_invariant_transfer_always_threshold_rises_with_reuse(sweeps, system):
    lo = _thr(sweeps, system, 1, Kernel.GEMM, Precision.SINGLE, TransferType.ALWAYS)
    hi = _thr(sweeps, system, 128, Kernel.GEMM, Precision.SINGLE, TransferType.ALWAYS)
    assert lo.found
    assert not hi.found or hi.dims.m > lo.dims.m


@pytest.mark.parametrize("system", ("dawn", "lumi", "isambard-ai"))
@pytest.mark.parametrize("precision", (Precision.SINGLE, Precision.DOUBLE))
def test_invariant_square_gemv_never_offloads_transfer_always(
    sweeps, system, precision
):
    for i in (1, 128):
        r = _thr(sweeps, system, i, Kernel.GEMV, precision, TransferType.ALWAYS)
        assert not r.found


@pytest.mark.parametrize("i", (1, 128))
def test_invariant_isambard_has_lowest_gemm_thresholds(sweeps, i):
    isam = _thr(sweeps, "isambard-ai", i, Kernel.GEMM, Precision.SINGLE,
                TransferType.ONCE)
    assert isam.found
    for other in ("dawn", "lumi"):
        r = _thr(sweeps, other, i, Kernel.GEMM, Precision.SINGLE,
                 TransferType.ONCE)
        assert not r.found or isam.dims.m <= r.dims.m


# -- deferred stubs -------------------------------------------------------


def test_deferred_modules_import_but_refuse_to_run():
    from repro.sim.multitile import MultiTileGpu
    from repro.sparse import SparseNodeModel, spmv_csr

    with pytest.raises(DeferredFeatureError):
        MultiTileGpu(None, None)
    with pytest.raises(DeferredFeatureError):
        SparseNodeModel(make_model("dawn"))
    with pytest.raises(DeferredFeatureError):
        spmv_csr(None, None, None)


def test_des_backend_is_no_longer_deferred():
    from repro.backends.simulated import DesBackend

    backend = DesBackend(make_model("dawn"))
    assert backend.has_gpu
    assert backend.system_name == "dawn"
