"""The resilient sweep loop: retries, quarantine, degradation, chaos.

The acceptance property of the fault-injection PR lives here: under
*any* seeded ``FaultPlan`` with retries enabled the sweep completes
without raising, every requested cell is accounted for (sampled,
quarantined, or lost with the device), and with faults disabled the
runner is bit-identical to the classic loop.
"""

from __future__ import annotations

import contextlib
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AnalyticBackend,
    DesBackend,
    FaultInjector,
    FaultKind,
    FaultPlan,
    Kernel,
    Precision,
    RetryPolicy,
    RunConfig,
    TransferType,
    make_model,
    run_sweep,
)
from repro.core.records import ProblemSeries
from repro.core.threshold import threshold_for_series
from repro.errors import ConfigError, PartialSweepWarning

MODEL = make_model("lumi")

#: 5 swept sizes x (1 CPU + 3 transfers) = 20 cells, one series.
CONFIG = RunConfig(
    max_dim=64, step=16, iterations=8,
    kernels=(Kernel.GEMM,), precisions=(Precision.SINGLE,),
)
N_PARAMS = 5
N_CELLS = N_PARAMS * (1 + len(CONFIG.transfers))


@contextlib.contextmanager
def chaos_ctx():
    """Chaos sweeps legitimately warn; keep test output quiet."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", PartialSweepWarning)
        yield


# -- classic behavior preserved --------------------------------------


def test_no_faults_identical_to_classic_loop():
    plain = run_sweep(AnalyticBackend(MODEL), CONFIG)
    zero = run_sweep(AnalyticBackend(MODEL), CONFIG, faults=FaultPlan(),
                     retry=RetryPolicy(max_retries=5))
    assert plain == zero
    assert plain.complete and not plain.quarantine


def test_retry_policy_validation():
    with pytest.raises(ConfigError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ConfigError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ConfigError):
        RetryPolicy(sample_timeout_s=0.0)
    with pytest.raises(ConfigError):
        RetryPolicy(backoff_factor=0.5)


def test_backoff_grows_exponentially_with_jitter():
    policy = RetryPolicy(backoff_base_s=1.0, backoff_factor=2.0, jitter=0.1)
    key = ("x",)
    waits = [policy.backoff_s(a, key) for a in (1, 2, 3)]
    for attempt, wait in zip((1, 2, 3), waits):
        base = 2.0 ** (attempt - 1)
        assert base * 0.9 <= wait <= base * 1.1
    assert waits[0] < waits[1] < waits[2]
    # deterministic
    assert waits == [policy.backoff_s(a, key) for a in (1, 2, 3)]


# -- retries and quarantine ------------------------------------------


def test_transient_faults_are_retried_to_success():
    plan = FaultPlan.uniform(0.3, seed=5)
    with chaos_ctx():
        result = run_sweep(
            AnalyticBackend(MODEL), CONFIG, faults=plan,
            retry=RetryPolicy(max_retries=10),
        )
    # 10 retries vs rate 0.3: every cell eventually lands
    assert sum(len(s.all_samples()) for s in result.series) == N_CELLS
    assert not result.quarantine
    assert result.stats.retries > 0
    assert result.stats.backoff_s > 0.0


def test_exhausted_retries_quarantine_not_crash():
    plan = FaultPlan(rates={FaultKind.KERNEL: 0.999}, seed=1)
    with pytest.warns(PartialSweepWarning):
        result = run_sweep(
            AnalyticBackend(MODEL), CONFIG, faults=plan,
            retry=RetryPolicy(max_retries=1),
        )
    assert len(result.quarantine) == N_CELLS
    assert all(e.attempts == 2 for e in result.quarantine)
    assert all(e.error == "TransientKernelError" for e in result.quarantine)
    assert all(s.partial for s in result.series)
    assert not result.complete
    report = result.quarantine_report()
    assert len(report) == N_CELLS and report[0]["error"] == "TransientKernelError"


def test_sample_timeout_enforced_and_retried():
    plan = FaultPlan(rates={FaultKind.HANG: 0.4}, seed=9, hang_s=100.0)
    with chaos_ctx():
        result = run_sweep(
            AnalyticBackend(MODEL), CONFIG, faults=plan,
            retry=RetryPolicy(max_retries=8, sample_timeout_s=50.0),
        )
    # hung attempts are retried until a clean draw; no sample may keep
    # the poisoned timing
    assert sum(len(s.all_samples()) for s in result.series) == N_CELLS
    for s in result.series:
        for sample in s.all_samples():
            assert sample.seconds < 50.0


# -- degradation ------------------------------------------------------


class _BrokenDes(DesBackend):
    """DES backend whose GPU engine dies with an unexpected error."""

    def gpu_sample(self, *args, **kwargs):
        raise RuntimeError("event heap corrupted")


def test_des_failure_falls_back_to_analytic():
    with pytest.warns(PartialSweepWarning, match="analytic fallback"):
        result = run_sweep(_BrokenDes(MODEL), CONFIG)
    assert result.degraded
    assert not result.quarantine
    # the fallback produced every GPU cell the DES engine could not
    assert sum(len(s.all_samples()) for s in result.series) == N_CELLS
    reference = run_sweep(AnalyticBackend(MODEL), CONFIG)
    gpu = result.series[0].gpu_samples(TransferType.ONCE)
    ref_gpu = reference.series[0].gpu_samples(TransferType.ONCE)
    assert gpu == ref_gpu


def test_unexpected_error_without_fallback_quarantines():
    class Broken(AnalyticBackend):
        def gpu_sample(self, *args, **kwargs):
            raise RuntimeError("boom")

    with pytest.warns(PartialSweepWarning):
        result = run_sweep(Broken(MODEL), CONFIG)
    assert not result.degraded
    assert len(result.quarantine) == N_PARAMS * len(CONFIG.transfers)
    assert all(e.error == "RuntimeError" for e in result.quarantine)
    assert len(result.series[0].cpu) == N_PARAMS


def test_device_loss_continues_cpu_only():
    plan = FaultPlan(rates={FaultKind.DEVICE_LOST: 0.999}, seed=2)
    # The loss emits TWO warnings — the CPU-only continuation and the
    # quarantined observing cell.  pytest.warns(..., match=) re-emits
    # non-matching warnings (which -W error would escalate), so capture
    # everything and assert on the set.
    with pytest.warns(PartialSweepWarning) as caught:
        result = run_sweep(
            AnalyticBackend(MODEL), CONFIG, faults=plan,
            retry=RetryPolicy(max_retries=2),
        )
    messages = [str(w.message) for w in caught]
    assert any("CPU-only" in m for m in messages)
    assert any("quarantined sweep cell" in m for m in messages)
    assert result.device_lost
    series = result.series[0]
    assert series.partial
    assert len(series.cpu) == N_PARAMS  # the CPU sweep is complete
    assert sum(len(v) for v in series.gpu.values()) == 0
    # exactly one quarantine entry: the cell that observed the loss
    assert len(result.quarantine) == 1
    assert result.quarantine[0].error == "DeviceLostError"


# -- partial-sweep visibility ----------------------------------------


def test_unsupported_transfers_warn_and_are_recorded():
    backend = AnalyticBackend(MODEL)
    backend.gpu_transfers = (TransferType.ONCE,)
    with pytest.warns(PartialSweepWarning, match="always, unified"):
        result = run_sweep(backend, CONFIG)
    assert result.skipped_transfers == (
        TransferType.ALWAYS, TransferType.UNIFIED,
    )
    assert not result.complete
    assert result.series[0].transfer_types() == (TransferType.ONCE,)
    # explicitly CPU-only sweeps are not "partial" and must not warn
    cpu_cfg = RunConfig(
        max_dim=64, step=16, iterations=8, kernels=(Kernel.GEMM,),
        precisions=(Precision.SINGLE,), gpu_enabled=False,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("error", PartialSweepWarning)
        cpu_only = run_sweep(AnalyticBackend(MODEL), cpu_cfg)
    assert cpu_only.skipped_transfers == ()


def test_threshold_warns_on_missing_samples_instead_of_keyerror():
    result = run_sweep(AnalyticBackend(MODEL), CONFIG)
    series = result.series[0]
    gappy = ProblemSeries(
        problem_type=series.problem_type,
        precision=series.precision,
        iterations=series.iterations,
        cpu=list(series.cpu),
        gpu={
            TransferType.ONCE: series.gpu_samples(TransferType.ONCE)[:-2]
        },
    )
    with pytest.warns(PartialSweepWarning, match="2 of 5 sizes"):
        gappy_result = threshold_for_series(gappy, TransferType.ONCE)
    full = threshold_for_series(series, TransferType.ONCE)
    # computed over the surviving pairs, not crashed
    assert isinstance(gappy_result.found, bool)
    assert full.found or not gappy_result.found


# -- the chaos acceptance property -----------------------------------


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    rate=st.floats(min_value=0.0, max_value=0.5),
)
def test_chaos_sweep_always_completes(seed, rate):
    """Under any seeded FaultPlan with retries enabled, run_sweep returns."""
    plan = FaultPlan.uniform(rate, seed=seed, device_lost_rate=rate / 20.0)
    backend = FaultInjector(AnalyticBackend(MODEL), plan)
    with chaos_ctx():
        result = run_sweep(
            backend, CONFIG,
            retry=RetryPolicy(max_retries=2, sample_timeout_s=20.0),
        )
        thresholds = result.thresholds()
    assert len(result.series) == 1
    sampled = sum(len(s.all_samples()) for s in result.series)
    if result.device_lost:
        assert sampled + len(result.quarantine) <= N_CELLS
        assert result.series[0].partial
    else:
        # every cell is accounted for: sampled or quarantined
        assert sampled + len(result.quarantine) == N_CELLS
    assert set(thresholds) <= {
        ("sgemm", "square", t) for t in TransferType
    }
    # determinism: the same plan replays to the same result
    with chaos_ctx():
        replay = run_sweep(
            FaultInjector(AnalyticBackend(MODEL), plan), CONFIG,
            retry=RetryPolicy(max_retries=2, sample_timeout_s=20.0),
        )
    assert replay == result
