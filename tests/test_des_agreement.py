"""Analytic-vs-DES agreement: the AB1 cross-check as tier-1 tests.

The two backends price commands from the same calibrated curves, so on
the single-stream schedules the runner issues they must agree — the
acceptance tolerance is 5%, the observed disagreement is float-sum
noise (~1e-14).  The hypothesis property drives random problem shapes,
precisions, re-use counts and paradigms through both paths.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ALL_PRECISIONS,
    PAPER_ITERATION_COUNTS,
    AnalyticBackend,
    DesBackend,
    Dims,
    Precision,
    RunConfig,
    TransferType,
    make_model,
    run_sweep,
)

#: Acceptance tolerance for analytic-vs-DES timing agreement.
AGREEMENT_RTOL = 0.05
#: What the exact-accounting DES actually achieves (float-sum noise).
EXACT_RTOL = 1e-9

SYSTEMS = ("dawn", "lumi", "isambard-ai")

_MODELS = {name: make_model(name) for name in SYSTEMS}
_ANALYTIC = {name: AnalyticBackend(model) for name, model in _MODELS.items()}
_DES = {name: DesBackend(model) for name, model in _MODELS.items()}


def _rel(a: float, b: float) -> float:
    return abs(a - b) / a


@st.composite
def problem_dims(draw):
    """Random GEMM or GEMV ProblemDims in the paper's sweep range."""
    m = draw(st.integers(min_value=1, max_value=2048))
    n = draw(st.integers(min_value=1, max_value=2048))
    k = draw(st.integers(min_value=0, max_value=2048))
    return Dims(m, n, k)


@settings(max_examples=60, deadline=None)
@given(
    dims=problem_dims(),
    system=st.sampled_from(SYSTEMS),
    precision=st.sampled_from(ALL_PRECISIONS),
    iterations=st.sampled_from(PAPER_ITERATION_COUNTS),
    transfer=st.sampled_from(tuple(TransferType)),
)
def test_property_random_problems_agree(dims, system, precision, iterations, transfer):
    analytic, des = _ANALYTIC[system], _DES[system]
    cpu_a = analytic.cpu_sample(None, dims, precision, iterations).seconds
    cpu_d = des.cpu_sample(None, dims, precision, iterations).seconds
    assert _rel(cpu_a, cpu_d) < EXACT_RTOL < AGREEMENT_RTOL
    gpu_a = analytic.gpu_sample(None, dims, precision, iterations, transfer).seconds
    gpu_d = des.gpu_sample(None, dims, precision, iterations, transfer).seconds
    assert _rel(gpu_a, gpu_d) < EXACT_RTOL < AGREEMENT_RTOL


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("ident", ("square",))
def test_des_runs_every_table_config(system, ident):
    """Every Table III/IV config (square GEMM + GEMV, S/D, the paper's
    five re-use counts, all three paradigms) through both backends."""
    worst = 0.0
    for iterations in PAPER_ITERATION_COUNTS:
        config = RunConfig(
            min_dim=1, max_dim=1024, iterations=iterations, step=128,
            problem_idents=(ident,),
        )
        analytic = run_sweep(_ANALYTIC[system], config, system_name=system)
        des = run_sweep(_DES[system], config, system_name=system)
        for series_a, series_d in zip(analytic.series, des.series):
            assert series_a.precision is series_d.precision
            for sample_a, sample_d in zip(
                series_a.all_samples(), series_d.all_samples()
            ):
                assert sample_a.dims == sample_d.dims
                assert sample_a.transfer == sample_d.transfer
                worst = max(worst, _rel(sample_a.seconds, sample_d.seconds))
    assert worst < AGREEMENT_RTOL
    assert worst < EXACT_RTOL


def test_des_backend_is_selectable_by_name():
    result = run_sweep(
        "des",
        RunConfig(min_dim=1, max_dim=64, iterations=1, step=16),
        system_name="lumi",
    )
    assert result.system_name == "lumi"
    assert len(result.series) == 4
    for series in result.series:
        assert series.transfer_types() == tuple(TransferType)


def test_des_thresholds_match_analytic_thresholds():
    """Same timings => the detected offload thresholds agree too."""
    config = RunConfig(min_dim=1, max_dim=2048, iterations=8, step=32)
    for system in SYSTEMS:
        analytic = run_sweep(_ANALYTIC[system], config, system_name=system)
        des = run_sweep(_DES[system], config, system_name=system)
        thr_a = analytic.thresholds()
        thr_d = des.thresholds()
        assert thr_a.keys() == thr_d.keys()
        for key, a in thr_a.items():
            d = thr_d[key]
            assert a.found == d.found, key
            if a.found:
                assert a.dims == d.dims, key


def test_des_keeps_traces_on_request():
    des = DesBackend(_MODELS["lumi"], keep_traces=True)
    des.gpu_sample(
        None, Dims(128, 128, 128), Precision.SINGLE, 4, TransferType.UNIFIED
    )
    assert len(des.traces) == 1
    dims, precision, transfer, trace = des.traces[0]
    kinds = {t.kind for t in trace}
    assert {"fault", "refresh", "kernel", "writeback"} <= kinds
    assert transfer is TransferType.UNIFIED
    assert precision is Precision.SINGLE and dims == Dims(128, 128, 128)
