"""``gpu-blob fsck``: artifact auditing and repair.

The acceptance bar: a *single flipped byte* in any journal record or
cache entry must be detected, and ``--repair`` must move the damage out
of the way (never silently drop it) so a re-audit comes back clean.
"""

from __future__ import annotations

import json

from repro import AnalyticBackend, RunConfig, make_model, run_sweep
from repro.core.csvio import write_run
from repro.core.fsck import (
    fsck_cache_entry,
    fsck_journal,
    fsck_paths,
    fsck_results_csv,
)
from repro.types import Kernel, Precision

CONFIG = RunConfig(
    max_dim=64, step=16, iterations=8,
    kernels=(Kernel.GEMM,), precisions=(Precision.SINGLE,),
)


def _backend():
    return AnalyticBackend(make_model("dawn"))


def _artifacts(tmp_path, cache=False, checkpoint=False, output=False):
    kwargs = {}
    if cache:
        kwargs["cache_dir"] = tmp_path / "cache"
    if checkpoint:
        kwargs["checkpoint"] = tmp_path / "ck.jsonl"
    result = run_sweep(_backend(), CONFIG, "dawn", **kwargs)
    if output:
        write_run(result, tmp_path / "out")
    return result


def _flip_byte(path, offset_from_end=10):
    blob = bytearray(path.read_bytes())
    blob[len(blob) - offset_from_end] ^= 0x01
    path.write_bytes(bytes(blob))


# -- journals ---------------------------------------------------------


def test_clean_journal_verifies(tmp_path):
    _artifacts(tmp_path, checkpoint=True)
    assert fsck_journal(tmp_path / "ck.jsonl") == []


def test_flipped_byte_in_any_journal_record_is_detected(tmp_path):
    _artifacts(tmp_path, checkpoint=True)
    pristine = (tmp_path / "ck.jsonl").read_text()
    n_lines = len(pristine.splitlines())
    assert n_lines > 3
    for line_no in range(1, n_lines + 1):
        lines = pristine.splitlines()
        target = bytearray(lines[line_no - 1].encode())
        target[len(target) // 2] ^= 0x01  # flip one bit mid-record
        lines[line_no - 1] = target.decode("latin-1")
        journal = tmp_path / "ck.jsonl"
        journal.write_text("\n".join(lines) + "\n")
        findings = fsck_journal(journal)
        assert findings, f"flip in line {line_no} went undetected"
        assert f"line {line_no}" in findings[0].problem


def test_journal_repair_rewrites_and_sidelines(tmp_path):
    _artifacts(tmp_path, checkpoint=True)
    journal = tmp_path / "ck.jsonl"
    lines = journal.read_text().splitlines()
    lines[2] = lines[2].replace(":", ";", 1)  # unparseable mid-file
    journal.write_text("\n".join(lines) + "\n")
    findings = fsck_journal(journal, repair=True)
    assert [f.repaired for f in findings] == [True]
    assert fsck_journal(journal) == []  # clean after repair
    sidecar = tmp_path / "ck.jsonl.bad"
    assert len(sidecar.read_text().splitlines()) == 1  # nothing dropped
    # the repaired journal is resumable: one cell re-runs, rest replay
    resumed = run_sweep(
        _backend(), CONFIG, "dawn", checkpoint=journal, resume=True
    )
    assert resumed.complete and resumed.stats.resumed_samples > 0


def test_torn_tail_is_reported_as_such(tmp_path):
    _artifacts(tmp_path, checkpoint=True)
    journal = tmp_path / "ck.jsonl"
    journal.write_text(journal.read_text()[:-20])
    findings = fsck_journal(journal)
    assert len(findings) == 1 and "torn" in findings[0].problem


def test_headerless_journal_is_not_repairable(tmp_path):
    journal = tmp_path / "ck.jsonl"
    journal.write_text("garbage\n")
    findings = fsck_journal(journal, repair=True)
    assert findings and not all(f.repaired for f in findings)


# -- cache entries ----------------------------------------------------


def test_flipped_byte_in_cache_entry_is_detected_and_quarantined(tmp_path):
    _artifacts(tmp_path, cache=True)
    (entry,) = (tmp_path / "cache").glob("*.json")
    _flip_byte(entry)
    findings = fsck_cache_entry(entry)
    assert findings and not findings[0].repaired
    findings = fsck_cache_entry(entry, repair=True)
    assert findings[0].repaired
    assert not entry.exists()
    assert (tmp_path / "cache" / "quarantine" / entry.name).exists()


# -- results CSVs -----------------------------------------------------


def test_results_csv_checks(tmp_path):
    _artifacts(tmp_path, output=True)
    (csv_path,) = (tmp_path / "out").glob("*.csv")
    assert fsck_results_csv(csv_path) == []
    text = csv_path.read_text()
    csv_path.write_text(text.replace("8,", "-8,", 1))  # negative field
    findings = fsck_results_csv(csv_path)
    assert findings
    # filename <-> content mismatch: rename to a different _iN suffix
    renamed = csv_path.with_name(csv_path.name.replace("_i8", "_i4"))
    csv_path.write_text(text)
    csv_path.replace(renamed)
    findings = fsck_results_csv(renamed)
    assert findings and "_i4" in findings[0].problem


# -- dispatcher + end-to-end ------------------------------------------


def test_fsck_paths_audits_a_whole_run_and_repairs(tmp_path):
    _artifacts(tmp_path, cache=True, checkpoint=False, output=True)
    _artifacts(tmp_path, checkpoint=True)
    targets = [tmp_path / "cache", tmp_path / "out", tmp_path / "ck.jsonl"]
    assert fsck_paths(targets) == []
    (entry,) = (tmp_path / "cache").glob("*.json")
    _flip_byte(entry)
    journal = tmp_path / "ck.jsonl"
    lines = journal.read_text().splitlines()
    lines[1] = json.dumps({"t": "sample", "cs": "forged"})
    journal.write_text("\n".join(lines) + "\n")
    findings = fsck_paths(targets)
    assert {f.kind for f in findings} == {"cache", "journal"}
    assert all(not f.repaired for f in findings)
    repaired = fsck_paths(targets, repair=True)
    assert repaired and all(f.repaired for f in repaired)
    assert fsck_paths(targets) == []


def test_missing_path_is_a_finding(tmp_path):
    findings = fsck_paths([tmp_path / "nope"])
    assert findings and "does not exist" in findings[0].problem
