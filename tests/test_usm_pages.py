"""Page-table residency accounting and closed-form convergence."""

from __future__ import annotations

import math

import pytest

from repro import AnalyticBackend, DesBackend, Dims, Precision, TransferType, make_model
from repro.sim.usm import PageTable
from repro.systems.specs import LinkSpec, UsmSpec

USM = UsmSpec()
LINK = LinkSpec(name="test-link", bw_gbs=50.0, latency_s=5e-6)


def test_quantized_residency_accounting():
    pt = PageTable(USM, LINK)
    plan = pt.fault_in(10 * USM.page_bytes + 1)  # spills into an 11th page
    assert plan.pages == 11
    assert plan.batches == 1  # 11 pages fit one 16-page fault batch
    assert plan.bytes_moved == 11 * USM.page_bytes
    assert pt.resident_pages == 11
    assert pt.resident_bytes == 11 * USM.page_bytes

    big = pt.fault_in(40 * USM.page_bytes)
    assert big.batches == math.ceil(40 / USM.pages_per_fault)
    assert pt.resident_pages == 51
    assert pt.faults_serviced == 1 + big.batches

    pt.writeback(3 * USM.page_bytes)
    assert pt.pages_written_back == 3
    assert pt.resident_pages == 51  # writeback migrates, doesn't evict

    freed = pt.release(7 * USM.page_bytes)
    assert freed == 7
    assert pt.resident_pages == 44


def test_refresh_prices_the_host_churn_fraction():
    pt = PageTable(USM, LINK)
    nbytes = 1000 * USM.page_bytes
    plan = pt.refresh(nbytes)
    assert plan.pages == math.ceil(USM.iter_refresh_fraction * 1000)
    assert plan.fault_s == USM.iter_fault_s
    # Refresh streams at the *full* link bandwidth, not the derated
    # migration bandwidth.
    assert plan.copy_s == pytest.approx(
        plan.bytes_moved / (LINK.bw_gbs * 1e9)
    )
    assert pt.pages_refreshed == plan.pages


def test_fractional_mode_reproduces_the_closed_form_exactly():
    """PageTable(quantize=False) phases sum to NodePerfModel's USM time."""
    from repro.sim.noise import NO_NOISE

    model = make_model("lumi", noise=NO_NOISE)
    pt = PageTable(model.spec.usm, model.spec.link, quantize=False)
    dims, precision, iterations = Dims(777, 777, 777), Precision.DOUBLE, 8

    from repro.core.flops import d2h_bytes, h2d_bytes

    up, down = h2d_bytes(dims, precision), d2h_bytes(dims, precision)
    kern = model.kernel_time(dims, precision)
    total = pt.fault_in(up).seconds
    for _ in range(iterations):
        total += pt.refresh(up).seconds + kern
    total += pt.writeback(down).seconds

    closed = model.gpu_time(dims, precision, iterations, TransferType.UNIFIED)
    assert total == pytest.approx(closed, rel=1e-12)


@pytest.mark.parametrize("system", ("dawn", "lumi", "isambard-ai"))
def test_page_granular_cost_converges_to_the_closed_form(system):
    """Whole-page quantization converges to the analytic USM model."""
    model = make_model(system)
    analytic = AnalyticBackend(model)
    granular = DesBackend(model, usm_page_granular=True)

    def rel_diff(m: int) -> float:
        dims = Dims(m, m, m)
        a = analytic.gpu_sample(
            None, dims, Precision.SINGLE, 8, TransferType.UNIFIED
        ).seconds
        g = granular.gpu_sample(
            None, dims, Precision.SINGLE, 8, TransferType.UNIFIED
        ).seconds
        return abs(a - g) / a

    assert rel_diff(64) < 0.10
    assert rel_diff(256) < 0.005
    assert rel_diff(2048) < 1e-4
    # ...and the error genuinely shrinks with the working set.
    assert rel_diff(2048) < rel_diff(64)
