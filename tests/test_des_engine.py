"""Unit coverage of the discrete-event engine itself.

Event-heap ordering, in-order queues, resource exclusivity, cross-queue
dependencies, DMA/compute overlap invariants and deadlock detection.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.sim.engine import EngineDeadlockError, EventEngine


def test_single_queue_serializes_to_the_sum():
    engine = EventEngine()
    for d in (1.0, 2.0, 3.0, 4.0):
        engine.submit("host", d, queue="q")
    assert engine.run() == pytest.approx(10.0)
    starts = [t.start for t in engine.trace]
    ends = [t.end for t in engine.trace]
    assert starts == [0.0, 1.0, 3.0, 6.0]
    assert ends == [1.0, 3.0, 6.0, 10.0]


def test_completion_events_pop_in_monotonic_time_order():
    engine = EventEngine()
    # Durations deliberately submitted long-first across queues so the
    # completion heap must reorder them.
    engine.submit("a", 5.0, queue="q1")
    engine.submit("b", 1.0, queue="q2")
    engine.submit("c", 2.0, queue="q3")
    engine.run()
    ends = sorted(t.end for t in engine.trace)
    assert ends == [1.0, 2.0, 5.0]
    assert engine.elapsed == 5.0


def test_independent_queues_overlap():
    engine = EventEngine()
    for q in ("dma", "gpu"):
        engine.submit("work", 3.0, queue=q)
    assert engine.run() == pytest.approx(3.0)  # not 6.0


def test_shared_resource_is_exclusive_across_queues():
    engine = EventEngine()
    engine.submit("h2d", 2.0, queue="q1", resource="dma")
    engine.submit("d2h", 2.0, queue="q2", resource="dma")
    assert engine.run() == pytest.approx(4.0)
    assert engine.busy_time("dma") == pytest.approx(4.0)


def test_cross_queue_dependency_delays_start():
    engine = EventEngine()
    up = engine.submit("h2d", 2.0, queue="dma")
    kern = engine.submit("kernel", 3.0, queue="gpu", deps=(up,))
    engine.submit("d2h", 1.0, queue="dma", deps=(kern,))
    assert engine.run() == pytest.approx(6.0)
    assert engine.end_of(up) == pytest.approx(2.0)
    assert engine.end_of(kern) == pytest.approx(5.0)


def test_dma_compute_overlap_invariants():
    """Pipelined 3-stage schedule: makespan is bounded below by every
    single engine's busy time and above by the serialized sum."""
    engine = EventEngine()
    h2d, kern, d2h = 2.0, 3.0, 1.0
    downs = []
    for i in range(8):
        deps = (downs[i - 2],) if i >= 2 else ()
        up = engine.submit("h2d", h2d, queue="h2d", deps=deps)
        run = engine.submit("kernel", kern, queue="gpu", deps=(up,))
        downs.append(engine.submit("d2h", d2h, queue="d2h", deps=(run,)))
    makespan = engine.run()
    serial = 8 * (h2d + kern + d2h)
    assert makespan < serial
    for resource in ("h2d", "gpu", "d2h"):
        assert makespan >= engine.busy_time(resource)
    # Steady state is compute-bound here: h2d fill + 8 kernels + d2h drain.
    assert makespan == pytest.approx(h2d + 8 * kern + d2h)
    # No two commands ever overlap on the same engine.
    for resource in engine.resources():
        events = engine.events_on(resource)
        for prev, nxt in zip(events, events[1:]):
            assert nxt.start >= prev.end


def test_deterministic_replay():
    def build():
        engine = EventEngine()
        downs = []
        for i in range(5):
            deps = (downs[i - 1],) if i >= 1 else ()
            up = engine.submit("h2d", 1.5, queue="h2d", deps=deps)
            run = engine.submit("kernel", 2.5, queue="gpu", deps=(up,))
            downs.append(engine.submit("d2h", 0.5, queue="d2h", deps=(run,)))
        engine.run()
        return engine

    first, second = build(), build()
    assert first.elapsed == second.elapsed
    assert first.trace == second.trace


def test_unknown_dependency_rejected_so_graphs_stay_acyclic():
    # Deps may only reference already-submitted commands, which makes
    # every submittable graph a DAG by construction.
    with pytest.raises(ReproError):
        EventEngine().submit("x", 1.0, deps=(42,))


def test_cross_queue_dependency_chains_resolve():
    engine = EventEngine()
    first = engine.submit("a", 1.0, queue="q1")
    second = engine.submit("b", 1.0, queue="q2", deps=(first,))
    engine.submit("c", 1.0, queue="q1", deps=(second,))
    assert engine.run() == pytest.approx(3.0)


def test_dependency_deadlock_raises():
    # The public API cannot build a cycle (see above), so exercise the
    # defensive detector white-box with a self-dependent command.
    from repro.sim.engine import Command

    engine = EventEngine()
    cid = engine.submit("a", 1.0, queue="q1")
    engine._commands[cid] = Command(
        cid=cid, kind="a", queue="q1", resource="q1", duration=1.0,
        deps=(cid,), label="self-dep",
    )
    with pytest.raises(EngineDeadlockError):
        engine.run()


def test_rejects_negative_duration_and_double_run():
    engine = EventEngine()
    with pytest.raises(ReproError):
        engine.submit("bad", -1.0)
    engine.submit("ok", 1.0)
    engine.run()
    with pytest.raises(ReproError):
        engine.submit("late", 1.0)
