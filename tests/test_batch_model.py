"""Vectorized analytic fast path: batch == scalar to float equality.

The batch entry points (``cpu_time_batch``/``gpu_time_batch`` on the
model, ``*_sample_batch`` on the analytic backend) mirror the scalar
reference expression-for-expression, so every batched value must equal
the scalar one *bitwise* — not approximately.  Hypothesis drives random
shapes, systems, iteration counts and paradigms at that exact bar.

Also pins the memoization satellites: cached flop/byte/jitter/noise
draws must equal their uncached computations.
"""

from __future__ import annotations

import zlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AnalyticBackend, make_model, run_sweep
from repro.core.config import RunConfig
from repro.core.flops import (
    d2h_bytes,
    flops_for,
    h2d_bytes,
    kernel_bytes,
)
from repro.core.runner import RetryPolicy, _backoff_unit
from repro.faults.plan import _unit
from repro.sim.noise import DeterministicNoise, _crc_unit
from repro.systems.catalog import system_names
from repro.types import ALL_PRECISIONS, Dims, Kernel, Precision, TransferType

MODELS = {name: make_model(name) for name in system_names()}

dims_gemm = st.tuples(
    st.integers(1, 4096), st.integers(1, 4096), st.integers(1, 4096)
).map(lambda t: Dims(*t))
dims_gemv = st.tuples(st.integers(1, 4096), st.integers(1, 4096)).map(
    lambda t: Dims(*t)
)
dims_batches = st.one_of(
    st.lists(dims_gemm, min_size=1, max_size=24),
    st.lists(dims_gemv, min_size=1, max_size=24),
)


@settings(max_examples=60, deadline=None)
@given(
    dims_list=dims_batches,
    system=st.sampled_from(sorted(MODELS)),
    precision=st.sampled_from(ALL_PRECISIONS),
    iterations=st.sampled_from((1, 8, 32, 128)),
    beta=st.sampled_from((0.0, 1.0)),
)
def test_cpu_batch_bitwise_equals_scalar(
    dims_list, system, precision, iterations, beta
):
    model = MODELS[system]
    batch = model.cpu_time_batch(
        dims_list, precision, iterations, beta=beta
    )
    for dims, got in zip(dims_list, batch):
        want = model.cpu_time(dims, precision, iterations, beta=beta)
        assert float(got) == want  # bitwise, not approximate


@settings(max_examples=60, deadline=None)
@given(
    dims_list=dims_batches,
    system=st.sampled_from(sorted(MODELS)),
    precision=st.sampled_from(ALL_PRECISIONS),
    iterations=st.sampled_from((1, 8, 128)),
    transfer=st.sampled_from(tuple(TransferType)),
    beta=st.sampled_from((0.0, 1.0)),
)
def test_gpu_batch_bitwise_equals_scalar(
    dims_list, system, precision, iterations, transfer, beta
):
    model = MODELS[system]
    if not model.has_gpu:
        return
    batch = model.gpu_time_batch(
        dims_list, precision, iterations, transfer, beta=beta
    )
    for dims, got in zip(dims_list, batch):
        want = model.gpu_time(dims, precision, iterations, transfer, beta=beta)
        assert float(got) == want


@settings(max_examples=25, deadline=None)
@given(
    dims_list=dims_batches,
    precision=st.sampled_from(ALL_PRECISIONS),
    iterations=st.sampled_from((1, 8)),
)
def test_backend_sample_batch_equals_scalar_samples(
    dims_list, precision, iterations
):
    backend = AnalyticBackend(MODELS["dawn"])
    kernel = dims_list[0].kernel
    batch = backend.cpu_sample_batch(kernel, dims_list, precision, iterations)
    for dims, got in zip(dims_list, batch):
        assert got == backend.cpu_sample(kernel, dims, precision, iterations)
    for transfer in TransferType:
        batch = backend.gpu_sample_batch(
            kernel, dims_list, precision, iterations, transfer
        )
        for dims, got in zip(dims_list, batch):
            assert got == backend.gpu_sample(
                kernel, dims, precision, iterations, transfer
            )


def test_vectorized_sweep_equals_scalar_reference_sweep():
    """End-to-end: the runner's fast path reproduces the per-cell loop."""

    class ScalarOnly:
        def __init__(self, inner):
            self._inner = inner

        def __getattr__(self, name):
            if name.endswith("_batch"):
                raise AttributeError(name)
            return getattr(self._inner, name)

        @property
        def gpu_transfers(self):
            return self._inner.gpu_transfers

        @property
        def has_gpu(self):
            return self._inner.has_gpu

    config = RunConfig(max_dim=192, step=16, iterations=8)
    backend = AnalyticBackend(MODELS["lumi"])
    ref = run_sweep(ScalarOnly(backend), config, "lumi")
    fast = run_sweep(backend, config, "lumi")
    assert fast.series == ref.series
    assert fast == ref


# -- memoization satellites -------------------------------------------


def test_flops_and_bytes_caches_match_uncached():
    for dims in (Dims(7, 9, 11), Dims(629, 629, 629), Dims(33, 47)):
        for beta in (0.0, 1.0):
            assert flops_for(dims, beta) == flops_for.__wrapped__(dims, beta)
        for precision in (Precision.SINGLE, Precision.DOUBLE):
            assert h2d_bytes(dims, precision) == h2d_bytes.__wrapped__(
                dims, precision
            )
            assert d2h_bytes(dims, precision) == d2h_bytes.__wrapped__(
                dims, precision
            )
            assert kernel_bytes(dims, precision) == kernel_bytes.__wrapped__(
                dims, precision
            )


def test_backoff_jitter_cache_matches_direct_draw():
    key = ("gemm", "square", "single", "gpu", "once", 64, 64, 64, 8)
    for attempt in (1, 2, 3):
        assert _backoff_unit(0, attempt, key) == _unit(
            (0, "backoff", attempt) + key
        )
    policy = RetryPolicy(seed=5)
    first = policy.backoff_s(2, key)
    assert policy.backoff_s(2, key) == first


def test_noise_crc_cache_matches_direct_draw():
    key = ("gpu", "once", (64, 64, 64), "single", 8)
    direct = zlib.crc32(repr((3,) + key).encode()) / 0xFFFFFFFF
    assert _crc_unit(3, key) == direct
    noise = DeterministicNoise(amplitude=0.02, seed=3)
    assert noise.factor(key) == 1.0 + 0.02 * (2.0 * direct - 1.0)
    assert float(noise.factor_batch([key])[0]) == noise.factor(key)
