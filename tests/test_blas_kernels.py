"""Real kernels: numpy backend vs blocked GEMM, checksum cross-check."""

from __future__ import annotations

import numpy as np

from repro.blas.blocked import BlockingParams, blocked_gemm
from repro.blas.numpy_backend import (
    gemm,
    gemv,
    make_operands_gemm,
    make_operands_gemv,
)
from repro.core.checksum import checksum, checksums_match


def test_gemm_matches_reference():
    m, n, k = 13, 9, 21
    a, b, c = make_operands_gemm(m, n, k, np.float64)
    gemm(m, n, k, 1.0, a, m, b, k, 0.0, c, m)
    A = a.reshape(k, m).T
    B = b.reshape(n, k).T
    C = c.reshape(n, m).T
    assert np.allclose(C, A @ B)


def test_gemm_beta_accumulates():
    m = n = k = 8
    a, b, c = make_operands_gemm(m, n, k, np.float64)
    c[:] = 1.0
    gemm(m, n, k, 2.0, a, m, b, k, 0.5, c, m)
    A = a.reshape(k, m).T
    B = b.reshape(n, k).T
    assert np.allclose(c.reshape(n, m).T, 2.0 * (A @ B) + 0.5)


def test_gemv_matches_reference():
    m, n = 17, 11
    a, x, y = make_operands_gemv(m, n, np.float64)
    gemv(m, n, 1.0, a, m, x, 1, 0.0, y, 1)
    assert np.allclose(y, a @ x)


def test_blocked_gemm_cross_validates_against_numpy_gemm():
    m, n, k = 30, 26, 34  # not multiples of the block size
    a, b, c1 = make_operands_gemm(m, n, k, np.float32)
    c2 = c1.copy()
    gemm(m, n, k, 1.0, a, m, b, k, 0.0, c1, m)
    blocked_gemm(m, n, k, 1.0, a, m, b, k, 0.0, c2, m,
                 blocking=BlockingParams(16, 16, 16))
    assert checksums_match(checksum(c1), checksum(c2))
    assert np.allclose(c1, c2, rtol=1e-4)


def test_checksum_mismatch_detected():
    assert not checksums_match(100.0, 101.0)  # 1% off: outside 0.1%
    assert checksums_match(100.0, 100.05)
