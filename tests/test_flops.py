"""FLOP and byte model identities (paper §III-C)."""

from __future__ import annotations

import pytest

from repro.core.flops import (
    arithmetic_intensity,
    d2h_bytes,
    flops_for,
    h2d_bytes,
    kernel_bytes,
    naive_flops,
)
from repro.types import Dims, Precision


def test_gemm_flops_beta_zero():
    m, n, k = 7, 11, 13
    assert flops_for(Dims(m, n, k)) == 2 * m * n * k + m * n


def test_gemm_flops_beta_nonzero_adds_qmn():
    m, n, k = 7, 11, 13
    assert (
        flops_for(Dims(m, n, k), beta=0.5)
        == 2 * m * n * k + m * n + m * n
    )


def test_gemv_flops_beta_zero():
    m, n = 9, 17
    assert flops_for(Dims(m, n)) == 2 * m * n + m


def test_gemv_flops_beta_nonzero_adds_qm():
    m, n = 9, 17
    assert flops_for(Dims(m, n), beta=1.0) == 2 * m * n + m + m


def test_naive_flops_is_the_2mnk_approximation():
    assert naive_flops(Dims(8, 8, 8)) == 2 * 8 * 8 * 8
    assert naive_flops(Dims(8, 8)) == 2 * 8 * 8
    # The exact count always exceeds the approximation.
    assert flops_for(Dims(8, 8, 8)) > naive_flops(Dims(8, 8, 8))


@pytest.mark.parametrize("precision", [Precision.SINGLE, Precision.DOUBLE])
def test_gemm_transfer_bytes(precision):
    m, n, k = 5, 6, 7
    size = precision.itemsize
    # Upload: A (m*k), B (k*n) and the output C (m*n); download: C only.
    assert h2d_bytes(Dims(m, n, k), precision) == (m * k + k * n + m * n) * size
    assert d2h_bytes(Dims(m, n, k), precision) == m * n * size


@pytest.mark.parametrize("precision", [Precision.SINGLE, Precision.DOUBLE])
def test_gemv_transfer_bytes(precision):
    m, n = 5, 6
    size = precision.itemsize
    assert h2d_bytes(Dims(m, n), precision) == (m * n + n + m) * size
    assert d2h_bytes(Dims(m, n), precision) == m * size


def test_kernel_bytes_counts_output_read_only_with_beta():
    dims = Dims(4, 4, 4)
    base = kernel_bytes(dims, Precision.SINGLE)
    with_beta = kernel_bytes(dims, Precision.SINGLE, beta=2.0)
    assert with_beta - base == 4 * 4 * Precision.SINGLE.itemsize


def test_arithmetic_intensity_gemm_grows_with_k():
    small = arithmetic_intensity(Dims(64, 64, 4), Precision.SINGLE)
    large = arithmetic_intensity(Dims(64, 64, 512), Precision.SINGLE)
    assert large > small


def test_arithmetic_intensity_gemv_is_low_and_flat():
    # GEMV stays O(1) flops/byte no matter the size — the paper's reason
    # it rarely offloads.
    for s in (64, 512, 4096):
        ai = arithmetic_intensity(Dims(s, s), Precision.SINGLE)
        assert ai < 1.0
