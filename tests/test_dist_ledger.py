"""The dispatch ledger: durable scheduling decisions for distributed
campaigns.

The ledger is the restart story — every assign/renew/complete/dead is
a checksummed JSONL record in the shared journal dialect, a torn final
line is the only acceptable crash artifact, and ``gpu-blob fsck`` can
tell a ledger from a sweep checkpoint or a serve WAL by its ``kind``
header (and *reports* a kind it does not know, rather than silently
version-checking it as a checkpoint).
"""

from __future__ import annotations

import json

import pytest

from repro.core.fsck import fsck_journal, fsck_paths, fsck_result_shard
from repro.dist.heartbeat import HeartbeatMonitor
from repro.dist.ledger import (
    LEDGER_KIND,
    LEDGER_VERSION,
    DispatchLedger,
    load_ledger_state,
)
from repro.errors import ConfigError
from repro.faults.checkpoint import record_checksum


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


def make_ledger(path, clock, fp="aaaa000011112222", name="unit"):
    return DispatchLedger(path, name, fp, lease_s=30.0, clock=clock,
                          sync=False)


# -- record round-trip ------------------------------------------------


def test_assign_complete_dead_round_trip(tmp_path, clock):
    path = tmp_path / "ledger.jsonl"
    ledger = make_ledger(path, clock)
    deadline = ledger.assign("fp1", 0, "w0", 1)
    assert deadline == pytest.approx(130.0)
    ledger.assign("fp2", 1, "w1", 1)
    ledger.assign("fp3", 2, "w0", 1)
    assert ledger.complete("fp1") is True
    assert ledger.dead("fp3", "attempts exhausted") is True
    ledger.close()

    state = load_ledger_state(path)
    assert state.has_header and not state.torn_tail
    assert state.corrupt_records == 0
    assert state.campaign_name == "unit"
    assert state.campaign_fingerprint == "aaaa000011112222"
    assert state.counts() == {"assigned": 1, "complete": 1, "dead": 1}
    assert [e.fp for e in state.in_flight()] == ["fp2"]
    assert state.entries["fp3"].reason == "attempts exhausted"


def test_renew_extends_the_lease(tmp_path, clock):
    ledger = make_ledger(tmp_path / "ledger.jsonl", clock)
    first = ledger.assign("fp1", 0, "w0", 1)
    clock.now += 20.0
    renewed = ledger.renew("fp1", "w0")
    assert renewed == first + 20.0
    assert not ledger.entry("fp1").expired(clock.now)
    ledger.close()
    state = load_ledger_state(ledger.path)
    assert state.entries["fp1"].deadline == pytest.approx(renewed)


def test_complete_is_idempotent(tmp_path, clock):
    path = tmp_path / "ledger.jsonl"
    ledger = make_ledger(path, clock)
    ledger.assign("fp1", 0, "w0", 1)
    assert ledger.complete("fp1") is True
    lines_after_first = len(path.read_text().splitlines())
    # the second finisher of a stolen scenario is deduped, not recorded
    assert ledger.complete("fp1") is False
    assert ledger.complete("unknown") is False
    assert ledger.dead("fp1", "late") is False
    assert len(path.read_text().splitlines()) == lines_after_first
    ledger.close()


def test_steal_is_a_fresh_assign_with_higher_attempt(tmp_path, clock):
    ledger = make_ledger(tmp_path / "ledger.jsonl", clock)
    ledger.assign("fp1", 0, "w0", 1)
    clock.now += 31.0  # lease lapses
    assert ledger.entry("fp1").expired(clock.now)
    ledger.assign("fp1", 0, "w1", 2)
    entry = ledger.entry("fp1")
    assert (entry.worker, entry.attempt) == ("w1", 2)
    assert not entry.expired(clock.now)
    ledger.close()


def test_late_assign_after_terminal_state_loses(tmp_path, clock):
    """A replayed partition can surface an assign *after* complete: the
    terminal state must win on fold."""
    path = tmp_path / "ledger.jsonl"
    ledger = make_ledger(path, clock)
    ledger.assign("fp1", 0, "w0", 1)
    ledger.complete("fp1")
    ledger.close()
    # append a verified-but-late assign by hand
    rec = {"t": "assign", "fp": "fp1", "index": 0, "worker": "w9",
           "attempt": 9, "deadline": 999.0}
    rec["cs"] = record_checksum(rec)
    with path.open("a") as fh:
        fh.write(json.dumps(rec) + "\n")
    state = load_ledger_state(path)
    assert state.entries["fp1"].state == "complete"


# -- durability --------------------------------------------------------


def test_torn_tail_is_repaired_on_reopen(tmp_path, clock):
    path = tmp_path / "ledger.jsonl"
    ledger = make_ledger(path, clock)
    ledger.assign("fp1", 0, "w0", 1)
    ledger.complete("fp1")
    ledger.close()
    with path.open("a") as fh:
        fh.write('{"t": "assign", "fp": "fp2", "ind')  # kill -9 artifact
    assert load_ledger_state(path).torn_tail is True
    reopened = make_ledger(path, clock)
    assert reopened.counts() == {"assigned": 0, "complete": 1, "dead": 0}
    reopened.close()
    assert load_ledger_state(path).torn_tail is False


def test_reopen_replays_prior_state(tmp_path, clock):
    path = tmp_path / "ledger.jsonl"
    ledger = make_ledger(path, clock)
    ledger.assign("fp1", 0, "w0", 1)
    ledger.assign("fp2", 1, "w1", 2)
    ledger.complete("fp1")
    ledger.close()
    reopened = make_ledger(path, clock)
    assert reopened.counts() == {"assigned": 1, "complete": 1, "dead": 0}
    assert reopened.entry("fp2").attempt == 2
    reopened.close()


def test_campaign_fingerprint_veto(tmp_path, clock):
    path = tmp_path / "ledger.jsonl"
    ledger = make_ledger(path, clock, fp="aaaa000011112222")
    ledger.assign("fp1", 0, "w0", 1)
    ledger.close()
    with pytest.raises(ConfigError, match="belongs to campaign"):
        make_ledger(path, clock, fp="ffff999988887777", name="other")


def test_missing_ledger_is_empty_state(tmp_path):
    state = load_ledger_state(tmp_path / "nope.jsonl")
    assert state.entries == {} and not state.has_header


# -- fsck integration --------------------------------------------------


def test_fsck_accepts_a_healthy_ledger(tmp_path, clock):
    path = tmp_path / "ledger.jsonl"
    ledger = make_ledger(path, clock)
    ledger.assign("fp1", 0, "w0", 1)
    ledger.complete("fp1")
    ledger.close()
    assert fsck_journal(path) == []


def test_fsck_reports_unknown_journal_kind(tmp_path):
    """Satellite: a journal whose ``kind`` this build does not speak is
    *reported*, not silently version-checked as a sweep checkpoint."""
    path = tmp_path / "mystery.jsonl"
    header = {"t": "header", "version": 1, "kind": "mystery-journal"}
    header["cs"] = record_checksum(header)
    path.write_text(json.dumps(header) + "\n")
    findings = fsck_journal(path)
    assert len(findings) == 1
    assert "unknown journal kind 'mystery-journal'" in findings[0].problem
    assert LEDGER_KIND in findings[0].problem  # names what it does read


def test_fsck_checks_ledger_version_as_ledger(tmp_path):
    header = {"t": "header", "version": LEDGER_VERSION + 1,
              "kind": LEDGER_KIND}
    header["cs"] = record_checksum(header)
    path = tmp_path / "ledger.jsonl"
    path.write_text(json.dumps(header) + "\n")
    findings = fsck_journal(path)
    assert len(findings) == 1
    assert f"'{LEDGER_KIND}'" in findings[0].problem
    assert f"reads {LEDGER_VERSION}" in findings[0].problem


def test_fsck_audits_result_shards(tmp_path):
    from repro import AnalyticBackend, RunConfig, make_model, run_sweep
    from repro.dist.worker import write_result_shard
    from repro.types import Kernel, Precision

    config = RunConfig(max_dim=64, step=16, iterations=4,
                       kernels=(Kernel.GEMM,),
                       precisions=(Precision.SINGLE,))
    result = run_sweep(AnalyticBackend(make_model("dawn")), config, "dawn")
    fp = "aaaa000011112222"
    path = write_result_shard(tmp_path, fp, result)
    assert fsck_result_shard(path) == []
    assert fsck_paths([tmp_path]) == []  # dispatched by 16-hex stem

    entry = json.loads(path.read_text())
    entry["payload_sha256"] = "0" * 64
    path.write_text(json.dumps(entry))
    findings = fsck_result_shard(path)
    assert findings and "sha256 mismatch" in findings[0].problem

    miskeyed = tmp_path / ("b" * 16 + ".json")
    miskeyed.write_text(path.read_text())
    findings = fsck_result_shard(miskeyed)
    assert findings and "fingerprint" in findings[0].problem


# -- heartbeat monitor -------------------------------------------------


def test_heartbeat_monitor_suspicion_is_reversible():
    clock = FakeClock()
    monitor = HeartbeatMonitor(timeout_s=6.0, clock=clock)
    monitor.track("w0")
    monitor.track("w1")
    clock.now += 4.0
    monitor.beat("w0")
    clock.now += 3.0  # w1 last seen 7s ago, w0 3s ago
    assert monitor.alive("w0") and not monitor.alive("w1")
    assert monitor.suspects() == ["w1"]
    monitor.beat("w1")  # the partition heals
    assert monitor.alive("w1") and monitor.suspects() == []
    assert monitor.beats == 2
    monitor.forget("w1")
    assert not monitor.alive("w1")
