"""CLI error surface: one-line stderr messages and the exit-code map.

The three error families map to distinct exit codes — configuration 2,
sweep fault 3, integrity 4 — and every failure prints a single
``gpu-blob: error: ...`` line to stderr, never a traceback.  The
``fsck`` and ``cache prune`` subcommands ride the same contract.
"""

from __future__ import annotations

import pytest

import repro.cli as cli
from repro import AnalyticBackend, RunConfig, make_model, run_sweep
from repro.errors import (
    CheckpointError,
    ConfigError,
    ModelInvariantError,
    TransientKernelError,
)
from repro.types import Kernel, Precision

CONFIG = RunConfig(
    max_dim=64, step=16, iterations=8,
    kernels=(Kernel.GEMM,), precisions=(Precision.SINGLE,),
)

SWEEP = ["-i", "8", "-d", "64", "--step", "16", "--system", "dawn",
         "--kernel", "gemm", "--precision", "single", "--no-cache",
         "--quiet"]


def _error_line(capsys):
    captured = capsys.readouterr()
    lines = [line for line in captured.err.splitlines() if line]
    assert len(lines) == 1, f"expected one stderr line, got: {captured.err!r}"
    assert lines[0].startswith("gpu-blob: error: ")
    return lines[0]


def test_config_error_exits_2(capsys):
    assert cli.main(SWEEP + ["--max-retries", "-1"]) == 2
    assert "max_retries" in _error_line(capsys)


def test_resume_without_checkpoint_exits_2(capsys):
    assert cli.main(SWEEP + ["--resume"]) == 2
    assert "--checkpoint" in _error_line(capsys)


def test_sweep_fault_error_exits_3(capsys, monkeypatch):
    def explode(*args, **kwargs):
        raise TransientKernelError("kernel launch failed and stayed failed")

    monkeypatch.setattr(cli, "run_sweep", explode)
    assert cli.main(SWEEP) == 3
    assert "kernel launch failed" in _error_line(capsys)


def test_corrupt_checkpoint_resume_exits_4(capsys, tmp_path):
    ckpt = tmp_path / "ck.jsonl"
    run_sweep(
        AnalyticBackend(make_model("dawn")), CONFIG, "dawn", checkpoint=ckpt
    )
    lines = ckpt.read_text().splitlines()
    lines[1] = lines[1].replace(":", ";", 1)
    ckpt.write_text("\n".join(lines) + "\n")
    code = cli.main(SWEEP + ["--checkpoint", str(ckpt), "--resume"])
    assert code == 4
    assert "corrupt" in _error_line(capsys)


def test_strict_invariant_violation_exits_4(capsys, monkeypatch):
    def reject(*args, **kwargs):
        raise ModelInvariantError("spec calibrated above its link peak")

    monkeypatch.setattr(cli, "run_sweep", reject)
    assert cli.main(SWEEP + ["--strict"]) == 4
    assert "link peak" in _error_line(capsys)


def test_exit_code_map_covers_the_hierarchy():
    assert cli._exit_code(ConfigError("x")) == 2
    assert cli._exit_code(TransientKernelError("x")) == 3
    assert cli._exit_code(CheckpointError("x")) == 4
    assert cli._exit_code(ModelInvariantError("x")) == 4


# -- fsck subcommand --------------------------------------------------


def test_fsck_clean_exits_0(capsys, tmp_path):
    ckpt = tmp_path / "ck.jsonl"
    run_sweep(
        AnalyticBackend(make_model("dawn")), CONFIG, "dawn", checkpoint=ckpt
    )
    assert cli.main(["fsck", str(ckpt)]) == 0
    assert "all artifacts verify" in capsys.readouterr().out


def test_fsck_detects_then_repairs(capsys, tmp_path):
    cache = tmp_path / "cache"
    run_sweep(AnalyticBackend(make_model("dawn")), CONFIG, "dawn",
              cache_dir=cache)
    (entry,) = cache.glob("*.json")
    blob = bytearray(entry.read_bytes())
    for i in range(len(blob) - 1, 0, -1):
        if chr(blob[i]).isdigit():  # stay valid JSON: only the digest trips
            blob[i] ^= 0x01
            break
    entry.write_bytes(bytes(blob))
    assert cli.main(["fsck", str(cache)]) == 4
    captured = capsys.readouterr()
    assert "sha256 mismatch" in captured.out
    assert "re-run with --repair" in captured.err
    assert cli.main(["fsck", str(cache), "--repair"]) == 0
    assert "repaired 1 problem" in capsys.readouterr().out
    assert cli.main(["fsck", str(cache)]) == 0


def test_fsck_missing_path_exits_4(capsys, tmp_path):
    assert cli.main(["fsck", str(tmp_path / "ghost")]) == 4
    capsys.readouterr()


# -- cache prune subcommand -------------------------------------------


def test_cache_prune_evicts_and_reports(capsys, tmp_path):
    cache = tmp_path / "cache"
    run_sweep(AnalyticBackend(make_model("dawn")), CONFIG, "dawn",
              cache_dir=cache)
    assert cli.main(["cache", "prune", "--cache-dir", str(cache),
                     "--max-entries", "0"]) == 0
    assert "pruned 1 cache entry" in capsys.readouterr().out
    assert not list(cache.glob("*.json"))


def test_cache_prune_negative_bound_exits_2(capsys, tmp_path):
    code = cli.main(["cache", "prune", "--cache-dir", str(tmp_path),
                     "--max-entries", "-2"])
    assert code == 2
    assert "max_entries" in _error_line(capsys)


def test_strict_and_shard_timeout_flags_reach_run_sweep(capsys, monkeypatch):
    seen = {}

    def spy(backend, config, **kwargs):
        seen["validate"] = config.validate
        seen["shard_timeout_s"] = kwargs.get("shard_timeout_s")
        raise ConfigError("stop here")

    monkeypatch.setattr(cli, "run_sweep", spy)
    assert cli.main(SWEEP + ["--strict", "--shard-timeout", "2.5"]) == 2
    capsys.readouterr()
    assert seen == {"validate": True, "shard_timeout_s": 2.5}
