"""Adaptive bisection sweeps: identical thresholds, far fewer cells.

``RunConfig.adaptive`` answers the offload-threshold question from a
coarse grid plus bisection refinement instead of a dense scan.  The
contract these tests pin: on every calibrated system, under both
backends, the reported threshold table is *identical* to the dense
sweep's for every ``min_consecutive`` the CLI exposes — while sampling
at most a quarter of the dense grid.  Composition rules (parallel
parity, cache interplay, fault/checkpoint refusal) ride along.
"""

from __future__ import annotations

import pytest

from dataclasses import replace

from repro import AnalyticBackend, make_model, run_sweep
from repro.backends.des import DesBackend
from repro.core.config import RunConfig
from repro.errors import ConfigError
from repro.faults import FaultKind, FaultPlan
from repro.types import Kernel

SYSTEMS = ("dawn", "lumi", "isambard-ai")
_MODELS = {name: make_model(name) for name in SYSTEMS}

CONFIG = RunConfig(
    max_dim=512, step=8, iterations=8,
    kernels=(Kernel.GEMM, Kernel.GEMV), problem_idents=("square",),
)


def _backend(kind: str, system: str):
    model = _MODELS[system]
    return AnalyticBackend(model) if kind == "analytic" else DesBackend(model)


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("kind", ("analytic", "des"))
def test_thresholds_identical_to_dense(system, kind):
    dense = run_sweep(_backend(kind, system), CONFIG, system)
    adaptive = run_sweep(
        _backend(kind, system),
        replace(CONFIG, adaptive=True),
        system,
    )
    for mc in (1, 2, 3):
        assert adaptive.thresholds(mc) == dense.thresholds(mc), (
            f"{system}/{kind} diverged at min_consecutive={mc}"
        )


def test_samples_at_most_quarter_of_dense_grid():
    adaptive = run_sweep(
        AnalyticBackend(_MODELS["dawn"]),
        replace(CONFIG, adaptive=True),
        "dawn",
    )
    sampled = adaptive.stats.adaptive_cells_sampled
    dense = adaptive.stats.adaptive_cells_dense
    assert dense > 0
    assert sampled <= dense * 0.25, f"sampled {sampled} of {dense}"


def test_adaptive_composes_with_parallel_executor():
    config = replace(CONFIG, adaptive=True)
    serial = run_sweep(AnalyticBackend(_MODELS["dawn"]), config, "dawn")
    parallel = run_sweep(
        AnalyticBackend(_MODELS["dawn"]), config, "dawn", jobs=4
    )
    assert parallel.series == serial.series
    for mc in (1, 2, 3):
        assert parallel.thresholds(mc) == serial.thresholds(mc)
    assert (
        parallel.stats.adaptive_cells_sampled
        == serial.stats.adaptive_cells_sampled
    )


def test_adaptive_refuses_faults_and_checkpoint(tmp_path):
    config = replace(CONFIG, adaptive=True)
    backend = AnalyticBackend(_MODELS["dawn"])
    with pytest.raises(ConfigError):
        run_sweep(
            backend, config, "dawn",
            faults=FaultPlan(rates={FaultKind.KERNEL: 0.5}),
        )
    with pytest.raises(ConfigError):
        run_sweep(
            backend, config, "dawn", checkpoint=tmp_path / "sweep.jsonl"
        )


def test_adaptive_loads_dense_cache_but_never_stores(tmp_path):
    cache = tmp_path / "cache"
    backend = AnalyticBackend(_MODELS["dawn"])
    adaptive_config = replace(CONFIG, adaptive=True)

    # an adaptive run must not poison the store with a sparse series
    first = run_sweep(backend, adaptive_config, "dawn", cache_dir=cache)
    assert not list(cache.glob("*.json"))
    assert first.stats.cached_samples == 0

    # a dense run stores; the adaptive config replays it as a hit
    # (adaptive is excluded from the cache fingerprint) and answers the
    # same thresholds from the dense series
    dense = run_sweep(backend, CONFIG, "dawn", cache_dir=cache)
    assert list(cache.glob("*.json"))
    replay = run_sweep(backend, adaptive_config, "dawn", cache_dir=cache)
    assert replay.stats.cached_samples > 0
    assert replay.thresholds() == dense.thresholds()


def test_adaptive_thresholds_property_random_configs():
    hypothesis = pytest.importorskip("hypothesis")
    st = pytest.importorskip("hypothesis.strategies")
    given, settings = hypothesis.given, hypothesis.settings

    @st.composite
    def sweep_case(draw):
        system = draw(st.sampled_from(SYSTEMS))
        kernel = draw(st.sampled_from((Kernel.GEMM, Kernel.GEMV)))
        step = draw(st.sampled_from((4, 8, 16)))
        max_dim = draw(st.integers(min_value=8, max_value=48)) * step
        min_consecutive = draw(st.integers(min_value=1, max_value=4))
        return system, kernel, step, max_dim, min_consecutive

    @given(sweep_case())
    @settings(deadline=None, max_examples=25)
    def check(case):
        system, kernel, step, max_dim, min_consecutive = case
        config = RunConfig(
            max_dim=max_dim, step=step, iterations=4,
            kernels=(kernel,), problem_idents=("square",),
        )
        dense = run_sweep(AnalyticBackend(_MODELS[system]), config, system)
        adaptive = run_sweep(
            AnalyticBackend(_MODELS[system]),
            replace(config, adaptive=True),
            system,
        )
        assert adaptive.thresholds(min_consecutive) == dense.thresholds(
            min_consecutive
        )

    check()
