"""Data-driven system specs: round-trips, registry resolution, linting.

The load-bearing property is exact round-tripping: a ``SystemSpec``
exported to TOML (or JSON) and loaded back must compare equal AND repr
identically to the original — ``model_cache_token`` hashes
``repr(spec)``, so anything less would silently split the sweep cache
and drift the Table III–VI goldens.  The committed ``specs/*.toml``
files are pinned against the Python calibration modules for the same
reason: the registry prefers the files at import, so the files ARE the
golden path.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    ConfigError,
    ModelInvariantError,
    ModelInvariantWarning,
    UnknownSystemError,
)
from repro.systems import DAWN, ISAMBARD_AI, LUMI
from repro.systems.catalog import (
    SPEC_PATH_ENV,
    builtin_spec_dir,
    discover_specs,
    get_system,
    resolve_system,
    spec_search_dirs,
    system_names,
)
from repro.systems.specio import (
    _parse_toml_minimal,
    dumps_spec,
    load_spec,
    loads_spec,
    spec_from_dict,
    spec_to_dict,
    write_spec,
)
from repro.systems.specs import SystemSpec

CALIBRATED = (DAWN, LUMI, ISAMBARD_AI)


# -- round-trips ------------------------------------------------------


@pytest.mark.parametrize("spec", CALIBRATED, ids=lambda s: s.name)
def test_toml_round_trip_is_exact(spec):
    loaded = loads_spec(dumps_spec(spec))
    assert loaded == spec
    assert repr(loaded) == repr(spec)  # the model_cache_token contract


@pytest.mark.parametrize("spec", CALIBRATED, ids=lambda s: s.name)
def test_json_round_trip_is_exact(spec):
    text = json.dumps(spec_to_dict(spec))
    loaded = loads_spec(text, format="json")
    assert loaded == spec
    assert repr(loaded) == repr(spec)


@pytest.mark.parametrize("spec", CALIBRATED, ids=lambda s: s.name)
def test_committed_spec_file_matches_python_calibration(spec):
    spec_dir = builtin_spec_dir()
    assert spec_dir is not None, "checkout must have a specs/ directory"
    loaded = load_spec(spec_dir / f"{spec.name}.toml")
    assert loaded == spec
    assert repr(loaded) == repr(spec)


def test_registry_serves_the_file_backed_specs():
    # _register_builtins prefers the committed files; either way the
    # registry entry must be indistinguishable from the calibration.
    for spec in CALIBRATED:
        assert get_system(spec.name) == spec


@settings(max_examples=25, deadline=None)
@given(
    bw=st.floats(1e-3, 1e4, allow_nan=False, allow_infinity=False),
    latency=st.floats(0, 1e-2, allow_nan=False, allow_infinity=False),
    staging=st.floats(0.01, 1.0, allow_nan=False, allow_infinity=False),
    cores=st.integers(1, 512),
    threads=st.integers(1, 512),
)
def test_property_round_trip_over_perturbed_specs(
    bw, latency, staging, cores, threads
):
    """Any valid calibration survives TOML round-trip exactly, not just
    the three committed points."""
    import dataclasses

    spec = dataclasses.replace(
        DAWN,
        name="synthetic",
        cpu_threads=threads,
        cpu=dataclasses.replace(DAWN.cpu, cores=cores),
        link=dataclasses.replace(
            DAWN.link, bw_gbs=bw, latency_s=latency, staging_bw_scale=staging
        ),
    )
    loaded = loads_spec(dumps_spec(spec))
    assert loaded == spec
    assert repr(loaded) == repr(spec)


def test_minimal_parser_agrees_with_tomllib_on_committed_files():
    tomllib = pytest.importorskip("tomllib")
    for path in sorted(builtin_spec_dir().glob("*.toml")):
        text = path.read_text()
        assert _parse_toml_minimal(text, str(path)) == tomllib.loads(text)


# -- schema and calibration errors ------------------------------------


def test_unknown_key_is_a_config_error():
    data = spec_to_dict(DAWN)
    data["cpu"]["warp_size"] = 32
    with pytest.raises(ConfigError, match="warp_size"):
        spec_from_dict(data)


def test_missing_required_table_is_a_config_error():
    data = spec_to_dict(DAWN)
    del data["link"]
    with pytest.raises(ConfigError, match=r"\[link\]"):
        spec_from_dict(data)


def test_unsupported_schema_version_is_a_config_error():
    data = spec_to_dict(DAWN)
    data["schema"] = 99
    with pytest.raises(ConfigError, match="schema"):
        spec_from_dict(data)


def test_miscalibrated_spec_raises_invariant_error_when_strict():
    data = spec_to_dict(DAWN)
    data["link"]["staging_bw_scale"] = 1.5  # above the link's own peak
    with pytest.raises(ModelInvariantError, match="staging_bw_scale"):
        spec_from_dict(data, strict=True)
    with pytest.warns(ModelInvariantWarning, match="staging_bw_scale"):
        loose = spec_from_dict(data, strict=False)
    assert loose.link.staging_bw_scale == 1.5


# -- resolution order -------------------------------------------------


def test_resolve_accepts_spec_instance_and_registry_name():
    assert resolve_system(DAWN) is DAWN
    assert resolve_system("dawn") == DAWN


def test_resolve_loads_an_explicit_path(tmp_path):
    path = write_spec(LUMI, tmp_path / "my-lumi.toml")
    assert resolve_system(str(path)) == LUMI


def test_resolve_discovers_stems_via_spec_path_env(tmp_path, monkeypatch):
    import dataclasses

    frontier = dataclasses.replace(DAWN, name="frontier")
    write_spec(frontier, tmp_path / "frontier.toml")
    monkeypatch.setenv(SPEC_PATH_ENV, str(tmp_path))
    assert tmp_path in spec_search_dirs()
    assert discover_specs()["frontier"] == tmp_path / "frontier.toml"
    assert resolve_system("frontier") == frontier


def test_missing_spec_file_path_is_unknown_system(tmp_path):
    with pytest.raises(UnknownSystemError, match="does not exist"):
        resolve_system(str(tmp_path / "ghost.toml"))


def test_unknown_system_error_lists_registry_files_and_dirs(
    tmp_path, monkeypatch
):
    import dataclasses

    write_spec(
        dataclasses.replace(DAWN, name="el-cap"), tmp_path / "el-cap.toml"
    )
    monkeypatch.setenv(SPEC_PATH_ENV, str(tmp_path))
    with pytest.raises(UnknownSystemError) as excinfo:
        resolve_system("nope")
    message = str(excinfo.value)
    for name in system_names():
        assert name in message
    assert "el-cap" in message  # discovered spec files are advertised
    assert str(tmp_path) in message  # so are the searched directories


# -- CLI surface ------------------------------------------------------


def test_cli_system_accepts_a_spec_file_path(tmp_path, capsys):
    import repro.cli as cli

    path = write_spec(DAWN, tmp_path / "dawn-copy.toml")
    code = cli.main([
        "-i", "8", "-d", "64", "--step", "16", "--system", str(path),
        "--kernel", "gemm", "--precision", "single", "--no-cache",
        "--quiet", "-o", str(tmp_path / "out"),
    ])
    assert code == 0
    capsys.readouterr()
    assert sorted(p.name for p in (tmp_path / "out").glob("*.csv"))


def test_cli_unknown_system_exits_2_with_search_story(capsys):
    import repro.cli as cli

    assert cli.main(["--system", "not-a-machine", "-d", "64"]) == 2
    err = capsys.readouterr().err
    assert "unknown system 'not-a-machine'" in err
    assert "spec directories searched" in err


def test_spec_lint_rejects_a_bad_file_with_exit_4(tmp_path, capsys):
    import repro.cli as cli

    good = write_spec(DAWN, tmp_path / "good.toml")
    bad = tmp_path / "bad.toml"
    bad.write_text(
        good.read_text().replace(
            "staging_bw_scale = 0.75", "staging_bw_scale = 2.0"
        )
    )
    assert cli.main(["spec", "lint", str(tmp_path)]) == 4
    out = capsys.readouterr().out
    assert "FAIL" in out and "ok" in out
    assert cli.main(["spec", "lint", str(good)]) == 0
    capsys.readouterr()


def test_spec_list_shows_registry_and_discovered(capsys):
    import repro.cli as cli

    assert cli.main(["spec", "list"]) == 0
    out = capsys.readouterr().out
    assert "registry: dawn, isambard-ai, lumi" in out


def test_make_model_accepts_any_resolvable_ident(tmp_path):
    from repro.systems.catalog import make_model

    path = write_spec(ISAMBARD_AI, tmp_path / "isam.toml")
    by_name = make_model("isambard-ai")
    by_path = make_model(str(path))
    assert isinstance(by_path.spec, SystemSpec)
    assert by_path.spec == by_name.spec
