"""Store-level cache statistics and the single-flight primitive.

The ``.stats`` sidecar gives ``gpu-blob cache stats`` and the daemon's
``/metrics`` one shared, cross-process view of the store; it must stay
invisible to the ``*.json`` entry globs that fsck, prune, and the
entry-count tests rely on.
"""

from __future__ import annotations

import json
import threading

import pytest

import repro.cli as cli
from repro import AnalyticBackend, RunConfig, make_model, run_sweep
from repro.core.sweepcache import (
    STATS_FILENAME,
    SingleFlight,
    cache_stats,
    top_entries,
)
from repro.errors import ConfigError
from repro.types import Kernel, Precision

CONFIG = RunConfig(
    max_dim=64, step=16, iterations=8,
    kernels=(Kernel.GEMM,), precisions=(Precision.SINGLE,),
)


def _sweep(cache_dir):
    return run_sweep(
        AnalyticBackend(make_model("dawn")), CONFIG, "dawn",
        cache_dir=cache_dir,
    )


def test_stats_of_a_missing_store_are_zero(tmp_path):
    stats = cache_stats(tmp_path / "ghost")
    assert stats == {
        "entries": 0, "total_bytes": 0, "hits": 0, "misses": 0,
        "stores": 0, "hit_rate": 0.0,
    }


def test_counters_track_miss_store_then_hit(tmp_path):
    cache = tmp_path / "cache"
    first = _sweep(cache)
    assert first.cache_hit is False
    stats = cache_stats(cache)
    assert stats["entries"] == 1
    assert stats["total_bytes"] > 0
    assert (stats["misses"], stats["stores"], stats["hits"]) == (1, 1, 0)

    second = _sweep(cache)
    assert second.cache_hit is True
    stats = cache_stats(cache)
    assert stats["hits"] == 1
    assert stats["hit_rate"] == 0.5


def test_sidecar_is_invisible_to_entry_globs(tmp_path):
    cache = tmp_path / "cache"
    _sweep(cache)
    assert (cache / STATS_FILENAME).exists()
    assert not STATS_FILENAME.endswith(".json")
    assert len(list(cache.glob("*.json"))) == 1
    # total_bytes counts entries only, not the sidecar
    (entry,) = cache.glob("*.json")
    assert cache_stats(cache)["total_bytes"] == entry.stat().st_size


def test_cli_cache_stats_text_and_json(tmp_path, capsys):
    cache = tmp_path / "cache"
    _sweep(cache)
    _sweep(cache)

    assert cli.main(["cache", "stats", "--cache-dir", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "entries:    1" in out
    assert "hits:       1" in out
    assert "hit rate:   0.500" in out

    assert cli.main(
        ["cache", "stats", "--cache-dir", str(cache), "--json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["entries"] == 1
    assert payload["hits"] == 1
    assert payload["misses"] == 1
    assert payload["stores"] == 1
    assert payload["hit_rate"] == 0.5


def test_top_entries_rank_by_per_key_hits(tmp_path):
    cache = tmp_path / "cache"
    _sweep(cache)  # miss + store
    _sweep(cache)  # hit
    _sweep(cache)  # hit
    (top,) = top_entries(cache)
    assert top["hits"] == 2
    assert top["present"] is True
    (entry,) = cache.glob("*.json")
    assert top["key"] == entry.stem

    # an evicted entry keeps its hit history but is flagged
    entry.unlink()
    (top,) = top_entries(cache)
    assert top["hits"] == 2
    assert top["present"] is False


def test_top_entries_empty_store_and_limit(tmp_path):
    assert top_entries(tmp_path / "ghost") == []
    cache = tmp_path / "cache"
    _sweep(cache)
    _sweep(cache)
    assert top_entries(cache, 0) == []
    assert len(top_entries(cache, 5)) == 1


def test_cli_cache_stats_top_flag(tmp_path, capsys):
    cache = tmp_path / "cache"
    _sweep(cache)
    _sweep(cache)
    (entry,) = cache.glob("*.json")

    assert cli.main(
        ["cache", "stats", "--cache-dir", str(cache), "--top", "3"]
    ) == 0
    out = capsys.readouterr().out
    assert "top 1 entry by hits:" in out
    assert entry.stem in out
    assert "(evicted)" not in out

    assert cli.main(
        ["cache", "stats", "--cache-dir", str(cache), "--top", "3",
         "--json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["top_entries"] == [
        {"key": entry.stem, "hits": 1, "present": True}
    ]

    entry.unlink()
    assert cli.main(
        ["cache", "stats", "--cache-dir", str(cache), "--top", "3"]
    ) == 0
    assert "(evicted)" in capsys.readouterr().out


def test_single_flight_coalesces_concurrent_callers():
    flight = SingleFlight()
    calls = []
    gate = threading.Event()

    def work():
        calls.append(1)
        gate.wait(2.0)
        return {"answer": 42}

    results = [None] * 4

    def runner(i):
        results[i] = flight.do("key", work)

    threads = [
        threading.Thread(target=runner, args=(i,)) for i in range(4)
    ]
    for t in threads:
        t.start()
    gate.set()
    for t in threads:
        t.join(5.0)
    assert len(calls) == 1
    assert all(r is results[0] for r in results), "followers share the object"
    assert flight.coalesced == 3


def test_single_flight_propagates_the_leaders_exception():
    flight = SingleFlight()

    def boom():
        raise ConfigError("bad sweep")

    with pytest.raises(ConfigError):
        flight.do("key", boom)
    # the flight is gone afterwards: a retry runs fresh
    assert flight.do("key", lambda: "ok") == "ok"


def test_unknown_problem_config_error_lists_valid_idents():
    with pytest.raises(ConfigError) as err:
        RunConfig(kernels=(Kernel.GEMM,), problem_idents=("cube",))
    message = str(err.value)
    assert "square" in message
    assert "gemm" in message


def test_cli_unknown_problem_lists_valid_idents(capsys):
    code = cli.main([
        "-i", "1", "-d", "64", "--system", "dawn", "--kernel", "gemv",
        "--problem", "mn_k32", "--no-cache", "--quiet",
    ])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("gpu-blob: error: ")
    assert "square" in err
    assert "gemv" in err
