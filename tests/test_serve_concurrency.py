"""Concurrent behaviour of the serving daemon.

The expensive invariant: a thundering herd on one cold key must run
**one** sweep and hand every waiter the same answer.  The failure
surface: over-quota clients get a 429 with ``Retry-After``, deadline
overruns get a 504, a full queue gets a 503 — all with structured JSON
bodies — and SIGTERM-style drain finishes in-flight work.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro import AnalyticBackend, RunConfig, make_model, run_sweep
from repro.serve.client import ServeClient
from repro.serve.jobs import JobQueue, QueueFullError
from repro.serve.service import ServeConfig, start_server
from repro.types import Kernel, Precision

BODY = {
    "system": "dawn",
    "kernel": "gemm",
    "problem": "square",
    "precision": "single",
    "iterations": 8,
    "paradigm": "once",
    "min_dim": 1,
    "max_dim": 64,
    "step": 16,
}


class CountingSweep:
    """A ``run_sweep`` stand-in: real result, controlled latency."""

    def __init__(self, delay_s: float = 0.0) -> None:
        self.calls = 0
        self.delay_s = delay_s
        config = RunConfig(
            max_dim=64, step=16, iterations=8,
            kernels=(Kernel.GEMM,), precisions=(Precision.SINGLE,),
        )
        self._result = run_sweep(
            AnalyticBackend(make_model("dawn")), config, "dawn"
        )

    def __call__(self, backend, config, system_name=None, cache_dir=None):
        self.calls += 1
        if self.delay_s:
            time.sleep(self.delay_s)
        return self._result


def test_hot_key_coalesces_to_one_sweep(tmp_path):
    sweep = CountingSweep(delay_s=0.2)

    async def check():
        config = ServeConfig(port=0, cache_dir=str(tmp_path / "cache"))
        handle = await start_server(config, sweep_fn=sweep)
        clients = [ServeClient(handle.host, handle.port) for _ in range(6)]
        try:
            responses = await asyncio.gather(
                *(c.post("/v1/threshold", BODY) for c in clients)
            )
            assert [r.status for r in responses] == [200] * 6
            bodies = {r.body for r in responses}
            assert len(bodies) == 1, "coalesced waiters must agree byte-for-byte"
            metrics = (
                await clients[0].get("/metrics")
            ).json()
            assert metrics["cache"]["coalesced"] >= 1
            assert metrics["jobs"]["sweeps_executed"] == 1
        finally:
            for c in clients:
                await c.close()
            await handle.drain(5.0)
        assert sweep.calls == 1

    asyncio.run(check())


def test_rate_limit_answers_429_with_retry_after(tmp_path):
    async def check():
        config = ServeConfig(
            port=0, cache_dir=str(tmp_path / "cache"), rate=0.5, burst=1
        )
        handle = await start_server(config, sweep_fn=CountingSweep())
        client = ServeClient(handle.host, handle.port)
        try:
            headers = (("X-Client-Id", "tenant-a"),)
            first = await client.post("/v1/threshold", BODY, headers=headers)
            assert first.status == 200
            second = await client.post("/v1/threshold", BODY, headers=headers)
            assert second.status == 429
            assert int(second.headers["retry-after"]) >= 1
            error = second.json()["error"]
            assert error["family"] == "quota"
            assert error["retry_after_s"] > 0
            # a different client id has its own bucket
            other = await client.post(
                "/v1/threshold", BODY, headers=(("X-Client-Id", "tenant-b"),)
            )
            assert other.status == 200
            metrics = (await client.get("/metrics")).json()
            assert metrics["jobs"]["rate_limited"] == 1
            assert metrics["statuses"]["429"] == 1
        finally:
            await client.close()
            await handle.drain(5.0)

    asyncio.run(check())


def test_deadline_overrun_answers_504(tmp_path):
    sweep = CountingSweep(delay_s=0.4)

    async def check():
        config = ServeConfig(
            port=0,
            cache_dir=str(tmp_path / "cache"),
            request_timeout_s=0.05,
        )
        handle = await start_server(config, sweep_fn=sweep)
        client = ServeClient(handle.host, handle.port)
        try:
            r = await client.post("/v1/threshold", BODY)
            assert r.status == 504
            error = r.json()["error"]
            assert error["family"] == "fault" and error["exit_code"] == 3
            metrics = (await client.get("/metrics")).json()
            assert metrics["jobs"]["deadline_expired"] == 1
        finally:
            await client.close()
            # drain still finishes the abandoned job
            assert await handle.drain(5.0) is True
        assert sweep.calls == 1

    asyncio.run(check())


def test_queue_full_rejects_with_queue_full_error():
    async def check():
        queue = JobQueue(workers=1, maxsize=1)  # never started: jobs sit

        async def job():
            return "done"

        queue.submit("a", job)
        # same key coalesces instead of consuming the single slot
        future_a, coalesced = queue.submit("a", job)
        assert coalesced is True
        with pytest.raises(QueueFullError):
            queue.submit("b", job)
        queue.start()
        assert await asyncio.wait_for(future_a, 5.0) == "done"
        assert await queue.drain(5.0) is True

    asyncio.run(check())


def test_queue_full_maps_to_503(tmp_path):
    sweep = CountingSweep(delay_s=0.3)

    async def check():
        config = ServeConfig(
            port=0,
            cache_dir=str(tmp_path / "cache"),
            workers=1,
            queue_maxsize=1,
        )
        handle = await start_server(config, sweep_fn=sweep)
        clients = [ServeClient(handle.host, handle.port) for _ in range(3)]
        try:
            # distinct keys so nothing coalesces: occupy the worker ...
            t1 = asyncio.ensure_future(
                clients[0].post("/v1/threshold", BODY)
            )
            await asyncio.sleep(0.1)  # worker picked up the first job
            # ... fill the one queue slot ...
            t2 = asyncio.ensure_future(
                clients[1].post("/v1/threshold", dict(BODY, max_dim=48))
            )
            await asyncio.sleep(0.05)
            # ... and overflow it
            r3 = await clients[2].post(
                "/v1/threshold", dict(BODY, max_dim=32)
            )
            assert r3.status == 503
            error = r3.json()["error"]
            assert error["family"] == "fault" and error["exit_code"] == 3
            r1, r2 = await asyncio.gather(t1, t2)
            assert r1.status == 200 and r2.status == 200
        finally:
            for c in clients:
                await c.close()
            await handle.drain(10.0)

    asyncio.run(check())


def test_drain_finishes_inflight_work_then_refuses_connections(tmp_path):
    sweep = CountingSweep(delay_s=0.2)

    async def check():
        config = ServeConfig(port=0, cache_dir=str(tmp_path / "cache"))
        handle = await start_server(config, sweep_fn=sweep)
        client = ServeClient(handle.host, handle.port)
        try:
            pending = asyncio.ensure_future(
                client.post("/v1/threshold", BODY)
            )
            await asyncio.sleep(0.05)
            assert await handle.drain(5.0) is True
            response = await pending
            assert response.status == 200
            assert json.loads(response.body)["system"] == "dawn"
        finally:
            await client.close()
        with pytest.raises((ConnectionError, OSError)):
            fresh = ServeClient(handle.host, handle.port)
            try:
                await fresh.get("/healthz")
            finally:
                await fresh.close()

    asyncio.run(check())
