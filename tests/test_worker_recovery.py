"""Self-healing parallel sweeps: worker death and deadlines.

A pool worker hard-killed mid-shard (``os._exit`` — the way an OOM kill
looks to the parent) must not cost the sweep anything: the supervised
executor retries the shard on a fresh pool, degrades it to in-process
execution when the pool keeps dying, journals every recovery, and the
merged CSVs stay byte-identical to a clean serial run.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import AnalyticBackend, RunConfig, make_model, run_sweep
from repro.core.csvio import write_run
from repro.core.runner import _MAX_SHARD_RETRIES
from repro.errors import ConfigError
from repro.faults.checkpoint import CheckpointReader
from repro.types import Kernel, Precision

CONFIG = RunConfig(
    max_dim=64, step=16, iterations=8,
    kernels=(Kernel.GEMM, Kernel.GEMV),
    precisions=(Precision.SINGLE, Precision.DOUBLE),
)

MODEL = make_model("dawn")


class KillWorkerBackend(AnalyticBackend):
    """Hard-kills any pool worker that samples the victim kernel —
    *mid-shard*, after a couple of cells already journaled.

    Overriding only the scalar sampler also disqualifies the vectorized
    fast path (the batch/scalar pair no longer comes from one class), so
    the shard genuinely dies partway through its per-cell loop.  The
    parent pid guard means the supervised executor's in-process retry
    survives, exactly like the ``REPRO_CHAOS_KILL_SHARD`` hook.
    """

    def __init__(self, model, victim_kernel=Kernel.GEMV):
        super().__init__(model)
        self.parent_pid = os.getpid()
        self.victim_kernel = victim_kernel
        self.calls = 0

    def cpu_sample(self, kernel, dims, precision, iterations,
                   alpha=1.0, beta=0.0):
        if kernel is self.victim_kernel and os.getpid() != self.parent_pid:
            self.calls += 1
            if self.calls > 2:
                os._exit(1)
        return super().cpu_sample(
            kernel, dims, precision, iterations, alpha, beta
        )


def _csv_bytes(result, directory):
    return {p.name: p.read_bytes() for p in write_run(result, directory)}


def test_worker_crash_mid_shard_completes_byte_identical(tmp_path):
    serial = run_sweep(AnalyticBackend(MODEL), CONFIG, "dawn")
    crashed = run_sweep(KillWorkerBackend(MODEL), CONFIG, "dawn", jobs=4)
    assert crashed.complete
    assert crashed.stats.worker_retries >= _MAX_SHARD_RETRIES + 1
    assert crashed.stats.inprocess_shards == 2  # gemv x {single, double}
    assert crashed.stats.backoff_s > 0  # simulated, never slept
    assert _csv_bytes(serial, tmp_path / "a") == _csv_bytes(
        crashed, tmp_path / "b"
    )


def test_recoveries_are_journaled_and_journal_replays(tmp_path):
    ckpt = tmp_path / "sweep.jsonl"
    result = run_sweep(
        KillWorkerBackend(MODEL), CONFIG, "dawn", jobs=4, checkpoint=ckpt
    )
    assert result.complete
    kinds = [
        json.loads(line)["kind"]
        for line in ckpt.read_text().splitlines()
        if json.loads(line).get("t") == "event"
    ]
    assert "shard-retry" in kinds and "shard-inprocess" in kinds
    # every shard journal merged and cleaned up, and the merged journal
    # (checksums included) still replays
    assert not list(tmp_path.glob("*.shard-*"))
    state = CheckpointReader.load(ckpt, CONFIG, "dawn")
    n_cells = sum(len(s.all_samples()) for s in result.series)
    assert len(state.samples) == n_cells


def test_chaos_env_hook_kills_and_recovers(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS_KILL_SHARD", "0")
    serial = run_sweep(AnalyticBackend(MODEL), CONFIG, "dawn")
    chaos = run_sweep(AnalyticBackend(MODEL), CONFIG, "dawn", jobs=2)
    assert chaos.complete
    assert chaos.stats.inprocess_shards == 1
    assert _csv_bytes(serial, tmp_path / "a") == _csv_bytes(
        chaos, tmp_path / "b"
    )


class HangingBackend(AnalyticBackend):
    """Wedges (only inside a pool worker) on the victim kernel."""

    def __init__(self, model):
        super().__init__(model)
        self.parent_pid = os.getpid()

    def cpu_sample(self, kernel, dims, precision, iterations,
                   alpha=1.0, beta=0.0):
        if kernel is Kernel.GEMV and os.getpid() != self.parent_pid:
            time.sleep(300)
        return super().cpu_sample(
            kernel, dims, precision, iterations, alpha, beta
        )


def test_shard_deadline_kills_wedged_worker_and_completes(tmp_path):
    config = RunConfig(
        max_dim=64, step=16, iterations=8,
        kernels=(Kernel.GEMM, Kernel.GEMV),
        precisions=(Precision.SINGLE,),
    )
    serial = run_sweep(AnalyticBackend(MODEL), config, "dawn")
    start = time.monotonic()
    result = run_sweep(
        HangingBackend(MODEL), config, "dawn", jobs=2, shard_timeout_s=1.0
    )
    elapsed = time.monotonic() - start
    assert result.complete
    assert result.stats.inprocess_shards == 1
    assert elapsed < 60  # three 1s deadlines, not three 300s sleeps
    assert _csv_bytes(serial, tmp_path / "a") == _csv_bytes(
        result, tmp_path / "b"
    )


def test_shard_timeout_validation():
    with pytest.raises(ConfigError, match="shard_timeout_s"):
        run_sweep(AnalyticBackend(MODEL), CONFIG, "dawn", shard_timeout_s=0)
