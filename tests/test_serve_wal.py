"""The durable job journal: leases, exactly-once completion, lenient
loading, torn-tail repair idempotence, and replay byte-identity.

The two hypothesis properties mirror the checkpoint layer's
resume-identity guarantees: (1) dropping a torn tail is a fixed point —
repairing twice changes nothing more — and (2) a daemon restarted over
a journal of accepted-but-incomplete jobs answers them with payloads
byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import asyncio
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fsck import fsck_paths
from repro.errors import ConfigError
from repro.faults.servechaos import (
    ServeChaosKind,
    ServeChaosPlan,
    flip_byte_in_last_record,
)
from repro.serve.client import ServeClient
from repro.serve.service import ServeConfig, start_server
from repro.serve.wal import (
    WriteAheadLog,
    load_wal_state,
    repair_wal_tail,
)

QUERY = {
    "system": "dawn",
    "kernel": "gemm",
    "problem": "square",
    "precision": "single",
    "iterations": 8,
    "paradigm": "once",
    "backend": "analytic",
    "min_dim": 1,
    "max_dim": 64,
    "step": 16,
    "dim": None,
    "min_consecutive": 2,
    "include_series": False,
}


def make_wal(tmp_path, **kwargs):
    return WriteAheadLog(tmp_path / "serve-wal.jsonl", owner="t:1", **kwargs)


def test_accept_complete_lifecycle(tmp_path):
    wal = make_wal(tmp_path)
    a = wal.append_accept("key-a", QUERY)
    b = wal.append_accept("key-b", QUERY)
    assert [j.job_id for j in wal.pending()] == [a, b]
    assert wal.counts() == {"pending": 2, "complete": 0, "dead": 0}

    assert wal.mark_complete(a) is True
    # exactly once: the second completion writes nothing
    assert wal.mark_complete(a) is False
    assert wal.mark_dead(b, "test") is True
    assert wal.mark_dead(b, "again") is False
    assert wal.counts() == {"pending": 0, "complete": 1, "dead": 1}
    wal.close()

    lines = (tmp_path / "serve-wal.jsonl").read_text().splitlines()
    completes = [ln for ln in lines if json.loads(ln).get("t") == "complete"]
    assert len(completes) == 1

    # a fresh reader reconstructs the same state
    state = load_wal_state(tmp_path / "serve-wal.jsonl")
    assert state.has_header and state.corrupt_records == 0
    assert state.counts() == {"pending": 0, "complete": 1, "dead": 1}


def test_restart_survives_and_renew_bumps_lease(tmp_path):
    clock = {"now": 100.0}
    wal = make_wal(tmp_path, lease_s=10.0, clock=lambda: clock["now"])
    job_id = wal.append_accept("key-a", QUERY)
    assert wal.lease_counts() == (1, 0)
    clock["now"] = 111.0  # past the deadline
    assert wal.lease_counts() == (0, 1)
    wal.close()

    wal2 = WriteAheadLog(
        tmp_path / "serve-wal.jsonl",
        owner="t:2",
        lease_s=10.0,
        clock=lambda: clock["now"],
    )
    (job,) = wal2.pending()
    assert job.job_id == job_id and job.attempt == 1 and job.owner == "t:1"
    assert wal2.renew(job_id) == 2
    assert job.owner == "t:2" and not job.expired(clock["now"])
    # ids keep increasing across restarts
    assert wal2.append_accept("key-b", QUERY) == job_id + 1
    wal2.close()


def test_lenient_load_skips_corrupt_records(tmp_path):
    wal = make_wal(tmp_path)
    wal.append_accept("key-a", QUERY)
    wal.append_accept("key-b", QUERY)
    wal.close()
    path = tmp_path / "serve-wal.jsonl"
    lines = path.read_text().splitlines()
    lines[1] = lines[1].replace("key-a", "key-x")  # checksum now lies
    path.write_text("".join(ln + "\n" for ln in lines))

    state = load_wal_state(path)
    assert state.corrupt_records == 1
    assert [j.key for j in state.pending()] == ["key-b"]

    # the writer still opens over the damage (and keeps the survivors)
    wal2 = WriteAheadLog(path, owner="t:2")
    assert [j.key for j in wal2.pending()] == ["key-b"]
    wal2.close()


def test_headerless_damage_is_rotated_aside(tmp_path):
    path = tmp_path / "serve-wal.jsonl"
    path.write_text('{"not": "a wal"}\n')
    wal = WriteAheadLog(path, owner="t:1")
    assert wal.pending() == []
    wal.close()
    assert (tmp_path / "serve-wal.jsonl.bad").read_text() == '{"not": "a wal"}\n'
    assert load_wal_state(path).has_header


def test_fsck_audits_and_repairs_the_wal(tmp_path):
    wal = make_wal(tmp_path)
    wal.append_accept("key-a", QUERY)
    wal.close()
    path = tmp_path / "serve-wal.jsonl"
    assert fsck_paths([path]) == []

    assert flip_byte_in_last_record(path) is True
    findings = fsck_paths([path])
    assert findings and all(not f.repaired for f in findings)

    repaired = fsck_paths([path], repair=True)
    assert all(f.repaired for f in repaired)
    assert fsck_paths([path]) == []
    assert (tmp_path / "serve-wal.jsonl.bad").exists()


def test_chaos_plan_parse_and_determinism():
    plan = ServeChaosPlan.parse("heavy:42")
    assert plan.seed == 42 and plan.enabled
    draws = [
        plan.fires(ServeChaosKind.FAIL_BACKEND, ("key", i)) for i in range(64)
    ]
    assert draws == [
        plan.fires(ServeChaosKind.FAIL_BACKEND, ("key", i)) for i in range(64)
    ]
    assert any(draws) and not all(draws)
    assert not ServeChaosPlan.parse("light").fires(
        ServeChaosKind.WAL_BITFLIP, ("key", 1)
    )
    with pytest.raises(ConfigError):
        ServeChaosPlan.parse("hurricane")
    with pytest.raises(ConfigError):
        ServeChaosPlan.parse("light:not-a-seed")
    with pytest.raises(ConfigError):
        ServeChaosPlan(rates={ServeChaosKind.FAIL_BACKEND: 1.0})


@settings(max_examples=20, deadline=None)
@given(
    keys=st.lists(
        st.text(alphabet="abcdef0123456789", min_size=4, max_size=8),
        min_size=0,
        max_size=4,
    ),
    # a real torn tail is a truncated JSON record: printable text (the
    # underlying repair is line-oriented, so splitlines boundaries like
    # \x1e would make a *multi-line* artifact, which is not a torn tail)
    tail=st.text(
        alphabet='{}[]":,.-_ abcdefghij0123456789', min_size=1, max_size=40
    ),
)
def test_torn_tail_repair_is_idempotent(tmp_path_factory, keys, tail):
    tmp_path = tmp_path_factory.mktemp("wal")
    path = tmp_path / "serve-wal.jsonl"
    wal = WriteAheadLog(path, owner="t:1")
    for key in keys:
        wal.append_accept(key, QUERY)
    wal.close()
    intact = path.read_bytes()

    # crash artifact: a partially flushed final line
    path.write_bytes(intact + tail.encode("ascii"))
    assert repair_wal_tail(path) is True
    assert path.read_bytes() == intact
    # fixed point: repairing again changes nothing
    assert repair_wal_tail(path) is False
    assert path.read_bytes() == intact
    state = load_wal_state(path)
    assert state.corrupt_records == 0
    assert [j.key for j in state.pending()] == keys


@settings(max_examples=5, deadline=None)
@given(
    max_dim=st.sampled_from([48, 64]),
    iterations=st.sampled_from([4, 8]),
    kernel=st.sampled_from(["gemm", "gemv"]),
)
def test_replay_after_crash_is_byte_identical(
    tmp_path_factory, max_dim, iterations, kernel
):
    """A journal of accepted-but-incomplete jobs, replayed by a fresh
    daemon, answers byte-identically to an uninterrupted run."""
    tmp = tmp_path_factory.mktemp("replay")
    body = dict(
        QUERY, max_dim=max_dim, iterations=iterations, kernel=kernel
    )

    async def uninterrupted():
        config = ServeConfig(port=0, cache_dir=str(tmp / "clean"))
        handle = await start_server(config)
        client = ServeClient(handle.host, handle.port)
        try:
            await client.post("/v1/threshold", body)  # miss: executes
            warm = await client.post("/v1/threshold", body)
            return warm.body
        finally:
            await client.close()
            await handle.drain(10.0)

    async def crashed_then_replayed():
        cache = tmp / "crashed"
        # the "crash": an accept journaled before kill -9, never run
        wal = WriteAheadLog(cache / "serve-wal.jsonl", owner="dead:1")
        wal.append_accept("bogus-key-never-computed", body)
        wal.close()
        config = ServeConfig(port=0, cache_dir=str(cache))
        handle = await start_server(config)
        client = ServeClient(handle.host, handle.port)
        try:
            assert handle.service.replay_task is not None
            await asyncio.wait_for(handle.service.replay_task, 30.0)
            assert handle.service.metrics.jobs_replayed == 1
            assert handle.service.wal.counts()["pending"] == 0
            warm = await client.post("/v1/threshold", body)
            assert warm.json()["cache"]["hit"] is True
            return warm.body
        finally:
            await client.close()
            await handle.drain(10.0)

    reference = asyncio.run(uninterrupted())
    replayed = asyncio.run(crashed_then_replayed())
    assert replayed == reference
