"""Parallel sweep executor: jobs=N must be bit-identical to serial.

The executor shards (problem type, precision) series across a process
pool and merges in submission order; nothing about the numbers may
change.  These tests compare full :class:`RunResult` equality *and* the
written CSV bytes for every table-style configuration (at a reduced
sweep range), plus a resumed run whose journal mixes serial and
parallel segments.
"""

from __future__ import annotations

import warnings

import pytest

from repro import AnalyticBackend, make_model, run_sweep
from repro.backends.des import DesBackend
from repro.core.config import RunConfig
from repro.core.csvio import write_run
from repro.errors import PartialSweepWarning
from repro.types import Kernel, Precision

MODEL = make_model("dawn")

#: reduced-range stand-ins for the Table III–VI sweep configurations
TABLE_CONFIGS = {
    "table3": RunConfig(
        max_dim=96, step=16, iterations=8,
        kernels=(Kernel.GEMM,), problem_idents=("square",),
    ),
    "table4": RunConfig(
        max_dim=96, step=16, iterations=8,
        kernels=(Kernel.GEMV,), problem_idents=("square",),
    ),
    "table5": RunConfig(
        max_dim=96, step=16, iterations=8, kernels=(Kernel.GEMM,),
        problem_idents=("mn_k32", "mn32_k", "mk32_n", "kn32_m"),
    ),
    "table6": RunConfig(
        max_dim=96, step=16, iterations=8, kernels=(Kernel.GEMV,),
        problem_idents=("m32_n", "n32_m"),
    ),
}


def _csv_bytes(result, out_dir):
    paths = write_run(result, out_dir)
    return {p.name: p.read_bytes() for p in paths}


@pytest.mark.parametrize("table", sorted(TABLE_CONFIGS))
def test_parallel_csvs_byte_identical_to_serial(table, tmp_path):
    config = TABLE_CONFIGS[table]
    backend = AnalyticBackend(MODEL)
    serial = run_sweep(backend, config, "dawn")
    parallel = run_sweep(backend, config, "dawn", jobs=4)
    assert parallel == serial
    assert _csv_bytes(parallel, tmp_path / "par") == _csv_bytes(
        serial, tmp_path / "ser"
    )


def test_parallel_series_order_matches_serial():
    config = RunConfig(
        max_dim=64, step=16, iterations=1,
        problem_idents=("square", "mn_k32", "m32_n"),
    )
    backend = AnalyticBackend(MODEL)
    serial = run_sweep(backend, config, "dawn")
    parallel = run_sweep(backend, config, "dawn", jobs=3)
    assert [
        (s.kernel, s.ident, s.precision) for s in parallel.series
    ] == [(s.kernel, s.ident, s.precision) for s in serial.series]


def test_des_backend_series_parallelize():
    """The DES engine stays serial within a series, but series still
    shard across workers."""
    config = RunConfig(
        max_dim=48, step=16, iterations=4,
        precisions=(Precision.SINGLE,),
    )
    backend = DesBackend(make_model("lumi"))
    serial = run_sweep(backend, config, "lumi")
    parallel = run_sweep(backend, config, "lumi", jobs=2)
    assert parallel == serial


def test_resumed_run_mixing_serial_and_parallel_segments(tmp_path):
    """Journal half the sweep serially, finish it with jobs=4, and the
    merged result (and its journal-replayed twin) must equal a straight
    serial run."""
    config = RunConfig(max_dim=64, step=16, iterations=8)
    backend = AnalyticBackend(MODEL)
    reference = run_sweep(backend, config, "dawn")

    class Interrupting:
        """Stops the sweep partway through by raising on the Nth call."""

        def __init__(self, inner, fail_after):
            self._inner = inner
            self._calls = 0
            self._fail_after = fail_after

        def __getattr__(self, name):
            if name.endswith("_batch"):
                raise AttributeError(name)  # per-cell path, exact counting
            return getattr(self._inner, name)

        @property
        def gpu_transfers(self):
            return self._inner.gpu_transfers

        @property
        def has_gpu(self):
            return self._inner.has_gpu

        def cpu_sample(self, *args, **kwargs):
            self._tick()
            return self._inner.cpu_sample(*args, **kwargs)

        def gpu_sample(self, *args, **kwargs):
            self._tick()
            return self._inner.gpu_sample(*args, **kwargs)

        def _tick(self):
            self._calls += 1
            if self._calls > self._fail_after:
                raise KeyboardInterrupt

    ck = tmp_path / "ck.jsonl"
    with pytest.raises(KeyboardInterrupt):
        run_sweep(Interrupting(backend, 25), config, "dawn", checkpoint=ck)

    finished = run_sweep(
        backend, config, "dawn", checkpoint=ck, resume=True, jobs=4
    )
    assert finished.stats.resumed_samples == 25
    assert finished == reference

    replayed = run_sweep(
        backend, config, "dawn", checkpoint=ck, resume=True
    )
    assert replayed == reference


def test_parallel_fault_injection_falls_back_to_serial():
    """jobs>1 with faults silently runs in-process — fault attempt
    counters are per-injector state that cannot shard."""
    from repro import FaultInjector, FaultPlan, RetryPolicy

    config = RunConfig(
        max_dim=48, step=16, iterations=8, precisions=(Precision.SINGLE,),
    )
    plan = FaultPlan.uniform(0.2, seed=13)
    retry = RetryPolicy(max_retries=2)

    def sweep(jobs):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PartialSweepWarning)
            return run_sweep(
                FaultInjector(AnalyticBackend(MODEL), plan), config,
                "dawn", retry=retry, jobs=jobs,
            )

    assert sweep(4) == sweep(1)
