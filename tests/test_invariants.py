"""Model-invariant guard: honest models pass, implausible ones don't.

The guard must be *silent* on every calibrated system under every
backend (a false positive would poison CI), must reject a spec
calibrated above its own link bandwidth in strict mode, and must catch
a backend emitting physically impossible samples — faster than the
link-bandwidth floor or above the roofline.
"""

from __future__ import annotations

import dataclasses
import warnings

import pytest

from repro import (
    AnalyticBackend,
    InvariantContext,
    ModelInvariantError,
    ModelInvariantWarning,
    RunConfig,
    check_samples,
    make_model,
    run_sweep,
    system_names,
    validate_spec,
)
from repro.backends.des import DesBackend
from repro.core.invariants import guard_samples, invariant_context
from repro.core.records import PerfSample
from repro.sim.noise import DeterministicNoise
from repro.systems.catalog import get_system
from repro.types import DeviceKind, Dims, Kernel, Precision, TransferType

CONFIG = RunConfig(
    max_dim=96, step=16, iterations=8,
    kernels=(Kernel.GEMM, Kernel.GEMV),
    precisions=(Precision.SINGLE, Precision.DOUBLE),
)

STRICT = dataclasses.replace(CONFIG, validate=True)


def _bad_spec(name="dawn", **link_overrides):
    spec = get_system(name)
    return dataclasses.replace(
        spec, link=dataclasses.replace(spec.link, **link_overrides)
    )


# -- spec calibration audit -------------------------------------------


def test_every_catalog_spec_is_clean():
    for name in system_names():
        assert validate_spec(get_system(name)) == [], name


def test_spec_calibrated_above_its_link_bandwidth_is_flagged():
    bad = _bad_spec(staging_bw_scale=1.5)
    violations = validate_spec(bad)
    assert any("above the link peak" in v for v in violations)


def test_strict_sweep_rejects_bad_spec_before_sampling():
    backend = AnalyticBackend(make_model(_bad_spec(staging_bw_scale=1.5)))
    with pytest.raises(ModelInvariantError, match="above the link peak"):
        run_sweep(backend, STRICT, "dawn")


def test_default_mode_warns_once_and_completes():
    backend = AnalyticBackend(make_model(_bad_spec(staging_bw_scale=1.5)))
    with pytest.warns(ModelInvariantWarning, match="above the link peak"):
        result = run_sweep(backend, CONFIG, "dawn")
    assert result.complete


def test_negative_latency_and_nonfinite_peaks_are_flagged():
    assert any(
        "latency" in v for v in validate_spec(_bad_spec(latency_s=-1e-6))
    )
    assert validate_spec(_bad_spec(bw_gbs=float("nan")))


# -- honest sweeps stay silent ----------------------------------------


@pytest.mark.parametrize("system", ["dawn", "lumi", "isambard-ai"])
@pytest.mark.parametrize("backend_cls", [AnalyticBackend, DesBackend])
def test_honest_backends_never_trip_the_guard(system, backend_cls):
    model = make_model(system, noise=DeterministicNoise(amplitude=0.05))
    with warnings.catch_warnings():
        warnings.simplefilter("error", ModelInvariantWarning)
        result = run_sweep(
            backend_cls(model),
            dataclasses.replace(STRICT, max_dim=64),
            system,
        )
    assert result.complete


def test_parallel_strict_sweep_matches_serial(tmp_path):
    model = make_model("dawn")
    serial = run_sweep(AnalyticBackend(model), STRICT, "dawn")
    parallel = run_sweep(AnalyticBackend(model), STRICT, "dawn", jobs=4)
    assert serial.series == parallel.series


# -- per-sample checks ------------------------------------------------


def _sample(seconds, gflops, device=DeviceKind.CPU, transfer=None,
            dims=Dims(64, 64, 64), iterations=8):
    return PerfSample(
        device=device, transfer=transfer, dims=dims,
        iterations=iterations, seconds=seconds, gflops=gflops,
    )


def test_nonfinite_and_nonpositive_samples_are_violations():
    ctx = InvariantContext()
    for s in (
        _sample(float("nan"), 1.0),
        _sample(0.0, 1.0),
        _sample(-1.0, 1.0),
        _sample(1.0, float("inf")),
        _sample(1.0, -2.0),
    ):
        assert check_samples([s], Precision.SINGLE, ctx), s
    assert not check_samples([_sample(1.0, 1.0)], Precision.SINGLE, ctx)


def test_link_bandwidth_floor_catches_impossible_transfer():
    ctx = invariant_context(AnalyticBackend(make_model("dawn")))
    dims = Dims(4096, 4096, 4096)
    # ~200 MB of operands through a ~64 GB/s link in a nanosecond
    cheat = _sample(
        1e-9, 1.0, device=DeviceKind.GPU, transfer=TransferType.ONCE,
        dims=dims,
    )
    violations = check_samples([cheat], Precision.SINGLE, ctx)
    assert violations and "link" in violations[0][1]


def test_roofline_ceiling_catches_impossible_rate():
    ctx = invariant_context(AnalyticBackend(make_model("dawn")))
    cheat = _sample(1.0, 1e9)  # an exaflop/s CPU
    violations = check_samples([cheat], Precision.DOUBLE, ctx)
    assert violations and "roofline" in violations[0][1]


def test_strict_guard_raises_default_guard_warns():
    ctx = InvariantContext()
    bad = [_sample(-1.0, 1.0)]
    with pytest.raises(ModelInvariantError, match="non-positive"):
        guard_samples(bad, Precision.SINGLE, ctx, strict=True)
    with pytest.warns(ModelInvariantWarning, match="non-positive"):
        guard_samples(bad, Precision.SINGLE, ctx, strict=False)


def test_vectorized_column_check_agrees_with_scalar():
    """Above the batch threshold the guard vectorizes; the flagged set
    must be identical to the per-sample reference."""
    ctx = invariant_context(AnalyticBackend(make_model("dawn")))
    column = [
        _sample(
            1e-9 if i % 7 == 0 else 1.0,
            1.0,
            device=DeviceKind.GPU,
            transfer=TransferType.ONCE,
            dims=Dims(2048 + i, 2048 + i, 2048 + i),
        )
        for i in range(64)
    ]
    scalar = {id(s) for s, _ in check_samples(column, Precision.SINGLE, ctx)}
    assert scalar  # the cheats are in there
    with pytest.warns(ModelInvariantWarning) as caught:
        guard_samples(column, Precision.SINGLE, ctx, strict=False)
    assert len(caught) == len(scalar)


def test_backend_emitting_garbage_fails_strict_sweep():
    class Broken(AnalyticBackend):
        def cpu_sample(self, kernel, dims, precision, iterations,
                       alpha=1.0, beta=0.0):
            sample = super().cpu_sample(
                kernel, dims, precision, iterations, alpha, beta
            )
            return dataclasses.replace(sample, seconds=-sample.seconds)

    backend = Broken(make_model("dawn"))
    with pytest.raises(ModelInvariantError, match="non-positive"):
        run_sweep(backend, STRICT, "dawn")
    with pytest.warns(ModelInvariantWarning):
        result = run_sweep(Broken(make_model("dawn")), CONFIG, "dawn")
    assert result.complete  # non-strict keeps the samples, loudly
