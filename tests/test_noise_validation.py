"""DeterministicNoise amplitude validation and boundary behavior."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.sim.noise import NO_NOISE, DeterministicNoise, NoiseModel

KEY = ("gpu", "once", (64, 64, 64), "single", 8)


def test_negative_amplitude_rejected():
    with pytest.raises(ConfigError, match=r"\[0, 1\)"):
        DeterministicNoise(amplitude=-0.01)
    with pytest.raises(ConfigError):
        NoiseModel(amplitude=-1e-9)


def test_amplitude_one_or_more_rejected():
    """amplitude >= 1 could produce a zero/negative time factor."""
    with pytest.raises(ConfigError):
        DeterministicNoise(amplitude=1.0)
    with pytest.raises(ConfigError):
        DeterministicNoise(amplitude=2.5)


def test_zero_amplitude_is_exact():
    noise = DeterministicNoise(amplitude=0.0)
    assert noise.factor(KEY) == 1.0
    assert NO_NOISE.factor(KEY) == 1.0


def test_amplitude_just_below_one_accepted():
    noise = DeterministicNoise(amplitude=0.999)
    factor = noise.factor(KEY)
    assert 0.0 < factor < 2.0


def test_factors_bounded_by_amplitude():
    noise = DeterministicNoise(amplitude=0.05, seed=3)
    for m in range(1, 200, 7):
        f = noise.factor(("gpu", "always", (m, m, m), "double", 1))
        assert 0.95 <= f <= 1.05


def test_factor_deterministic_and_seed_dependent():
    a = DeterministicNoise(amplitude=0.02, seed=1)
    b = DeterministicNoise(amplitude=0.02, seed=1)
    c = DeterministicNoise(amplitude=0.02, seed=2)
    assert a.factor(KEY) == b.factor(KEY)
    assert a.factor(KEY) != c.factor(KEY)
