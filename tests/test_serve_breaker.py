"""Circuit breakers and degraded-mode answers.

Unit layer: the closed → open → half-open machine under a fake clock.
Service layer: a backend forced to fail must never surface a 500 — the
daemon answers from the sweep cache in stale-while-revalidate mode
(``degraded: true``, ``Warning`` header) or with a retryable 503, and
``/readyz`` flips while every breaker is open.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import AnalyticBackend, RunConfig, make_model, run_sweep
from repro.errors import TransientKernelError
from repro.serve.breaker import BreakerBoard, BreakerState, CircuitBreaker
from repro.serve.client import ServeClient
from repro.serve.service import ServeConfig, start_server
from repro.types import Kernel, Precision

BODY = {
    "system": "dawn",
    "kernel": "gemm",
    "problem": "square",
    "precision": "single",
    "iterations": 8,
    "paradigm": "once",
    "min_dim": 1,
    "max_dim": 64,
    "step": 16,
}


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def test_breaker_trips_after_consecutive_failures():
    clock = FakeClock()
    b = CircuitBreaker(failure_threshold=3, reset_timeout_s=10.0, clock=clock)
    assert b.state is BreakerState.CLOSED and b.allow()
    b.record_failure()
    b.record_failure()
    b.record_success()  # success resets the consecutive count
    b.record_failure()
    b.record_failure()
    assert b.state is BreakerState.CLOSED
    b.record_failure()
    assert b.state is BreakerState.OPEN
    assert not b.allow()
    assert b.opens == 1
    assert 0 < b.retry_after_s() <= 10.0


def test_half_open_admits_one_probe():
    clock = FakeClock()
    b = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0, clock=clock)
    b.record_failure()
    assert b.state is BreakerState.OPEN
    clock.now = 10.0
    assert b.state is BreakerState.HALF_OPEN
    assert b.allow() is True  # the probe slot
    assert b.allow() is False  # ... is exclusive
    b.record_success()
    assert b.state is BreakerState.CLOSED and b.allow()


def test_failed_probe_reopens_with_fresh_cooldown():
    clock = FakeClock()
    b = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0, clock=clock)
    b.record_failure()
    clock.now = 10.0
    assert b.allow() is True
    b.record_failure()
    assert b.state is BreakerState.OPEN
    assert b.retry_after_s() == pytest.approx(10.0)
    assert b.opens == 2


def test_board_all_open_semantics():
    clock = FakeClock()
    board = BreakerBoard(failure_threshold=1, reset_timeout_s=10.0, clock=clock)
    assert board.all_open() is False  # empty board is not "all open"
    a = board.breaker(("dawn", "analytic"))
    b = board.breaker(("lumi", "analytic"))
    assert board.breaker(("dawn", "analytic")) is a
    a.record_failure()
    assert board.all_open() is False
    b.record_failure()
    assert board.all_open() is True
    snap = board.snapshot()
    assert snap["dawn/analytic"]["state"] == "open"
    assert snap["lumi/analytic"]["opens"] == 1


class FailingSweep:
    """A backend that always faults transiently."""

    def __init__(self) -> None:
        self.calls = 0

    def __call__(self, backend, config, system_name=None, cache_dir=None):
        self.calls += 1
        raise TransientKernelError("injected: kernel launch failed")


def warm_stale_entry(cache_dir, iterations=4):
    """Seed the cache with a *nearby* sweep (different iteration count)
    so degraded mode has something stale to answer from."""
    config = RunConfig(
        max_dim=64, step=16, iterations=iterations,
        kernels=(Kernel.GEMM,), precisions=(Precision.SINGLE,),
    )
    backend = AnalyticBackend(make_model("dawn"))
    run_sweep(backend, config, "dawn", cache_dir=cache_dir)


def test_forced_backend_failure_degrades_instead_of_500(tmp_path):
    sweep = FailingSweep()
    cache = tmp_path / "cache"
    warm_stale_entry(cache, iterations=4)

    async def check():
        config = ServeConfig(
            port=0,
            cache_dir=str(cache),
            breaker_threshold=2,
            breaker_reset_s=60.0,
        )
        handle = await start_server(config, sweep_fn=sweep)
        client = ServeClient(handle.host, handle.port)
        try:
            # executed-and-failed jobs: stale answer, never a 500
            for _ in range(2):
                r = await client.post("/v1/threshold", BODY)
                assert r.status == 200
                payload = r.json()
                assert payload["degraded"] is True
                assert payload["cache"]["stale_iterations"] == 4
                assert "stale threshold" in r.headers["warning"]
            # breaker now open: answered without touching the backend
            r = await client.post("/v1/threshold", BODY)
            assert r.status == 200 and r.json()["degraded"] is True
            assert sweep.calls == 2

            ready = await client.get("/readyz")
            assert ready.status == 503
            assert ready.json()["breakers_closed"] is False
            health = await client.get("/healthz")
            assert health.status == 200  # alive, just not ready

            metrics = (await client.get("/metrics")).json()
            board = metrics["breakers"]["dawn/analytic"]
            assert board["state"] == "open"
            assert board["failures"] == 2
            assert metrics["degraded"]["answers"] == 3
            assert metrics["statuses"].get("500") is None
        finally:
            await client.close()
            await handle.drain(5.0)

    asyncio.run(check())


def test_degraded_without_stale_data_is_a_retryable_503(tmp_path):
    sweep = FailingSweep()

    async def check():
        config = ServeConfig(
            port=0,
            cache_dir=str(tmp_path / "cache"),  # empty: nothing stale
            breaker_threshold=1,
            breaker_reset_s=60.0,
        )
        handle = await start_server(config, sweep_fn=sweep)
        client = ServeClient(handle.host, handle.port)
        try:
            r = await client.post("/v1/threshold", BODY)
            assert r.status == 503
            error = r.json()["error"]
            assert error["family"] == "fault" and error["exit_code"] == 3
            assert "retry-after" in r.headers
            metrics = (await client.get("/metrics")).json()
            assert metrics["degraded"]["unavailable"] == 1
            assert metrics["statuses"].get("500") is None
        finally:
            await client.close()
            await handle.drain(5.0)

    asyncio.run(check())


def test_half_open_probe_recovers_the_service(tmp_path):
    """After the cooldown, one probe runs; when the backend has healed,
    the breaker closes and fresh answers flow again."""

    class FlakySweep:
        def __init__(self) -> None:
            self.calls = 0
            self.healed = False
            config = RunConfig(
                max_dim=64, step=16, iterations=8,
                kernels=(Kernel.GEMM,), precisions=(Precision.SINGLE,),
            )
            self._result = run_sweep(
                AnalyticBackend(make_model("dawn")), config, "dawn"
            )

        def __call__(self, backend, config, system_name=None, cache_dir=None):
            self.calls += 1
            if not self.healed:
                raise TransientKernelError("still failing")
            return self._result

    sweep = FlakySweep()

    async def check():
        config = ServeConfig(
            port=0,
            cache_dir=str(tmp_path / "cache"),
            breaker_threshold=1,
            breaker_reset_s=0.05,
        )
        handle = await start_server(config, sweep_fn=sweep)
        client = ServeClient(handle.host, handle.port)
        try:
            r = await client.post("/v1/threshold", BODY)
            assert r.status == 503  # failed, nothing stale yet
            sweep.healed = True
            await asyncio.sleep(0.06)  # cooldown elapses -> half-open
            r = await client.post("/v1/threshold", BODY)
            assert r.status == 200 and r.json()["degraded"] is False
            metrics = (await client.get("/metrics")).json()
            assert metrics["breakers"]["dawn/analytic"]["state"] == "closed"
            ready = await client.get("/readyz")
            assert ready.status == 200
        finally:
            await client.close()
            await handle.drain(5.0)

    asyncio.run(check())


def test_half_open_concurrent_claims_one_winner():
    """A burst of simultaneous claims during half-open: exactly one
    caller gets the probe slot, and a failed probe restarts the full
    cooldown for everyone."""
    clock = FakeClock()
    b = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0, clock=clock)
    b.record_failure()
    clock.now = 10.0
    claims = [b.allow() for _ in range(8)]
    assert claims.count(True) == 1 and claims[0] is True
    b.record_failure()  # the probe loses -> re-open, fresh cooldown
    assert b.state is BreakerState.OPEN
    assert b.retry_after_s() == pytest.approx(10.0)
    assert not any(b.allow() for _ in range(4))
    clock.now = 20.0
    assert [b.allow() for _ in range(3)].count(True) == 1
    b.record_success()
    assert b.state is BreakerState.CLOSED and b.allow()


def test_half_open_probe_race_loser_gets_cooldown_503(tmp_path):
    """Two cold keys race for one half-open breaker: the first claims
    the probe slot and runs; the concurrent loser is refused with a
    retryable 503 *while the probe is still in flight* — it must not
    queue a second execution behind the probe."""
    import threading

    class GatedSweep:
        """Fails once to trip the breaker, then blocks the probe on an
        event so a rival request provably overlaps it."""

        def __init__(self) -> None:
            self.calls = 0
            self.started = threading.Event()
            self.release = threading.Event()
            config = RunConfig(
                max_dim=64, step=16, iterations=9,
                kernels=(Kernel.GEMM,), precisions=(Precision.SINGLE,),
            )
            self._result = run_sweep(
                AnalyticBackend(make_model("dawn")), config, "dawn"
            )

        def __call__(self, backend, config, system_name=None, cache_dir=None):
            self.calls += 1
            if self.calls == 1:
                raise TransientKernelError("injected: trip the breaker")
            self.started.set()
            assert self.release.wait(10.0), "probe never released"
            return self._result

    sweep = GatedSweep()

    async def check():
        config = ServeConfig(
            port=0,
            cache_dir=str(tmp_path / "cache"),  # empty: no stale answers
            breaker_threshold=1,
            breaker_reset_s=0.05,
        )
        handle = await start_server(config, sweep_fn=sweep)
        prober = ServeClient(handle.host, handle.port)
        rival = ServeClient(handle.host, handle.port)
        loop = asyncio.get_running_loop()
        try:
            r = await prober.post("/v1/threshold", BODY)
            assert r.status == 503  # breaker trips open
            await asyncio.sleep(0.06)  # cooldown elapses -> half-open

            probe_body = dict(BODY, iterations=9)
            probe = asyncio.create_task(
                prober.post("/v1/threshold", probe_body)
            )
            started = await loop.run_in_executor(
                None, sweep.started.wait, 5.0
            )
            assert started, "probe request never reached the backend"

            # the rival arrives while the probe holds the only slot
            loser = await rival.post(
                "/v1/threshold", dict(BODY, iterations=10)
            )
            assert loser.status == 503
            assert "retry-after" in loser.headers
            assert "half-open" in loser.json()["error"]["message"]
            assert loser.degraded is False

            sweep.release.set()
            won = await probe
            assert won.status == 200 and won.json()["degraded"] is False
            assert sweep.calls == 2  # trip + probe; the loser ran nothing

            metrics = (await prober.get("/metrics")).json()
            assert metrics["breakers"]["dawn/analytic"]["state"] == "closed"
        finally:
            sweep.release.set()
            await prober.close()
            await rival.close()
            await handle.drain(5.0)

    asyncio.run(check())
