"""Campaign orchestration: matrix expansion, resume, drift detection.

The campaign contract is byte-level determinism: the same campaign file
must produce an identical aggregated report whether it ran serially,
sharded across workers, straight through, or interrupted and resumed —
and a report that differs from its stored golden is an integrity
failure (exit 4), not a shrug.
"""

from __future__ import annotations

import textwrap

import pytest

import repro.cli as cli
from repro.core.campaign import (
    CampaignSpec,
    assert_no_drift,
    check_drift,
    expand_scenarios,
    load_campaign,
    loads_campaign,
    run_campaign,
    write_report,
)
from repro.errors import CampaignDriftError, ConfigError
from repro.systems.specio import write_spec
from repro.types import Kernel, Precision, TransferType

SMALL = textwrap.dedent(
    """\
    schema = 1
    name = "unit"

    [matrix]
    systems = ["dawn", "lumi"]
    kernels = ["gemm"]
    problems = ["square", "mn_k32"]
    precisions = ["single", "double"]
    transfers = ["once", "always"]
    iterations = [8]

    [sweep]
    min_dim = 1
    max_dim = 128
    step = 32

    [execution]
    jobs = 2
    """
)


@pytest.fixture
def small_campaign(tmp_path):
    path = tmp_path / "unit.toml"
    path.write_text(SMALL)
    return load_campaign(path)


# -- loading ----------------------------------------------------------


def test_load_parses_the_full_schema(small_campaign):
    c = small_campaign
    assert c.name == "unit"
    assert c.systems == ("dawn", "lumi")
    assert c.kernels == (Kernel.GEMM,)
    assert c.precisions == (Precision.SINGLE, Precision.DOUBLE)
    assert c.transfers == (TransferType.ONCE, TransferType.ALWAYS)
    assert c.iterations == (8,)
    assert (c.min_dim, c.max_dim, c.step) == (1, 128, 32)
    assert c.jobs == 2
    assert c.matrix_size == 2 * 2 * 2 * 2  # systems x problems x prec x para


def test_defaults_fill_unspecified_tables():
    c = loads_campaign('name = "d"\n[matrix]\nsystems = ["dawn"]\n')
    assert c.kernels == (Kernel.GEMM, Kernel.GEMV)
    assert c.precisions == (Precision.SINGLE, Precision.DOUBLE)
    assert c.transfers == tuple(TransferType)
    assert c.iterations == (1,)
    assert c.jobs == 1
    assert c.golden is None


@pytest.mark.parametrize(
    "mutation, match",
    [
        ('name = "x"\n', "matrix.systems"),
        ('name = "x"\n[matrix]\nsystems = []\n', "matrix.systems"),
        ('name = "x"\n[matrix]\nsystems = ["dawn"]\nkernels = ["spmv"]\n',
         "spmv"),
        ('name = "x"\n[matrix]\nsystems = ["dawn"]\niterations = [0]\n',
         "iterations"),
        ('name = "x"\n[matrix]\nsystems = ["dawn"]\n[bogus]\nx = 1\n',
         "bogus"),
        ('schema = 9\nname = "x"\n[matrix]\nsystems = ["dawn"]\n', "schema"),
        ('[matrix]\nsystems = ["dawn"]\n', "name"),
    ],
)
def test_bad_campaign_files_are_config_errors(mutation, match):
    with pytest.raises(ConfigError, match=match):
        loads_campaign(mutation)


def test_campaign_spec_validates_directly():
    with pytest.raises(ConfigError, match="jobs"):
        CampaignSpec(name="x", systems=("dawn",), jobs=0)


# -- matrix expansion -------------------------------------------------


def test_expansion_covers_the_matrix(small_campaign):
    scenarios = expand_scenarios(small_campaign)
    # One scenario per (system, iterations); problems x precisions x
    # paradigms live inside each scenario's RunConfig as executor shards.
    assert [s.slug for s in scenarios] == ["00-dawn-i8", "01-lumi-i8"]
    for s in scenarios:
        assert len(s.config.problem_types()) == 2
        assert s.config.precisions == small_campaign.precisions
        assert s.config.transfers == small_campaign.transfers
        assert s.config.iterations == 8
    shards = sum(
        len(s.config.problem_types()) * len(s.config.precisions)
        for s in scenarios
    )
    assert shards * len(small_campaign.transfers) == \
        small_campaign.matrix_size


def test_path_idents_resolve_relative_to_the_campaign_file(tmp_path):
    import dataclasses

    from repro.systems import DAWN

    write_spec(
        dataclasses.replace(DAWN, name="byfile"), tmp_path / "byfile.toml"
    )
    path = tmp_path / "deep" / "c.toml"
    path.parent.mkdir()
    path.write_text(
        'name = "p"\n[matrix]\nsystems = ["../byfile.toml"]\n'
    )
    campaign = load_campaign(path)
    (scenario,) = expand_scenarios(campaign)
    assert scenario.system == str(tmp_path / "deep" / ".." / "byfile.toml")
    assert scenario.slug == "00-byfile-i1"


# -- execution and determinism ----------------------------------------


def test_serial_and_parallel_reports_are_byte_identical(
    small_campaign, tmp_path
):
    serial = run_campaign(small_campaign, jobs=1)
    parallel = run_campaign(small_campaign, jobs=2)
    assert serial.complete and parallel.complete
    write_report(serial, tmp_path / "serial")
    write_report(parallel, tmp_path / "parallel")
    for name in ("campaign_report.csv", "campaign_report.json"):
        assert (tmp_path / "serial" / name).read_bytes() == \
            (tmp_path / "parallel" / name).read_bytes()


def test_stop_after_then_resume_is_byte_identical(small_campaign, tmp_path):
    full = run_campaign(small_campaign)
    write_report(full, tmp_path / "full")

    partial = run_campaign(
        small_campaign, checkpoint_dir=tmp_path / "ck", stop_after=1
    )
    assert not partial.complete
    assert partial.executed == 1
    assert list((tmp_path / "ck").glob("ck-*.jsonl"))

    resumed = run_campaign(
        small_campaign, checkpoint_dir=tmp_path / "ck", resume=True
    )
    assert resumed.complete
    write_report(resumed, tmp_path / "resumed")
    for name in ("campaign_report.csv", "campaign_report.json"):
        assert (tmp_path / "full" / name).read_bytes() == \
            (tmp_path / "resumed" / name).read_bytes()


def test_report_rows_cover_every_matrix_cell(small_campaign):
    result = run_campaign(small_campaign)
    rows = result.rows()
    assert len(rows) == small_campaign.matrix_size
    cells = {
        (r["system"], r["problem"], r["precision"], r["transfer"])
        for r in rows
    }
    assert len(cells) == small_campaign.matrix_size
    assert all(r["iterations"] == "8" for r in rows)


# -- drift detection --------------------------------------------------


def test_drift_clean_against_own_report(small_campaign, tmp_path):
    result = run_campaign(small_campaign)
    write_report(result, tmp_path / "out")
    golden = tmp_path / "out" / "campaign_report.csv"
    assert check_drift(result.rows(), golden) == []
    assert_no_drift(result.rows(), golden)  # must not raise


def test_drift_flags_moved_vanished_and_new_rows(small_campaign, tmp_path):
    result = run_campaign(small_campaign)
    write_report(result, tmp_path / "out")
    golden = tmp_path / "out" / "campaign_report.csv"

    rows = [dict(r) for r in result.rows()]
    rows[0]["found"] = "1" if rows[0]["found"] == "0" else "0"
    vanished = rows.pop()
    extra = dict(vanished)
    extra["problem"] = "invented"
    rows.append(extra)

    drifts = check_drift(rows, golden)
    assert len(drifts) == 3
    text = "\n".join(drifts)
    assert "moved" in text and "vanished" in text and "not in golden" in text
    with pytest.raises(CampaignDriftError) as excinfo:
        assert_no_drift(rows, golden)
    assert excinfo.value.drifts == tuple(drifts)


def test_golden_with_wrong_columns_is_a_config_error(
    small_campaign, tmp_path
):
    bogus = tmp_path / "g.csv"
    bogus.write_text("a,b\n1,2\n")
    with pytest.raises(ConfigError, match="columns"):
        check_drift(run_campaign(small_campaign).rows(), bogus)


# -- CLI --------------------------------------------------------------


def _write_cli_campaign(tmp_path) -> str:
    path = tmp_path / "cli.toml"
    path.write_text(SMALL.replace('"unit"', '"cli"'))
    return str(path)


def test_cli_campaign_end_to_end(tmp_path, capsys):
    campaign = _write_cli_campaign(tmp_path)
    out = tmp_path / "out"
    code = cli.main([
        "campaign", campaign, "-o", str(out), "--no-cache", "--quiet",
    ])
    assert code == 0
    capsys.readouterr()
    assert (out / "campaign_report.csv").is_file()
    assert (out / "campaign_report.json").is_file()
    # per-scenario series CSVs ride along for auditability
    assert list((out / "00-dawn-i8").glob("*.csv"))

    # Clean golden passes; a perturbed golden exits 4.
    assert cli.main([
        "campaign", campaign, "--no-cache", "--quiet",
        "--golden", str(out / "campaign_report.csv"),
    ]) == 0
    capsys.readouterr()
    golden = out / "campaign_report.csv"
    perturbed = tmp_path / "perturbed.csv"
    body = golden.read_text()
    assert ",8,0," in body
    perturbed.write_text(body.replace(",8,0,", ",8,1,", 1))
    assert cli.main([
        "campaign", campaign, "--no-cache", "--quiet",
        "--golden", str(perturbed),
    ]) == 4
    assert "drifted" in capsys.readouterr().err


def test_cli_campaign_stop_resume_cycle(tmp_path, capsys):
    campaign = _write_cli_campaign(tmp_path)
    full = tmp_path / "full"
    assert cli.main([
        "campaign", campaign, "-o", str(full), "--no-cache", "--quiet",
    ]) == 0
    assert cli.main([
        "campaign", campaign, "--checkpoint-dir", str(tmp_path / "ck"),
        "--stop-after", "1", "--no-cache", "--quiet",
    ]) == 0
    resumed = tmp_path / "resumed"
    assert cli.main([
        "campaign", campaign, "-o", str(resumed),
        "--checkpoint-dir", str(tmp_path / "ck"), "--resume",
        "--no-cache", "--quiet",
    ]) == 0
    capsys.readouterr()
    assert (full / "campaign_report.csv").read_bytes() == \
        (resumed / "campaign_report.csv").read_bytes()


def test_cli_campaign_resume_needs_checkpoint_dir(tmp_path, capsys):
    campaign = _write_cli_campaign(tmp_path)
    assert cli.main(["campaign", campaign, "--resume"]) == 2
    assert "--checkpoint-dir" in capsys.readouterr().err


def test_cli_campaign_missing_file_exits_2(tmp_path, capsys):
    assert cli.main(["campaign", str(tmp_path / "ghost.toml")]) == 2
    assert "cannot read campaign file" in capsys.readouterr().err
