"""Serial and double-buffered Transfer-Always schedules on the DES."""

from __future__ import annotations

import pytest

from repro import Dims, Precision, TransferType, make_model
from repro.sim.pipeline import (
    always_iteration_costs,
    build_pipelined_always,
    pipelined_always_time,
    serial_always_time,
)

SYSTEMS = ("dawn", "lumi", "isambard-ai")
DIMS = (Dims(32, 32, 32), Dims(256, 256, 256), Dims(1024, 1024, 1024),
        Dims(512, 64, 2048), Dims(2048, 2048))


@pytest.mark.parametrize("system", SYSTEMS)
def test_serial_schedule_matches_the_closed_form(system):
    model = make_model(system)
    for dims in DIMS:
        for iterations in (1, 8, 32):
            des = serial_always_time(model, dims, Precision.SINGLE, iterations)
            closed = model.gpu_time(
                dims, Precision.SINGLE, iterations, TransferType.ALWAYS
            )
            assert des == pytest.approx(closed, rel=1e-12)


@pytest.mark.parametrize("system", SYSTEMS)
def test_pipelining_never_loses_and_overlaps_in_steady_state(system):
    model = make_model(system)
    for dims in DIMS:
        for iterations in (1, 2, 8, 32):
            serial = serial_always_time(model, dims, Precision.SINGLE, iterations)
            piped = pipelined_always_time(model, dims, Precision.SINGLE, iterations)
            # A relaxation of the serial queue order can never be slower.
            assert piped <= serial * (1 + 1e-9)
            # Nor can the raw (noise-free) makespan beat the busiest
            # single engine.
            raw = build_pipelined_always(
                model, dims, Precision.SINGLE, iterations
            ).run()
            h2d, kern, d2h = always_iteration_costs(model, dims, Precision.SINGLE)
            assert raw >= iterations * max(h2d, kern, d2h) * (1 - 1e-9)


@pytest.mark.parametrize("system", SYSTEMS)
def test_one_iteration_has_nothing_to_overlap(system):
    model = make_model(system)
    dims = Dims(512, 512, 512)
    serial = serial_always_time(model, dims, Precision.SINGLE, 1)
    piped = pipelined_always_time(model, dims, Precision.SINGLE, 1)
    assert piped == pytest.approx(serial, rel=1e-12)


@pytest.mark.parametrize("system", SYSTEMS)
def test_overlap_buys_a_real_factor_somewhere(system):
    model = make_model(system)
    best = max(
        serial_always_time(model, Dims(m, m, m), Precision.SINGLE, 32)
        / pipelined_always_time(model, Dims(m, m, m), Precision.SINGLE, 32)
        for m in range(64, 2049, 128)
    )
    assert best > 1.3


def test_steady_state_is_bound_by_the_slowest_stage():
    """With many iterations the pipeline rate approaches
    1 / max(stage) per iteration — the classic throughput bound."""
    model = make_model("lumi")
    dims = Dims(768, 768, 768)
    iterations = 64
    h2d, kern, d2h = always_iteration_costs(model, dims, Precision.SINGLE)
    piped = pipelined_always_time(model, dims, Precision.SINGLE, iterations)
    bottleneck = max(h2d, kern, d2h)
    assert piped == pytest.approx(
        iterations * bottleneck, rel=(h2d + kern + d2h) / (8 * bottleneck)
    )


def test_double_buffering_limits_uploads_ahead():
    """h2d[i] must wait for d2h[i-2]: uploads never run more than two
    buffers ahead of the drained results."""
    model = make_model("dawn")
    engine = build_pipelined_always(
        model, Dims(256, 256, 256), Precision.SINGLE, 16, buffers=2
    )
    engine.run()
    uploads = [t for t in engine.trace if t.kind == "h2d"]
    downloads = [t for t in engine.trace if t.kind == "d2h"]
    for i, up in enumerate(uploads):
        if i >= 2:
            assert up.start >= downloads[i - 2].end


def test_rejects_zero_buffers():
    model = make_model("dawn")
    with pytest.raises(ValueError):
        pipelined_always_time(
            model, Dims(64, 64, 64), Precision.SINGLE, 4, buffers=0
        )
