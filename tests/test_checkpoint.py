"""JSONL sweep checkpointing: round-trip, torn tails, resume identity.

The headline property (a satellite of the fault-injection PR): interrupt
a chaos sweep at *any* sample, resume it from the checkpoint, and the
resumed :class:`RunResult` — series, quarantine list, flags — is
identical to an uninterrupted run of the same seeded plan.
"""

from __future__ import annotations

import json
import tempfile
import warnings
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AnalyticBackend,
    FaultInjector,
    FaultPlan,
    Kernel,
    Precision,
    RetryPolicy,
    RunConfig,
    make_model,
    run_sweep,
)
from repro.backends.base import Backend
from repro.core.csvio import write_run
from repro.errors import CheckpointError, PartialSweepWarning
from repro.faults.checkpoint import CheckpointReader, config_fingerprint

MODEL = make_model("lumi")
CONFIG = RunConfig(
    max_dim=64, step=16, iterations=8,
    kernels=(Kernel.GEMM,), precisions=(Precision.SINGLE,),
)
RETRY = RetryPolicy(max_retries=2, sample_timeout_s=60.0)
PLAN = FaultPlan.uniform(0.2, seed=13)


class Interrupting(Backend):
    """Raises KeyboardInterrupt after N backend calls — a simulated
    mid-sweep kill."""

    def __init__(self, inner: Backend, fail_after: int) -> None:
        self.inner = inner
        self.fail_after = fail_after
        self.calls = 0

    @property
    def gpu_transfers(self) -> tuple:
        return self.inner.gpu_transfers

    @property
    def system_name(self):
        return getattr(self.inner, "system_name", None)

    def _tick(self) -> None:
        self.calls += 1
        if self.calls > self.fail_after:
            raise KeyboardInterrupt

    def cpu_sample(self, *args, **kwargs):
        self._tick()
        return self.inner.cpu_sample(*args, **kwargs)

    def gpu_sample(self, *args, **kwargs):
        self._tick()
        return self.inner.gpu_sample(*args, **kwargs)


def chain(plan=PLAN):
    """A fresh injector chain (fresh attempt counters) per run."""
    return FaultInjector(AnalyticBackend(MODEL), plan)


def quiet_sweep(backend, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", PartialSweepWarning)
        return run_sweep(backend, CONFIG, retry=RETRY, **kwargs)


# -- basic round-trip -------------------------------------------------


def test_checkpoint_full_replay_is_identical(tmp_path):
    ck = tmp_path / "ck.jsonl"
    first = quiet_sweep(chain(), checkpoint=ck)
    replay = quiet_sweep(chain(), checkpoint=ck, resume=True)
    assert replay == first
    # every cell came from the journal, none were re-sampled
    sampled = sum(len(s.all_samples()) for s in first.series)
    assert replay.stats.resumed_samples == sampled
    assert replay.stats.retries == 0


def test_checkpoint_written_incrementally(tmp_path):
    ck = tmp_path / "ck.jsonl"
    quiet_sweep(chain(), checkpoint=ck)
    lines = [json.loads(line) for line in ck.read_text().splitlines()]
    assert lines[0]["t"] == "header"
    assert lines[0]["fingerprint"] == config_fingerprint(
        CONFIG, MODEL.spec.name
    )
    kinds = {rec["t"] for rec in lines[1:]}
    assert "sample" in kinds


def test_checkpoint_csv_bytes_identical(tmp_path):
    ck = tmp_path / "ck.jsonl"
    ref = quiet_sweep(chain(), checkpoint=ck)
    resumed = quiet_sweep(chain(), checkpoint=ck, resume=True)
    ref_dir, res_dir = tmp_path / "ref", tmp_path / "res"
    write_run(ref, ref_dir)
    write_run(resumed, res_dir)
    ref_files = sorted(p.name for p in ref_dir.iterdir())
    assert ref_files == sorted(p.name for p in res_dir.iterdir())
    for name in ref_files:
        assert (ref_dir / name).read_bytes() == (res_dir / name).read_bytes()


def test_resume_refuses_foreign_checkpoint(tmp_path):
    ck = tmp_path / "ck.jsonl"
    quiet_sweep(chain(), checkpoint=ck)
    other = RunConfig(
        max_dim=128, step=16, iterations=8,
        kernels=(Kernel.GEMM,), precisions=(Precision.SINGLE,),
    )
    with pytest.raises(CheckpointError, match="different sweep"):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PartialSweepWarning)
            run_sweep(chain(), other, retry=RETRY, checkpoint=ck, resume=True)


def test_reader_rejects_corruption_and_tolerates_torn_tail(tmp_path):
    ck = tmp_path / "ck.jsonl"
    quiet_sweep(chain(), checkpoint=ck)
    name = MODEL.spec.name
    # a torn final line (crash artifact) is dropped silently
    good = ck.read_text()
    ck.write_text(good + '{"t": "sample", "kernel": "ge')
    state = CheckpointReader.load(ck, CONFIG, name)
    assert state.samples
    # corruption in the middle is an error
    lines = good.splitlines()
    lines[2] = "not json"
    ck.write_text("\n".join(lines) + "\n")
    with pytest.raises(CheckpointError, match="corrupt at line 3"):
        CheckpointReader.load(ck, CONFIG, name)
    # missing header likewise
    ck.write_text("\n".join(good.splitlines()[1:]) + "\n")
    with pytest.raises(CheckpointError, match="header"):
        CheckpointReader.load(ck, CONFIG, name)


def test_resume_after_torn_tail_still_completes(tmp_path):
    ck = tmp_path / "ck.jsonl"
    ref = quiet_sweep(chain(), checkpoint=ck)
    ck.write_text(ck.read_text() + '{"t": "sam')  # torn write, no newline
    resumed = quiet_sweep(chain(), checkpoint=ck, resume=True)
    assert resumed == ref


def test_resume_without_existing_checkpoint_starts_fresh(tmp_path):
    ck = tmp_path / "does-not-exist-yet.jsonl"
    result = quiet_sweep(chain(), checkpoint=ck, resume=True)
    assert ck.exists()
    assert result.stats.resumed_samples == 0


# -- the interrupt/resume acceptance property ------------------------


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    fail_after=st.integers(min_value=0, max_value=45),
)
def test_interrupted_resume_identical_to_uninterrupted(seed, fail_after):
    """Kill the sweep at any backend call; the resumed run must equal
    the uninterrupted one, stats aside."""
    plan = FaultPlan.uniform(0.25, seed=seed, device_lost_rate=0.01)
    ref = quiet_sweep(chain(plan))
    with tempfile.TemporaryDirectory() as td:
        ck = Path(td) / "ck.jsonl"
        try:
            quiet_sweep(
                Interrupting(chain(plan), fail_after), checkpoint=ck
            )
            interrupted = False
        except KeyboardInterrupt:
            interrupted = True
        resumed = quiet_sweep(chain(plan), checkpoint=ck, resume=True)
    assert resumed.series == ref.series
    assert resumed.quarantine == ref.quarantine
    assert resumed.device_lost == ref.device_lost
    assert resumed == ref
    if not interrupted:
        assert resumed.stats.resumed_samples == sum(
            len(s.all_samples()) for s in ref.series
        )
