"""HTTP surface of the serving daemon.

Every test starts a real daemon on an ephemeral port inside one
``asyncio.run`` and talks to it over a socket with the stdlib client,
so the full stack — parser, routing, validation, cache, metrics — is
exercised exactly as production traffic would.
"""

from __future__ import annotations

import asyncio

import repro.cli as cli
from repro.serve.client import ServeClient
from repro.serve.service import ServeConfig, start_server
from repro.systems.catalog import system_names

#: One small, fast sweep: the shape every test queries.
BODY = {
    "system": "dawn",
    "kernel": "gemm",
    "problem": "square",
    "precision": "single",
    "iterations": 8,
    "paradigm": "once",
    "backend": "analytic",
    "min_dim": 1,
    "max_dim": 64,
    "step": 16,
}


def serve(fn, cache_dir, **config_kwargs):
    """Run ``fn(client)`` against a fresh daemon, then drain it."""

    async def harness():
        config = ServeConfig(port=0, cache_dir=str(cache_dir), **config_kwargs)
        handle = await start_server(config)
        client = ServeClient(handle.host, handle.port)
        try:
            return await fn(client, handle)
        finally:
            await client.close()
            await handle.drain(5.0)

    return asyncio.run(harness())


def test_healthz_and_routing_errors(tmp_path):
    async def check(client, handle):
        r = await client.get("/healthz")
        assert r.status == 200 and r.json() == {"status": "ok"}
        r = await client.get("/no/such/endpoint")
        assert r.status == 404
        assert r.json()["error"]["family"] == "config"
        assert r.json()["error"]["exit_code"] == 2
        r = await client.request("DELETE", "/v1/threshold")
        assert r.status == 405
        r = await client.request(
            "POST", "/v1/threshold", headers=(("Content-Type", "text/x"),)
        )
        # empty body is not valid JSON
        assert r.status == 400

    serve(check, tmp_path / "cache")


def test_registry_introspection(tmp_path):
    async def check(client, handle):
        r = await client.get("/v1/systems")
        assert r.status == 200
        names = [s["name"] for s in r.json()["systems"]]
        assert names == list(system_names())
        r = await client.get("/v1/problems")
        assert r.status == 200
        problems = r.json()["problems"]
        assert "square" in problems["gemm"]
        assert "square" in problems["gemv"]

    serve(check, tmp_path / "cache")


def test_unknown_names_list_the_valid_registry(tmp_path):
    async def check(client, handle):
        r = await client.post("/v1/threshold", dict(BODY, system="summit"))
        assert r.status == 400
        error = r.json()["error"]
        assert error["family"] == "config" and error["exit_code"] == 2
        assert error["valid"] == list(system_names())
        r = await client.post("/v1/threshold", dict(BODY, problem="cube"))
        assert r.status == 400
        assert "square" in r.json()["error"]["valid"]
        r = await client.post("/v1/threshold", dict(BODY, precision="fp4"))
        assert "single" in r.json()["error"]["valid"]
        r = await client.post("/v1/threshold", dict(BODY, paradigm="warp"))
        assert "once" in r.json()["error"]["valid"]
        r = await client.post("/v1/threshold", dict(BODY, backend="host"))
        assert r.json()["error"]["valid"] == ["analytic", "des"]
        r = await client.post("/v1/threshold", dict(BODY, max_dim=0))
        assert r.status == 400

    serve(check, tmp_path / "cache")


def test_threshold_roundtrip_hits_cache_on_repeat(tmp_path):
    async def check(client, handle):
        first = await client.post("/v1/threshold", BODY)
        assert first.status == 200
        p1 = first.json()
        assert p1["cache"]["hit"] is False
        assert p1["system"] == "dawn" and p1["paradigm"] == "once"
        assert p1["sweep"]["samples"] > 0
        assert p1["threshold"]["found"] in (True, False)
        assert p1["best_device"] in ("cpu", "gpu")

        second = await client.post("/v1/threshold", BODY)
        p2 = second.json()
        assert p2["cache"]["hit"] is True
        # identical decision payload, bit for bit, modulo the cache field
        def strip(p):
            return {k: v for k, v in p.items() if k != "cache"}

        assert strip(p1) == strip(p2)

        metrics = (await client.get("/metrics")).json()
        assert metrics["cache"]["hits"] == 1
        assert metrics["cache"]["misses"] == 1
        assert metrics["cache"]["hit_rate"] == 0.5
        assert metrics["jobs"]["sweeps_executed"] == 1
        assert metrics["store"]["entries"] == 1
        assert metrics["store"]["hits"] >= 1
        assert metrics["requests"]["threshold"] == 2
        assert metrics["latency"]["threshold"]["count"] == 2
        assert metrics["latency"]["threshold"]["p99_ms"] is not None
        assert metrics["queue"]["depth"] == 0

    serve(check, tmp_path / "cache")


def test_series_rows_are_byte_identical_to_cli_csv(tmp_path, capsys):
    cache = tmp_path / "cache"
    out = tmp_path / "out"
    code = cli.main([
        "-i", "8", "-d", "64", "--step", "16", "--system", "dawn",
        "--kernel", "gemm", "--precision", "single", "--quiet",
        "--cache-dir", str(cache), "-o", str(out),
    ])
    capsys.readouterr()
    assert code == 0

    async def check(client, handle):
        r = await client.post(
            "/v1/threshold", dict(BODY, include_series=True)
        )
        assert r.status == 200
        payload = r.json()
        # the CLI warmed the cache: the daemon must not re-execute
        assert payload["cache"]["hit"] is True
        series = payload["series"]
        lines = [",".join(series["fieldnames"])]
        lines += [
            ",".join(row[name] for name in series["fieldnames"])
            for row in series["rows"]
        ]
        rebuilt = ("\r\n".join(lines) + "\r\n").encode()
        assert rebuilt == (out / series["filename"]).read_bytes()

    serve(check, cache)


def test_gemv_and_paradigm_selection(tmp_path):
    async def check(client, handle):
        body = dict(BODY, kernel="gemv", paradigm="always")
        r = await client.post("/v1/threshold", body)
        assert r.status == 200
        payload = r.json()
        assert payload["kernel"] == "gemv"
        assert payload["paradigm"] == "always"
        if payload["threshold"]["found"]:
            assert payload["threshold"]["dims"]["k"] == 0

    serve(check, tmp_path / "cache")


def test_client_response_surfaces_degraded_answers():
    """Degraded (stale-while-revalidate) answers must be *surfaceable*
    without re-parsing: the Warning: 110 header, or the body's
    ``degraded: true`` for transports that drop headers, plus the
    ``stale_iterations`` annotation."""
    import json as _json

    from repro.serve.client import ClientResponse

    warned = ClientResponse(
        200,
        {"warning": '110 gpu-blob "stale threshold"'},
        b"{}",
    )
    assert warned.degraded is True and warned.warning.startswith("110")

    body_only = ClientResponse(
        200,
        {},
        _json.dumps(
            {"degraded": True, "cache": {"stale_iterations": 12}}
        ).encode(),
    )
    assert body_only.degraded is True
    assert body_only.stale_iterations == 12

    fresh = ClientResponse(
        200, {}, b'{"degraded": false, "cache": {"hit": true}}'
    )
    assert fresh.degraded is False
    assert fresh.stale_iterations is None
    assert fresh.warning is None

    unparseable = ClientResponse(503, {}, b"not json")
    assert unparseable.degraded is False
    assert unparseable.stale_iterations is None
