"""Threshold-detector properties (paper §III-D's smoothing rules)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.threshold import NOT_FOUND, find_offload_threshold
from repro.types import Dims

settings.register_profile("tier1", deadline=None, max_examples=60)
settings.load_profile("tier1")


def _dims(n):
    return [Dims(s, s, s) for s in range(1, n + 1)]


def _run(cpu, gpu, **kwargs):
    return find_offload_threshold(_dims(len(cpu)), cpu, gpu, **kwargs)


# -- deterministic cases ---------------------------------------------------


def test_gpu_always_faster_threshold_at_first_size():
    r = _run([2.0] * 6, [1.0] * 6)
    assert r.found and r.index == 0 and r.dims == Dims(1, 1, 1)


def test_cpu_always_faster_no_threshold():
    r = _run([1.0] * 6, [2.0] * 6)
    assert not r.found
    assert r is NOT_FOUND or r.dims is None


def test_tie_counts_as_cpu_win():
    # gt < ct strictly: equal curves never offload.
    assert not _run([1.0] * 6, [1.0] * 6).found


def test_momentary_dip_rejected_by_smoothing():
    # GPU wins everywhere except one mid-sweep flip: the single CPU win
    # must not discard the established candidate.
    cpu = [2.0] * 8
    gpu = [1.0] * 8
    gpu[4] = 3.0
    r = _run(cpu, gpu)
    assert r.found and r.index == 0


def test_two_consecutive_cpu_wins_discard_candidate():
    cpu = [2.0] * 8
    gpu = [1.0, 1.0, 3.0, 3.0, 1.0, 1.0, 1.0, 1.0]
    r = _run(cpu, gpu)
    assert r.found and r.index == 4  # the later streak's start


def test_single_trailing_gpu_win_is_not_enough():
    cpu = [1.0] * 6
    gpu = [2.0] * 5 + [0.5]
    assert not _run(cpu, gpu).found


def test_threshold_reports_streak_start_not_confirmation_point():
    cpu = [1.0, 1.0, 2.0, 2.0, 2.0]
    gpu = [2.0, 2.0, 1.0, 1.0, 1.0]
    r = _run(cpu, gpu)
    # Confirmed at index 3 (second win) but reported at index 2.
    assert r.found and r.index == 2 and r.dims == Dims(3, 3, 3)


def test_min_consecutive_one_accepts_single_win():
    cpu = [1.0] * 6
    gpu = [2.0] * 5 + [0.5]
    r = _run(cpu, gpu, min_consecutive=1)
    assert r.found and r.index == 5


def test_mismatched_curve_lengths_raise():
    with pytest.raises(ValueError):
        find_offload_threshold(_dims(3), [1.0, 1.0], [1.0, 1.0, 1.0])


def test_invalid_min_consecutive_raises():
    with pytest.raises(ValueError):
        _run([1.0], [2.0], min_consecutive=0)


def test_result_is_falsy_when_not_found_truthy_when_found():
    assert not find_offload_threshold([], [], [])
    assert _run([2.0, 2.0], [1.0, 1.0])


# -- property-style cases --------------------------------------------------


@given(cut=st.integers(min_value=0, max_value=12), n=st.integers(min_value=2, max_value=12))
def test_monotone_crossover_yields_exact_threshold(cut, n):
    """A single clean CPU->GPU crossover is detected exactly at the
    crossover point (when at least two GPU wins remain)."""
    cut = min(cut, n)
    cpu = [1.0] * n
    gpu = [2.0] * cut + [0.5] * (n - cut)
    r = _run(cpu, gpu)
    if n - cut >= 2:
        assert r.found and r.index == cut
    else:
        assert not r.found


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=1e-6, max_value=1e3),
            st.floats(min_value=1e-6, max_value=1e3),
        ),
        min_size=0,
        max_size=24,
    )
)
def test_threshold_start_is_a_gpu_win_and_suffix_has_no_long_cpu_streak(curves):
    """Whatever the curves, a found threshold starts a GPU win and no two
    consecutive CPU wins follow it; an absent threshold means the sweep
    ends CPU-ahead or with a single unconfirmed GPU win."""
    cpu = [c for c, _ in curves]
    gpu = [g for _, g in curves]
    r = _run(cpu, gpu)
    if r.found:
        assert gpu[r.index] < cpu[r.index]
        streak = 0
        for j in range(r.index, len(cpu)):
            streak = streak + 1 if gpu[j] >= cpu[j] else 0
            assert streak < 2
    elif curves:
        tail_wins = 0
        for c, g in reversed(curves):
            if g < c:
                tail_wins += 1
            else:
                break
        assert tail_wins < 2
