"""Failure-path behaviour of the daemon as one system.

Drain must finish accepted work exactly once (even when six waiters
coalesced onto it), a full queue must answer an honest 503 with its
depth and a latency-derived ``Retry-After``, the client must pace
itself off that hint, and a stalling journal must degrade the daemon
to cache-only (``/readyz`` flips) rather than failing requests.
"""

from __future__ import annotations

import asyncio
import json
import time

from repro import AnalyticBackend, RunConfig, make_model, run_sweep
from repro.faults.servechaos import ServeChaosKind, ServeChaosPlan
from repro.serve.client import ClientRetryPolicy, ServeClient
from repro.serve.service import ServeConfig, start_server
from repro.types import Kernel, Precision

BODY = {
    "system": "dawn",
    "kernel": "gemm",
    "problem": "square",
    "precision": "single",
    "iterations": 8,
    "paradigm": "once",
    "min_dim": 1,
    "max_dim": 64,
    "step": 16,
}


class CountingSweep:
    """A ``run_sweep`` stand-in: real result, controlled latency."""

    def __init__(self, delay_s: float = 0.0) -> None:
        self.calls = 0
        self.delay_s = delay_s
        config = RunConfig(
            max_dim=64, step=16, iterations=8,
            kernels=(Kernel.GEMM,), precisions=(Precision.SINGLE,),
        )
        self._result = run_sweep(
            AnalyticBackend(make_model("dawn")), config, "dawn"
        )

    def __call__(self, backend, config, system_name=None, cache_dir=None):
        self.calls += 1
        if self.delay_s:
            time.sleep(self.delay_s)
        return self._result


def test_drain_completes_coalesced_job_exactly_once(tmp_path):
    """SIGTERM mid-burst: six waiters coalesced onto one in-flight job
    all get the same bytes, the journal holds exactly one ``complete``
    record for it, and a second drain is a no-op."""
    sweep = CountingSweep(delay_s=0.3)
    cache = tmp_path / "cache"

    async def check():
        config = ServeConfig(port=0, cache_dir=str(cache))
        handle = await start_server(config, sweep_fn=sweep)
        clients = [ServeClient(handle.host, handle.port) for _ in range(6)]
        try:
            pending = [
                asyncio.ensure_future(c.post("/v1/threshold", BODY))
                for c in clients
            ]
            await asyncio.sleep(0.1)  # the job is in flight, waiters parked
            assert await handle.drain(10.0) is True
            responses = await asyncio.gather(*pending)
            assert [r.status for r in responses] == [200] * 6
            assert len({r.body for r in responses}) == 1
            # idempotent: the second drain reports the first verdict
            assert await handle.drain(10.0) is True
        finally:
            for c in clients:
                await c.close()
        assert sweep.calls == 1

        records = [
            json.loads(line)
            for line in (cache / "serve-wal.jsonl").read_text().splitlines()
        ]
        accepts = [r for r in records if r.get("t") == "accept"]
        completes = [r for r in records if r.get("t") == "complete"]
        assert len(accepts) == 1, "coalesced waiters share one journal entry"
        assert len(completes) == 1, "exactly-once completion"
        assert completes[0]["id"] == accepts[0]["id"]

    asyncio.run(check())


def test_queue_full_503_carries_depth_and_retry_hint(tmp_path):
    sweep = CountingSweep(delay_s=0.3)

    async def check():
        config = ServeConfig(
            port=0,
            cache_dir=str(tmp_path / "cache"),
            workers=1,
            queue_maxsize=1,
        )
        handle = await start_server(config, sweep_fn=sweep)
        clients = [ServeClient(handle.host, handle.port) for _ in range(3)]
        try:
            t1 = asyncio.ensure_future(clients[0].post("/v1/threshold", BODY))
            await asyncio.sleep(0.1)  # worker busy
            t2 = asyncio.ensure_future(
                clients[1].post("/v1/threshold", dict(BODY, max_dim=48))
            )
            await asyncio.sleep(0.05)  # queue slot full
            r3 = await clients[2].post(
                "/v1/threshold", dict(BODY, max_dim=32)
            )
            assert r3.status == 503
            error = r3.json()["error"]
            assert error["queue_depth"] >= 1
            assert error["retry_after_s"] >= 1.0
            assert int(r3.headers["retry-after"]) >= 1
            r1, r2 = await asyncio.gather(t1, t2)
            assert r1.status == 200 and r2.status == 200
            # the refused job left no pending journal entry behind
            metrics = (await clients[2].get("/metrics")).json()
            assert metrics["wal"]["jobs"]["pending"] == 0
            assert metrics["wal"]["jobs"]["dead"] == 1
        finally:
            for c in clients:
                await c.close()
            await handle.drain(10.0)

    asyncio.run(check())


def test_client_backs_off_per_retry_after_then_succeeds(tmp_path):
    """A 429'd client waits out the server's ``Retry-After`` hint (not
    its own computed backoff) and the retry lands."""

    async def check():
        config = ServeConfig(
            port=0, cache_dir=str(tmp_path / "cache"), rate=50.0, burst=1
        )
        handle = await start_server(config, sweep_fn=CountingSweep())
        waited = []

        async def fake_sleep(delay):
            waited.append(delay)
            await asyncio.sleep(0.1)  # long enough for the bucket to refill

        client = ServeClient(
            handle.host,
            handle.port,
            retry=ClientRetryPolicy(max_retries=2),
            sleep=fake_sleep,
        )
        try:
            first = await client.post("/v1/threshold", BODY)
            assert first.status == 200
            second = await client.post("/v1/threshold", BODY)
            assert second.status == 200  # retried through the 429
            # the server said "Retry-After: 1"; the policy obeyed it
            assert waited == [1.0]
            assert client.retry_delays == [1.0]
            metrics = (await client.get("/metrics")).json()
            assert metrics["jobs"]["rate_limited"] == 1
        finally:
            await client.close()
            await handle.drain(5.0)

    asyncio.run(check())


def test_client_fails_fast_on_non_retryable_4xx(tmp_path):
    async def check():
        config = ServeConfig(port=0, cache_dir=str(tmp_path / "cache"))
        handle = await start_server(config, sweep_fn=CountingSweep())
        client = ServeClient(
            handle.host, handle.port, retry=ClientRetryPolicy()
        )
        try:
            r = await client.post(
                "/v1/threshold", dict(BODY, system="atlantis")
            )
            assert r.status == 400
            assert client.retry_delays == []  # config errors are final
        finally:
            await client.close()
            await handle.drain(5.0)

    asyncio.run(check())


def test_wal_stall_degrades_to_cache_only(tmp_path):
    """A journal that stops accepting writes must not fail requests —
    the daemon keeps answering but reports itself not ready."""
    chaos = ServeChaosPlan(
        seed=7, rates={ServeChaosKind.WAL_STALL: 0.999}
    )

    async def check():
        config = ServeConfig(
            port=0, cache_dir=str(tmp_path / "cache"), chaos=chaos
        )
        handle = await start_server(config, sweep_fn=CountingSweep())
        client = ServeClient(handle.host, handle.port)
        try:
            r = await client.post("/v1/threshold", BODY)
            assert r.status == 200  # the answer still flows
            metrics = (await client.get("/metrics")).json()
            assert metrics["wal_errors"] >= 1
            assert metrics["wal"]["writable"] is False
            ready = await client.get("/readyz")
            assert ready.status == 503
            assert ready.json()["wal_writable"] is False
        finally:
            await client.close()
            await handle.drain(5.0)

    asyncio.run(check())
