"""Make ``src/`` importable when pytest is run without PYTHONPATH=src."""

from __future__ import annotations

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
