"""Fault-tolerant distributed campaign execution.

The contract under test is the campaign layer's byte-level determinism
extended across process boundaries: shard a campaign over N workers —
then kill one, partition one, slow one, kill -9 the *dispatcher* and
resume — and the aggregated ``campaign_report.csv`` must still come
out byte-identical to the single-node run.  Scenarios that genuinely
cannot run dead-letter into quarantined rows and the campaign
completes *degraded* instead of failing.

Everything here drives :class:`~repro.dist.worker.SimulatedWorker`
fleets under a fake clock, so steal timeouts, lease renewals and
backoff gates are exact; one end-to-end test exercises real
``gpu-blob dist-worker`` subprocesses through the CLI.
"""

from __future__ import annotations

import json
import textwrap

import pytest

import repro.cli as cli
from repro.core.campaign import load_campaign, run_campaign, write_report
from repro.core.runner import RetryPolicy
from repro.dist import (
    DispatchLedger,
    SimulatedWorker,
    run_campaign_distributed,
    scenario_fingerprint,
    write_result_shard,
)
from repro.dist.ledger import LEDGER_FILENAME
from repro.errors import ConfigError, TransientKernelError
from repro.faults.distchaos import DistChaosPlan

SMALL = textwrap.dedent(
    """\
    schema = 1
    name = "dist-unit"

    [matrix]
    systems = ["dawn", "lumi", "isambard-ai"]
    kernels = ["gemm"]
    problems = ["square"]
    precisions = ["single"]
    transfers = ["once"]
    iterations = [4]

    [sweep]
    min_dim = 1
    max_dim = 64
    step = 16
    """
)

#: fast deterministic backoff so fake-clock tests converge quickly
FAST_RETRY = RetryPolicy(backoff_base_s=0.1, jitter=0.0)


class FakeClock:
    """A clock the dispatcher both reads and advances (via sleep)."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def campaign(tmp_path):
    path = tmp_path / "dist-unit.toml"
    path.write_text(SMALL)
    return load_campaign(path)


@pytest.fixture
def golden(campaign, tmp_path):
    """The single-node report bytes every distributed run must match."""
    result = run_campaign(campaign)
    out = tmp_path / "golden"
    write_report(result, out)
    return (
        (out / "campaign_report.csv").read_bytes(),
        (out / "campaign_report.json").read_bytes(),
    )


def run_dist(campaign, dist_dir, n_workers=2, executors=None, **kwargs):
    clock = FakeClock()

    def make_workers(results_dir):
        executor_for = executors or {}
        return [
            SimulatedWorker(f"w{i}", results_dir,
                            executor=executor_for.get(f"w{i}"))
            for i in range(n_workers)
        ]

    kwargs.setdefault("retry", FAST_RETRY)
    kwargs.setdefault("lease_s", 10.0)
    result = run_campaign_distributed(
        campaign,
        dist_dir=dist_dir,
        worker_count=n_workers,
        make_workers=kwargs.pop("make_workers", make_workers),
        clock=clock,
        sleep=clock.sleep,
        **kwargs,
    )
    return result, clock


def assert_identical_report(result, tmp_path, golden, name="dist"):
    out = tmp_path / name
    write_report(result, out)
    assert (out / "campaign_report.csv").read_bytes() == golden[0]
    assert (out / "campaign_report.json").read_bytes() == golden[1]


# -- clean distributed runs -------------------------------------------


def test_distributed_report_is_byte_identical(campaign, golden, tmp_path):
    result, _ = run_dist(campaign, tmp_path / "d", n_workers=2)
    assert result.complete and not result.quarantined
    assert result.executed == 3
    stats = result.dist_stats
    assert stats["assignments"] == 3 and stats["steals"] == 0
    assert stats["turnaround"]["count"] == 3
    assert_identical_report(result, tmp_path, golden)


def test_single_worker_degenerates_to_serial(campaign, golden, tmp_path):
    result, _ = run_dist(campaign, tmp_path / "d", n_workers=1)
    assert result.complete
    assert_identical_report(result, tmp_path, golden)


def test_validation_rejects_bad_knobs(campaign, tmp_path):
    for kwargs in (
        {"worker_count": 0},
        {"max_attempts": 0},
        {"lease_s": 0.0},
        {"heartbeat_s": -1.0},
    ):
        with pytest.raises(ConfigError):
            run_campaign_distributed(
                campaign, dist_dir=tmp_path / "d", **kwargs
            )


# -- chaos: worker kills, partitions, slow workers --------------------


def test_node_kill_steals_and_stays_byte_identical(
    campaign, golden, tmp_path
):
    result, _ = run_dist(
        campaign, tmp_path / "d", n_workers=3,
        chaos=DistChaosPlan.parse("node-kill:7"),
    )
    assert result.complete and not result.quarantined
    stats = result.dist_stats
    assert stats["worker_deaths"] >= 1
    assert stats["steals"] + stats["salvaged_shards"] >= 1
    assert_identical_report(result, tmp_path, golden)


def test_partition_heals_and_dedupes_duplicate_finish(
    campaign, golden, tmp_path
):
    """A partitioned worker keeps computing: its scenario is stolen at
    lease expiry, re-executed, and the original's late ``done`` must be
    deduped (idempotent completion), never double-counted."""
    result, _ = run_dist(
        campaign, tmp_path / "d", n_workers=3,
        chaos=DistChaosPlan.parse("partition:3"),
    )
    assert result.complete and not result.quarantined
    stats = result.dist_stats
    assert (
        stats["duplicate_finishes"] + stats["salvaged_shards"]
        + stats["steals"] >= 1
    )
    assert_identical_report(result, tmp_path, golden)


def test_slow_worker_chaos_completes_identical(campaign, golden, tmp_path):
    result, _ = run_dist(
        campaign, tmp_path / "d", n_workers=3,
        chaos=DistChaosPlan.parse("slow-worker:5"),
    )
    assert result.complete and not result.quarantined
    assert_identical_report(result, tmp_path, golden)


def test_chaos_plan_parse_rejects_garbage():
    plan = DistChaosPlan.parse("node-kill:42")
    assert plan.seed == 42
    with pytest.raises(ConfigError):
        DistChaosPlan.parse("meteor-strike")
    with pytest.raises(ConfigError):
        DistChaosPlan.parse("node-kill:not-a-seed")


# -- retries and dead-letters -----------------------------------------


def _failing_for(system):
    """An executor that cannot run one system's scenarios."""

    def executor(record, cache_dir=None):
        if record["system"] == system:
            raise TransientKernelError(f"injected: {system} unreachable")
        from repro.dist.worker import execute_scenario

        return execute_scenario(record, cache_dir=cache_dir)

    return executor

def test_transient_failure_retries_with_backoff(campaign, golden, tmp_path):
    calls = {"n": 0}

    def flaky(record, cache_dir=None):
        from repro.dist.worker import execute_scenario

        if record["system"] == "lumi" and calls["n"] == 0:
            calls["n"] += 1
            raise TransientKernelError("injected: first attempt fails")
        return execute_scenario(record, cache_dir=cache_dir)

    result, _ = run_dist(
        campaign, tmp_path / "d", n_workers=1,
        executors={"w0": flaky},
    )
    assert result.complete and not result.quarantined
    stats = result.dist_stats
    assert stats["retries"] == 1 and stats["backoff_s"] > 0
    assert_identical_report(result, tmp_path, golden)


def test_exhausted_attempts_dead_letter_as_quarantined_rows(
    campaign, tmp_path
):
    executors = {f"w{i}": _failing_for("lumi") for i in range(2)}
    result, _ = run_dist(
        campaign, tmp_path / "d", n_workers=2,
        executors=executors, max_attempts=2,
    )
    # the campaign completes *degraded*, not failing
    assert result.complete
    assert len(result.quarantined) == 1
    assert result.dist_stats["dead_lettered"] == 1
    (reason,) = result.quarantined.values()
    assert "lumi unreachable" in reason

    out = tmp_path / "report"
    write_report(result, out)
    csv_text = (out / "campaign_report.csv").read_text()
    assert "lumi,gemm,square,single,once,4,quarantined,,," in csv_text
    payload = json.loads((out / "campaign_report.json").read_text())
    assert list(payload["quarantined"].values()) == [reason]


# -- degradation to local execution -----------------------------------


def test_fleet_death_degrades_to_local_execution(
    campaign, golden, tmp_path
):
    def dead_fleet(results_dir):
        workers = [SimulatedWorker(f"w{i}", results_dir) for i in range(2)]
        for w in workers:
            w.kill()
        return workers

    result, _ = run_dist(
        campaign, tmp_path / "d", make_workers=dead_fleet,
    )
    assert result.complete and not result.quarantined
    stats = result.dist_stats
    assert stats["local_fallback"] == 3 and stats["worker_deaths"] == 2
    assert_identical_report(result, tmp_path, golden)


# -- dispatcher crash + resume ----------------------------------------


def scenario_fps(campaign):
    from repro.core.campaign import expand_scenarios

    return [(s, scenario_fingerprint(s)) for s in expand_scenarios(campaign)]


def seed_crashed_dispatcher_state(campaign, dist_dir):
    """Fabricate the on-disk state a kill -9'd dispatcher leaves: one
    scenario complete (ledger + shard), one assigned with a shard on
    disk (finished but unjournaled), one assigned with nothing."""
    results_dir = dist_dir / "results"
    results_dir.mkdir(parents=True)
    pairs = scenario_fps(campaign)
    ledger = DispatchLedger(
        dist_dir / LEDGER_FILENAME, campaign.name, campaign.fingerprint(),
        lease_s=10.0, sync=False,
    )
    done = run_campaign(campaign, stop_after=2)

    (s0, fp0), (s1, fp1), (s2, fp2) = pairs
    ledger.assign(fp0, s0.index, "w0", 1)
    ledger.complete(fp0)
    write_result_shard(results_dir, fp0, done.results[0])
    ledger.assign(fp1, s1.index, "w1", 1)  # finished, crash before journal
    write_result_shard(results_dir, fp1, done.results[1])
    ledger.assign(fp2, s2.index, "w0", 1)  # genuinely in flight
    ledger.close()


def test_resume_replays_ledger_to_identical_bytes(
    campaign, golden, tmp_path
):
    dist_dir = tmp_path / "d"
    seed_crashed_dispatcher_state(campaign, dist_dir)
    result, _ = run_dist(campaign, dist_dir, n_workers=2, resume=True)
    assert result.complete and not result.quarantined
    stats = result.dist_stats
    # fp0 journaled complete + fp1's orphan shard both replay; only the
    # genuinely in-flight scenario re-executes (stolen from the dead
    # incarnation)
    assert stats["replayed"] == 2
    assert result.executed == 1
    assert stats["steals"] >= 1
    assert_identical_report(result, tmp_path, golden)


def test_resume_of_a_finished_campaign_spawns_no_fleet(
    campaign, golden, tmp_path
):
    dist_dir = tmp_path / "d"
    first, _ = run_dist(campaign, dist_dir, n_workers=2)
    assert first.complete

    def exploding(results_dir):  # pragma: no cover - must not be called
        raise AssertionError("fully-replayed resume must not spawn workers")

    result, _ = run_dist(
        campaign, dist_dir, resume=True, make_workers=exploding,
    )
    assert result.complete and result.executed == 0
    assert result.dist_stats["replayed"] == 3
    assert result.dist_stats["workers"] == 0
    assert_identical_report(result, tmp_path, golden)


def test_resume_dead_letters_inflight_on_final_attempt(campaign, tmp_path):
    """An assigned ledger entry already at max_attempts with no shard
    cannot be retried on resume — it dead-letters instead of looping."""
    dist_dir = tmp_path / "d"
    results_dir = dist_dir / "results"
    results_dir.mkdir(parents=True)
    pairs = scenario_fps(campaign)
    ledger = DispatchLedger(
        dist_dir / LEDGER_FILENAME, campaign.name, campaign.fingerprint(),
        lease_s=10.0, sync=False,
    )
    (s0, fp0), (s1, fp1), (s2, fp2) = pairs
    ledger.assign(fp0, s0.index, "w0", 2)  # final attempt, no shard
    ledger.close()

    result, _ = run_dist(
        campaign, dist_dir, n_workers=2, resume=True, max_attempts=2,
    )
    assert result.complete
    assert result.quarantined == {s0.index: "lost with worker w0 on final "
                                            "attempt"}
    assert result.executed == 2


def test_fresh_run_rotates_a_stale_ledger(campaign, tmp_path):
    dist_dir = tmp_path / "d"
    first, _ = run_dist(campaign, dist_dir, n_workers=2)
    assert first.complete
    # a non-resume rerun must not inherit the old bookkeeping
    second, _ = run_dist(campaign, dist_dir, n_workers=2)
    assert second.complete and second.executed == 3
    assert second.dist_stats["replayed"] == 0
    assert (dist_dir / (LEDGER_FILENAME + ".old")).exists()


def test_resume_against_edited_matrix_is_vetoed(campaign, tmp_path):
    dist_dir = tmp_path / "d"
    first, _ = run_dist(campaign, dist_dir, n_workers=2)
    assert first.complete
    edited = load_campaign(
        write_toml(tmp_path, SMALL.replace("iterations = [4]",
                                           "iterations = [8]"))
    )
    with pytest.raises(ConfigError, match="belongs to campaign"):
        run_dist(edited, dist_dir, n_workers=2, resume=True)


def write_toml(tmp_path, text, name="edited.toml"):
    path = tmp_path / name
    path.write_text(text)
    return path


# -- CLI surface -------------------------------------------------------


def test_cli_dry_run_prints_matrix_and_executes_nothing(
    campaign, tmp_path, capsys
):
    path = tmp_path / "dist-unit.toml"
    rc = cli.main(["campaign", str(path), "--dry-run"])
    captured = capsys.readouterr().out
    assert rc == 0
    assert "3 scenario(s)" in captured
    assert "3 report cell(s)" in captured
    for system in ("dawn", "lumi", "isambard-ai"):
        assert f"{system}: 1 scenario(s)" in captured
    assert "dry run: nothing executed" in captured
    assert not (tmp_path / "results").exists()


def test_cli_distributed_subprocess_workers(campaign, golden, tmp_path):
    """End to end through real ``gpu-blob dist-worker`` children."""
    path = tmp_path / "dist-unit.toml"
    out = tmp_path / "out"
    rc = cli.main([
        "campaign", str(path),
        "--workers", "2",
        "--dist-dir", str(tmp_path / "dist"),
        "--lease", "30",
        "--output", str(out),
        "--no-cache",
    ])
    assert rc == 0
    assert (out / "campaign_report.csv").read_bytes() == golden[0]
    assert (out / "campaign_report.json").read_bytes() == golden[1]


def test_cli_rejects_checkpoints_with_distribution(campaign, tmp_path):
    path = tmp_path / "dist-unit.toml"
    rc = cli.main([
        "campaign", str(path),
        "--workers", "2",
        "--checkpoint-dir", str(tmp_path / "ck"),
    ])
    assert rc != 0
