"""Content-addressed sweep cache: hits replay bit-identical results.

The cache key is the checkpoint config fingerprint plus the backend's
``cache_token``; a hit must reproduce the stored run exactly (floats
round-trip through JSON), a changed model or config must miss, and
anything fault-touched or incomplete must never be stored.
"""

from __future__ import annotations

import warnings

import pytest

from repro import AnalyticBackend, FaultPlan, RetryPolicy, make_model, run_sweep
from repro.backends.des import DesBackend
from repro.core.config import RunConfig
from repro.core.csvio import write_run
from repro.core.sweepcache import sweep_cache_key
from repro.errors import CacheIntegrityWarning, PartialSweepWarning
from repro.sim.noise import DeterministicNoise
from repro.types import Kernel, Precision

CONFIG = RunConfig(
    max_dim=64, step=16, iterations=8,
    kernels=(Kernel.GEMM,), precisions=(Precision.SINGLE,),
)


def _backend(system="dawn", **model_kwargs):
    return AnalyticBackend(make_model(system, **model_kwargs))


def test_cache_hit_is_bit_identical(tmp_path):
    cache = tmp_path / "cache"
    first = run_sweep(_backend(), CONFIG, "dawn", cache_dir=cache)
    assert first.stats.cached_samples == 0
    entries = list(cache.glob("*.json"))
    assert len(entries) == 1

    hit = run_sweep(_backend(), CONFIG, "dawn", cache_dir=cache)
    assert hit == first
    assert hit.series == first.series
    assert hit.stats.cached_samples == sum(
        len(s.all_samples()) for s in first.series
    )


def test_cache_hit_csvs_byte_identical(tmp_path):
    cache = tmp_path / "cache"
    first = run_sweep(_backend(), CONFIG, "dawn", cache_dir=cache)
    hit = run_sweep(_backend(), CONFIG, "dawn", cache_dir=cache)
    a = {p.name: p.read_bytes() for p in write_run(first, tmp_path / "a")}
    b = {p.name: p.read_bytes() for p in write_run(hit, tmp_path / "b")}
    assert a == b


def test_different_model_or_config_misses(tmp_path):
    cache = tmp_path / "cache"
    run_sweep(_backend(), CONFIG, "dawn", cache_dir=cache)
    # different noise seed -> different cache_token -> second entry
    other = _backend(noise=DeterministicNoise(amplitude=0.01, seed=9))
    run_sweep(other, CONFIG, "dawn", cache_dir=cache)
    assert len(list(cache.glob("*.json"))) == 2
    # different config -> third entry
    wider = RunConfig(
        max_dim=96, step=16, iterations=8,
        kernels=(Kernel.GEMM,), precisions=(Precision.SINGLE,),
    )
    run_sweep(_backend(), wider, "dawn", cache_dir=cache)
    assert len(list(cache.glob("*.json"))) == 3


def test_backend_kind_disambiguates_key():
    analytic = _backend("lumi")
    des = DesBackend(make_model("lumi"))
    a = sweep_cache_key(CONFIG, "lumi", analytic)
    d = sweep_cache_key(CONFIG, "lumi", des)
    assert a and d and a != d


def test_corrupt_entry_is_a_warned_miss_and_gets_rewritten(tmp_path):
    cache = tmp_path / "cache"
    first = run_sweep(_backend(), CONFIG, "dawn", cache_dir=cache)
    (entry,) = cache.glob("*.json")
    entry.write_text("{not json")
    with pytest.warns(CacheIntegrityWarning, match="not parseable"):
        again = run_sweep(_backend(), CONFIG, "dawn", cache_dir=cache)
    assert again == first
    assert again.stats.cached_samples == 0  # recomputed, not replayed
    third = run_sweep(_backend(), CONFIG, "dawn", cache_dir=cache)
    assert third.stats.cached_samples > 0  # the rewrite is readable


def test_single_flipped_byte_fails_the_digest(tmp_path):
    """A bit flip anywhere in the payload — still valid JSON — must be
    caught by ``payload_sha256`` and warned, never silently replayed."""
    cache = tmp_path / "cache"
    first = run_sweep(_backend(), CONFIG, "dawn", cache_dir=cache)
    (entry,) = cache.glob("*.json")
    blob = bytearray(entry.read_bytes())
    # flip the low bit of a digit inside the payload (past the
    # version/digest envelope at the front of the entry)
    for i in range(len(blob) - 1, 0, -1):
        if chr(blob[i]).isdigit():
            blob[i] ^= 0x01
            break
    entry.write_bytes(bytes(blob))
    import json

    json.loads(entry.read_text())  # still parseable: only the digest trips
    with pytest.warns(CacheIntegrityWarning, match="sha256"):
        again = run_sweep(_backend(), CONFIG, "dawn", cache_dir=cache)
    assert again == first
    assert again.stats.cached_samples == 0


def test_stale_version_is_a_quiet_miss(tmp_path):
    cache = tmp_path / "cache"
    run_sweep(_backend(), CONFIG, "dawn", cache_dir=cache)
    (entry,) = cache.glob("*.json")
    import json

    stale = json.loads(entry.read_text())
    stale["version"] = 1
    entry.write_text(json.dumps(stale))
    with warnings.catch_warnings():
        warnings.simplefilter("error", CacheIntegrityWarning)
        again = run_sweep(_backend(), CONFIG, "dawn", cache_dir=cache)
    assert again.stats.cached_samples == 0


def test_prune_evicts_least_recently_used_first(tmp_path):
    import os
    import time

    from repro import prune_cache

    cache = tmp_path / "cache"
    configs = [
        RunConfig(max_dim=dim, step=16, iterations=8,
                  kernels=(Kernel.GEMM,), precisions=(Precision.SINGLE,))
        for dim in (48, 64, 96)
    ]
    for cfg in configs:
        run_sweep(_backend(), cfg, "dawn", cache_dir=cache)
    entries = sorted(cache.glob("*.json"))
    assert len(entries) == 3
    # age all entries, then touch the first config via a cache *hit* —
    # hits refresh recency, so it must survive the prune
    for i, p in enumerate(entries):
        os.utime(p, (time.time() - 1000 + i, time.time() - 1000 + i))
    hit = run_sweep(_backend(), configs[0], "dawn", cache_dir=cache)
    assert hit.stats.cached_samples > 0
    evicted = prune_cache(cache, max_entries=1)
    assert len(evicted) == 2
    survivor = run_sweep(_backend(), configs[0], "dawn", cache_dir=cache)
    assert survivor.stats.cached_samples > 0  # the hit kept it alive


def test_prune_bounds_validation_and_bytes(tmp_path):
    from repro import ConfigError, prune_cache

    cache = tmp_path / "cache"
    run_sweep(_backend(), CONFIG, "dawn", cache_dir=cache)
    with pytest.raises(ConfigError):
        prune_cache(cache, max_entries=-1)
    with pytest.raises(ConfigError):
        prune_cache(cache, max_bytes=-5)
    assert prune_cache(tmp_path / "missing") == []
    assert prune_cache(cache, max_bytes=0) != []
    assert not list(cache.glob("*.json"))


def test_no_cache_dir_disables_caching(tmp_path):
    result = run_sweep(_backend(), CONFIG, "dawn")
    assert result.stats.cached_samples == 0
    assert not list(tmp_path.glob("**/*.json"))


def test_faulty_or_checkpointed_runs_bypass_the_cache(tmp_path):
    cache = tmp_path / "cache"
    plan = FaultPlan.uniform(0.3, seed=13)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", PartialSweepWarning)
        run_sweep(
            _backend(), CONFIG, "dawn", faults=plan,
            retry=RetryPolicy(max_retries=1), cache_dir=cache,
        )
    assert not list(cache.glob("*.json"))  # fault-touched: never stored
    run_sweep(
        _backend(), CONFIG, "dawn", checkpoint=tmp_path / "ck.jsonl",
        cache_dir=cache,
    )
    assert not list(cache.glob("*.json"))  # journaled runs stay uncached


def test_host_backend_has_no_cache_token():
    from repro.backends.base import Backend

    class Tokenless(Backend):
        gpu_transfers = ()

        def cpu_sample(self, *args, **kwargs):  # pragma: no cover
            raise NotImplementedError

    assert Tokenless().cache_token is None
    assert sweep_cache_key(CONFIG, "host", Tokenless()) is None


def test_parallel_run_stores_and_hits_like_serial(tmp_path):
    cache = tmp_path / "cache"
    config = RunConfig(max_dim=64, step=16, iterations=8)
    first = run_sweep(_backend(), config, "dawn", jobs=4, cache_dir=cache)
    assert len(list(cache.glob("*.json"))) == 1
    hit = run_sweep(_backend(), config, "dawn", cache_dir=cache)
    assert hit == first and hit.stats.cached_samples > 0
