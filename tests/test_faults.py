"""FaultPlan determinism and FaultInjector behavior per fault kind."""

from __future__ import annotations

import pytest

from repro import (
    AnalyticBackend,
    Dims,
    FaultInjector,
    FaultKind,
    FaultPlan,
    Kernel,
    Precision,
    TransferType,
    make_model,
)
from repro.errors import (
    ConfigError,
    DeviceLostError,
    TransferError,
    TransientKernelError,
)
from repro.faults.plan import NO_FAULTS

MODEL = make_model("lumi")
DIMS = Dims(256, 256, 256)


def make_injector(plan: FaultPlan) -> FaultInjector:
    return FaultInjector(AnalyticBackend(MODEL), plan)


# -- plan ------------------------------------------------------------


def test_plan_validation():
    with pytest.raises(ConfigError):
        FaultPlan(rates={FaultKind.KERNEL: -0.1})
    with pytest.raises(ConfigError):
        FaultPlan(rates={FaultKind.KERNEL: 1.0})
    with pytest.raises(ConfigError):
        FaultPlan(hang_s=0.0)
    with pytest.raises(ConfigError):
        FaultPlan(ecc_slowdown=0.9)
    with pytest.raises(ConfigError):
        FaultPlan(rates={"kernel": 0.1})


def test_plan_is_deterministic():
    a = FaultPlan.uniform(0.3, seed=42)
    b = FaultPlan.uniform(0.3, seed=42)
    key = ("gpu", "once", "gemm", (64, 64, 64), "single", 8)
    for kind in FaultKind:
        for attempt in range(4):
            assert a.fires(kind, key, attempt) == b.fires(kind, key, attempt)


def test_plan_seed_changes_draws():
    key = ("gpu", "once", "gemm", (64, 64, 64), "single", 8)
    draws = {
        seed: tuple(
            FaultPlan.uniform(0.5, seed=seed).fires(FaultKind.KERNEL, key, a)
            for a in range(32)
        )
        for seed in range(4)
    }
    assert len(set(draws.values())) > 1


def test_plan_rate_monotonicity():
    """rate 0 never fires; rate ~1 nearly always fires."""
    key = ("cpu", None, "gemm", (8, 8, 8), "double", 1)
    assert not NO_FAULTS.enabled
    assert not NO_FAULTS.fires(FaultKind.KERNEL, key, 0)
    hot = FaultPlan(rates={FaultKind.KERNEL: 0.999})
    fired = sum(hot.fires(FaultKind.KERNEL, key, a) for a in range(100))
    assert fired > 90


def test_attempts_draw_independently():
    plan = FaultPlan.uniform(0.5, seed=3)
    key = ("gpu", "always", "gemv", (100, 100), "single", 8)
    draws = [plan.fires(FaultKind.TRANSFER, key, a) for a in range(64)]
    assert any(draws) and not all(draws)


# -- injector --------------------------------------------------------


def test_injector_no_faults_is_transparent():
    clean = AnalyticBackend(MODEL)
    inj = make_injector(NO_FAULTS)
    assert inj.cpu_sample(
        Kernel.GEMM, DIMS, Precision.SINGLE, 8
    ) == clean.cpu_sample(Kernel.GEMM, DIMS, Precision.SINGLE, 8)
    assert inj.gpu_sample(
        Kernel.GEMM, DIMS, Precision.SINGLE, 8, TransferType.ONCE
    ) == clean.gpu_sample(
        Kernel.GEMM, DIMS, Precision.SINGLE, 8, TransferType.ONCE
    )
    assert inj.gpu_transfers == clean.gpu_transfers
    assert inj.system_name == clean.system_name


def test_injector_raises_kernel_and_transfer_faults():
    inj = make_injector(
        FaultPlan(rates={FaultKind.KERNEL: 0.999, FaultKind.TRANSFER: 0.999})
    )
    with pytest.raises((TransientKernelError, TransferError)):
        inj.gpu_sample(Kernel.GEMM, DIMS, Precision.SINGLE, 8, TransferType.ONCE)
    with pytest.raises(TransientKernelError):
        inj.cpu_sample(Kernel.GEMM, DIMS, Precision.SINGLE, 8)
    assert sum(inj.stats.values()) == 2


def test_injector_hang_inflates_seconds():
    clean = AnalyticBackend(MODEL).cpu_sample(
        Kernel.GEMM, DIMS, Precision.SINGLE, 8
    )
    inj = make_injector(FaultPlan(rates={FaultKind.HANG: 0.999}, hang_s=7.5))
    hung = inj.cpu_sample(Kernel.GEMM, DIMS, Precision.SINGLE, 8)
    assert hung.seconds == pytest.approx(clean.seconds + 7.5)
    # gflops is recomputed from the inflated time
    assert hung.gflops < clean.gflops


def test_injector_ecc_slowdown():
    clean = AnalyticBackend(MODEL).gpu_sample(
        Kernel.GEMM, DIMS, Precision.DOUBLE, 8, TransferType.ONCE
    )
    inj = make_injector(
        FaultPlan(rates={FaultKind.ECC: 0.999}, ecc_slowdown=2.0)
    )
    slow = inj.gpu_sample(
        Kernel.GEMM, DIMS, Precision.DOUBLE, 8, TransferType.ONCE
    )
    assert slow.seconds == pytest.approx(clean.seconds * 2.0)


def test_injector_device_loss_is_sticky():
    inj = make_injector(FaultPlan(rates={FaultKind.DEVICE_LOST: 0.999}))
    with pytest.raises(DeviceLostError):
        inj.gpu_sample(Kernel.GEMM, DIMS, Precision.SINGLE, 1, TransferType.ONCE)
    assert inj.device_lost
    assert inj.gpu_transfers == ()
    # every later GPU sample fails, even for cells the plan would spare
    with pytest.raises(DeviceLostError):
        inj.gpu_sample(
            Kernel.GEMV, Dims(8, 8), Precision.DOUBLE, 1, TransferType.ALWAYS
        )
    # the CPU is unaffected
    inj.cpu_sample(Kernel.GEMM, DIMS, Precision.SINGLE, 1)
    inj.reset()
    assert not inj.device_lost and not inj.stats


def test_injector_retry_attempts_redraw():
    """A cell that faults on attempt 0 can succeed on a later attempt."""
    plan = FaultPlan.uniform(0.5, seed=11)
    inj = make_injector(plan)
    outcomes = []
    for _ in range(8):
        try:
            inj.cpu_sample(Kernel.GEMM, DIMS, Precision.SINGLE, 8)
            outcomes.append("ok")
        except TransientKernelError:
            outcomes.append("fault")
    assert "ok" in outcomes and "fault" in outcomes
