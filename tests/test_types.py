"""Core enums and the Dims value type."""

from __future__ import annotations

import numpy as np

from repro.types import (
    ALL_PRECISIONS,
    PAPER_ITERATION_COUNTS,
    Dims,
    Kernel,
    Precision,
    TransferType,
)


def test_paper_iteration_counts():
    assert PAPER_ITERATION_COUNTS == (1, 8, 32, 64, 128)


def test_all_precisions_are_single_and_double():
    assert ALL_PRECISIONS == (Precision.SINGLE, Precision.DOUBLE)


def test_precision_itemsize_and_prefix():
    assert Precision.SINGLE.itemsize == 4
    assert Precision.DOUBLE.itemsize == 8
    assert Precision.SINGLE.blas_prefix == "s"
    assert Precision.DOUBLE.blas_prefix == "d"


def test_precision_np_dtype():
    assert np.dtype(Precision.SINGLE.np_dtype) == np.float32
    assert np.dtype(Precision.DOUBLE.np_dtype) == np.float64


def test_dims_gemm_vs_gemv():
    gemm = Dims(2, 3, 4)
    gemv = Dims(2, 3)
    assert gemm.is_gemm and gemm.kernel is Kernel.GEMM
    assert not gemv.is_gemm and gemv.kernel is Kernel.GEMV
    assert gemv.k == 0


def test_dims_min_max_and_str():
    d = Dims(4, 9, 2)
    assert d.min_dim == 2 and d.max_dim == 9
    assert str(d) == "{4, 9, 2}"
    assert d.as_tuple() == (4, 9, 2)


def test_dims_are_ordered_and_hashable():
    assert Dims(1, 1, 1) < Dims(2, 2, 2)
    assert len({Dims(1, 1, 1), Dims(1, 1, 1), Dims(2, 2, 2)}) == 2


def test_transfer_labels():
    assert TransferType.ONCE.label == "Transfer-Once"
    assert TransferType.ALWAYS.label == "Transfer-Always"
    assert TransferType.UNIFIED.label == "Unified-Memory"


def test_transfer_values_round_trip():
    for t in TransferType:
        assert TransferType(t.value) is t
