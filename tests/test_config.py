"""RunConfig validation and sweep-parameter generation."""

from __future__ import annotations

import pytest

from repro.core.config import RunConfig
from repro.core.problem import get_problem_type
from repro.errors import ConfigError
from repro.types import Kernel, Precision, TransferType


def test_defaults_sweep_both_kernels_and_precisions():
    cfg = RunConfig()
    kinds = {(pt.kernel, pt.ident) for pt in cfg.problem_types()}
    assert kinds == {(Kernel.GEMM, "square"), (Kernel.GEMV, "square")}
    assert cfg.precisions == (Precision.SINGLE, Precision.DOUBLE)
    assert set(cfg.transfers) == set(TransferType)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"min_dim": 0},
        {"max_dim": 4, "min_dim": 8},
        {"iterations": 0},
        {"step": 0},
        {"cpu_enabled": False, "gpu_enabled": False},
        {"transfers": ()},
        {"problem_idents": ("nonexistent",)},
    ],
)
def test_invalid_configs_raise(kwargs):
    with pytest.raises(ConfigError):
        RunConfig(**kwargs)


def test_cpu_only_config_allows_empty_transfers():
    cfg = RunConfig(gpu_enabled=False, transfers=())
    assert cfg.transfers == ()


def test_problem_types_skips_idents_missing_for_a_kernel():
    # mn_k32 exists for GEMM only; the GEMV side is silently skipped.
    cfg = RunConfig(problem_idents=("mn_k32",))
    assert [pt.kernel for pt in cfg.problem_types()] == [Kernel.GEMM]


def test_sweep_params_stride_always_includes_top():
    cfg = RunConfig(min_dim=1, max_dim=100, step=8)
    params = cfg.sweep_params(get_problem_type(Kernel.GEMM, "square"))
    assert params[0] == 1
    assert params[-1] == 100
    assert params[1] - params[0] == 8


def test_sweep_params_respects_ratio16_bounds():
    cfg = RunConfig(min_dim=1, max_dim=4096, step=4)
    pt = get_problem_type(Kernel.GEMM, "mn_m16k")
    params = cfg.sweep_params(pt)
    assert pt.dims_at(params[-1]).max_dim == 4096
