"""``gpu-blob`` — the sweep CLI, mirroring the C++ benchmark's flags.

Examples::

    gpu-blob -i 8 -s 1 -d 4096 --system dawn --step 4 -o results/dawn-i8
    gpu-blob -i 1 -d 4096 --system lumi --cpu-only
    gpu-blob -i 4 -d 256 --backend host --kernel gemm
    gpu-blob -i 8 -d 512 --system lumi --backend des --step 4
    gpu-blob -i 8 -d 512 --system lumi --faults --fault-rate 0.3 \
        --max-retries 2 --checkpoint ck.jsonl -o results/chaos
    gpu-blob -i 8 -d 512 --system lumi --checkpoint ck.jsonl --resume
    gpu-blob -i 8 -d 512 --system dawn --strict -j 4
    gpu-blob -i 8 -d 512 --system specs/lumi.toml --step 8
    gpu-blob fsck results/dawn-i8 ck.jsonl --repair
    gpu-blob cache prune --max-entries 32
    gpu-blob cache stats --json
    gpu-blob serve --port 8377 --workers 2 --rate 50
    gpu-blob serve --wal /var/lib/gpu-blob/serve-wal.jsonl --lease 120 \
        --breaker-threshold 3 --breaker-reset 30
    gpu-blob serve --chaos-plan heavy:7 --sweep-jobs 2   # fire drill
    gpu-blob campaign campaigns/ci-smoke.toml -o results/campaign/ci-smoke
    gpu-blob campaign campaigns/ci-smoke.toml --checkpoint-dir ck --resume
    gpu-blob campaign campaigns/ci-smoke.toml --dry-run
    gpu-blob campaign campaigns/ci-smoke.toml --workers 3 --lease 10 \
        -o results/campaign/ci-smoke     # distributed, ledger-coordinated
    gpu-blob campaign campaigns/ci-smoke.toml --workers 3 \
        --chaos-plan node-kill:7         # fleet fire drill
    gpu-blob query --port 8377 --system dawn --kernel gemm -i 8
    gpu-blob spec lint specs
    gpu-blob spec list

``--system`` accepts a registry name (``dawn``, ``lumi``,
``isambard-ai``, or anything on ``$REPRO_SPEC_PATH``/``./specs``) or a
path to a ``.toml``/``.json`` spec file.

With ``-o`` the per-series CSVs land in the given directory (plus a
``quarantine.json`` report when samples were quarantined); without it
the threshold summary table prints to stdout either way.

Error exit codes map the three error families: configuration problems
exit 2, sweep faults that escape the resilience machinery exit 3, and
integrity failures (corrupt journals/cache entries, strict-mode model
invariant violations) exit 4 — ``fsck`` uses the same 4 for any
unrepaired finding.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .backends import backend_names, make_backend
from .core.config import RunConfig
from .core.csvio import write_run
from .core.runner import RetryPolicy, run_sweep
from .core.tables import run_summary
from .errors import IntegrityError, ReproError, SweepFaultError
from .faults import FaultPlan
from .systems.catalog import make_model
from .types import ALL_PRECISIONS, Kernel, Precision, TransferType

__all__ = [
    "build_campaign_parser",
    "build_parser",
    "build_query_parser",
    "build_spec_parser",
    "main",
]

#: Default location of the content-addressed sweep cache.
DEFAULT_CACHE_DIR = "results/.sweep-cache"


def _exit_code(exc: ReproError) -> int:
    """Config = 2, sweep fault = 3, integrity = 4 (see module doc)."""
    if isinstance(exc, IntegrityError):
        return 4
    if isinstance(exc, SweepFaultError):
        return 3
    return 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gpu-blob",
        description=(
            "Sweep GEMM/GEMV problem sizes across CPU and GPU and report "
            "GPU offload thresholds (analytic GPU-BLOB model)."
        ),
    )
    parser.add_argument(
        "-i", "--iterations", type=int, default=1, metavar="N",
        help="data re-use: BLAS calls per measured offload (default 1)",
    )
    parser.add_argument(
        "-s", "--start", type=int, default=1, metavar="DIM",
        help="smallest swept dimension parameter (default 1)",
    )
    parser.add_argument(
        "-d", "--dim", type=int, default=4096, metavar="DIM",
        help="largest swept dimension parameter (default 4096)",
    )
    parser.add_argument(
        "--step", type=int, default=8, metavar="N",
        help="sweep stride; the largest size is always included (default 8)",
    )
    parser.add_argument(
        "--system", default="isambard-ai", metavar="NAME|SPEC",
        help="modelled system: a registry/spec name or a path to a "
        ".toml/.json system-spec file (default isambard-ai)",
    )
    parser.add_argument(
        "--kernel", choices=("gemm", "gemv", "both"), default="both",
        help="which BLAS kernels to sweep (default both)",
    )
    parser.add_argument(
        "--problem", action="append", dest="problems", metavar="IDENT",
        help="problem type ident (repeatable; default: square)",
    )
    parser.add_argument(
        "--precision", choices=("single", "double", "both"), default="both",
        help="floating-point width(s) to sweep (default both)",
    )
    parser.add_argument(
        "--transfer",
        action="append",
        dest="transfers",
        choices=tuple(t.value for t in TransferType),
        metavar="PARADIGM",
        help="transfer paradigm (repeatable; default: all three)",
    )
    parser.add_argument(
        "--cpu-only", action="store_true",
        help="skip the GPU side entirely (split-run style)",
    )
    parser.add_argument(
        "--backend", choices=backend_names(), default="analytic",
        help="'analytic' evaluates the closed-form model; 'des' replays "
        "each measurement on the discrete-event engine; 'host' times "
        "real numpy kernels on this machine's CPU (default analytic)",
    )
    parser.add_argument(
        "--usm-pages", action="store_true",
        help="with --backend des: quantize unified-memory migration to "
        "whole pages and fault batches (driver-realistic accounting)",
    )
    resilience = parser.add_argument_group("resilience")
    resilience.add_argument(
        "--faults", action="store_true",
        help="inject deterministic, seeded faults (transient kernel/DMA "
        "failures, hangs, ECC slowdowns) into the sweep",
    )
    resilience.add_argument(
        "--fault-rate", type=float, default=0.05, metavar="R",
        help="per-sample-attempt probability of each transient fault "
        "kind under --faults (default 0.05)",
    )
    resilience.add_argument(
        "--fault-seed", type=int, default=0, metavar="N",
        help="seed of the fault plan; same seed, same faults (default 0)",
    )
    resilience.add_argument(
        "--max-retries", type=int, default=3, metavar="N",
        help="per-sample retries with exponential backoff before the "
        "cell is quarantined (default 3)",
    )
    resilience.add_argument(
        "--sample-timeout", type=float, default=None, metavar="SECONDS",
        help="per-sample simulated-clock deadline; overruns are retried "
        "like transient faults (default: none)",
    )
    resilience.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="journal every completed sample to a JSONL checkpoint",
    )
    resilience.add_argument(
        "--resume", action="store_true",
        help="replay completed samples from --checkpoint instead of "
        "re-running them",
    )
    resilience.add_argument(
        "--strict", action="store_true",
        help="model-invariant guard rejects (exit 4) any sample faster "
        "than the link-bandwidth floor or above the roofline of its "
        "own SystemSpec, and any inconsistently calibrated spec; the "
        "default only warns",
    )
    resilience.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline per parallel shard under -j; an "
        "overrun kills and re-submits the shard (default: none)",
    )
    execution = parser.add_argument_group("execution")
    execution.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="shard (problem type, precision) series across N worker "
        "processes; results merge bit-identical to a serial run "
        "(default 1: in-process)",
    )
    execution.add_argument(
        "--cache-dir", metavar="DIR", default=DEFAULT_CACHE_DIR,
        help="content-addressed sweep cache; re-running an identical "
        "(config, system, backend) sweep replays the stored samples "
        f"(default {DEFAULT_CACHE_DIR})",
    )
    execution.add_argument(
        "--no-cache", action="store_true",
        help="bypass the sweep cache: neither read nor write it",
    )
    execution.add_argument(
        "--adaptive", action="store_true",
        help="adaptive sweep: coarse grid + bisection refinement around "
        "each threshold crossing instead of a dense scan; thresholds "
        "are identical to the dense sweep from a fraction of the "
        "samples (CSV output holds only the sampled sizes; not "
        "combinable with --faults/--checkpoint)",
    )
    parser.add_argument(
        "-o", "--output", metavar="DIR", default=None,
        help="write per-series CSVs into DIR",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the summary table"
    )
    return parser


def _kernels(choice: str):
    if choice == "gemm":
        return (Kernel.GEMM,)
    if choice == "gemv":
        return (Kernel.GEMV,)
    return (Kernel.GEMM, Kernel.GEMV)


def _precisions(choice: str):
    if choice == "single":
        return (Precision.SINGLE,)
    if choice == "double":
        return (Precision.DOUBLE,)
    return ALL_PRECISIONS


def build_fsck_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gpu-blob fsck",
        description=(
            "Audit sweep artifacts — checkpoint journals (*.jsonl), "
            "sweep-cache entries, results CSVs — against their embedded "
            "checksums and plausibility invariants.  Exits 0 when "
            "everything verifies, 4 when problems remain."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="journal files, cache/results directories, or individual "
        f"artifacts (default: the {DEFAULT_CACHE_DIR} cache)",
    )
    parser.add_argument(
        "--repair", action="store_true",
        help="move damage out of the way instead of just reporting it: "
        "bad journal lines go to a .bad sidecar (the journal is "
        "rewritten with only verified records), bad cache entries and "
        "CSVs move into a quarantine/ subdirectory",
    )
    return parser


def build_cache_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gpu-blob cache",
        description="Manage the content-addressed sweep cache.",
    )
    sub = parser.add_subparsers(dest="cache_command", required=True)
    prune = sub.add_parser(
        "prune", help="LRU-evict entries until the store fits the bounds"
    )
    prune.add_argument(
        "--cache-dir", metavar="DIR", default=DEFAULT_CACHE_DIR,
        help=f"cache directory (default {DEFAULT_CACHE_DIR})",
    )
    prune.add_argument(
        "--max-entries", type=int, default=None, metavar="N",
        help="keep at most N entries (default: unlimited)",
    )
    prune.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="keep at most N bytes of entries (default: unlimited)",
    )
    stats = sub.add_parser(
        "stats",
        help="report entry count, total bytes, and the hit/miss "
        "counters shared with the serve daemon's /metrics",
    )
    stats.add_argument(
        "--cache-dir", metavar="DIR", default=DEFAULT_CACHE_DIR,
        help=f"cache directory (default {DEFAULT_CACHE_DIR})",
    )
    stats.add_argument(
        "--json", action="store_true",
        help="emit the stats as one JSON object instead of text",
    )
    stats.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="also list the N hottest entries by hit count",
    )
    return parser


def build_campaign_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gpu-blob campaign",
        description=(
            "Run a benchmarking campaign: expand the scenario matrix "
            "(systems x problem types x precisions x paradigms) of a "
            "campaign TOML/JSON file, fan it across the supervised "
            "parallel executor, and aggregate every offload threshold "
            "into one cross-system report (CSV + JSON).  With a stored "
            "golden, a drifted report exits 4 (the integrity family)."
        ),
    )
    parser.add_argument(
        "file", metavar="CAMPAIGN",
        help="campaign .toml/.json file (see campaigns/ci-smoke.toml)",
    )
    parser.add_argument(
        "-o", "--output", metavar="DIR", default=None,
        help="write campaign_report.{csv,json} plus per-scenario series "
        "CSVs into DIR",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=None, metavar="N",
        help="worker processes per scenario sweep (overrides the "
        "campaign's [execution] jobs)",
    )
    parser.add_argument(
        "--backend", choices=backend_names(), default=None,
        help="override the campaign's [execution] backend",
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="journal each scenario to its own JSONL checkpoint in DIR",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="replay completed samples from --checkpoint-dir journals",
    )
    parser.add_argument(
        "--stop-after", type=int, default=None, metavar="N",
        help="stop the campaign after N scenarios (deterministic "
        "interruption for resume testing); no report is written",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=DEFAULT_CACHE_DIR,
        help="content-addressed sweep cache shared by all scenarios "
        f"(default {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the sweep cache: neither read nor write it",
    )
    parser.add_argument(
        "--golden", metavar="CSV", default=None,
        help="drift-check the aggregated report against this golden CSV "
        "(overrides the campaign's [drift] golden)",
    )
    parser.add_argument(
        "--no-drift", action="store_true",
        help="skip drift detection even when the campaign names a golden",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="strict mode: the model-invariant guard rejects "
        "miscalibrated specs and implausible samples (exit 4)",
    )
    parser.add_argument(
        "--adaptive", action="store_true",
        help="adaptive sweeps (coarse grid + bisection): the report is "
        "byte-identical to a dense campaign from a fraction of the "
        "cells (overrides the campaign's [execution] adaptive; not "
        "combinable with --checkpoint-dir)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-scenario progress and the report summary",
    )
    parser.add_argument(
        "--dry-run", action="store_true",
        help="print the expanded scenario matrix (count, per-system "
        "breakdown) and exit without executing anything",
    )
    dist = parser.add_argument_group(
        "distributed execution",
        "shard scenarios across worker processes, coordinated through "
        "a durable dispatch ledger with leases, heartbeats and work "
        "stealing; the aggregated report is byte-identical to a "
        "single-node run",
    )
    dist.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="dispatch scenarios across N gpu-blob dist-worker "
        "subprocesses instead of running them inline",
    )
    dist.add_argument(
        "--worker-cmd", metavar="CMD", default=None,
        help="command prefix launching one worker (appended with the "
        "dist-worker protocol flags); default: this interpreter's own "
        "'python -m repro.cli dist-worker'.  Implies --workers 2 "
        "unless --workers is given",
    )
    dist.add_argument(
        "--dist-dir", metavar="DIR", default=None,
        help="dispatch ledger + result shards (default "
        "results/.dist/<campaign-name>); with --resume the ledger is "
        "replayed instead of restarted",
    )
    dist.add_argument(
        "--lease", type=float, default=15.0, metavar="SECONDS",
        help="scenario lease: a worker silent past its lease loses the "
        "scenario to a healthy one (default 15)",
    )
    dist.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECONDS",
        help="worker heartbeat interval (default: lease/5)",
    )
    dist.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="attempts (dispatches) per scenario before it dead-letters "
        "into the report as quarantined rows (default 3)",
    )
    dist.add_argument(
        "--chaos-plan", metavar="PLAN", default=None,
        help="seeded fleet chaos: node-kill | partition | slow-worker, "
        "optionally ':<seed>' (composes with REPRO_CHAOS_KILL_SHARD "
        "inside workers)",
    )
    return parser


def _main_campaign_dry_run(campaign, scenarios, log) -> int:
    """The ``--dry-run`` sizing report: what would run, where."""
    from collections import Counter

    per_system = Counter(s.system for s in scenarios)
    cells = sum(
        len(s.config.problem_types())
        * len(s.config.precisions)
        * len(s.config.transfers)
        for s in scenarios
    )
    log(
        f"campaign {campaign.name!r} (fingerprint "
        f"{campaign.fingerprint()}): {len(scenarios)} scenario(s), "
        f"{cells} report cell(s)"
    )
    for system, count in per_system.items():
        iters = sorted(
            s.iterations for s in scenarios if s.system == system
        )
        log(
            f"  {system}: {count} scenario(s), iterations "
            f"{', '.join(str(i) for i in iters)}"
        )
    log("dry run: nothing executed")
    return 0


def _main_campaign(argv: List[str]) -> int:
    from pathlib import Path

    from .core.campaign import (
        assert_no_drift,
        expand_scenarios,
        load_campaign,
        run_campaign,
        write_report,
    )

    args = build_campaign_parser().parse_args(argv)
    log = (lambda line: None) if args.quiet else print
    distributed = args.workers is not None or args.worker_cmd is not None
    try:
        if args.resume and not distributed and not args.checkpoint_dir:
            raise ReproError(
                "--resume needs --checkpoint-dir DIR (or --workers N, "
                "where it replays the dispatch ledger)"
            )
        campaign = load_campaign(args.file)
        if args.dry_run:
            scenarios = expand_scenarios(
                campaign, strict=args.strict, adaptive=args.adaptive,
            )
            return _main_campaign_dry_run(campaign, scenarios, log)
        log(
            f"campaign {campaign.name!r}: {len(campaign.systems)} "
            f"system(s), matrix of {campaign.matrix_size} cell(s)"
        )
        if distributed:
            result = _run_campaign_distributed(campaign, args, log)
        else:
            result = run_campaign(
                campaign,
                jobs=args.jobs,
                backend=args.backend,
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
                cache_dir=None if args.no_cache else args.cache_dir,
                strict=args.strict,
                stop_after=args.stop_after,
                adaptive=True if args.adaptive else None,
                log=log,
            )
        if result.quarantined:
            log(
                f"campaign degraded: {len(result.quarantined)} "
                "scenario(s) dead-lettered (quarantined rows in the "
                "report)"
            )
        if not result.complete:
            log(
                f"campaign partial ({result.executed}/"
                f"{len(result.scenarios)} scenario(s)); no report written"
            )
            return 0
        rows = result.rows()
        if args.output:
            paths = write_report(result, args.output)
            log(f"wrote {', '.join(str(p) for p in paths)}")
        golden = (
            Path(args.golden) if args.golden else campaign.golden_path()
        )
        if golden is not None and not args.no_drift:
            assert_no_drift(rows, golden)
            log(f"no drift against {golden}")
    except ReproError as exc:
        print(f"gpu-blob: error: {exc}", file=sys.stderr)
        return _exit_code(exc)
    found = sum(1 for r in rows if r["found"] == "1")
    log(
        f"campaign {campaign.name!r} complete: {len(rows)} threshold "
        f"row(s), {found} with a GPU offload threshold"
    )
    return 0


def _run_campaign_distributed(campaign, args, log):
    """Shared glue between the campaign parser's distributed flags and
    :func:`repro.dist.dispatcher.run_campaign_distributed`."""
    import shlex
    from pathlib import Path

    from .dist.dispatcher import run_campaign_distributed
    from .faults.distchaos import DistChaosPlan

    if args.checkpoint_dir:
        raise ReproError(
            "--checkpoint-dir journals per-scenario sweeps on one node; "
            "distributed runs journal the dispatch ledger instead — "
            "drop --checkpoint-dir"
        )
    chaos = (
        DistChaosPlan.parse(args.chaos_plan) if args.chaos_plan else None
    )
    worker_cmd = shlex.split(args.worker_cmd) if args.worker_cmd else None
    worker_count = args.workers if args.workers is not None else 2
    dist_dir = (
        Path(args.dist_dir)
        if args.dist_dir
        else Path("results") / ".dist" / campaign.name
    )
    result = run_campaign_distributed(
        campaign,
        dist_dir=dist_dir,
        worker_count=worker_count,
        worker_cmd=worker_cmd,
        jobs=args.jobs,
        backend=args.backend,
        cache_dir=None if args.no_cache else args.cache_dir,
        strict=args.strict,
        adaptive=True if args.adaptive else None,
        resume=args.resume,
        lease_s=args.lease,
        heartbeat_s=args.heartbeat,
        max_attempts=args.max_attempts,
        chaos=chaos,
        log=log,
    )
    stats = result.dist_stats or {}
    turnaround = stats.get("turnaround") or {}
    p50 = turnaround.get("p50_ms")
    log(
        f"dispatch: {stats.get('assignments', 0)} assignment(s) across "
        f"{stats.get('workers', 0)} worker(s), "
        f"{stats.get('steals', 0)} steal(s), "
        f"{stats.get('duplicate_finishes', 0)} duplicate finish(es) "
        f"deduped, {stats.get('replayed', 0)} replayed from the ledger"
        + (f", p50 scenario turnaround {p50:.0f}ms" if p50 else "")
    )
    return result


def build_query_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gpu-blob query",
        description=(
            "Ask a running gpu-blob serve daemon for one offload "
            "threshold.  Degraded (stale-while-revalidate) answers are "
            "surfaced, not swallowed: the server's Warning: 110 header "
            "and stale_iterations annotation print to stderr."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--system", required=True, metavar="NAME")
    parser.add_argument("--kernel", choices=("gemm", "gemv"),
                        default="gemm")
    parser.add_argument("--problem", default="square", metavar="IDENT")
    parser.add_argument("--precision", choices=("single", "double"),
                        default="single")
    parser.add_argument(
        "--paradigm", choices=tuple(t.value for t in TransferType),
        default="once",
    )
    parser.add_argument("-i", "--iterations", type=int, default=1,
                        metavar="N")
    parser.add_argument("--dim", type=int, default=None, metavar="DIM",
                        help="also report the best device for this "
                        "problem size")
    parser.add_argument("--max-dim", type=int, default=4096, metavar="DIM")
    parser.add_argument("--step", type=int, default=8, metavar="N")
    parser.add_argument("--json", action="store_true",
                        help="print the raw response body")
    return parser


def _main_query(argv: List[str]) -> int:
    import asyncio
    import json as _json

    from .serve.client import ClientRetryPolicy, ServeClient

    args = build_query_parser().parse_args(argv)
    payload = {
        "system": args.system,
        "kernel": args.kernel,
        "problem": args.problem,
        "precision": args.precision,
        "paradigm": args.paradigm,
        "iterations": args.iterations,
        "max_dim": args.max_dim,
        "step": args.step,
    }
    if args.dim is not None:
        payload["dim"] = args.dim

    async def _go():
        client = ServeClient(args.host, args.port,
                             retry=ClientRetryPolicy())
        try:
            return await client.post("/v1/threshold", payload)
        finally:
            await client.close()

    try:
        response = asyncio.run(_go())
    except (ConnectionError, OSError) as exc:
        print(f"gpu-blob: error: cannot reach {args.host}:{args.port}: "
              f"{exc}", file=sys.stderr)
        return 3
    try:
        body = response.json()
    except ValueError:
        body = {}
    if response.status != 200:
        detail = body.get("error", response.body.decode("utf-8", "replace"))
        print(f"gpu-blob: error: server answered {response.status}: "
              f"{detail}", file=sys.stderr)
        return 3 if response.status in (429, 503) or \
            response.status >= 500 else 2
    if args.json:
        print(_json.dumps(body, sort_keys=True))
    else:
        threshold = body.get("threshold", {})
        if threshold.get("found"):
            print(f"threshold: {threshold.get('notation')}")
        else:
            print("threshold: none found in the swept range")
        if "best_device" in body:
            print(f"best device: {body['best_device']}")
        hit = body.get("cache", {}).get("hit")
        if hit is not None:
            print(f"cache: {'hit' if hit else 'miss'}")
    if response.degraded:
        stale = response.stale_iterations
        reason = body.get("cache", {}).get("reason", "backend unavailable")
        print(
            "gpu-blob: warning: DEGRADED answer (stale-while-revalidate"
            + (f", stale_iterations={stale}" if stale is not None else "")
            + f"): {reason}",
            file=sys.stderr,
        )
    return 0


def build_spec_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gpu-blob spec",
        description=(
            "Inspect and lint system-spec files.  'lint' loads every "
            "given spec (or every spec in the given directories) under "
            "the strict invariant auditor and exits 4 if any fails; "
            "'list' shows the registry plus every discoverable spec file."
        ),
    )
    sub = parser.add_subparsers(dest="spec_command", required=True)
    lint = sub.add_parser(
        "lint", help="strict-load spec files; exit 4 on any failure"
    )
    lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="spec files or directories (default: the spec search path)",
    )
    sub.add_parser(
        "list", help="show registry names and discovered spec files"
    )
    return parser


def _main_spec(argv: List[str]) -> int:
    from pathlib import Path

    from .systems.catalog import discover_specs, spec_search_dirs, system_names
    from .systems.specio import SPEC_SUFFIXES, load_spec

    args = build_spec_parser().parse_args(argv)
    if args.spec_command == "list":
        print(f"registry: {', '.join(system_names())}")
        for stem, path in sorted(discover_specs().items()):
            print(f"  {stem}: {path}")
        return 0
    paths: List[Path] = []
    for raw in args.paths or [str(d) for d in spec_search_dirs()]:
        p = Path(raw)
        if p.is_dir():
            for suffix in SPEC_SUFFIXES:
                paths.extend(sorted(p.glob(f"*{suffix}")))
        elif p.is_file():
            paths.append(p)
        else:
            print(f"gpu-blob: error: no spec file or directory at {p}",
                  file=sys.stderr)
            return 2
    if not paths:
        print("spec lint: no spec files found", file=sys.stderr)
        return 2
    failures = 0
    for path in paths:
        try:
            spec = load_spec(path, strict=True)
        except ReproError as exc:
            failures += 1
            print(f"FAIL {path}: {exc}")
        else:
            print(f"ok   {path} ({spec.name})")
    if failures:
        print(f"spec lint: {failures} of {len(paths)} spec(s) failed",
              file=sys.stderr)
        return 4
    print(f"spec lint: all {len(paths)} spec(s) verify")
    return 0


def _main_fsck(argv: List[str]) -> int:
    from .core.fsck import fsck_paths

    args = build_fsck_parser().parse_args(argv)
    paths = args.paths or [DEFAULT_CACHE_DIR]
    try:
        findings = fsck_paths(paths, repair=args.repair)
    except ReproError as exc:
        print(f"gpu-blob: error: {exc}", file=sys.stderr)
        return _exit_code(exc)
    for finding in findings:
        print(finding)
    unrepaired = [f for f in findings if not f.repaired]
    if not findings:
        print("fsck: all artifacts verify")
    elif not unrepaired:
        print(f"fsck: repaired {len(findings)} problem(s)")
    else:
        print(
            f"fsck: {len(unrepaired)} problem(s) remain"
            + ("" if args.repair else " (re-run with --repair)"),
            file=sys.stderr,
        )
    return 4 if unrepaired else 0


def _main_cache(argv: List[str]) -> int:
    args = build_cache_parser().parse_args(argv)
    if args.cache_command == "stats":
        return _main_cache_stats(args)
    from .core.sweepcache import prune_cache

    try:
        evicted = prune_cache(
            args.cache_dir,
            max_entries=args.max_entries,
            max_bytes=args.max_bytes,
        )
    except ReproError as exc:
        print(f"gpu-blob: error: {exc}", file=sys.stderr)
        return _exit_code(exc)
    print(f"pruned {len(evicted)} cache entr{'y' if len(evicted) == 1 else 'ies'}")
    return 0


def _main_cache_stats(args) -> int:
    import json as _json

    from .core.sweepcache import cache_stats, top_entries

    try:
        stats = cache_stats(args.cache_dir)
        top = (
            top_entries(args.cache_dir, args.top)
            if args.top is not None else None
        )
    except ReproError as exc:
        print(f"gpu-blob: error: {exc}", file=sys.stderr)
        return _exit_code(exc)
    if args.json:
        if top is not None:
            stats = dict(stats, top_entries=top)
        print(_json.dumps(stats, sort_keys=True))
        return 0
    print(f"cache:      {args.cache_dir}")
    print(f"entries:    {stats['entries']}")
    print(f"bytes:      {stats['total_bytes']}")
    print(f"hits:       {stats['hits']}")
    print(f"misses:     {stats['misses']}")
    print(f"stores:     {stats['stores']}")
    print(f"hit rate:   {stats['hit_rate']:.3f}")
    if top is not None:
        print(f"top {len(top)} entr{'y' if len(top) == 1 else 'ies'} by hits:")
        for entry in top:
            gone = "" if entry["present"] else "  (evicted)"
            print(f"  {entry['hits']:>6}  {entry['key']}{gone}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "fsck":
        return _main_fsck(argv[1:])
    if argv and argv[0] == "cache":
        return _main_cache(argv[1:])
    if argv and argv[0] == "serve":
        from .serve.service import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "campaign":
        return _main_campaign(argv[1:])
    if argv and argv[0] == "dist-worker":
        from .dist.worker import worker_main

        return worker_main(argv[1:])
    if argv and argv[0] == "query":
        return _main_query(argv[1:])
    if argv and argv[0] == "spec":
        return _main_spec(argv[1:])
    return _main_sweep(argv)


def _main_sweep(argv: List[str]) -> int:
    args = build_parser().parse_args(argv)
    try:
        config = RunConfig(
            min_dim=args.start,
            max_dim=args.dim,
            iterations=args.iterations,
            step=args.step,
            kernels=_kernels(args.kernel),
            problem_idents=tuple(args.problems or ("square",)),
            precisions=_precisions(args.precision),
            transfers=tuple(
                TransferType(t) for t in (args.transfers or ())
            ) or tuple(TransferType),
            gpu_enabled=not args.cpu_only,
            validate=args.strict,
            adaptive=args.adaptive,
        )
        if args.backend == "host":
            backend = make_backend("host")
            system_name = "host"
        else:
            kwargs = (
                {"usm_page_granular": True}
                if args.backend == "des" and args.usm_pages
                else {}
            )
            backend = make_backend(
                args.backend, make_model(args.system), **kwargs
            )
            system_name = None
        if args.resume and not args.checkpoint:
            raise ReproError("--resume needs --checkpoint PATH")
        faults = (
            FaultPlan.uniform(args.fault_rate, seed=args.fault_seed)
            if args.faults
            else None
        )
        retry = RetryPolicy(
            max_retries=args.max_retries,
            sample_timeout_s=args.sample_timeout,
            seed=args.fault_seed,
        )
        result = run_sweep(
            backend, config, system_name=system_name,
            faults=faults, retry=retry,
            checkpoint=args.checkpoint, resume=args.resume,
            jobs=args.jobs, shard_timeout_s=args.shard_timeout,
            cache_dir=None if args.no_cache else args.cache_dir,
        )
    except ReproError as exc:
        print(f"gpu-blob: error: {exc}", file=sys.stderr)
        return _exit_code(exc)
    if args.output:
        paths = write_run(result, args.output)
        print(f"wrote {len(paths)} file(s) to {args.output}")
    if not args.quiet:
        print(run_summary(result))
        _print_resilience_report(result)
    return 0


def _print_resilience_report(result) -> None:
    """One line per resilience event, after the summary table."""
    stats = result.stats
    if stats.cached_samples:
        print(
            f"replayed {stats.cached_samples} sample(s) from the sweep cache"
        )
    if stats.resumed_samples:
        print(f"resumed {stats.resumed_samples} sample(s) from checkpoint")
    if stats.retries:
        print(
            f"retried {stats.retries} time(s); "
            f"{stats.backoff_s:.2f}s simulated backoff"
        )
    if stats.worker_retries:
        print(
            f"recovered from {stats.worker_retries} parallel-shard "
            f"failure(s) (worker death or deadline overrun)"
        )
    if stats.inprocess_shards:
        print(
            f"degraded {stats.inprocess_shards} shard(s) to in-process "
            "execution after repeated pool failures"
        )
    if stats.adaptive_cells_dense:
        saved = stats.adaptive_cells_dense - stats.adaptive_cells_sampled
        print(
            f"adaptive sweep sampled {stats.adaptive_cells_sampled} of "
            f"{stats.adaptive_cells_dense} grid cell(s) "
            f"({saved} skipped by bisection)"
        )
    if result.degraded:
        print("sweep degraded to the analytic fallback backend")
    if result.device_lost:
        print("GPU device lost mid-sweep; finished CPU-only")
    if result.quarantine:
        print(f"quarantined {len(result.quarantine)} sample(s):")
        for entry in result.quarantine:
            print(f"  - {entry}")


if __name__ == "__main__":
    sys.exit(main())
