"""``gpu-blob`` — the sweep CLI, mirroring the C++ benchmark's flags.

Examples::

    gpu-blob -i 8 -s 1 -d 4096 --system dawn --step 4 -o results/dawn-i8
    gpu-blob -i 1 -d 4096 --system lumi --cpu-only
    gpu-blob -i 4 -d 256 --backend host --kernel gemm
    gpu-blob -i 8 -d 512 --system lumi --backend des --step 4

With ``-o`` the per-series CSVs land in the given directory; without it
the threshold summary table prints to stdout either way.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .backends import backend_names, make_backend
from .core.config import RunConfig
from .core.csvio import write_run
from .core.runner import run_sweep
from .core.tables import run_summary
from .errors import ReproError
from .systems.catalog import make_model, system_names
from .types import ALL_PRECISIONS, Kernel, Precision, TransferType

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gpu-blob",
        description=(
            "Sweep GEMM/GEMV problem sizes across CPU and GPU and report "
            "GPU offload thresholds (analytic GPU-BLOB model)."
        ),
    )
    parser.add_argument(
        "-i", "--iterations", type=int, default=1, metavar="N",
        help="data re-use: BLAS calls per measured offload (default 1)",
    )
    parser.add_argument(
        "-s", "--start", type=int, default=1, metavar="DIM",
        help="smallest swept dimension parameter (default 1)",
    )
    parser.add_argument(
        "-d", "--dim", type=int, default=4096, metavar="DIM",
        help="largest swept dimension parameter (default 4096)",
    )
    parser.add_argument(
        "--step", type=int, default=8, metavar="N",
        help="sweep stride; the largest size is always included (default 8)",
    )
    parser.add_argument(
        "--system", default="isambard-ai", choices=tuple(system_names()),
        help="modelled system (default isambard-ai)",
    )
    parser.add_argument(
        "--kernel", choices=("gemm", "gemv", "both"), default="both",
        help="which BLAS kernels to sweep (default both)",
    )
    parser.add_argument(
        "--problem", action="append", dest="problems", metavar="IDENT",
        help="problem type ident (repeatable; default: square)",
    )
    parser.add_argument(
        "--precision", choices=("single", "double", "both"), default="both",
        help="floating-point width(s) to sweep (default both)",
    )
    parser.add_argument(
        "--transfer",
        action="append",
        dest="transfers",
        choices=tuple(t.value for t in TransferType),
        metavar="PARADIGM",
        help="transfer paradigm (repeatable; default: all three)",
    )
    parser.add_argument(
        "--cpu-only", action="store_true",
        help="skip the GPU side entirely (split-run style)",
    )
    parser.add_argument(
        "--backend", choices=backend_names(), default="analytic",
        help="'analytic' evaluates the closed-form model; 'des' replays "
        "each measurement on the discrete-event engine; 'host' times "
        "real numpy kernels on this machine's CPU (default analytic)",
    )
    parser.add_argument(
        "--usm-pages", action="store_true",
        help="with --backend des: quantize unified-memory migration to "
        "whole pages and fault batches (driver-realistic accounting)",
    )
    parser.add_argument(
        "-o", "--output", metavar="DIR", default=None,
        help="write per-series CSVs into DIR",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the summary table"
    )
    return parser


def _kernels(choice: str):
    if choice == "gemm":
        return (Kernel.GEMM,)
    if choice == "gemv":
        return (Kernel.GEMV,)
    return (Kernel.GEMM, Kernel.GEMV)


def _precisions(choice: str):
    if choice == "single":
        return (Precision.SINGLE,)
    if choice == "double":
        return (Precision.DOUBLE,)
    return ALL_PRECISIONS


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        config = RunConfig(
            min_dim=args.start,
            max_dim=args.dim,
            iterations=args.iterations,
            step=args.step,
            kernels=_kernels(args.kernel),
            problem_idents=tuple(args.problems or ("square",)),
            precisions=_precisions(args.precision),
            transfers=tuple(
                TransferType(t) for t in (args.transfers or ())
            ) or tuple(TransferType),
            gpu_enabled=not args.cpu_only,
        )
        if args.backend == "host":
            backend = make_backend("host")
            system_name = "host"
        else:
            kwargs = (
                {"usm_page_granular": True}
                if args.backend == "des" and args.usm_pages
                else {}
            )
            backend = make_backend(
                args.backend, make_model(args.system), **kwargs
            )
            system_name = None
        result = run_sweep(backend, config, system_name=system_name)
    except ReproError as exc:
        print(f"gpu-blob: error: {exc}", file=sys.stderr)
        return 2
    if args.output:
        paths = write_run(result, args.output)
        print(f"wrote {len(paths)} series CSV(s) to {args.output}")
    if not args.quiet:
        print(run_summary(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
