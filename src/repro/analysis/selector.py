"""Device selectors: empirical (trained on sweep data) and model-backed.

Chikin et al. predict placement from per-architecture analytical models;
GPU-BLOB's portable alternative is to *measure*.  ``EmpiricalSelector``
operationalizes that: fit it on the samples of one or more sweeps and it
recommends a device for unseen (dims, precision, iterations) queries by
nearest-neighbour lookup in log-problem-space.  ``ModelSelector`` is the
oracle that asks the analytic model directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..sim.perfmodel import NodePerfModel
from ..types import DeviceKind, Dims, Precision, TransferType

__all__ = ["EmpiricalSelector", "ModelSelector", "Recommendation"]


@dataclass(frozen=True)
class Recommendation:
    device: DeviceKind
    expected_speedup: float
    confidence_distance: float
    transfer: Optional[TransferType] = None


def _features(dims: Dims, iterations: int) -> Tuple[float, ...]:
    return (
        math.log2(dims.m + 1),
        math.log2(dims.n + 1),
        math.log2(dims.k + 1),
        math.log2(iterations + 1),
    )


def _distance(a: Tuple[float, ...], b: Tuple[float, ...]) -> float:
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


class EmpiricalSelector:
    """Nearest-neighbour device recommender over measured sweep points."""

    def __init__(self) -> None:
        # key: (precision, kernel-ness irrelevant — dims carry it)
        self._points: Dict[
            Precision, List[Tuple[Tuple[float, ...], float, float, Optional[TransferType]]]
        ] = {}

    def fit(self, *runs) -> "EmpiricalSelector":
        """Ingest every (dims, iterations) cell of the given runs."""
        for run in runs:
            for series in run.series:
                gpu_tables = {
                    t: {s.dims: s for s in series.gpu_samples(t)}
                    for t in series.transfer_types()
                }
                for c in series.cpu_samples():
                    best_t: Optional[TransferType] = None
                    best_s = math.inf
                    for t, table in gpu_tables.items():
                        g = table.get(c.dims)
                        if g is not None and g.seconds < best_s:
                            best_s, best_t = g.seconds, t
                    if best_t is None:
                        continue
                    self._points.setdefault(series.precision, []).append(
                        (
                            _features(c.dims, series.iterations),
                            c.seconds,
                            best_s,
                            best_t,
                        )
                    )
        return self

    def n_points(self) -> int:
        return sum(len(v) for v in self._points.values())

    def recommend(
        self, dims: Dims, precision: Precision, iterations: int = 1
    ) -> Recommendation:
        points = self._points.get(precision)
        if not points:
            raise ValueError(
                f"no training data for precision {precision.value!r}"
            )
        query = _features(dims, iterations)
        feat, cpu_s, gpu_s, transfer = min(
            points, key=lambda p: _distance(p[0], query)
        )
        if gpu_s < cpu_s:
            return Recommendation(
                DeviceKind.GPU, cpu_s / gpu_s, _distance(feat, query), transfer
            )
        return Recommendation(
            DeviceKind.CPU, gpu_s / cpu_s, _distance(feat, query), None
        )

    def agreement_with(self, oracle: "ModelSelector", queries) -> float:
        """Fraction of (dims, precision, iterations) queries on which the
        recommended device matches the oracle's."""
        if not queries:
            return 1.0
        hits = 0
        for dims, precision, iterations in queries:
            mine = self.recommend(dims, precision, iterations)
            truth = oracle.recommend(dims, precision, iterations)
            hits += mine.device is truth.device
        return hits / len(queries)


class ModelSelector:
    """The oracle: evaluates the analytic model for the exact query."""

    def __init__(
        self,
        model: NodePerfModel,
        transfers: Tuple[TransferType, ...] = (
            TransferType.ONCE,
            TransferType.ALWAYS,
            TransferType.UNIFIED,
        ),
    ) -> None:
        self.model = model
        self.transfers = transfers

    def recommend(
        self, dims: Dims, precision: Precision, iterations: int = 1
    ) -> Recommendation:
        cpu_s = self.model.cpu_time(dims, precision, iterations)
        best_t = None
        best_s = math.inf
        if self.model.has_gpu:
            for t in self.transfers:
                s = self.model.gpu_time(dims, precision, iterations, t)
                if s < best_s:
                    best_s, best_t = s, t
        if best_s < cpu_s:
            return Recommendation(DeviceKind.GPU, cpu_s / best_s, 0.0, best_t)
        return Recommendation(
            DeviceKind.CPU, best_s / cpu_s if math.isfinite(best_s) else math.inf, 0.0, None
        )
