"""A ``perf stat``-style utilization report from the CPU model.

Reproduces the paper's §IV-B diagnosis workflow: on LUMI, ``perf stat``
showed 0.89 CPUs utilized for a long SGEMV run against 50.2 for SGEMM —
the smoking gun for AOCL's serial GEMV.  Here the same counters are
derived from the model: engaged threads from the library's threading
heuristic, utilization from the fraction of wall time spent computing
rather than in dispatch/synchronization.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.flops import flops_for, kernel_bytes
from ..sim.perfmodel import NodePerfModel
from ..types import Dims, Precision

__all__ = ["PerfStatReport", "format_report", "perf_stat"]


@dataclass(frozen=True)
class PerfStatReport:
    kernel: str
    dims: Dims
    iterations: int
    elapsed_s: float
    threads_engaged: int
    cpus_utilized: float
    gflops: float
    ai_flops_per_byte: float


def perf_stat(
    model: NodePerfModel,
    dims: Dims,
    precision: Precision,
    iterations: int = 1000,
) -> PerfStatReport:
    """Model-derived ``perf stat`` counters for a CPU-side run."""
    cpu = model.cpu
    lib = cpu.library
    flops = flops_for(dims)
    if dims.is_gemm:
        threads = cpu.engaged_threads(flops)
        per_call_overhead = lib.overhead_s + lib.sync_per_thread_s * threads
    else:
        bytes_moved = kernel_bytes(dims, precision)
        if lib.gemv_parallel:
            threads = max(
                1,
                min(
                    cpu.max_threads,
                    int(-(-bytes_moved // lib.gemv_grain_bytes)),
                ),
            )
        else:
            threads = 1
        per_call_overhead = lib.gemv_overhead_s + lib.sync_per_thread_s * (
            cpu.max_threads if lib.gemv_fanout else threads
        )
    elapsed = cpu.time(dims, precision, iterations)
    busy_fraction = max(
        0.0, 1.0 - (iterations * per_call_overhead) / elapsed
    )
    return PerfStatReport(
        kernel=f"{precision.blas_prefix}{dims.kernel.value}",
        dims=dims,
        iterations=iterations,
        elapsed_s=elapsed,
        threads_engaged=threads,
        cpus_utilized=threads * busy_fraction,
        gflops=iterations * flops / elapsed / 1e9,
        ai_flops_per_byte=flops / kernel_bytes(dims, precision),
    )


def format_report(report: PerfStatReport) -> str:
    """perf-stat-flavoured text block."""
    return "\n".join(
        [
            "\n Performance counter stats for "
            f"'{report.kernel} {report.dims} x{report.iterations}':",
            "",
            f"   {report.elapsed_s:12.6f} sec  elapsed",
            f"   {report.cpus_utilized:12.2f}      CPUs utilized "
            f"({report.threads_engaged} threads engaged)",
            f"   {report.gflops:12.1f}      GFLOP/s sustained",
            f"   {report.ai_flops_per_byte:12.2f}      FLOPs per byte "
            "(arithmetic intensity)",
        ]
    )
