"""Roofline views of a system spec (§IV-C's arithmetic-intensity lens).

Three rooflines matter for the offload question: the CPU against its
DRAM, the GPU against its HBM, and — decisive for no-re-use offloads —
the GPU against the *host-device link*, whose ridge point sits orders of
magnitude to the right of the HBM one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.flops import arithmetic_intensity
from ..core.problem import ProblemType
from ..systems.specs import SystemSpec
from ..types import Precision

__all__ = [
    "ProblemPlacement",
    "Roofline",
    "classify_problems",
    "cpu_roofline",
    "gpu_roofline",
    "transfer_roofline",
]


@dataclass(frozen=True)
class Roofline:
    name: str
    peak_gflops: float
    bw_gbs: float

    @property
    def balance(self) -> float:
        """Ridge point in FLOPs per byte."""
        return self.peak_gflops / self.bw_gbs

    def attainable_gflops(self, intensity: float) -> float:
        return min(self.peak_gflops, intensity * self.bw_gbs)


def cpu_roofline(spec: SystemSpec, precision: Precision) -> Roofline:
    return Roofline(
        name=f"{spec.cpu.name} vs DRAM",
        peak_gflops=spec.cpu.peak_gflops(precision.itemsize),
        bw_gbs=spec.cpu.mem_bw_gbs,
    )


def gpu_roofline(spec: SystemSpec, precision: Precision) -> Roofline:
    if spec.gpu is None:
        raise ValueError(f"system {spec.name!r} has no GPU")
    return Roofline(
        name=f"{spec.gpu.name} vs HBM",
        peak_gflops=spec.gpu.peak_gflops(precision.value),
        bw_gbs=spec.gpu.mem_bw_gbs,
    )


def transfer_roofline(spec: SystemSpec, precision: Precision) -> Roofline:
    """The GPU's compute peak against the host-device link: the roof a
    Transfer-Always (or single-pass Transfer-Once) offload lives under."""
    if spec.gpu is None:
        raise ValueError(f"system {spec.name!r} has no GPU")
    return Roofline(
        name=f"{spec.gpu.name} vs {spec.link.name}",
        peak_gflops=spec.gpu.peak_gflops(precision.value),
        bw_gbs=spec.link.bw_gbs,
    )


@dataclass(frozen=True)
class ProblemPlacement:
    problem_type: ProblemType
    intensity: float
    compute_bound: bool


def classify_problems(
    roofline: Roofline,
    problem_types: List[ProblemType],
    precision: Precision,
    max_dim: int = 4096,
) -> List[ProblemPlacement]:
    """Each problem type at its largest in-range size: above or below
    the roofline's ridge point?"""
    out = []
    for pt in problem_types:
        params = pt.param_range(1, max_dim)
        dims = pt.dims_at(params[-1])
        intensity = arithmetic_intensity(dims, precision)
        out.append(
            ProblemPlacement(
                problem_type=pt,
                intensity=intensity,
                compute_bound=intensity >= roofline.balance,
            )
        )
    return out
