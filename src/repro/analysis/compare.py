"""Series-level comparisons: GPU win windows and transfer rankings.

The offload threshold deliberately ignores GPU wins that do not persist
to the top of the sweep; ``gpu_win_windows`` reports them anyway — the
paper's Fig. 4 observation that a *window* can exist (DAWN/Isambard
square DGEMV) even when no threshold does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.records import ProblemSeries
from ..types import Dims, TransferType

__all__ = ["TransferComparison", "compare_transfers", "gpu_win_windows"]

#: Ignore windows shorter than this many consecutive sizes — the same
#: prev+current smoothing the threshold detector applies.
_MIN_RUN = 2


def gpu_win_windows(
    series: ProblemSeries, transfer: TransferType
) -> List[Tuple[Dims, Dims]]:
    """Maximal [first, last] dim ranges where the GPU beats the CPU for
    at least ``_MIN_RUN`` consecutive swept sizes."""
    cpu = series.cpu_samples()
    gpu = {s.dims: s for s in series.gpu_samples(transfer)}
    windows: List[Tuple[Dims, Dims]] = []
    run: List[Dims] = []
    for c in cpu:
        g = gpu.get(c.dims)
        if g is not None and g.seconds < c.seconds:
            run.append(c.dims)
            continue
        if len(run) >= _MIN_RUN:
            windows.append((run[0], run[-1]))
        run = []
    if len(run) >= _MIN_RUN:
        windows.append((run[0], run[-1]))
    return windows


@dataclass(frozen=True)
class TransferComparison:
    """GPU GFLOP/s by transfer paradigm at one swept size."""

    dims: Dims
    gflops: Dict[TransferType, float]

    def best(self) -> TransferType:
        return max(self.gflops, key=self.gflops.get)


def compare_transfers(series: ProblemSeries) -> List[TransferComparison]:
    """One comparison per size present under every swept paradigm."""
    by_transfer = {
        t: {s.dims: s for s in series.gpu_samples(t)}
        for t in series.transfer_types()
    }
    if not by_transfer:
        return []
    common = None
    for table in by_transfer.values():
        keys = set(table)
        common = keys if common is None else common & keys
    out = []
    for dims in sorted(common):
        out.append(
            TransferComparison(
                dims=dims,
                gflops={t: by_transfer[t][dims].gflops for t in by_transfer},
            )
        )
    return out
