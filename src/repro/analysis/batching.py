"""Batched-BLAS extension of the offload threshold (paper §V future work).

Batching B small GEMMs into one call changes both sides of the race.  On
the CPU the library loops over the batch behind a single dispatch, so
the per-call overhead amortizes but the tiny kernels run at a derated
rate (``batched_eff``) — strided batch layouts defeat the blocking
heuristics tuned for one large matrix.  On the GPU a single batched
launch fills the device with B×F FLOPs, so occupancy — the binding
constraint for small sizes — improves with the batch width, while the
host link still sees every byte of every batch member.

Two questions fall out, mirroring the dimension threshold:

* ``batch_offload_threshold`` — for a fixed (small) shape, the minimum
  batch width from which the GPU wins, or ``None`` within the searched
  range.
* ``dimension_threshold_for_batch`` — for a fixed batch width, the
  ordinary dimension threshold of the batched square sweep.

No noise is applied: these are model-to-model comparisons.
"""

from __future__ import annotations

from typing import Optional

from ..core.flops import d2h_bytes, flops_for, h2d_bytes, kernel_bytes
from ..core.threshold import ThresholdResult, find_offload_threshold
from ..sim.perfmodel import NodePerfModel
from ..types import Dims, Precision

__all__ = [
    "batch_offload_threshold",
    "batched_cpu_time",
    "batched_gpu_time",
    "dimension_threshold_for_batch",
]

#: Widest batch the minimum-batch search will try (inclusive).  Real
#: batched APIs top out around here; beyond it the aggregate problem is
#: no longer "small".
MAX_BATCH = 4096

#: Batched launches fill the device faster than B sequential launches of
#: the same total FLOPs — the whole batch is resident in one grid.
_BATCH_OCCUPANCY_BOOST = 4.0

#: Warm-cache compute speedup shared with the non-batched CPU model.
_WARM_COMPUTE_BOOST = 1.18


def batched_cpu_time(
    model: NodePerfModel,
    dims: Dims,
    batch: int,
    precision: Precision,
    iterations: int = 1,
) -> float:
    """Seconds for ``iterations`` passes of a B-wide batched kernel."""
    cpu = model.cpu
    lib = cpu.library
    spec = model.spec.cpu
    total_flops = batch * flops_for(dims)
    total_bytes = batch * kernel_bytes(dims, precision)

    peak = spec.peak_gflops(precision.itemsize) * 1e9
    peak *= cpu.max_threads / spec.cores
    # Narrow batches defeat both per-call amortization and cross-member
    # operand packing — two compounding factors, so the ramp in batch
    # width is quadratic.  ``batch_half == 0`` leaves the flat derate.
    ramp = batch / (batch + lib.batch_half)
    rate = peak * lib.batched_eff * ramp * ramp

    working_set = total_bytes
    warm = iterations > 1 and working_set <= spec.llc_bytes

    def one_pass(first: bool) -> float:
        compute = total_flops / rate
        if not first and warm:
            compute /= _WARM_COMPUTE_BOOST
            memory = total_bytes / (spec.cache_bw_gbs * 1e9)
        else:
            memory = total_bytes / (spec.mem_bw_gbs * 1e9)
        overhead = lib.overhead_s + lib.sync_per_thread_s * cpu.max_threads
        return overhead + max(compute, memory)

    return one_pass(True) + (iterations - 1) * one_pass(False)


def batched_gpu_time(
    model: NodePerfModel,
    dims: Dims,
    batch: int,
    precision: Precision,
    iterations: int = 1,
) -> float:
    """Transfer-Once seconds for a batched offload: ship all B operand
    sets, run ``iterations`` batched launches, ship all B results back."""
    gpu = model.gpu
    lib = gpu.library
    spec = model.spec.gpu
    link = model.spec.link
    total_flops = batch * flops_for(dims)
    total_bytes = batch * kernel_bytes(dims, precision)

    peak = spec.peak_gflops(precision.value) * 1e9
    ramp = lib.occ_ramp_flops / _BATCH_OCCUPANCY_BOOST
    occupancy = total_flops / (total_flops + ramp)
    compute = total_flops / (peak * occupancy)
    memory = total_bytes / (spec.mem_bw_gbs * 1e9 * lib.hbm_eff)
    one_pass = 2.0 * lib.launch_s + max(compute, memory)

    bw = link.bw_gbs * 1e9
    up = link.latency_s + batch * h2d_bytes(dims, precision) / bw
    down = link.latency_s + batch * d2h_bytes(dims, precision) / bw
    return up + iterations * one_pass + down


def batch_offload_threshold(
    model: NodePerfModel,
    dims: Dims,
    precision: Precision,
    iterations: int = 1,
) -> Optional[int]:
    """Minimum power-of-two batch width from which the batched GPU call
    beats the batched CPU call, or ``None`` up to ``MAX_BATCH``."""
    if not model.has_gpu:
        return None
    batch = 1
    while batch <= MAX_BATCH:
        cpu_s = batched_cpu_time(model, dims, batch, precision, iterations)
        gpu_s = batched_gpu_time(model, dims, batch, precision, iterations)
        if gpu_s < cpu_s:
            return batch
        batch *= 2
    return None


def dimension_threshold_for_batch(
    model: NodePerfModel,
    batch: int,
    precision: Precision,
    iterations: int = 1,
    step: int = 2,
    max_dim: int = 1024,
) -> ThresholdResult:
    """The ordinary dimension threshold, but every point is a B-wide
    batched square GEMM."""
    sizes = list(range(1, max_dim + 1, step))
    if sizes[-1] != max_dim:
        sizes.append(max_dim)
    dims_list = [Dims(s, s, s) for s in sizes]
    cpu = [
        batched_cpu_time(model, d, batch, precision, iterations)
        for d in dims_list
    ]
    gpu = [
        batched_gpu_time(model, d, batch, precision, iterations)
        for d in dims_list
    ]
    return find_offload_threshold(dims_list, cpu, gpu)
