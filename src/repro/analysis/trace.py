"""Application-trace replay under threshold-guided placement (§III-D).

A trace is a sequence of BLAS phases — each a (dims, precision,
iterations, transfer) cell.  The evaluator prices every phase on the CPU
and on the GPU under the phase's transfer paradigm, then reports three
ports: CPU-only, GPU-only, and the hybrid that keeps each phase wherever
it is faster.  The hybrid can never lose to either all-or-nothing port,
and the gap to GPU-only is exactly the cost of offloading phases below
their threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

from ..sim.perfmodel import NodePerfModel
from ..types import DeviceKind, Dims, Precision, TransferType

__all__ = [
    "PhasePlacement",
    "TraceEvaluator",
    "TracePhase",
    "TraceReport",
    "implicit_solver_trace",
    "kmeans_trace",
    "mlp_training_trace",
]


@dataclass(frozen=True)
class TracePhase:
    """One BLAS call site: its shape and how an offload would move data."""

    name: str
    dims: Dims
    precision: Precision
    iterations: int = 1
    transfer: TransferType = TransferType.ONCE
    repeats: int = 1


@dataclass(frozen=True)
class PhasePlacement:
    phase: TracePhase
    device: DeviceKind
    cpu_s: float
    gpu_s: float

    @property
    def hybrid_s(self) -> float:
        return min(self.cpu_s, self.gpu_s)


@dataclass(frozen=True)
class TraceReport:
    system_name: str
    placements: Tuple[PhasePlacement, ...]
    cpu_only_s: float = field(init=False, default=0.0)
    gpu_only_s: float = field(init=False, default=0.0)
    hybrid_s: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "cpu_only_s", sum(p.cpu_s for p in self.placements)
        )
        object.__setattr__(
            self, "gpu_only_s", sum(p.gpu_s for p in self.placements)
        )
        object.__setattr__(
            self, "hybrid_s", sum(p.hybrid_s for p in self.placements)
        )

    def offloaded_phases(self) -> List[str]:
        return [
            p.phase.name
            for p in self.placements
            if p.device is DeviceKind.GPU
        ]

    @property
    def hybrid_speedup_vs_best_single(self) -> float:
        best_single = min(self.cpu_only_s, self.gpu_only_s)
        return best_single / self.hybrid_s if self.hybrid_s else math.inf


class TraceEvaluator:
    """Replays traces against one node's performance model."""

    def __init__(self, model: NodePerfModel) -> None:
        self.model = model

    def evaluate(self, trace) -> TraceReport:
        placements = []
        for phase in trace:
            cpu_s = phase.repeats * self.model.cpu_time(
                phase.dims, phase.precision, phase.iterations
            )
            if self.model.has_gpu:
                gpu_s = phase.repeats * self.model.gpu_time(
                    phase.dims, phase.precision, phase.iterations,
                    phase.transfer,
                )
            else:
                gpu_s = math.inf
            device = DeviceKind.GPU if gpu_s < cpu_s else DeviceKind.CPU
            placements.append(
                PhasePlacement(
                    phase=phase, device=device, cpu_s=cpu_s, gpu_s=gpu_s
                )
            )
        return TraceReport(
            system_name=self.model.spec.name, placements=tuple(placements)
        )


# ---------------------------------------------------------------------------
# Canonical traces


def mlp_training_trace() -> Tuple[TracePhase, ...]:
    """One SGD epoch of a 784-1024-1024-10 MLP, batch 256: three layer
    GEMMs iterated over 100 minibatches with weights resident."""
    i = 100
    return (
        TracePhase("fc1", Dims(256, 1024, 784), Precision.SINGLE, i),
        TracePhase("fc2", Dims(256, 1024, 1024), Precision.SINGLE, i),
        TracePhase("logits", Dims(256, 10, 1024), Precision.SINGLE, i),
    )


def kmeans_trace() -> Tuple[TracePhase, ...]:
    """Lloyd iterations on 384 points / 384 features / 384 centroids: a
    distance GEMM with resident operands, then a centroid-update GEMV
    whose assignment vector changes host-side every pass
    (Transfer-Always).  The GEMM sits between LUMI's and DAWN's 8-iter
    SGEMM thresholds, so placement genuinely differs across systems."""
    return (
        TracePhase(
            "distances", Dims(384, 384, 384), Precision.SINGLE, iterations=8
        ),
        TracePhase(
            "update",
            Dims(384, 384),
            Precision.SINGLE,
            iterations=8,
            transfer=TransferType.ALWAYS,
        ),
    )


def implicit_solver_trace() -> Tuple[TracePhase, ...]:
    """A Newton-Krylov step: Jacobian assembly GEMM, a Krylov loop of
    resident matvecs, and a host-coupled preconditioner apply."""
    return (
        TracePhase(
            "jacobian", Dims(1024, 1024, 1024), Precision.DOUBLE, iterations=4
        ),
        TracePhase(
            "krylov-matvec", Dims(1024, 1024), Precision.DOUBLE, iterations=64
        ),
        TracePhase(
            "precondition",
            Dims(1024, 1024),
            Precision.DOUBLE,
            iterations=1,
            transfer=TransferType.ALWAYS,
        ),
    )
