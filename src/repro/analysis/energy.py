"""Energy offload thresholds (extension; Favaro et al. line of work).

Device power is modelled as a constant draw while the device computes:
``E_cpu = P_cpu * t_cpu`` and ``E_gpu = (P_gpu + P_host_idle) * t_gpu``
(the host cannot power down while it drives the offload).  The *energy
offload threshold* is then the threshold detector run over energy curves
instead of time curves — on discrete systems whose GPU runs below the
CPU's draw it arrives earlier than the runtime threshold (slower but
greener); on the GH200, whose H100 side draws 450 W against a far
leaner Grace socket, it arrives at or after it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.flops import flops_for
from ..core.threshold import ThresholdResult, find_offload_threshold
from ..errors import UnknownSystemError
from ..sim.perfmodel import NodePerfModel
from ..types import Dims, Precision, TransferType

__all__ = ["EnergyModel", "PowerProfile", "profile_for"]


@dataclass(frozen=True)
class PowerProfile:
    """Average active power draw (watts) per device while it computes."""

    name: str
    cpu_w: float
    gpu_w: float
    host_idle_w: float  # host draw while the GPU runs

    @property
    def gpu_total_w(self) -> float:
        return self.gpu_w + self.host_idle_w


_PROFILES = {
    # Xeon Max 8468 socket vs one Max 1550 tile (half the 600 W OAM).
    "dawn": PowerProfile("dawn", cpu_w=350.0, gpu_w=230.0, host_idle_w=50.0),
    # EPYC 7A53 socket vs one MI250X GCD (half the 560 W module).
    "lumi": PowerProfile("lumi", cpu_w=280.0, gpu_w=250.0, host_idle_w=30.0),
    # Grace socket vs the H100 side of the GH200 superchip.
    "isambard-ai": PowerProfile(
        "isambard-ai", cpu_w=300.0, gpu_w=450.0, host_idle_w=25.0
    ),
}


def profile_for(system: str) -> PowerProfile:
    try:
        return _PROFILES[system]
    except KeyError:
        raise UnknownSystemError(
            f"no power profile for {system!r}; known: {sorted(_PROFILES)}"
        ) from None


class EnergyModel:
    """Joules and energy thresholds on top of a node performance model."""

    def __init__(self, model: NodePerfModel, profile: PowerProfile) -> None:
        self.model = model
        self.profile = profile

    # -- energies -----------------------------------------------------
    def cpu_energy(
        self, dims: Dims, precision: Precision, iterations: int = 1
    ) -> float:
        return self.profile.cpu_w * self.model.cpu_time(
            dims, precision, iterations
        )

    def gpu_energy(
        self,
        dims: Dims,
        precision: Precision,
        iterations: int = 1,
        transfer: TransferType = TransferType.ONCE,
    ) -> float:
        return self.profile.gpu_total_w * self.model.gpu_time(
            dims, precision, iterations, transfer
        )

    def energy_per_gflop(
        self,
        dims: Dims,
        precision: Precision,
        iterations: int = 1,
        transfer: Optional[TransferType] = None,
    ) -> float:
        """J per GFLOP of useful work; ``transfer=None`` means the CPU."""
        if transfer is None:
            joules = self.cpu_energy(dims, precision, iterations)
        else:
            joules = self.gpu_energy(dims, precision, iterations, transfer)
        gflops_done = iterations * flops_for(dims) / 1e9
        return joules / gflops_done

    # -- thresholds ---------------------------------------------------
    def _sweep_dims(self, max_dim: int, step: int):
        sizes = list(range(1, max_dim + 1, step))
        if sizes[-1] != max_dim:
            sizes.append(max_dim)
        return [Dims(s, s, s) for s in sizes]

    def _threshold(
        self,
        precision: Precision,
        iterations: int,
        transfer: TransferType,
        metric: str,
        max_dim: int,
        step: int,
    ) -> ThresholdResult:
        dims_list = self._sweep_dims(max_dim, step)
        if metric == "time":
            cpu = [self.model.cpu_time(d, precision, iterations) for d in dims_list]
            gpu = [
                self.model.gpu_time(d, precision, iterations, transfer)
                for d in dims_list
            ]
        else:
            cpu = [self.cpu_energy(d, precision, iterations) for d in dims_list]
            gpu = [
                self.gpu_energy(d, precision, iterations, transfer)
                for d in dims_list
            ]
        return find_offload_threshold(dims_list, cpu, gpu)

    def time_offload_threshold(
        self,
        precision: Precision,
        iterations: int = 1,
        transfer: TransferType = TransferType.ONCE,
        max_dim: int = 4096,
        step: int = 8,
    ) -> ThresholdResult:
        """The paper's runtime threshold (square GEMM), for reference."""
        return self._threshold(
            precision, iterations, transfer, "time", max_dim, step
        )

    def energy_offload_threshold(
        self,
        precision: Precision,
        iterations: int = 1,
        transfer: TransferType = TransferType.ONCE,
        max_dim: int = 4096,
        step: int = 8,
    ) -> ThresholdResult:
        """Smallest square GEMM from which the GPU wins on joules for
        every larger size."""
        return self._threshold(
            precision, iterations, transfer, "energy", max_dim, step
        )
