"""GFLOP/s curves and the fig.-2-style ASCII performance plots."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.records import ProblemSeries
from ..types import TransferType

__all__ = [
    "Curve",
    "CurveSet",
    "ascii_plot",
    "cpu_curve",
    "gpu_curve",
    "performance_curves",
]

#: Paper-style curve markers: CPU, then the three transfer paradigms.
_MARKERS = "ox+*#@%&"


@dataclass(frozen=True)
class Curve:
    """One GFLOP/s-vs-size line."""

    label: str
    sizes: Tuple[int, ...]
    gflops: Tuple[float, ...]

    def at(self, size: int) -> float:
        """GFLOP/s at the swept size nearest to ``size``."""
        if not self.sizes:
            raise ValueError(f"curve {self.label!r} is empty")
        i = min(range(len(self.sizes)), key=lambda j: abs(self.sizes[j] - size))
        return self.gflops[i]


@dataclass
class CurveSet:
    title: str
    curves: List[Curve] = field(default_factory=list)

    def to_csv_rows(self) -> List[List[str]]:
        """Header + one row per size, one column per curve."""
        rows = [["size"] + [c.label for c in self.curves]]
        if not self.curves:
            return rows
        for i, size in enumerate(self.curves[0].sizes):
            row = [str(size)]
            for c in self.curves:
                row.append(repr(c.gflops[i]) if i < len(c.gflops) else "")
            rows.append(row)
        return rows


def cpu_curve(series: ProblemSeries, label: Optional[str] = None) -> Curve:
    samples = series.cpu_samples()
    return Curve(
        label=label or "CPU",
        sizes=tuple(s.dims.max_dim for s in samples),
        gflops=tuple(s.gflops for s in samples),
    )


def gpu_curve(
    series: ProblemSeries,
    transfer: TransferType,
    label: Optional[str] = None,
) -> Curve:
    samples = series.gpu_samples(transfer)
    return Curve(
        label=label or f"GPU {transfer.label}",
        sizes=tuple(s.dims.max_dim for s in samples),
        gflops=tuple(s.gflops for s in samples),
    )


def performance_curves(
    series: ProblemSeries, title: Optional[str] = None
) -> CurveSet:
    """The paper's figure layout: the CPU curve first, then one GPU curve
    per swept transfer paradigm."""
    if title is None:
        title = (
            f"{series.precision.blas_prefix}{series.kernel.value} "
            f"{series.ident}, {series.iterations} iteration(s)"
        )
    curves = [cpu_curve(series)]
    for transfer in series.transfer_types():
        curves.append(gpu_curve(series, transfer))
    return CurveSet(title=title, curves=curves)


def ascii_plot(
    curve_set: CurveSet, width: int = 72, height: int = 20
) -> str:
    """Log-y scatter plot of every curve, with a marker legend."""
    curves = [c for c in curve_set.curves if c.sizes]
    if not curves:
        return f"{curve_set.title}\n(no data)"

    min_size = min(min(c.sizes) for c in curves)
    max_size = max(max(c.sizes) for c in curves)
    positive = [g for c in curves for g in c.gflops if g > 0]
    if not positive:
        return f"{curve_set.title}\n(no positive rates)"
    lo = math.log10(min(positive))
    hi = math.log10(max(positive))
    if hi - lo < 1e-9:
        hi = lo + 1.0

    def col(size: int) -> int:
        if max_size == min_size:
            return 0
        return round((size - min_size) / (max_size - min_size) * (width - 1))

    def row(gf: float) -> int:
        frac = (math.log10(max(gf, 10 ** lo)) - lo) / (hi - lo)
        return (height - 1) - round(frac * (height - 1))

    grid = [[" "] * width for _ in range(height)]
    for idx, curve in enumerate(curves):
        marker = _MARKERS[idx % len(_MARKERS)]
        for size, gf in zip(curve.sizes, curve.gflops):
            if gf <= 0:
                continue
            grid[row(gf)][col(size)] = marker

    top = f"{10 ** hi:,.0f}"
    bottom = f"{10 ** lo:,.3g}"
    gutter = max(len(top), len(bottom)) + 1
    lines = [curve_set.title]
    for r, cells in enumerate(grid):
        if r == 0:
            prefix = top.rjust(gutter)
        elif r == height - 1:
            prefix = bottom.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(prefix + "|" + "".join(cells))
    lines.append(" " * gutter + "+" + "-" * width)
    axis = f"{min_size} .. {max_size} (max problem dimension)"
    lines.append(" " * (gutter + 1) + axis)
    lines.append(
        " " * (gutter + 1)
        + "GFLOP/s (log scale): "
        + "  ".join(
            f"{_MARKERS[i % len(_MARKERS)]}={c.label}"
            for i, c in enumerate(curves)
        )
    )
    return "\n".join(lines)
