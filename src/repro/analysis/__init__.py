"""Analysis layer: curves, windows, rooflines, energy, placement tools."""
