"""Exception hierarchy and warning categories for the repro engine.

Two families live here.  *Configuration* errors (``ConfigError`` and the
``Unknown*`` lookups) mean the caller asked for something that does not
exist and are never retried.  *Sweep-fault* errors
(:class:`SweepFaultError` and subclasses) model the transient and
permanent failures a real HPC sweep hits — kernel launch failures, DMA
transfer errors, watchdog timeouts, mid-run device loss — whether they
come from a real backend or from the deterministic
:mod:`repro.faults` injector.  The resilient runner
(:func:`repro.core.runner.run_sweep`) retries the transient ones with
exponential backoff, quarantines samples that exhaust their retries,
and degrades gracefully on the permanent ones.

A third family, *integrity* errors (:class:`IntegrityError` and
subclasses), means an artifact or a model output cannot be trusted: a
checkpoint journal with a flipped byte, a sweep-cache entry whose
payload digest no longer matches, or a model sample that violates a
physical invariant of its own :class:`~repro.systems.specs.SystemSpec`
(:class:`ModelInvariantError`).  The CLI maps the three families to
distinct exit codes (config = 2, fault = 3, integrity = 4).

``PartialSweepWarning`` is the warning category for every "the sweep
completed but is missing something" condition: unsupported transfer
paradigms, quarantined samples, thresholds computed over gaps, and
CPU-only continuation after device loss.  ``CacheIntegrityWarning``
flags sweep-cache entries that failed their digest or parse check (a
warned miss, never a silent one); ``ModelInvariantWarning`` is the
non-strict form of the model-invariant guard.
"""

from __future__ import annotations

__all__ = [
    "CacheIntegrityWarning",
    "CampaignDriftError",
    "CheckpointError",
    "ConfigError",
    "DeferredFeatureError",
    "DeviceLostError",
    "IntegrityError",
    "ModelInvariantError",
    "ModelInvariantWarning",
    "PartialSweepWarning",
    "ReproError",
    "ReproWarning",
    "RETRYABLE_ERRORS",
    "SampleTimeoutError",
    "SweepFaultError",
    "TransferError",
    "TransientKernelError",
    "UnknownLibraryError",
    "UnknownProblemTypeError",
    "UnknownSystemError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigError(ReproError):
    """A RunConfig or CLI invocation is invalid."""


class UnknownSystemError(ReproError):
    """A system name is not present in the catalog."""


class UnknownLibraryError(ReproError):
    """A BLAS library name is not present in the registry."""


class UnknownProblemTypeError(ReproError):
    """A problem-type ident does not exist for the requested kernel."""


class DeferredFeatureError(ReproError, NotImplementedError):
    """The requested subsystem is documented but not yet restored.

    Sparse BLAS and the structural multi-tile GPU model are deferred;
    see the "Restored vs deferred" section of DESIGN.md.  (The
    discrete-event engine, USM page tables and the pipelined
    Transfer-Always schedule are live.)
    """

    def __init__(self, feature: str) -> None:
        super().__init__(
            f"{feature} is deferred in this build; the analytic path is "
            "available. See DESIGN.md 'Restored vs deferred'."
        )


# -- sweep faults -----------------------------------------------------


class SweepFaultError(ReproError):
    """Base class for per-sample failures during a sweep."""


class TransientKernelError(SweepFaultError):
    """A kernel launch or execution failed transiently (retryable)."""


class TransferError(SweepFaultError):
    """A DMA transfer between host and device failed (retryable)."""


class SampleTimeoutError(SweepFaultError):
    """A sample exceeded its simulated-clock deadline (retryable)."""

    def __init__(self, message: str, elapsed_s: float = 0.0) -> None:
        super().__init__(message)
        self.elapsed_s = elapsed_s


class DeviceLostError(SweepFaultError):
    """The GPU disappeared mid-sweep (permanent: not retryable).

    The resilient runner reacts by finishing the sweep CPU-only and
    flagging every series with missing GPU cells as partial.
    """


# -- integrity --------------------------------------------------------


class IntegrityError(ReproError):
    """Base class for "this artifact or model output cannot be trusted"
    failures: corrupt journals, digest-mismatched cache entries, and
    model-invariant violations.  The CLI exits 4 on these."""


class CheckpointError(IntegrityError):
    """A sweep checkpoint file is unreadable, corrupt, or belongs to a
    different configuration than the resuming run."""


class ModelInvariantError(IntegrityError):
    """A backend produced a physically implausible sample, or a
    :class:`~repro.systems.specs.SystemSpec` is calibrated inconsistently
    (e.g. an effective link bandwidth above its own link peak).

    Raised by the model-invariant guard in strict mode
    (``RunConfig.validate=True`` / ``--strict``); the default mode emits
    :class:`ModelInvariantWarning` instead.
    """


class CampaignDriftError(IntegrityError):
    """A campaign's aggregated threshold report no longer matches its
    stored golden: thresholds moved, appeared, or vanished.  Drift means
    either the model changed behaviour or the golden is stale — both
    need a human decision, so ``gpu-blob campaign`` exits 4.

    ``drifts`` carries one human-readable line per drifted report key.
    """

    def __init__(self, message: str, drifts=()) -> None:
        super().__init__(message)
        self.drifts = tuple(drifts)


#: Fault errors the resilient runner retries with backoff; everything
#: else either degrades the sweep (DeviceLostError) or is a real bug.
RETRYABLE_ERRORS = (TransientKernelError, TransferError, SampleTimeoutError)


# -- warnings ---------------------------------------------------------


class ReproWarning(UserWarning):
    """Base category for warnings emitted by the repro package."""


class PartialSweepWarning(ReproWarning):
    """The sweep completed, but some requested cells are missing —
    unsupported paradigms, quarantined samples, or device loss."""


class CacheIntegrityWarning(ReproWarning):
    """A sweep-cache entry failed its integrity check (unparseable JSON
    or a payload-digest mismatch) and was treated as a miss."""


class ModelInvariantWarning(ReproWarning):
    """A model output or spec violated a physical invariant, and the
    sweep is not running in strict mode (``RunConfig.validate=False``).
    The sample is kept; re-run with ``--strict`` to reject it."""
