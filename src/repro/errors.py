"""Exception hierarchy for the repro engine."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigError(ReproError):
    """A RunConfig or CLI invocation is invalid."""


class UnknownSystemError(ReproError):
    """A system name is not present in the catalog."""


class UnknownLibraryError(ReproError):
    """A BLAS library name is not present in the registry."""


class UnknownProblemTypeError(ReproError):
    """A problem-type ident does not exist for the requested kernel."""


class DeferredFeatureError(ReproError, NotImplementedError):
    """The requested subsystem is documented but not yet restored.

    Sparse BLAS and the structural multi-tile GPU model are deferred;
    see the "Restored vs deferred" section of DESIGN.md.  (The
    discrete-event engine, USM page tables and the pipelined
    Transfer-Always schedule are live.)
    """

    def __init__(self, feature: str) -> None:
        super().__init__(
            f"{feature} is deferred in this build; the analytic path is "
            "available. See DESIGN.md 'Restored vs deferred'."
        )
