"""Bounded async job queue with keyed single-flight coalescing.

Cache misses are the expensive path of the serving daemon: each one is
a full sweep through the supervised executor.  The queue bounds how
many such sweeps can be waiting (``maxsize`` — excess submissions are
rejected so the caller can 503 instead of building an unbounded
backlog) and how many run at once (``workers``).

Coalescing happens *before* the queue: a submission whose key is
already in flight — queued or executing — receives the same
:class:`asyncio.Future` instead of a second queue slot, so a thundering
herd on one cold key costs one slot and one sweep.  Callers that
enforce deadlines must ``asyncio.shield`` the shared future: it belongs
to every coalesced waiter, and one waiter's timeout must not cancel the
others' job.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, Tuple

__all__ = ["JobQueue", "QueueFullError"]


class QueueFullError(Exception):
    """The job queue is at capacity; the submission was rejected."""


def _consume_exception(future: asyncio.Future) -> None:
    """Mark a job failure as observed.

    A deadline-expired request may abandon its (shielded) future before
    the job fails; without this callback the event loop would log an
    "exception was never retrieved" warning for a failure the service
    already answered with a 504.
    """
    if not future.cancelled():
        future.exception()


class JobQueue:
    """``workers`` async consumers over a bounded queue of thunks."""

    def __init__(self, workers: int = 2, maxsize: int = 64) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self._workers = workers
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=maxsize)
        self._flights: Dict[object, asyncio.Future] = {}
        self._tasks: list = []
        self._inflight = 0

    @property
    def depth(self) -> int:
        """Jobs queued but not yet picked up by a worker."""
        return self._queue.qsize()

    @property
    def inflight(self) -> int:
        """Jobs currently executing on a worker."""
        return self._inflight

    def in_flight(self, key) -> bool:
        """Is ``key`` already queued or executing?  A submission for it
        would coalesce — callers use this to skip side effects that
        belong to the job's leader (journaling the accept, claiming a
        breaker probe slot)."""
        return key in self._flights

    def start(self) -> None:
        """Spawn the worker tasks (requires a running event loop)."""
        if self._tasks:
            return
        self._tasks = [
            asyncio.ensure_future(self._worker()) for _ in range(self._workers)
        ]

    def submit(
        self, key, thunk: Callable[[], Awaitable]
    ) -> Tuple[asyncio.Future, bool]:
        """Enqueue ``thunk`` under ``key``.

        Returns ``(future, coalesced)``: ``coalesced`` is True when the
        key was already in flight and the future is shared.  Raises
        :class:`QueueFullError` when a fresh job cannot be queued.
        """
        future = self._flights.get(key)
        if future is not None:
            return future, True
        future = asyncio.get_running_loop().create_future()
        future.add_done_callback(_consume_exception)
        try:
            self._queue.put_nowait((key, thunk, future))
        except asyncio.QueueFull:
            raise QueueFullError(
                f"job queue is full ({self._queue.maxsize} pending)"
            ) from None
        self._flights[key] = future
        return future, False

    async def _worker(self) -> None:
        while True:
            key, thunk, future = await self._queue.get()
            self._inflight += 1
            try:
                result = await thunk()
            except asyncio.CancelledError:
                if not future.done():
                    future.cancel()
                raise
            except BaseException as exc:
                if not future.done():
                    future.set_exception(exc)
            else:
                if not future.done():
                    future.set_result(result)
            finally:
                self._inflight -= 1
                self._flights.pop(key, None)
                self._queue.task_done()

    async def drain(self, timeout: float = 30.0) -> bool:
        """Finish every queued and in-flight job, then stop the workers.

        Returns True when the queue drained inside ``timeout``; on False
        the remaining jobs were abandoned (their futures cancelled).
        """
        drained = True
        if self._queue.qsize() or self._inflight:
            try:
                await asyncio.wait_for(self._queue.join(), timeout)
            except asyncio.TimeoutError:
                drained = False
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks = []
        for future in self._flights.values():
            if not future.done():
                future.cancel()
        self._flights.clear()
        return drained
