"""Per-client token-bucket rate limiting.

Each client key (the ``X-Client-Id`` header, falling back to the peer
address) gets one bucket of ``burst`` tokens refilled at ``rate``
tokens per second.  A request costs one token; an empty bucket yields
the number of seconds until the next token, which the service returns
as ``Retry-After`` on a 429.

The bucket table is bounded: past ``max_clients`` the least recently
seen buckets are evicted, so an open endpoint cannot grow the table
without limit.  Eviction forgives at most ``burst`` tokens of debt per
forged client id — the cheap, honest trade for bounded memory.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

__all__ = ["RateLimiter"]


class _Bucket:
    __slots__ = ("tokens", "stamp")

    def __init__(self, tokens: float, stamp: float) -> None:
        self.tokens = tokens
        self.stamp = stamp


class RateLimiter:
    """Keyed token buckets; ``rate=None`` disables limiting entirely."""

    def __init__(
        self,
        rate: Optional[float],
        burst: int = 8,
        clock=time.monotonic,
        max_clients: int = 4096,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._max_clients = max_clients
        self._buckets: Dict[str, _Bucket] = {}

    def check(self, key: str) -> float:
        """Spend one token for ``key``.

        Returns 0.0 when the request is admitted, else the seconds
        until a token will be available (the ``Retry-After`` value).
        """
        if self.rate is None:
            return 0.0
        now = self._clock()
        bucket = self._buckets.get(key)
        if bucket is None:
            self._evict(now)
            bucket = self._buckets[key] = _Bucket(float(self.burst), now)
        else:
            bucket.tokens = min(
                float(self.burst),
                bucket.tokens + (now - bucket.stamp) * self.rate,
            )
            bucket.stamp = now
        if bucket.tokens >= 1.0:
            bucket.tokens -= 1.0
            return 0.0
        return (1.0 - bucket.tokens) / self.rate

    def _evict(self, now: float) -> None:
        """Drop the stalest buckets once the table is full."""
        if len(self._buckets) < self._max_clients:
            return
        drop = max(1, self._max_clients // 8)
        stale = sorted(self._buckets, key=lambda k: self._buckets[k].stamp)
        for key in stale[:drop]:
            del self._buckets[key]
