"""Durable write-ahead journal of accepted serve jobs.

``gpu-blob serve`` accepts a cache-miss threshold query *before* the
sweep behind it has run; until this module existed, a daemon crash
silently dropped every such accepted job.  The WAL closes that window:
an ``accept`` record is flushed and fsynced to disk before the job is
queued, a ``complete`` record lands when the sweep's result is safely
in the content-addressed cache, and on startup the daemon replays
every accepted-but-incomplete entry through the supervised executor —
so ``kill -9`` mid-burst followed by a restart still answers every
accepted job, byte-identical to an uninterrupted run.

The journal reuses the checkpoint layer's machinery
(:mod:`repro.faults.checkpoint`): append-only JSONL, one record per
line, each carrying a truncated-SHA-256 ``cs`` checksum of its own
canonical form, with the classic crash artifact — a torn final line —
repaired on open.  Unlike a sweep checkpoint, which refuses to resume
from mid-file corruption, the WAL loads *leniently*: a record that
fails its checksum is skipped and counted (``corrupt_records``), never
allowed to take the serving daemon down — ``gpu-blob fsck`` audits and
repairs the damage offline.

Record types (all with ``cs``):

* ``header`` — ``kind: "serve-wal"`` + format version; distinguishes a
  WAL from a sweep checkpoint for ``fsck``.
* ``accept`` — one accepted cache-miss job: monotonically increasing
  ``id``, the sweep-cache ``key`` it computes, the normalized ``query``
  body needed to re-run it, and a lease (``owner``, ``deadline``,
  ``attempt``).
* ``renew`` — a restarted daemon taking over a pending job: bumps the
  lease and the attempt count (the replay backoff policy keys on it).
* ``complete`` — the job's result reached the sweep cache.  Written at
  most once per id (:meth:`WriteAheadLog.mark_complete` is
  idempotent).
* ``dead`` — the job was abandoned: attempts exhausted, its query no
  longer parses, or the queue rejected it.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Tuple

from ..faults.checkpoint import _repair_torn_tail, record_checksum

__all__ = [
    "WAL_KIND",
    "WAL_VERSION",
    "ChecksummedJournal",
    "JournalScan",
    "WalJob",
    "WalState",
    "WriteAheadLog",
    "default_owner",
    "load_wal_state",
    "repair_wal_tail",
    "scan_journal",
]

#: Format version of the serve WAL journal.
WAL_VERSION = 1

#: The header ``kind`` marker that distinguishes a serve WAL from a
#: sweep checkpoint journal (both are checksummed JSONL).
WAL_KIND = "serve-wal"

#: Record types a WAL may contain (beyond the header).
RECORD_TYPES = ("accept", "renew", "complete", "dead")


def default_owner() -> str:
    """The lease owner id of this daemon process."""
    return f"{socket.gethostname()}:{os.getpid()}"


def repair_wal_tail(path) -> bool:
    """Drop a torn (crash-truncated) final line; returns True when a
    line was dropped.  Idempotent: a repaired file is a fixed point."""
    path = Path(path)
    if not path.exists():
        return False
    before = path.stat().st_size
    _repair_torn_tail(path)
    return path.stat().st_size != before


@dataclass
class WalJob:
    """One accepted job as reconstructed from the journal."""

    job_id: int
    key: str
    query: dict
    attempt: int
    owner: str
    deadline: float
    state: str = "pending"  # "pending" | "complete" | "dead"

    def expired(self, now: float) -> bool:
        """Has the lease lapsed (the owner should have finished by now)?"""
        return now >= self.deadline


@dataclass
class WalState:
    """Everything a reader (the replaying daemon, fsck, a test)
    reconstructs from one WAL file."""

    jobs: Dict[int, WalJob] = field(default_factory=dict)
    #: records skipped because their checksum or JSON did not verify
    corrupt_records: int = 0
    #: a torn final line was present (and ignored)
    torn_tail: bool = False
    #: the file had a valid serve-wal header
    has_header: bool = False

    @property
    def next_id(self) -> int:
        return max(self.jobs, default=0) + 1

    def pending(self) -> List[WalJob]:
        """Accepted jobs with no ``complete``/``dead`` record, oldest
        first — exactly what a restarted daemon must replay."""
        return sorted(
            (j for j in self.jobs.values() if j.state == "pending"),
            key=lambda j: j.job_id,
        )

    def counts(self) -> Dict[str, int]:
        out = {"pending": 0, "complete": 0, "dead": 0}
        for job in self.jobs.values():
            out[job.state] += 1
        return out


def _apply_record(state: WalState, rec: dict) -> bool:
    """Fold one verified record into ``state``; False if malformed."""
    kind = rec.get("t")
    if kind == "accept":
        try:
            job = WalJob(
                job_id=int(rec["id"]),
                key=str(rec["key"]),
                query=dict(rec["query"]),
                attempt=int(rec["attempt"]),
                owner=str(rec["owner"]),
                deadline=float(rec["deadline"]),
            )
        except (KeyError, TypeError, ValueError):
            return False
        state.jobs[job.job_id] = job
        return True
    if kind == "renew":
        job = state.jobs.get(rec.get("id"))
        if job is None:
            return True  # renew for a lost accept: harmless
        try:
            job.attempt = int(rec["attempt"])
            job.owner = str(rec["owner"])
            job.deadline = float(rec["deadline"])
        except (KeyError, TypeError, ValueError):
            return False
        return True
    if kind in ("complete", "dead"):
        job = state.jobs.get(rec.get("id"))
        if job is not None and job.state == "pending":
            job.state = "complete" if kind == "complete" else "dead"
        return True
    return False


@dataclass
class JournalScan:
    """The raw verified content of one checksummed JSONL journal,
    before any dialect-specific folding."""

    #: verified non-header records, in file order
    records: list = field(default_factory=list)
    #: the verified header record itself (None when missing/damaged)
    header: Optional[dict] = None
    corrupt_records: int = 0
    torn_tail: bool = False
    has_header: bool = False


def scan_journal(path, kind: Optional[str], version: int) -> JournalScan:
    """Verify one checksummed JSONL journal line by line.

    The shared read side of every journal dialect (sweep checkpoints,
    serve WALs, dist ledgers): a missing file is an empty scan; a torn
    final line — the crash artifact — is ignored without being counted
    as corruption; any other unparseable or checksum-failed line bumps
    ``corrupt_records`` and is skipped.  ``has_header`` is only set
    when the header's ``kind``/``version`` match the expected dialect
    (``kind=None`` accepts a header with no kind marker — the sweep
    checkpoint dialect).
    """
    path = Path(path)
    scan = JournalScan()
    try:
        lines = path.read_text().splitlines()
    except OSError:
        return scan
    for i, line in enumerate(lines):
        try:
            rec = json.loads(line)
        except ValueError:
            if i == len(lines) - 1:
                scan.torn_tail = True
            else:
                scan.corrupt_records += 1
            continue
        if not isinstance(rec, dict) or rec.get("cs") != record_checksum(rec):
            scan.corrupt_records += 1
            continue
        if rec.get("t") == "header":
            if rec.get("kind") == kind and rec.get("version") == version:
                scan.has_header = True
                scan.header = rec
            else:
                scan.corrupt_records += 1
            continue
        scan.records.append(rec)
    return scan


def load_wal_state(path) -> WalState:
    """Parse one WAL file, skipping (and counting) damaged records.

    A missing file is an empty state.  Damage never raises, because the
    serving daemon must come back up even when its journal took a hit
    (``gpu-blob fsck --repair`` moves the damage aside offline).
    """
    scan = scan_journal(path, WAL_KIND, WAL_VERSION)
    state = WalState(
        corrupt_records=scan.corrupt_records,
        torn_tail=scan.torn_tail,
        has_header=scan.has_header,
    )
    for rec in scan.records:
        if not _apply_record(state, rec):
            state.corrupt_records += 1
    return state


class ChecksummedJournal:
    """Shared write side of every durable journal dialect.

    Subclasses set ``kind`` and ``version``; opening repairs a torn
    tail, scans the surviving records, and — when the file is non-empty
    but headerless (or carries a *different* dialect's header) —
    rotates the unusable journal to a ``.bad`` sidecar and starts
    fresh, so construction never fails closed on a damaged file.
    Subclasses fold ``self.scan`` into their own state and may veto a
    resume by overriding :meth:`_check_header` (raise before the append
    handle opens).

    ``healthy`` tracks the last append: an ``OSError`` (disk full, the
    chaos harness's ``wal-stall`` fault) flips it False, the next
    successful append flips it back.
    """

    kind: Optional[str] = None
    version: int = 0

    def __init__(self, path, clock=time.time, sync: bool = True) -> None:
        self.path = Path(path)
        self.clock = clock
        self.sync = sync
        self.healthy = True
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existed = self.path.exists()
        if existed:
            repair_wal_tail(self.path)
        self.scan = scan_journal(self.path, self.kind, self.version)
        if existed and not self.scan.has_header and self.path.stat().st_size:
            # a journal we cannot trust at all: move it aside, restart
            self.path.replace(self.path.with_name(self.path.name + ".bad"))
            self.scan = JournalScan()
        self._check_header(self.scan)
        self._fh: Optional[TextIO] = self.path.open("a")
        if not self.scan.has_header:
            self._append({
                "t": "header", "version": self.version, "kind": self.kind,
                **self._header_extra(),
            })
            self.scan.has_header = True

    def _header_extra(self) -> dict:
        """Extra fields a dialect stamps into a fresh header."""
        return {}

    def _check_header(self, scan: JournalScan) -> None:
        """Dialect hook: veto resuming from a header that verifies but
        belongs to different work (raise before anything is written)."""

    def _append(self, record: dict) -> None:
        if self._fh is None:
            raise ValueError(f"{type(self).__name__} is closed")
        record["cs"] = record_checksum(record)
        line = json.dumps(record, separators=(",", ":")) + "\n"
        try:
            self._fh.write(line)
            self._fh.flush()
            if self.sync:
                os.fsync(self._fh.fileno())
        except OSError:
            self.healthy = False
            raise
        self.healthy = True

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class WriteAheadLog(ChecksummedJournal):
    """Append-only, fsynced journal of accepted serve jobs.

    See :class:`ChecksummedJournal` for the open/repair/rotate
    behavior; ``/readyz`` reports :attr:`healthy`.
    """

    kind = WAL_KIND
    version = WAL_VERSION

    def __init__(
        self,
        path,
        owner: Optional[str] = None,
        lease_s: float = 120.0,
        clock=time.time,
        sync: bool = True,
    ) -> None:
        if lease_s <= 0:
            raise ValueError(f"lease_s must be > 0, got {lease_s}")
        self.owner = owner if owner is not None else default_owner()
        self.lease_s = lease_s
        super().__init__(path, clock=clock, sync=sync)
        self.state = WalState(
            corrupt_records=self.scan.corrupt_records,
            torn_tail=self.scan.torn_tail,
            has_header=self.scan.has_header,
        )
        for rec in self.scan.records:
            if not _apply_record(self.state, rec):
                self.state.corrupt_records += 1
        self._next_id = self.state.next_id

    def append_accept(self, key: str, query: dict, attempt: int = 1) -> int:
        """Journal one accepted job; returns its id.  Must be called
        *before* the job is queued — that is the write-ahead part."""
        job_id = self._next_id
        deadline = self.clock() + self.lease_s
        self._append({
            "t": "accept",
            "id": job_id,
            "key": key,
            "query": query,
            "attempt": attempt,
            "owner": self.owner,
            "deadline": deadline,
        })
        self._next_id += 1
        self.state.jobs[job_id] = WalJob(
            job_id=job_id, key=key, query=dict(query), attempt=attempt,
            owner=self.owner, deadline=deadline,
        )
        return job_id

    def renew(self, job_id: int) -> int:
        """Take over a pending job (new lease, attempt+1); returns the
        new attempt number."""
        job = self.state.jobs[job_id]
        attempt = job.attempt + 1
        deadline = self.clock() + self.lease_s
        self._append({
            "t": "renew",
            "id": job_id,
            "attempt": attempt,
            "owner": self.owner,
            "deadline": deadline,
        })
        job.attempt = attempt
        job.owner = self.owner
        job.deadline = deadline
        return attempt

    def mark_complete(self, job_id: int) -> bool:
        """Journal completion exactly once: False (and no record) when
        the job is unknown or already complete/dead."""
        job = self.state.jobs.get(job_id)
        if job is None or job.state != "pending":
            return False
        self._append({"t": "complete", "id": job_id})
        job.state = "complete"
        return True

    def mark_dead(self, job_id: int, reason: str = "") -> bool:
        """Journal abandonment (attempts exhausted, unparseable query,
        queue rejection); idempotent like :meth:`mark_complete`."""
        job = self.state.jobs.get(job_id)
        if job is None or job.state != "pending":
            return False
        self._append({"t": "dead", "id": job_id, "reason": reason})
        job.state = "dead"
        return True

    # -- read side -----------------------------------------------------

    def pending(self) -> List[WalJob]:
        return self.state.pending()

    def counts(self) -> Dict[str, int]:
        return self.state.counts()

    def lease_counts(self) -> Tuple[int, int]:
        """(active, expired) leases over the pending jobs."""
        now = self.clock()
        active = expired = 0
        for job in self.pending():
            if job.expired(now):
                expired += 1
            else:
                active += 1
        return active, expired
