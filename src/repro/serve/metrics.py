"""Serving metrics: counters, gauges, and latency histograms.

Everything ``GET /metrics`` reports lives here, in plain dictionaries
and log-bucketed histograms — no client library, no exposition format,
just a JSON snapshot.  All mutation happens on the event-loop thread
(the service observes request outcomes after the fact), so no locking
is needed.

The cache hit/miss counters here are the *daemon's* view — one tick per
threshold request, coalesced followers inheriting their leader's
outcome.  The store-level counters (every ``load_cached_run`` across
all processes) come from :func:`repro.core.sweepcache.cache_stats` and
are merged into the same snapshot by the service, so ``/metrics`` and
``gpu-blob cache stats`` agree on what the store itself saw.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

__all__ = ["LatencyHistogram", "ServeMetrics"]

#: Log-spaced latency bucket upper bounds, in seconds (~1-2-5 per
#: decade from 0.5 ms to 60 s); overflows land in a +Inf bucket.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.002,
    0.005,
    0.01,
    0.02,
    0.05,
    0.1,
    0.2,
    0.5,
    1.0,
    2.0,
    5.0,
    10.0,
    30.0,
    60.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile estimation.

    Percentiles interpolate within the winning bucket, bounded above by
    the true observed maximum, so p50/p99 stay meaningful without
    storing per-request samples.
    """

    __slots__ = ("bounds", "counts", "count", "total", "max")

    def __init__(self, bounds: Tuple[float, ...] = LATENCY_BUCKETS) -> None:
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        for i, bound in enumerate(self.bounds):
            if seconds <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    def percentile(self, q: float) -> Optional[float]:
        """The latency at quantile ``q`` in [0, 1]; None when empty."""
        if not self.count:
            return None
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            if not n:
                continue
            seen += n
            if seen >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                hi = min(hi, self.max) if self.max else hi
                if hi <= lo:
                    return hi
                frac = (rank - (seen - n)) / n
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
        return self.max  # pragma: no cover - unreachable when count > 0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "mean_ms": (self.total / self.count * 1e3) if self.count else None,
            "p50_ms": _ms(self.percentile(0.50)),
            "p99_ms": _ms(self.percentile(0.99)),
            "max_ms": _ms(self.max) if self.count else None,
        }


def _ms(seconds: Optional[float]) -> Optional[float]:
    return None if seconds is None else round(seconds * 1e3, 4)


class ServeMetrics:
    """Every counter and histogram the daemon exports."""

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self.started = clock()
        #: requests and latency per endpoint label, statuses per code
        self.requests: Dict[str, int] = {}
        self.statuses: Dict[str, int] = {}
        self.latency: Dict[str, LatencyHistogram] = {}
        #: threshold requests answered from the sweep cache vs executed
        self.cache_hits = 0
        self.cache_misses = 0
        #: threshold requests that shared another request's in-flight job
        self.coalesced = 0
        self.rate_limited = 0
        self.deadline_expired = 0
        self.queue_rejected = 0
        self.sweeps_executed = 0
        #: stale cache answers served while a breaker was open or the
        #: backend failed (never a 500 for a transient backend fault)
        self.degraded_answers = 0
        #: breaker refusals that had no stale answer to fall back on
        self.degraded_unavailable = 0
        #: accepted jobs re-run from the WAL after a restart
        self.jobs_replayed = 0
        #: jobs abandoned after exhausting replay attempts
        self.jobs_dead = 0
        #: simulated backoff accumulated while replaying expired leases
        self.replay_backoff_s = 0.0
        #: WAL appends that failed (disk full / chaos wal-stall)
        self.wal_errors = 0
        #: adaptive-mode sample savings, accumulated from executed
        #: sweeps' stats (both stay 0 when --adaptive is off or every
        #: answer came from the cache)
        self.adaptive_cells_sampled = 0
        self.adaptive_cells_dense = 0

    def observe_request(self, endpoint: str, status: int, seconds: float) -> None:
        self.requests[endpoint] = self.requests.get(endpoint, 0) + 1
        self.statuses[str(status)] = self.statuses.get(str(status), 0) + 1
        histogram = self.latency.get(endpoint)
        if histogram is None:
            histogram = self.latency[endpoint] = LatencyHistogram()
        histogram.observe(seconds)

    def record_threshold_outcome(self, cache_hit: bool, coalesced: bool) -> None:
        if cache_hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        if coalesced:
            self.coalesced += 1

    @property
    def hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return (self.cache_hits / lookups) if lookups else 0.0

    def snapshot(self) -> dict:
        return {
            "uptime_s": round(self._clock() - self.started, 3),
            "requests": dict(self.requests),
            "statuses": dict(self.statuses),
            "latency": {
                endpoint: histogram.snapshot()
                for endpoint, histogram in self.latency.items()
            },
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": round(self.hit_rate, 6),
                "coalesced": self.coalesced,
            },
            "jobs": {
                "sweeps_executed": self.sweeps_executed,
                "rate_limited": self.rate_limited,
                "deadline_expired": self.deadline_expired,
                "queue_rejected": self.queue_rejected,
                "replayed": self.jobs_replayed,
                "dead": self.jobs_dead,
                "replay_backoff_s": round(self.replay_backoff_s, 6),
            },
            "degraded": {
                "answers": self.degraded_answers,
                "unavailable": self.degraded_unavailable,
            },
            "adaptive": {
                "cells_sampled": self.adaptive_cells_sampled,
                "cells_dense": self.adaptive_cells_dense,
                "cells_saved": (
                    self.adaptive_cells_dense - self.adaptive_cells_sampled
                ),
            },
            "wal_errors": self.wal_errors,
        }
