"""``repro.serve`` — the async threshold-serving daemon.

Stdlib-only HTTP/JSON serving of the paper's offload-threshold
decision: the content-addressed sweep cache is the hot store, misses
coalesce (single-flight) into a bounded job queue over the supervised
executor, per-client token buckets answer 429, deadlines answer 504,
and ``/metrics`` exports counters and latency percentiles.  See
:mod:`repro.serve.service` for the endpoint surface and
``DESIGN.md`` §11 for the architecture.
"""

from .httpd import HttpError, Request, Response, json_response
from .jobs import JobQueue, QueueFullError
from .metrics import LatencyHistogram, ServeMetrics
from .quota import RateLimiter
from .service import (
    ApiError,
    ServeConfig,
    ServerHandle,
    ThresholdService,
    main,
    start_server,
)

__all__ = [
    "ApiError",
    "HttpError",
    "JobQueue",
    "LatencyHistogram",
    "QueueFullError",
    "RateLimiter",
    "Request",
    "Response",
    "ServeConfig",
    "ServeMetrics",
    "ServerHandle",
    "ThresholdService",
    "json_response",
    "main",
    "start_server",
]
