"""``repro.serve`` — the async threshold-serving daemon.

Stdlib-only HTTP/JSON serving of the paper's offload-threshold
decision: the content-addressed sweep cache is the hot store, misses
coalesce (single-flight) into a bounded job queue over the supervised
executor, per-client token buckets answer 429, deadlines answer 504,
and ``/metrics`` exports counters and latency percentiles.  Crash
safety comes from a durable write-ahead journal of accepted jobs
(:mod:`repro.serve.wal`, replayed on restart) and per-(system,
backend) circuit breakers (:mod:`repro.serve.breaker`) that swap 500s
for stale-while-revalidate degraded answers.  See
:mod:`repro.serve.service` for the endpoint surface and ``DESIGN.md``
§11/§13 for the architecture.
"""

from .breaker import BreakerBoard, BreakerState, CircuitBreaker
from .client import ClientResponse, ClientRetryPolicy, ServeClient, fetch_json
from .httpd import HttpError, Request, Response, json_response
from .jobs import JobQueue, QueueFullError
from .metrics import LatencyHistogram, ServeMetrics
from .quota import RateLimiter
from .service import (
    ApiError,
    ServeConfig,
    ServerHandle,
    ThresholdService,
    main,
    start_server,
)
from .wal import WalJob, WalState, WriteAheadLog, load_wal_state

__all__ = [
    "ApiError",
    "BreakerBoard",
    "BreakerState",
    "CircuitBreaker",
    "ClientResponse",
    "ClientRetryPolicy",
    "HttpError",
    "JobQueue",
    "LatencyHistogram",
    "QueueFullError",
    "RateLimiter",
    "Request",
    "Response",
    "ServeClient",
    "ServeConfig",
    "ServeMetrics",
    "ServerHandle",
    "ThresholdService",
    "WalJob",
    "WalState",
    "WriteAheadLog",
    "fetch_json",
    "json_response",
    "load_wal_state",
    "main",
    "start_server",
]
