"""`gpu-blob serve` — the async threshold-serving daemon.

The decision function the paper builds — *given a system, problem
type, precision, iteration count, and transfer paradigm, which device
wins and where is the crossover?* — is served here as a long-running
HTTP/JSON API:

* ``POST /v1/threshold`` — answer one threshold query.  The
  content-addressed sweep cache is the hot store; a miss is coalesced
  per cache key (single-flight) and dispatched to a bounded job queue
  that runs the sweep through the existing supervised executor.
* ``GET /v1/systems`` / ``GET /v1/problems`` — registry introspection.
* ``GET /healthz`` — liveness.
* ``GET /readyz`` — readiness: not draining, queue accepting, WAL
  writable, and breakers not all open; 503 with the failing gates
  otherwise, so orchestrators can route around a sick daemon.
* ``GET /metrics`` — JSON counters: per-endpoint request counts and
  latency histograms (p50/p99), cache hit rate, queue depth, in-flight
  jobs, breaker states, WAL lease/replay counts, plus the store-level
  counters shared with ``gpu-blob cache stats``.

Crash safety: every accepted cache-miss job is journaled to a durable
write-ahead log (:mod:`repro.serve.wal`) *before* it is queued, and a
restarted daemon replays the accepted-but-incomplete entries through
the same executor — ``kill -9`` mid-burst drops nothing, and the
replayed payloads are byte-identical because the sweep cache is
content-addressed.  Consecutive backend failures trip a per-(system,
backend) circuit breaker (:mod:`repro.serve.breaker`); while it is
open the service answers from the sweep cache in stale-while-
revalidate mode — nearest stored series, ``degraded: true`` marker,
``Warning: 110`` header — instead of 500s.  A seeded
:class:`~repro.faults.servechaos.ServeChaosPlan` (``--chaos-plan``)
injects slow/failing backends and WAL damage to prove all of it.

Failure surface: per-client token buckets answer 429 with
``Retry-After``; a full job queue answers 503 carrying its depth and a
latency-derived ``Retry-After`` hint; a request deadline overrun
answers 504; and every error body is structured JSON carrying the
engine's error-family taxonomy (config = 2, fault = 3, integrity = 4 —
the CLI's exit codes).  SIGTERM drains gracefully: stop accepting,
finish in-flight requests and queued sweeps, journal completions, then
exit 0.

A cached threshold response is **byte-identical** to the CLI: series
rows reuse :func:`repro.core.csvio.sample_row`, the exact cell strings
``gpu-blob -o`` writes to CSV.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional

from ..backends import make_backend
from ..core.config import RunConfig
from ..core.csvio import FIELDNAMES, sample_row, series_filename
from ..core.problem import get_problem_type, problem_idents
from ..core.runner import RetryPolicy, run_sweep
from ..core.sweepcache import (
    SingleFlight,
    cache_stats,
    find_stale_series,
    sweep_cache_key,
)
from ..core.threshold import threshold_for_series
from ..errors import (
    IntegrityError,
    ReproError,
    SweepFaultError,
    TransientKernelError,
    UnknownProblemTypeError,
    UnknownSystemError,
)
from ..faults.servechaos import (
    ServeChaosKind,
    ServeChaosPlan,
    flip_byte_in_last_record,
)
from ..systems.catalog import get_system, system_names
from ..types import Kernel, Precision, TransferType
from .breaker import BreakerBoard
from .httpd import (
    HttpError,
    Request,
    Response,
    handle_connection,
    json_response,
)
from .jobs import JobQueue, QueueFullError
from .metrics import ServeMetrics
from .quota import RateLimiter
from .wal import WriteAheadLog

__all__ = [
    "ApiError",
    "ServeConfig",
    "ServerHandle",
    "ThresholdService",
    "build_serve_parser",
    "main",
    "start_server",
]

#: Default bind address of the daemon.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8377

#: Model backends the API may run sweeps on (host is excluded: it has
#: no cache token, so it can never serve the byte-identical hot path).
SERVABLE_BACKENDS = ("analytic", "des")


class ApiError(Exception):
    """One structured API failure: an HTTP status plus an error body
    in the engine's family taxonomy (config/fault/integrity)."""

    def __init__(
        self,
        status: int,
        message: str,
        family: str = "config",
        valid: Optional[List[str]] = None,
        retry_after_s: Optional[float] = None,
        extra: Optional[dict] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.family = family
        self.valid = valid
        self.retry_after_s = retry_after_s
        self.extra = extra

    def payload(self) -> dict:
        error = {
            "family": self.family,
            "exit_code": _FAMILY_EXIT_CODES.get(self.family),
            "message": str(self),
        }
        if self.valid is not None:
            error["valid"] = list(self.valid)
        if self.retry_after_s is not None:
            error["retry_after_s"] = round(self.retry_after_s, 3)
        if self.extra:
            error.update(self.extra)
        return {"error": error}


#: The CLI's exit-code map, mirrored into error bodies.
_FAMILY_EXIT_CODES = {"config": 2, "fault": 3, "integrity": 4, "quota": None}


def _family_of(exc: ReproError) -> str:
    if isinstance(exc, IntegrityError):
        return "integrity"
    if isinstance(exc, SweepFaultError):
        return "fault"
    return "config"


@dataclass(frozen=True)
class ServeConfig:
    """Daemon configuration (the ``gpu-blob serve`` flags)."""

    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT
    cache_dir: str = "results/.sweep-cache"
    workers: int = 2
    queue_maxsize: int = 64
    #: per-client token-bucket refill in requests/second (None: no limit)
    rate: Optional[float] = None
    burst: int = 8
    request_timeout_s: float = 30.0
    drain_timeout_s: float = 30.0
    #: write-ahead journal of accepted jobs; None puts it next to the
    #: cache (``<cache_dir>/serve-wal.jsonl``), wal_enabled=False is
    #: the explicit opt-out (``--no-wal``)
    wal_path: Optional[str] = None
    wal_enabled: bool = True
    lease_s: float = 120.0
    #: replay attempts before a journaled job is declared dead
    max_attempts: int = 3
    #: consecutive backend failures that trip a circuit breaker
    breaker_threshold: int = 3
    breaker_reset_s: float = 30.0
    #: shard parallelism handed to run_sweep for each job (>1 engages
    #: the supervised process pool, and with it REPRO_CHAOS_KILL_SHARD)
    sweep_jobs: int = 1
    #: run cache misses as adaptive bisection sweeps (``--adaptive``);
    #: thresholds are identical to dense scans, but the sampled series
    #: is too sparse for CSV export, so include_series requests and
    #: cache stores stay dense — an adaptive miss answers fast and
    #: re-runs (cheaply, O(log d)) on the next cold query
    adaptive: bool = False
    #: seeded serve-level fault plan (``--chaos-plan``); None = off
    chaos: Optional[ServeChaosPlan] = None

    def __post_init__(self) -> None:
        from ..errors import ConfigError

        if not 0 <= self.port <= 65535:
            raise ConfigError(f"port must be in [0, 65535], got {self.port}")
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.queue_maxsize < 1:
            raise ConfigError(
                f"queue_maxsize must be >= 1, got {self.queue_maxsize}"
            )
        if self.rate is not None and self.rate <= 0:
            raise ConfigError(f"rate must be > 0, got {self.rate}")
        if self.burst < 1:
            raise ConfigError(f"burst must be >= 1, got {self.burst}")
        if self.request_timeout_s <= 0:
            raise ConfigError(
                f"request_timeout_s must be > 0, got {self.request_timeout_s}"
            )
        if self.lease_s <= 0:
            raise ConfigError(f"lease_s must be > 0, got {self.lease_s}")
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.breaker_threshold < 1:
            raise ConfigError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_reset_s <= 0:
            raise ConfigError(
                f"breaker_reset_s must be > 0, got {self.breaker_reset_s}"
            )
        if self.sweep_jobs < 1:
            raise ConfigError(
                f"sweep_jobs must be >= 1, got {self.sweep_jobs}"
            )

    @property
    def wal_file(self) -> Path:
        """Where the journal lives (whether or not it is enabled)."""
        if self.wal_path is not None:
            return Path(self.wal_path)
        return Path(self.cache_dir) / "serve-wal.jsonl"


@dataclass(frozen=True)
class ThresholdQuery:
    """One validated ``POST /v1/threshold`` request."""

    system: str
    kernel: Kernel
    problem: str
    precision: Precision
    iterations: int
    paradigm: TransferType
    backend: str
    min_dim: int
    max_dim: int
    step: int
    dim: Optional[int]
    min_consecutive: int
    include_series: bool

    def run_config(self) -> RunConfig:
        """The sweep config — shaped exactly like the CLI builds it
        (all three paradigms swept), so server and CLI share cache
        entries for the same (system, problem, precision, iterations)."""
        return RunConfig(
            min_dim=self.min_dim,
            max_dim=self.max_dim,
            iterations=self.iterations,
            step=self.step,
            kernels=(self.kernel,),
            problem_idents=(self.problem,),
            precisions=(self.precision,),
        )

    def record(self) -> dict:
        """The normalized JSON form journaled into the WAL — exactly
        what :func:`parse_threshold_query` reconstructs on replay."""
        return {
            "system": self.system,
            "kernel": self.kernel.value,
            "problem": self.problem,
            "precision": self.precision.value,
            "iterations": self.iterations,
            "paradigm": self.paradigm.value,
            "backend": self.backend,
            "min_dim": self.min_dim,
            "max_dim": self.max_dim,
            "step": self.step,
            "dim": self.dim,
            "min_consecutive": self.min_consecutive,
            "include_series": self.include_series,
        }


def _enum_field(data: dict, name: str, enum_cls, default):
    value = data.get(name, default)
    try:
        return enum_cls(value)
    except ValueError:
        raise ApiError(
            400,
            f"unknown {name} {value!r}",
            valid=[member.value for member in enum_cls],
        ) from None


def _int_field(data: dict, name: str, default: int, minimum: int = 1) -> int:
    value = data.get(name, default)
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise ApiError(
            400, f"{name} must be an integer >= {minimum}, got {value!r}"
        )
    return value


def parse_threshold_query(body: dict) -> ThresholdQuery:
    """Validate one request body into a :class:`ThresholdQuery`,
    answering unknown names with the valid registry entries."""
    if not isinstance(body, dict):
        raise ApiError(400, "request body must be a JSON object")
    system = body.get("system")
    if not isinstance(system, str):
        raise ApiError(
            400, "field 'system' is required", valid=list(system_names())
        )
    if system not in system_names():
        raise ApiError(
            400,
            f"unknown system {system!r}",
            valid=list(system_names()),
        )
    kernel = _enum_field(body, "kernel", Kernel, Kernel.GEMM.value)
    problem = body.get("problem", "square")
    try:
        get_problem_type(kernel, problem)
    except (UnknownProblemTypeError, TypeError):
        raise ApiError(
            400,
            f"unknown problem {problem!r} for kernel {kernel.value!r}",
            valid=list(problem_idents(kernel)),
        ) from None
    precision = _enum_field(
        body, "precision", Precision, Precision.SINGLE.value
    )
    paradigm = _enum_field(
        body, "paradigm", TransferType, TransferType.ONCE.value
    )
    backend = body.get("backend", "analytic")
    if backend not in SERVABLE_BACKENDS:
        raise ApiError(
            400,
            f"unknown backend {backend!r}",
            valid=list(SERVABLE_BACKENDS),
        )
    min_dim = _int_field(body, "min_dim", 1)
    max_dim = _int_field(body, "max_dim", 4096)
    if max_dim < min_dim:
        raise ApiError(
            400, f"max_dim ({max_dim}) must be >= min_dim ({min_dim})"
        )
    dim = body.get("dim")
    if dim is not None and (
        not isinstance(dim, int) or isinstance(dim, bool) or dim < 1
    ):
        raise ApiError(400, f"dim must be an integer >= 1, got {dim!r}")
    return ThresholdQuery(
        system=system,
        kernel=kernel,
        problem=problem,
        precision=precision,
        iterations=_int_field(body, "iterations", 1),
        paradigm=paradigm,
        backend=backend,
        min_dim=min_dim,
        max_dim=max_dim,
        step=_int_field(body, "step", 8),
        dim=dim,
        min_consecutive=_int_field(body, "min_consecutive", 2),
        include_series=bool(body.get("include_series", False)),
    )


class ThresholdService:
    """Routing and endpoint logic, independent of the socket layer.

    ``sweep_fn`` is injectable for tests (it must accept the
    ``run_sweep(backend, config, system_name=..., cache_dir=...)``
    shape); the default is the real supervised runner.
    """

    def __init__(self, config: ServeConfig, sweep_fn=None) -> None:
        self.config = config
        self.metrics = ServeMetrics()
        self.jobs = JobQueue(
            workers=config.workers, maxsize=config.queue_maxsize
        )
        self.limiter = RateLimiter(config.rate, config.burst)
        self.breakers = BreakerBoard(
            failure_threshold=config.breaker_threshold,
            reset_timeout_s=config.breaker_reset_s,
        )
        self.chaos = config.chaos
        self.wal: Optional[WriteAheadLog] = None
        if config.wal_enabled:
            self.wal = WriteAheadLog(config.wal_file, lease_s=config.lease_s)
        self.draining = False
        self._sweep_fn = sweep_fn if sweep_fn is not None else run_sweep
        self._flight = SingleFlight()
        self._backends: Dict[tuple, object] = {}
        self._inflight_http = 0
        #: the startup WAL replay (set by start_server; drain awaits it)
        self.replay_task: Optional[asyncio.Future] = None

    # -- request entry point ------------------------------------------

    async def handle(self, request: Request) -> Response:
        endpoint = self._endpoint_label(request.path)
        started = time.perf_counter()
        self._inflight_http += 1
        try:
            response = await self._dispatch(request)
        except ApiError as exc:
            response = self._api_error_response(exc)
        except HttpError as exc:
            response = self._api_error_response(
                ApiError(exc.status, str(exc))
            )
        except ReproError as exc:
            response = self._repro_error_response(exc)
        finally:
            self._inflight_http -= 1
        self.metrics.observe_request(
            endpoint, response.status, time.perf_counter() - started
        )
        return response

    @property
    def inflight_http(self) -> int:
        return self._inflight_http

    @staticmethod
    def _endpoint_label(path: str) -> str:
        known = {
            "/healthz": "healthz",
            "/readyz": "readyz",
            "/metrics": "metrics",
            "/v1/systems": "systems",
            "/v1/problems": "problems",
            "/v1/threshold": "threshold",
        }
        return known.get(path, "other")

    async def _dispatch(self, request: Request) -> Response:
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            return json_response(200, {"status": "ok"})
        if route == ("GET", "/readyz"):
            return self._readyz_response()
        if route == ("GET", "/metrics"):
            return json_response(200, self._metrics_payload())
        if route == ("GET", "/v1/systems"):
            return json_response(200, self._systems_payload())
        if route == ("GET", "/v1/problems"):
            return json_response(200, self._problems_payload())
        if route == ("POST", "/v1/threshold"):
            return await self._threshold(request)
        if request.path in (
            "/healthz", "/readyz", "/metrics", "/v1/systems", "/v1/problems",
            "/v1/threshold",
        ):
            raise ApiError(
                405, f"method {request.method} not allowed for {request.path}"
            )
        raise ApiError(404, f"no such endpoint: {request.path}")

    def _readyz_response(self) -> Response:
        """Readiness: every gate an orchestrator should route on."""
        gates = {
            "accepting": not self.draining,
            "queue_accepting": self.jobs.depth < self.config.queue_maxsize,
            "wal_writable": self.wal is None or self.wal.healthy,
            "breakers_closed": not self.breakers.all_open(),
        }
        ready = all(gates.values())
        payload = {"status": "ok" if ready else "unavailable", **gates}
        return json_response(200 if ready else 503, payload)

    # -- error rendering ----------------------------------------------

    def _api_error_response(self, exc: ApiError) -> Response:
        headers = ()
        if exc.retry_after_s is not None:
            # 429 quota overruns, 503 queue-full/breaker-open: any
            # retryable refusal carries its hint as a real header too
            retry = max(1, int(-(-exc.retry_after_s // 1)))
            headers = (("Retry-After", str(retry)),)
        return json_response(exc.status, exc.payload(), headers=headers)

    def _repro_error_response(self, exc: ReproError) -> Response:
        family = _family_of(exc)
        status = {"config": 400, "fault": 500, "integrity": 500}[family]
        payload = {
            "error": {
                "family": family,
                "exit_code": _FAMILY_EXIT_CODES[family],
                "error": type(exc).__name__,
                "message": str(exc),
            }
        }
        return json_response(status, payload)

    # -- introspection endpoints --------------------------------------

    def _systems_payload(self) -> dict:
        systems = []
        for name in system_names():
            spec = get_system(name)
            systems.append({
                "name": spec.name,
                "cpu_library": spec.cpu_library,
                "gpu_library": spec.gpu_library,
                "cpu_threads": spec.cpu_threads,
                "has_gpu": spec.gpu is not None,
            })
        return {"systems": systems}

    def _problems_payload(self) -> dict:
        return {
            "problems": {
                kernel.value: list(problem_idents(kernel))
                for kernel in Kernel
            }
        }

    def _record_adaptive(self, result) -> None:
        """Fold one executed sweep's adaptive sample savings into the
        daemon counters (both zero when --adaptive is off)."""
        self.metrics.adaptive_cells_sampled += (
            result.stats.adaptive_cells_sampled
        )
        self.metrics.adaptive_cells_dense += result.stats.adaptive_cells_dense

    def _metrics_payload(self) -> dict:
        from ..core import workerpool

        payload = self.metrics.snapshot()
        payload["workerpool"] = workerpool.pool_stats()
        payload["queue"] = {
            "depth": self.jobs.depth,
            "inflight": self.jobs.inflight,
            "maxsize": self.config.queue_maxsize,
            "workers": self.config.workers,
        }
        payload["http"] = {"inflight": self._inflight_http}
        payload["store"] = cache_stats(self.config.cache_dir)
        payload["breakers"] = self.breakers.snapshot()
        if self.wal is not None:
            active, expired = self.wal.lease_counts()
            payload["wal"] = {
                "path": str(self.wal.path),
                "writable": self.wal.healthy,
                "jobs": self.wal.counts(),
                "leases": {"active": active, "expired": expired},
                "corrupt_records": self.wal.state.corrupt_records,
            }
        else:
            payload["wal"] = None
        return payload

    # -- the threshold endpoint ---------------------------------------

    def _backend_for(self, query: ThresholdQuery):
        key = (query.backend, query.system)
        backend = self._backends.get(key)
        if backend is None:
            backend = make_backend(query.backend, system=query.system)
            self._backends[key] = backend
        return backend

    def _cache_entry_present(self, cache_key) -> bool:
        """Cheap probe: does the hot store already hold this key?  Only
        cold keys engage the breaker and the write-ahead journal — a
        warm request never touches the backend."""
        if not isinstance(cache_key, str):
            return False
        return (Path(self.config.cache_dir) / f"{cache_key}.json").is_file()

    def _chaos_fires(self, kind: ServeChaosKind, cache_key, attempt) -> bool:
        if self.chaos is None or attempt is None:
            return False
        key = cache_key if isinstance(cache_key, str) else repr(cache_key)
        return self.chaos.fires(kind, (key, attempt))

    # -- write-ahead journal hooks ------------------------------------

    def _wal_accept(self, cache_key, query: ThresholdQuery, attempt: int = 1):
        """Journal one accepted cold job (write-ahead: before it is
        queued).  A failed append is availability-over-durability: the
        job still runs, ``wal_errors`` ticks, ``/readyz`` flips."""
        if self.wal is None or not isinstance(cache_key, str):
            return None
        if self._chaos_fires(ServeChaosKind.WAL_STALL, cache_key, attempt):
            self.wal.healthy = False
            self.metrics.wal_errors += 1
            return None
        try:
            job_id = self.wal.append_accept(
                cache_key, query.record(), attempt=attempt
            )
        except OSError:
            self.metrics.wal_errors += 1
            return None
        if self._chaos_fires(ServeChaosKind.WAL_BITFLIP, cache_key, attempt):
            flip_byte_in_last_record(self.wal.path)
        return job_id

    def _wal_mark_dead(self, job_id, reason: str) -> None:
        if self.wal is None or job_id is None:
            return
        try:
            if self.wal.mark_dead(job_id, reason):
                self.metrics.jobs_dead += 1
        except OSError:
            self.metrics.wal_errors += 1

    def _wal_complete_key(self, cache_key) -> None:
        """The result behind ``cache_key`` reached the content-addressed
        store: journal completion for every pending entry sharing the
        key (replays and coalesced bursts can stack several), each
        exactly once (:meth:`WriteAheadLog.mark_complete` refuses
        doubles)."""
        if self.wal is None or not isinstance(cache_key, str):
            return
        for job in self.wal.pending():
            if job.key == cache_key:
                try:
                    self.wal.mark_complete(job.job_id)
                except OSError:
                    self.metrics.wal_errors += 1

    # -- job execution ------------------------------------------------

    def _execute_fn(self, query, backend, config, cache_key, attempt):
        """The blocking cache-or-sweep computation behind one job, with
        this attempt's chaos draws applied (``attempt=None``: no chaos —
        warm requests never execute the backend)."""
        if self.config.adaptive and not query.include_series:
            # bisection answers the threshold from a sampled grid;
            # adaptive is excluded from the cache fingerprint, so a
            # dense entry (CLI-seeded or include_series-forced) still
            # replays as a hit
            config = replace(config, adaptive=True)
        sweep_kwargs = {
            "system_name": query.system,
            "cache_dir": self.config.cache_dir,
        }
        if self.config.sweep_jobs > 1:
            sweep_kwargs["jobs"] = self.config.sweep_jobs
        slow = self._chaos_fires(ServeChaosKind.SLOW_BACKEND, cache_key, attempt)
        fail = self._chaos_fires(ServeChaosKind.FAIL_BACKEND, cache_key, attempt)

        def compute():
            if slow:
                time.sleep(self.chaos.slow_s)
            if fail:
                raise TransientKernelError(
                    f"chaos fail-backend fired (attempt {attempt})"
                )
            return self._sweep_fn(backend, config, **sweep_kwargs)

        return lambda: self._flight.do(cache_key, compute)

    def _job_thunk(self, query, backend, config, cache_key, breaker, attempt):
        """One queued job: run the sweep off-loop, account the breaker
        (only when this job claimed an execution slot via ``allow()``),
        and journal completion."""
        loop = asyncio.get_running_loop()
        execute = self._execute_fn(query, backend, config, cache_key, attempt)

        async def thunk():
            try:
                result = await loop.run_in_executor(None, execute)
            except SweepFaultError:
                if breaker is not None:
                    breaker.record_failure()
                # the WAL entry stays pending: the next startup replays
                # it with a fresh attempt (and fresh chaos draws)
                raise
            if breaker is not None:
                breaker.record_success()
            if not result.cache_hit:
                self.metrics.sweeps_executed += 1
                self._record_adaptive(result)
            self._wal_complete_key(cache_key)
            return result

        return thunk

    def _queue_retry_after(self) -> float:
        """A 503's ``Retry-After`` hint: observed median threshold
        latency scaled by how many jobs are ahead per worker (1s floor
        before any latency has been observed)."""
        histogram = self.metrics.latency.get("threshold")
        p50 = histogram.percentile(0.5) if histogram else None
        base = p50 if p50 else 1.0
        backlog = (self.jobs.depth + self.jobs.inflight) / max(
            1, self.config.workers
        )
        return max(1.0, base * max(1.0, backlog))

    async def _threshold(self, request: Request) -> Response:
        query = parse_threshold_query(request.json())
        client = request.headers.get("x-client-id") or request.peer or "-"
        retry_after = self.limiter.check(client)
        if retry_after > 0:
            self.metrics.rate_limited += 1
            raise ApiError(
                429,
                f"client {client!r} is over its request quota",
                family="quota",
                retry_after_s=retry_after,
            )
        try:
            backend = self._backend_for(query)
        except UnknownSystemError:
            raise ApiError(
                400,
                f"unknown system {query.system!r}",
                valid=list(system_names()),
            ) from None
        config = query.run_config()
        cache_key = sweep_cache_key(config, query.system, backend) or (
            query.backend,
            query.system,
            config,
        )
        breaker = self.breakers.breaker((query.system, query.backend))
        # the leader of a cold key is the one request that journals the
        # accept and claims a breaker slot; followers coalesce, warm
        # requests replay the store without touching the backend
        leader = not self._cache_entry_present(cache_key) and (
            not self.jobs.in_flight(cache_key)
        )
        wal_id = None
        attempt = None
        if leader:
            if not breaker.allow():
                return self._degraded_response(
                    query,
                    breaker,
                    reason=(
                        f"circuit breaker for ({query.system}, "
                        f"{query.backend}) is {breaker.state.value}"
                    ),
                )
            attempt = 1
            wal_id = self._wal_accept(cache_key, query)
        thunk = self._job_thunk(
            query, backend, config, cache_key,
            breaker if leader else None, attempt,
        )
        try:
            future, coalesced = self.jobs.submit(cache_key, thunk)
        except QueueFullError:
            self.metrics.queue_rejected += 1
            self._wal_mark_dead(wal_id, "queue full")
            depth = self.jobs.depth
            raise ApiError(
                503,
                f"job queue is full ({depth}/{self.config.queue_maxsize} "
                "pending); retry after the backlog clears",
                family="fault",
                retry_after_s=self._queue_retry_after(),
                extra={"queue_depth": depth},
            ) from None
        deadline = self.config.request_timeout_s
        try:
            result = await asyncio.wait_for(asyncio.shield(future), deadline)
        except asyncio.TimeoutError:
            self.metrics.deadline_expired += 1
            raise ApiError(
                504,
                f"threshold request exceeded its {deadline:.3g}s deadline "
                "(the sweep keeps running; retry to pick up the cached "
                "result)",
                family="fault",
            ) from None
        except SweepFaultError as exc:
            # an executed job failed on a transient backend fault: a
            # stale cache answer beats a 500 (integrity errors still
            # surface — corrupted data must never be served)
            return self._degraded_response(
                query, breaker, reason=f"backend execution failed: {exc}"
            )
        self.metrics.record_threshold_outcome(result.cache_hit, coalesced)
        return json_response(200, self._threshold_payload(query, result))

    # -- degraded (stale-while-revalidate) answers --------------------

    def _degraded_response(self, query, breaker, reason: str) -> Response:
        stale = find_stale_series(
            self.config.cache_dir,
            query.system,
            query.kernel,
            query.problem,
            query.precision,
            query.iterations,
        )
        if stale is None:
            self.metrics.degraded_unavailable += 1
            raise ApiError(
                503,
                f"backend {query.backend!r} for system {query.system!r} is "
                f"unavailable ({reason}) and the sweep cache holds no "
                "series matching this query",
                family="fault",
                retry_after_s=breaker.retry_after_s()
                or self.config.breaker_reset_s,
            )
        series, stale_iterations = stale
        self.metrics.degraded_answers += 1
        payload = self._series_payload(query, series, cache_hit=True)
        payload["degraded"] = True
        payload["cache"]["stale_iterations"] = stale_iterations
        payload["cache"]["reason"] = reason
        return json_response(
            200,
            payload,
            headers=(
                (
                    "Warning",
                    '110 gpu-blob "stale threshold: backend unavailable; '
                    'answered from sweep cache"',
                ),
            ),
        )

    # -- WAL replay ---------------------------------------------------

    async def replay_wal(self) -> int:
        """Re-run every accepted-but-incomplete journal entry through
        the same executor path, grouped by cache key (a coalesced burst
        or a replay race can stack several accepts on one key; one
        execution completes them all).  Expired leases accumulate the
        sweep layer's simulated exponential backoff, attempts beyond
        ``max_attempts`` are dead-lettered, and a transient failure
        leaves the entry pending for the *next* restart (with fresh
        chaos draws).  Returns the number of entries completed."""
        if self.wal is None:
            return 0
        pending = self.wal.pending()
        if not pending:
            return 0
        groups: Dict[str, list] = {}
        for job in pending:
            groups.setdefault(job.key, []).append(job)
        policy = RetryPolicy()
        loop = asyncio.get_running_loop()
        completed = 0
        for key, jobs_for_key in groups.items():
            lead = jobs_for_key[0]
            now = self.wal.clock()
            expired = any(job.expired(now) for job in jobs_for_key)
            try:
                attempt = self.wal.renew(lead.job_id)
            except OSError:
                self.metrics.wal_errors += 1
                attempt = lead.attempt + 1
            if attempt > self.config.max_attempts:
                for job in jobs_for_key:
                    self._wal_mark_dead(job.job_id, "attempts exhausted")
                continue
            if expired:
                # simulated, like the sweep layer: accounted, not slept
                self.metrics.replay_backoff_s += policy.backoff_s(
                    attempt, (key,)
                )
            try:
                query = parse_threshold_query(dict(lead.query))
            except ApiError as exc:
                for job in jobs_for_key:
                    self._wal_mark_dead(
                        job.job_id, f"unparseable query: {exc}"
                    )
                continue
            try:
                backend = self._backend_for(query)
            except UnknownSystemError:
                for job in jobs_for_key:
                    self._wal_mark_dead(job.job_id, "unknown system")
                continue
            config = query.run_config()
            breaker = self.breakers.breaker((query.system, query.backend))
            execute = self._execute_fn(query, backend, config, key, attempt)
            try:
                result = await loop.run_in_executor(None, execute)
            except SweepFaultError:
                breaker.record_failure()
                continue
            except ReproError as exc:
                for job in jobs_for_key:
                    self._wal_mark_dead(job.job_id, f"replay failed: {exc}")
                continue
            breaker.record_success()
            if not result.cache_hit:
                self.metrics.sweeps_executed += 1
                self._record_adaptive(result)
            self.metrics.jobs_replayed += len(jobs_for_key)
            completed += len(jobs_for_key)
            self._wal_complete_key(key)
        return completed

    def _threshold_payload(self, query: ThresholdQuery, result) -> dict:
        series = result.series_for(
            query.kernel, query.problem, query.precision
        )
        return self._series_payload(query, series, result.cache_hit)

    def _series_payload(
        self, query: ThresholdQuery, series, cache_hit: bool
    ) -> dict:
        found = threshold_for_series(
            series, query.paradigm, query.min_consecutive
        )
        payload = {
            "system": query.system,
            "kernel": query.kernel.value,
            "problem": query.problem,
            "precision": query.precision.value,
            "iterations": query.iterations,
            "paradigm": query.paradigm.value,
            "backend": query.backend,
            "sweep": {
                "min_dim": query.min_dim,
                "max_dim": query.max_dim,
                "step": query.step,
                "samples": len(series.all_samples()),
            },
            "threshold": {
                "found": found.found,
                "dims": (
                    {
                        "m": found.dims.m,
                        "n": found.dims.n,
                        "k": found.dims.k,
                    }
                    if found.found
                    else None
                ),
                "notation": str(found) if found.found else None,
                "index": found.index,
            },
            "best_device": self._best_device(query, found),
            # a degraded answer replaces this False and annotates the
            # cache block; see _degraded_response
            "degraded": False,
            # coalesced waiters must agree byte-for-byte with their
            # leader, so only the shared hit/miss outcome appears here;
            # per-request coalescing shows up on /metrics instead
            "cache": {"hit": cache_hit},
        }
        if query.include_series:
            payload["series"] = {
                "filename": series_filename(series),
                "fieldnames": list(FIELDNAMES),
                "rows": [
                    sample_row(sample, series) for sample in series.samples
                ],
            }
        return payload

    @staticmethod
    def _best_device(query: ThresholdQuery, found) -> str:
        """GPU wins at and beyond the threshold; CPU everywhere else.
        With a concrete ``dim`` (a sweep parameter), compare that
        problem instance against the threshold dims."""
        if not found.found:
            return "cpu"
        if query.dim is None:
            return "gpu"
        problem_type = get_problem_type(query.kernel, query.problem)
        at = problem_type.dims_at(query.dim)
        return "gpu" if at.max_dim >= found.dims.max_dim else "cpu"


class ServerHandle:
    """One started daemon: the socket server plus its service."""

    def __init__(self, server, service: ThresholdService) -> None:
        self.server = server
        self.service = service
        sock = server.sockets[0].getsockname()
        self.host, self.port = sock[0], sock[1]
        self._drained = False
        self._drain_ok = True

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: stop accepting (``/readyz`` flips first),
        finish the startup replay, in-flight requests, and queued
        sweeps (bounded by ``timeout``), journal their completions,
        then stop the workers and close the WAL.  Returns True when
        everything completed.  A second drain is a no-op returning the
        first one's verdict."""
        if self._drained:
            return self._drain_ok
        self._drained = True
        if timeout is None:
            timeout = self.service.config.drain_timeout_s
        self.service.draining = True
        self.server.close()
        deadline = time.monotonic() + timeout
        replay = self.service.replay_task
        if replay is not None and not replay.done():
            try:
                await asyncio.wait_for(
                    asyncio.shield(replay),
                    max(0.1, deadline - time.monotonic()),
                )
            except (asyncio.TimeoutError, ReproError):
                pass  # unfinished replays stay pending for next startup
        while self.service.inflight_http and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        finished = await self.service.jobs.drain(
            max(0.1, deadline - time.monotonic())
        )
        await self.server.wait_closed()
        if self.service.wal is not None:
            self.service.wal.close()
        self._drain_ok = finished and not self.service.inflight_http
        return self._drain_ok


async def start_server(config: ServeConfig, sweep_fn=None) -> ServerHandle:
    """Bind and start serving; ``port=0`` picks an ephemeral port."""
    service = ThresholdService(config, sweep_fn=sweep_fn)
    service.jobs.start()
    if service.wal is not None and service.wal.pending():
        # crash recovery: replay accepted-but-incomplete jobs in the
        # background while the daemon already serves traffic
        service.replay_task = asyncio.ensure_future(service.replay_wal())

    async def on_connection(reader, writer):
        await handle_connection(reader, writer, service.handle)

    server = await asyncio.start_server(
        on_connection, host=config.host, port=config.port
    )
    return ServerHandle(server, service)


# -- daemon entry point -----------------------------------------------


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gpu-blob serve",
        description=(
            "Serve GPU offload thresholds over HTTP/JSON, answering from "
            "the content-addressed sweep cache and running misses "
            "through a bounded job queue on the supervised executor."
        ),
    )
    parser.add_argument(
        "--host", default=DEFAULT_HOST,
        help=f"bind address (default {DEFAULT_HOST})",
    )
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, metavar="N",
        help=f"TCP port; 0 picks an ephemeral one (default {DEFAULT_PORT})",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default="results/.sweep-cache",
        help="content-addressed sweep cache used as the hot store "
        "(default results/.sweep-cache)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="concurrent sweep jobs (default 2)",
    )
    parser.add_argument(
        "--queue-max", type=int, default=64, metavar="N",
        help="pending-job bound; excess misses answer 503 (default 64)",
    )
    parser.add_argument(
        "--rate", type=float, default=None, metavar="RPS",
        help="per-client token-bucket refill in requests/second "
        "(default: unlimited)",
    )
    parser.add_argument(
        "--burst", type=int, default=8, metavar="N",
        help="token-bucket capacity per client (default 8)",
    )
    parser.add_argument(
        "--request-timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-request deadline; overruns answer 504 (default 30)",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help="grace period for in-flight work on SIGTERM (default 30)",
    )
    parser.add_argument(
        "--wal", metavar="PATH", default=None, dest="wal",
        help="write-ahead journal of accepted jobs "
        "(default <cache-dir>/serve-wal.jsonl)",
    )
    parser.add_argument(
        "--no-wal", action="store_true",
        help="disable the durable job journal (accepted jobs die with "
        "the daemon)",
    )
    parser.add_argument(
        "--lease", type=float, default=120.0, metavar="SECONDS",
        help="journal lease per accepted job; expired leases replay "
        "with backoff (default 120)",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="replay attempts before a journaled job is declared dead "
        "(default 3)",
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="consecutive backend failures that trip a circuit breaker "
        "(default 3)",
    )
    parser.add_argument(
        "--breaker-reset", type=float, default=30.0, metavar="SECONDS",
        help="open-breaker cooldown before a half-open probe "
        "(default 30)",
    )
    parser.add_argument(
        "--sweep-jobs", type=int, default=1, metavar="N",
        help="shard parallelism per sweep job; >1 uses the supervised "
        "process pool (default 1)",
    )
    parser.add_argument(
        "--adaptive", action="store_true",
        help="answer cache misses with adaptive bisection sweeps "
        "(identical thresholds, fewer sampled cells; include_series "
        "requests still sweep dense)",
    )
    parser.add_argument(
        "--chaos-plan", metavar="NAME[:SEED]", default=None,
        help="inject seeded serve-level faults: "
        "light, heavy, or blackout (testing only)",
    )
    return parser


async def _serve_until_signal(config: ServeConfig) -> None:
    handle = await start_server(config)
    print(
        f"gpu-blob serve: listening on http://{handle.host}:{handle.port} "
        f"(cache {config.cache_dir})",
        flush=True,
    )
    if handle.service.replay_task is not None:
        backlog = len(handle.service.wal.pending())
        print(
            f"gpu-blob serve: replaying {backlog} journaled job(s) "
            f"from {handle.service.wal.path}",
            flush=True,
        )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    await stop.wait()
    print("gpu-blob serve: draining", flush=True)
    await handle.drain()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (``gpu-blob serve ...``)."""
    args = build_serve_parser().parse_args(argv)
    try:
        chaos = (
            ServeChaosPlan.parse(args.chaos_plan)
            if args.chaos_plan is not None
            else None
        )
        config = ServeConfig(
            host=args.host,
            port=args.port,
            cache_dir=args.cache_dir,
            workers=args.workers,
            queue_maxsize=args.queue_max,
            rate=args.rate,
            burst=args.burst,
            request_timeout_s=args.request_timeout,
            drain_timeout_s=args.drain_timeout,
            wal_path=args.wal,
            wal_enabled=not args.no_wal,
            lease_s=args.lease,
            max_attempts=args.max_attempts,
            breaker_threshold=args.breaker_threshold,
            breaker_reset_s=args.breaker_reset,
            sweep_jobs=args.sweep_jobs,
            adaptive=args.adaptive,
            chaos=chaos,
        )
        asyncio.run(_serve_until_signal(config))
    except ReproError as exc:
        print(f"gpu-blob: error: {exc}", file=sys.stderr)
        return 4 if isinstance(exc, IntegrityError) else (
            3 if isinstance(exc, SweepFaultError) else 2
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
