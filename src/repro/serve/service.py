"""`gpu-blob serve` — the async threshold-serving daemon.

The decision function the paper builds — *given a system, problem
type, precision, iteration count, and transfer paradigm, which device
wins and where is the crossover?* — is served here as a long-running
HTTP/JSON API:

* ``POST /v1/threshold`` — answer one threshold query.  The
  content-addressed sweep cache is the hot store; a miss is coalesced
  per cache key (single-flight) and dispatched to a bounded job queue
  that runs the sweep through the existing supervised executor.
* ``GET /v1/systems`` / ``GET /v1/problems`` — registry introspection.
* ``GET /healthz`` — liveness.
* ``GET /metrics`` — JSON counters: per-endpoint request counts and
  latency histograms (p50/p99), cache hit rate, queue depth, in-flight
  jobs, plus the store-level counters shared with ``gpu-blob cache
  stats``.

Failure surface: per-client token buckets answer 429 with
``Retry-After``; a full job queue answers 503; a request deadline
overrun answers 504; and every error body is structured JSON carrying
the engine's error-family taxonomy (config = 2, fault = 3,
integrity = 4 — the CLI's exit codes).  SIGTERM drains gracefully:
stop accepting, finish in-flight requests and queued sweeps, then
exit 0.

A cached threshold response is **byte-identical** to the CLI: series
rows reuse :func:`repro.core.csvio.sample_row`, the exact cell strings
``gpu-blob -o`` writes to CSV.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..backends import make_backend
from ..core.config import RunConfig
from ..core.csvio import FIELDNAMES, sample_row, series_filename
from ..core.problem import get_problem_type, problem_idents
from ..core.runner import run_sweep
from ..core.sweepcache import SingleFlight, cache_stats, sweep_cache_key
from ..core.threshold import threshold_for_series
from ..errors import (
    IntegrityError,
    ReproError,
    SweepFaultError,
    UnknownProblemTypeError,
    UnknownSystemError,
)
from ..systems.catalog import get_system, system_names
from ..types import Kernel, Precision, TransferType
from .httpd import (
    HttpError,
    Request,
    Response,
    handle_connection,
    json_response,
)
from .jobs import JobQueue, QueueFullError
from .metrics import ServeMetrics
from .quota import RateLimiter

__all__ = [
    "ApiError",
    "ServeConfig",
    "ServerHandle",
    "ThresholdService",
    "build_serve_parser",
    "main",
    "start_server",
]

#: Default bind address of the daemon.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8377

#: Model backends the API may run sweeps on (host is excluded: it has
#: no cache token, so it can never serve the byte-identical hot path).
SERVABLE_BACKENDS = ("analytic", "des")


class ApiError(Exception):
    """One structured API failure: an HTTP status plus an error body
    in the engine's family taxonomy (config/fault/integrity)."""

    def __init__(
        self,
        status: int,
        message: str,
        family: str = "config",
        valid: Optional[List[str]] = None,
        retry_after_s: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.family = family
        self.valid = valid
        self.retry_after_s = retry_after_s

    def payload(self) -> dict:
        error = {
            "family": self.family,
            "exit_code": _FAMILY_EXIT_CODES.get(self.family),
            "message": str(self),
        }
        if self.valid is not None:
            error["valid"] = list(self.valid)
        if self.retry_after_s is not None:
            error["retry_after_s"] = round(self.retry_after_s, 3)
        return {"error": error}


#: The CLI's exit-code map, mirrored into error bodies.
_FAMILY_EXIT_CODES = {"config": 2, "fault": 3, "integrity": 4, "quota": None}


def _family_of(exc: ReproError) -> str:
    if isinstance(exc, IntegrityError):
        return "integrity"
    if isinstance(exc, SweepFaultError):
        return "fault"
    return "config"


@dataclass(frozen=True)
class ServeConfig:
    """Daemon configuration (the ``gpu-blob serve`` flags)."""

    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT
    cache_dir: str = "results/.sweep-cache"
    workers: int = 2
    queue_maxsize: int = 64
    #: per-client token-bucket refill in requests/second (None: no limit)
    rate: Optional[float] = None
    burst: int = 8
    request_timeout_s: float = 30.0
    drain_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        from ..errors import ConfigError

        if not 0 <= self.port <= 65535:
            raise ConfigError(f"port must be in [0, 65535], got {self.port}")
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.queue_maxsize < 1:
            raise ConfigError(
                f"queue_maxsize must be >= 1, got {self.queue_maxsize}"
            )
        if self.rate is not None and self.rate <= 0:
            raise ConfigError(f"rate must be > 0, got {self.rate}")
        if self.burst < 1:
            raise ConfigError(f"burst must be >= 1, got {self.burst}")
        if self.request_timeout_s <= 0:
            raise ConfigError(
                f"request_timeout_s must be > 0, got {self.request_timeout_s}"
            )


@dataclass(frozen=True)
class ThresholdQuery:
    """One validated ``POST /v1/threshold`` request."""

    system: str
    kernel: Kernel
    problem: str
    precision: Precision
    iterations: int
    paradigm: TransferType
    backend: str
    min_dim: int
    max_dim: int
    step: int
    dim: Optional[int]
    min_consecutive: int
    include_series: bool

    def run_config(self) -> RunConfig:
        """The sweep config — shaped exactly like the CLI builds it
        (all three paradigms swept), so server and CLI share cache
        entries for the same (system, problem, precision, iterations)."""
        return RunConfig(
            min_dim=self.min_dim,
            max_dim=self.max_dim,
            iterations=self.iterations,
            step=self.step,
            kernels=(self.kernel,),
            problem_idents=(self.problem,),
            precisions=(self.precision,),
        )


def _enum_field(data: dict, name: str, enum_cls, default):
    value = data.get(name, default)
    try:
        return enum_cls(value)
    except ValueError:
        raise ApiError(
            400,
            f"unknown {name} {value!r}",
            valid=[member.value for member in enum_cls],
        ) from None


def _int_field(data: dict, name: str, default: int, minimum: int = 1) -> int:
    value = data.get(name, default)
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise ApiError(
            400, f"{name} must be an integer >= {minimum}, got {value!r}"
        )
    return value


def parse_threshold_query(body: dict) -> ThresholdQuery:
    """Validate one request body into a :class:`ThresholdQuery`,
    answering unknown names with the valid registry entries."""
    if not isinstance(body, dict):
        raise ApiError(400, "request body must be a JSON object")
    system = body.get("system")
    if not isinstance(system, str):
        raise ApiError(
            400, "field 'system' is required", valid=list(system_names())
        )
    if system not in system_names():
        raise ApiError(
            400,
            f"unknown system {system!r}",
            valid=list(system_names()),
        )
    kernel = _enum_field(body, "kernel", Kernel, Kernel.GEMM.value)
    problem = body.get("problem", "square")
    try:
        get_problem_type(kernel, problem)
    except (UnknownProblemTypeError, TypeError):
        raise ApiError(
            400,
            f"unknown problem {problem!r} for kernel {kernel.value!r}",
            valid=list(problem_idents(kernel)),
        ) from None
    precision = _enum_field(
        body, "precision", Precision, Precision.SINGLE.value
    )
    paradigm = _enum_field(
        body, "paradigm", TransferType, TransferType.ONCE.value
    )
    backend = body.get("backend", "analytic")
    if backend not in SERVABLE_BACKENDS:
        raise ApiError(
            400,
            f"unknown backend {backend!r}",
            valid=list(SERVABLE_BACKENDS),
        )
    min_dim = _int_field(body, "min_dim", 1)
    max_dim = _int_field(body, "max_dim", 4096)
    if max_dim < min_dim:
        raise ApiError(
            400, f"max_dim ({max_dim}) must be >= min_dim ({min_dim})"
        )
    dim = body.get("dim")
    if dim is not None and (
        not isinstance(dim, int) or isinstance(dim, bool) or dim < 1
    ):
        raise ApiError(400, f"dim must be an integer >= 1, got {dim!r}")
    return ThresholdQuery(
        system=system,
        kernel=kernel,
        problem=problem,
        precision=precision,
        iterations=_int_field(body, "iterations", 1),
        paradigm=paradigm,
        backend=backend,
        min_dim=min_dim,
        max_dim=max_dim,
        step=_int_field(body, "step", 8),
        dim=dim,
        min_consecutive=_int_field(body, "min_consecutive", 2),
        include_series=bool(body.get("include_series", False)),
    )


class ThresholdService:
    """Routing and endpoint logic, independent of the socket layer.

    ``sweep_fn`` is injectable for tests (it must accept the
    ``run_sweep(backend, config, system_name=..., cache_dir=...)``
    shape); the default is the real supervised runner.
    """

    def __init__(self, config: ServeConfig, sweep_fn=None) -> None:
        self.config = config
        self.metrics = ServeMetrics()
        self.jobs = JobQueue(
            workers=config.workers, maxsize=config.queue_maxsize
        )
        self.limiter = RateLimiter(config.rate, config.burst)
        self._sweep_fn = sweep_fn if sweep_fn is not None else run_sweep
        self._flight = SingleFlight()
        self._backends: Dict[tuple, object] = {}
        self._inflight_http = 0

    # -- request entry point ------------------------------------------

    async def handle(self, request: Request) -> Response:
        endpoint = self._endpoint_label(request.path)
        started = time.perf_counter()
        self._inflight_http += 1
        try:
            response = await self._dispatch(request)
        except ApiError as exc:
            response = self._api_error_response(exc)
        except HttpError as exc:
            response = self._api_error_response(
                ApiError(exc.status, str(exc))
            )
        except ReproError as exc:
            response = self._repro_error_response(exc)
        finally:
            self._inflight_http -= 1
        self.metrics.observe_request(
            endpoint, response.status, time.perf_counter() - started
        )
        return response

    @property
    def inflight_http(self) -> int:
        return self._inflight_http

    @staticmethod
    def _endpoint_label(path: str) -> str:
        known = {
            "/healthz": "healthz",
            "/metrics": "metrics",
            "/v1/systems": "systems",
            "/v1/problems": "problems",
            "/v1/threshold": "threshold",
        }
        return known.get(path, "other")

    async def _dispatch(self, request: Request) -> Response:
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            return json_response(200, {"status": "ok"})
        if route == ("GET", "/metrics"):
            return json_response(200, self._metrics_payload())
        if route == ("GET", "/v1/systems"):
            return json_response(200, self._systems_payload())
        if route == ("GET", "/v1/problems"):
            return json_response(200, self._problems_payload())
        if route == ("POST", "/v1/threshold"):
            return await self._threshold(request)
        if request.path in (
            "/healthz", "/metrics", "/v1/systems", "/v1/problems",
            "/v1/threshold",
        ):
            raise ApiError(
                405, f"method {request.method} not allowed for {request.path}"
            )
        raise ApiError(404, f"no such endpoint: {request.path}")

    # -- error rendering ----------------------------------------------

    def _api_error_response(self, exc: ApiError) -> Response:
        headers = ()
        if exc.status == 429 and exc.retry_after_s is not None:
            retry = max(1, int(-(-exc.retry_after_s // 1)))
            headers = (("Retry-After", str(retry)),)
        return json_response(exc.status, exc.payload(), headers=headers)

    def _repro_error_response(self, exc: ReproError) -> Response:
        family = _family_of(exc)
        status = {"config": 400, "fault": 500, "integrity": 500}[family]
        payload = {
            "error": {
                "family": family,
                "exit_code": _FAMILY_EXIT_CODES[family],
                "error": type(exc).__name__,
                "message": str(exc),
            }
        }
        return json_response(status, payload)

    # -- introspection endpoints --------------------------------------

    def _systems_payload(self) -> dict:
        systems = []
        for name in system_names():
            spec = get_system(name)
            systems.append({
                "name": spec.name,
                "cpu_library": spec.cpu_library,
                "gpu_library": spec.gpu_library,
                "cpu_threads": spec.cpu_threads,
                "has_gpu": spec.gpu is not None,
            })
        return {"systems": systems}

    def _problems_payload(self) -> dict:
        return {
            "problems": {
                kernel.value: list(problem_idents(kernel))
                for kernel in Kernel
            }
        }

    def _metrics_payload(self) -> dict:
        payload = self.metrics.snapshot()
        payload["queue"] = {
            "depth": self.jobs.depth,
            "inflight": self.jobs.inflight,
            "maxsize": self.config.queue_maxsize,
            "workers": self.config.workers,
        }
        payload["http"] = {"inflight": self._inflight_http}
        payload["store"] = cache_stats(self.config.cache_dir)
        return payload

    # -- the threshold endpoint ---------------------------------------

    def _backend_for(self, query: ThresholdQuery):
        key = (query.backend, query.system)
        backend = self._backends.get(key)
        if backend is None:
            backend = make_backend(query.backend, system=query.system)
            self._backends[key] = backend
        return backend

    async def _threshold(self, request: Request) -> Response:
        query = parse_threshold_query(request.json())
        client = request.headers.get("x-client-id") or request.peer or "-"
        retry_after = self.limiter.check(client)
        if retry_after > 0:
            self.metrics.rate_limited += 1
            raise ApiError(
                429,
                f"client {client!r} is over its request quota",
                family="quota",
                retry_after_s=retry_after,
            )
        try:
            backend = self._backend_for(query)
        except UnknownSystemError:
            raise ApiError(
                400,
                f"unknown system {query.system!r}",
                valid=list(system_names()),
            ) from None
        config = query.run_config()
        cache_key = sweep_cache_key(config, query.system, backend) or (
            query.backend,
            query.system,
            config,
        )
        loop = asyncio.get_running_loop()

        def execute():
            return self._flight.do(
                cache_key,
                lambda: self._sweep_fn(
                    backend,
                    config,
                    system_name=query.system,
                    cache_dir=self.config.cache_dir,
                ),
            )

        async def thunk():
            result = await loop.run_in_executor(None, execute)
            if not result.cache_hit:
                self.metrics.sweeps_executed += 1
            return result

        try:
            future, coalesced = self.jobs.submit(cache_key, thunk)
        except QueueFullError as exc:
            self.metrics.queue_rejected += 1
            raise ApiError(503, str(exc), family="fault") from None
        deadline = self.config.request_timeout_s
        try:
            result = await asyncio.wait_for(asyncio.shield(future), deadline)
        except asyncio.TimeoutError:
            self.metrics.deadline_expired += 1
            raise ApiError(
                504,
                f"threshold request exceeded its {deadline:.3g}s deadline "
                "(the sweep keeps running; retry to pick up the cached "
                "result)",
                family="fault",
            ) from None
        self.metrics.record_threshold_outcome(result.cache_hit, coalesced)
        return json_response(200, self._threshold_payload(query, result))

    def _threshold_payload(self, query: ThresholdQuery, result) -> dict:
        series = result.series_for(
            query.kernel, query.problem, query.precision
        )
        found = threshold_for_series(
            series, query.paradigm, query.min_consecutive
        )
        payload = {
            "system": query.system,
            "kernel": query.kernel.value,
            "problem": query.problem,
            "precision": query.precision.value,
            "iterations": query.iterations,
            "paradigm": query.paradigm.value,
            "backend": query.backend,
            "sweep": {
                "min_dim": query.min_dim,
                "max_dim": query.max_dim,
                "step": query.step,
                "samples": len(series.all_samples()),
            },
            "threshold": {
                "found": found.found,
                "dims": (
                    {
                        "m": found.dims.m,
                        "n": found.dims.n,
                        "k": found.dims.k,
                    }
                    if found.found
                    else None
                ),
                "notation": str(found) if found.found else None,
                "index": found.index,
            },
            "best_device": self._best_device(query, found),
            # coalesced waiters must agree byte-for-byte with their
            # leader, so only the shared hit/miss outcome appears here;
            # per-request coalescing shows up on /metrics instead
            "cache": {"hit": result.cache_hit},
        }
        if query.include_series:
            payload["series"] = {
                "filename": series_filename(series),
                "fieldnames": list(FIELDNAMES),
                "rows": [
                    sample_row(sample, series) for sample in series.samples
                ],
            }
        return payload

    @staticmethod
    def _best_device(query: ThresholdQuery, found) -> str:
        """GPU wins at and beyond the threshold; CPU everywhere else.
        With a concrete ``dim`` (a sweep parameter), compare that
        problem instance against the threshold dims."""
        if not found.found:
            return "cpu"
        if query.dim is None:
            return "gpu"
        problem_type = get_problem_type(query.kernel, query.problem)
        at = problem_type.dims_at(query.dim)
        return "gpu" if at.max_dim >= found.dims.max_dim else "cpu"


class ServerHandle:
    """One started daemon: the socket server plus its service."""

    def __init__(self, server, service: ThresholdService) -> None:
        self.server = server
        self.service = service
        sock = server.sockets[0].getsockname()
        self.host, self.port = sock[0], sock[1]

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: stop accepting, let in-flight requests
        and queued sweeps finish (bounded by ``timeout``), then stop
        the workers.  Returns True when everything completed."""
        if timeout is None:
            timeout = self.service.config.drain_timeout_s
        self.server.close()
        deadline = time.monotonic() + timeout
        while self.service.inflight_http and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        finished = await self.service.jobs.drain(
            max(0.1, deadline - time.monotonic())
        )
        await self.server.wait_closed()
        return finished and not self.service.inflight_http


async def start_server(config: ServeConfig, sweep_fn=None) -> ServerHandle:
    """Bind and start serving; ``port=0`` picks an ephemeral port."""
    service = ThresholdService(config, sweep_fn=sweep_fn)
    service.jobs.start()

    async def on_connection(reader, writer):
        await handle_connection(reader, writer, service.handle)

    server = await asyncio.start_server(
        on_connection, host=config.host, port=config.port
    )
    return ServerHandle(server, service)


# -- daemon entry point -----------------------------------------------


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gpu-blob serve",
        description=(
            "Serve GPU offload thresholds over HTTP/JSON, answering from "
            "the content-addressed sweep cache and running misses "
            "through a bounded job queue on the supervised executor."
        ),
    )
    parser.add_argument(
        "--host", default=DEFAULT_HOST,
        help=f"bind address (default {DEFAULT_HOST})",
    )
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, metavar="N",
        help=f"TCP port; 0 picks an ephemeral one (default {DEFAULT_PORT})",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default="results/.sweep-cache",
        help="content-addressed sweep cache used as the hot store "
        "(default results/.sweep-cache)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="concurrent sweep jobs (default 2)",
    )
    parser.add_argument(
        "--queue-max", type=int, default=64, metavar="N",
        help="pending-job bound; excess misses answer 503 (default 64)",
    )
    parser.add_argument(
        "--rate", type=float, default=None, metavar="RPS",
        help="per-client token-bucket refill in requests/second "
        "(default: unlimited)",
    )
    parser.add_argument(
        "--burst", type=int, default=8, metavar="N",
        help="token-bucket capacity per client (default 8)",
    )
    parser.add_argument(
        "--request-timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-request deadline; overruns answer 504 (default 30)",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help="grace period for in-flight work on SIGTERM (default 30)",
    )
    return parser


async def _serve_until_signal(config: ServeConfig) -> None:
    handle = await start_server(config)
    print(
        f"gpu-blob serve: listening on http://{handle.host}:{handle.port} "
        f"(cache {config.cache_dir})",
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    await stop.wait()
    print("gpu-blob serve: draining", flush=True)
    await handle.drain()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (``gpu-blob serve ...``)."""
    args = build_serve_parser().parse_args(argv)
    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            cache_dir=args.cache_dir,
            workers=args.workers,
            queue_maxsize=args.queue_max,
            rate=args.rate,
            burst=args.burst,
            request_timeout_s=args.request_timeout,
            drain_timeout_s=args.drain_timeout,
        )
        asyncio.run(_serve_until_signal(config))
    except ReproError as exc:
        print(f"gpu-blob: error: {exc}", file=sys.stderr)
        return 4 if isinstance(exc, IntegrityError) else (
            3 if isinstance(exc, SweepFaultError) else 2
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
