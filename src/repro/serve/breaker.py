"""Per-(system, backend) circuit breakers for the serving daemon.

A backend that keeps failing must not keep eating queue slots and
worker time while every caller waits out a full sweep attempt just to
collect a 500.  Each (system, backend) pair gets one breaker with the
classic three states:

* **closed** — traffic flows; consecutive failures are counted and
  ``failure_threshold`` of them in a row trip the breaker open.
* **open** — executions are refused on sight for ``reset_timeout_s``;
  the service answers from the sweep cache in degraded mode instead
  (see :mod:`repro.serve.service`).
* **half-open** — after the cooldown, exactly one probe execution is
  admitted at a time: success closes the breaker, failure re-opens it
  (and restarts the cooldown).

All transitions happen on the event-loop thread — :meth:`allow` is
called before a job is queued and the success/failure accounting runs
in the job-queue worker task — so no locking is needed, mirroring
:class:`repro.serve.metrics.ServeMetrics`.
"""

from __future__ import annotations

import time
from enum import Enum
from typing import Dict, Optional

__all__ = ["BreakerBoard", "BreakerState", "CircuitBreaker"]


class BreakerState(Enum):
    """Where one breaker is in its closed → open → half-open cycle."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class CircuitBreaker:
    """One breaker: consecutive-failure trip, timed reset, single probe."""

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s <= 0:
            raise ValueError(
                f"reset_timeout_s must be > 0, got {reset_timeout_s}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_inflight = False
        #: lifetime counters for /metrics
        self.opens = 0
        self.failures = 0
        self.successes = 0

    @property
    def state(self) -> BreakerState:
        """The current state, applying the timed open → half-open
        transition lazily (no background task needed)."""
        if (
            self._state is BreakerState.OPEN
            and self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._state = BreakerState.HALF_OPEN
            self._probe_inflight = False
        return self._state

    def allow(self) -> bool:
        """May one execution proceed right now?

        In half-open state this *claims* the single probe slot, so at
        most one request at a time tests the backend; the slot is
        released by :meth:`record_success` / :meth:`record_failure`.
        """
        state = self.state
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.OPEN:
            return False
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    def record_success(self) -> None:
        self.successes += 1
        self._consecutive_failures = 0
        self._probe_inflight = False
        self._state = BreakerState.CLOSED
        self._opened_at = None

    def record_failure(self) -> None:
        self.failures += 1
        self._consecutive_failures += 1
        was_half_open = self._state is BreakerState.HALF_OPEN
        self._probe_inflight = False
        if was_half_open or (
            self._consecutive_failures >= self.failure_threshold
        ):
            if self._state is not BreakerState.OPEN:
                self.opens += 1
            self._state = BreakerState.OPEN
            self._opened_at = self._clock()
            self._consecutive_failures = 0

    def retry_after_s(self) -> float:
        """Seconds until the next probe is admitted (0 when not open)."""
        if self.state is not BreakerState.OPEN:
            return 0.0
        return max(
            0.0, self.reset_timeout_s - (self._clock() - self._opened_at)
        )

    def snapshot(self) -> dict:
        return {
            "state": self.state.value,
            "consecutive_failures": self._consecutive_failures,
            "opens": self.opens,
            "failures": self.failures,
            "successes": self.successes,
            "retry_after_s": round(self.retry_after_s(), 3),
        }


class BreakerBoard:
    """The daemon's breakers, one per (system, backend) key, created on
    first use with shared thresholds."""

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._breakers: Dict[tuple, CircuitBreaker] = {}

    def breaker(self, key: tuple) -> CircuitBreaker:
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = self._breakers[key] = CircuitBreaker(
                failure_threshold=self.failure_threshold,
                reset_timeout_s=self.reset_timeout_s,
                clock=self._clock,
            )
        return breaker

    def all_open(self) -> bool:
        """Every known breaker is open — the readiness signal: a daemon
        whose every backend is refusing traffic can only serve stale
        answers, so orchestrators should route new traffic elsewhere.
        An empty board (no executions yet) is not 'all open'."""
        if not self._breakers:
            return False
        return all(
            b.state is BreakerState.OPEN for b in self._breakers.values()
        )

    def snapshot(self) -> dict:
        return {
            "/".join(str(part) for part in key): breaker.snapshot()
            for key, breaker in sorted(
                self._breakers.items(), key=lambda kv: kv[0]
            )
        }
