"""Hand-rolled HTTP/1.1 plumbing on ``asyncio`` streams (stdlib only).

The serving daemon deliberately avoids web frameworks: everything it
needs from HTTP is request-line + headers + Content-Length bodies and
keep-alive connections, which fits in one small, auditable module on
:func:`asyncio.start_server`.  The parser is strict where it matters
(bounded head and body sizes, exact Content-Length reads, no
Transfer-Encoding support) and every malformed input maps to a clean
4xx instead of a dropped connection.

:func:`handle_connection` is the per-connection loop the daemon passes
to ``start_server``: parse a request, call the (async) handler, write
the response, repeat until the peer closes or sends
``Connection: close``.  Handler exceptions become a 500 with a JSON
body; they never tear the process down.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

__all__ = [
    "HttpError",
    "Request",
    "Response",
    "handle_connection",
    "json_response",
    "read_request",
    "render_response",
]

#: Bounds on one request: the head (request line + headers) and body.
MAX_HEAD_BYTES = 32 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A malformed or unserviceable request, mapped to a 4xx/5xx."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""
    peer: str = ""

    def json(self):
        """The body decoded as JSON; :class:`HttpError` 400 otherwise."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise HttpError(400, "request body is not valid JSON") from None

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


@dataclass
class Response:
    """One response: a status, a body, and extra headers."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)


def json_response(status: int, payload, **kwargs) -> Response:
    """A :class:`Response` carrying compact, key-sorted JSON."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return Response(status, body.encode() + b"\n", **kwargs)


async def read_request(
    reader: asyncio.StreamReader,
    peer: str = "",
    max_head_bytes: int = MAX_HEAD_BYTES,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> Optional[Request]:
    """Parse one request off the stream.

    Returns ``None`` on a clean EOF between requests (the peer hung up,
    which is how keep-alive connections end); raises :class:`HttpError`
    on anything malformed.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(431, "request head too large") from None
    if len(head) > max_head_bytes:
        raise HttpError(431, "request head too large")
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
        raise HttpError(400, "undecodable request head") from None
    request_line, _, header_block = text.partition("\r\n")
    parts = request_line.split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {request_line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")
    headers: Dict[str, str] = {}
    for line in header_block.split("\r\n"):
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise HttpError(501, "Transfer-Encoding is not supported")
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {length!r}") from None
        if n < 0:
            raise HttpError(400, f"bad Content-Length {length!r}")
        if n > max_body_bytes:
            raise HttpError(413, f"body of {n} bytes exceeds the limit")
        try:
            body = await reader.readexactly(n)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated request body") from None
    split = urlsplit(target)
    query = dict(parse_qsl(split.query))
    return Request(
        method=method.upper(),
        path=split.path,
        query=query,
        headers=headers,
        body=body,
        peer=peer,
    )


def render_response(response: Response, keep_alive: bool = True) -> bytes:
    """Serialize one response (Content-Length framing, no chunking)."""
    reason = REASONS.get(response.status, "Unknown")
    lines = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in response.headers)
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + response.body


Handler = Callable[[Request], Awaitable[Response]]


async def handle_connection(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    handler: Handler,
) -> None:
    """Serve one connection until EOF, ``Connection: close``, or error."""
    peername = writer.get_extra_info("peername")
    peer = peername[0] if isinstance(peername, tuple) else str(peername or "")
    try:
        while True:
            try:
                request = await read_request(reader, peer=peer)
            except HttpError as exc:
                payload = {"error": {"family": "config", "message": str(exc)}}
                response = json_response(exc.status, payload)
                writer.write(render_response(response, keep_alive=False))
                await writer.drain()
                return
            if request is None:
                return
            try:
                response = await handler(request)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # handler bug: reply, don't die
                payload = {
                    "error": {
                        "family": "internal",
                        "message": f"{type(exc).__name__}: {exc}",
                    },
                }
                response = json_response(500, payload)
            keep_alive = request.keep_alive and response.status < 500
            writer.write(render_response(response, keep_alive=keep_alive))
            await writer.drain()
            if not keep_alive:
                return
    except (ConnectionError, asyncio.CancelledError):
        pass  # peer vanished or server shutting down: nothing to salvage
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - racy close
            pass
