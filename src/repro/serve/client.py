"""A minimal async HTTP client for the serving daemon.

Tests, the benchmarks, and the CI smoke jobs all need to talk to
``gpu-blob serve`` without adding dependencies; this module is the
client-side twin of :mod:`repro.serve.httpd` — one connection, HTTP/1.1
with Content-Length framing, keep-alive reuse, JSON bodies.

Retries mirror the sweep layer's :class:`~repro.core.runner
.RetryPolicy` semantics: exponential backoff with a deterministic
BLAKE2b jitter draw, honoring the server's ``Retry-After`` hint on 429
(quota) and 503 (queue full, breaker open) and failing fast on every
other 4xx — a config error does not get better by asking again.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import ClassVar, Dict, List, Optional, Tuple

from ..faults.plan import _unit

__all__ = ["ClientResponse", "ClientRetryPolicy", "ServeClient", "fetch_json"]


@dataclass(frozen=True)
class ClientRetryPolicy:
    """How a client reacts to retryable daemon refusals.

    Unlike the sweep layer's simulated backoff, a client genuinely
    waits (it is pacing a live server), but the jitter draw is the same
    deterministic construction, so two runs of one trace pace
    identically.  A server-provided ``Retry-After`` wins over the
    computed backoff, clamped to ``retry_after_cap_s``.
    """

    max_retries: int = 3
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    jitter: float = 0.1
    retry_after_cap_s: float = 30.0
    seed: int = 0

    #: 429 quota overruns and 503 refusals are worth retrying; every
    #: other 4xx is a config error the caller must fix
    RETRYABLE_STATUSES: ClassVar[Tuple[int, ...]] = (429, 503)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0 or self.backoff_factor < 1:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.retry_after_cap_s <= 0:
            raise ValueError(
                f"retry_after_cap_s must be > 0, got {self.retry_after_cap_s}"
            )

    def should_retry(self, status: int, attempt: int) -> bool:
        """Is a retry allowed after ``attempt`` (1-based) answered
        ``status``?"""
        return status in self.RETRYABLE_STATUSES and attempt <= self.max_retries

    def delay_s(
        self,
        attempt: int,
        key: tuple,
        retry_after: Optional[float] = None,
    ) -> float:
        """Seconds to wait before the next attempt."""
        if retry_after is not None:
            return min(max(retry_after, 0.0), self.retry_after_cap_s)
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        if self.jitter == 0.0:
            return base
        unit = _unit((self.seed, "client-retry", attempt) + tuple(key))
        return base * (1.0 + self.jitter * (2.0 * unit - 1.0))


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    if value is None:
        return None
    try:
        seconds = float(value)
    except ValueError:
        return None
    return seconds if seconds >= 0 else None


@dataclass
class ClientResponse:
    """One response as seen by the client."""

    status: int
    headers: Dict[str, str]
    body: bytes

    def json(self):
        return json.loads(self.body.decode("utf-8"))

    @property
    def warning(self) -> Optional[str]:
        """The raw ``Warning`` header, if the server sent one."""
        return self.headers.get("warning")

    @property
    def degraded(self) -> bool:
        """Was this a stale-while-revalidate answer?  True when the
        server stamped ``Warning: 110`` (Response is Stale) — or, for
        transports that drop the header, when the JSON body carries
        ``degraded: true``.  Callers used to have to re-parse the body
        to notice; the daemon's whole point of stamping the header is
        that clients *surface* staleness, not swallow it."""
        if self.warning is not None and self.warning.startswith("110"):
            return True
        try:
            payload = self.json()
        except ValueError:
            return False
        return isinstance(payload, dict) and payload.get("degraded") is True

    @property
    def stale_iterations(self) -> Optional[int]:
        """How stale the degraded answer is: the iteration count of the
        nearest cached series the server substituted (``None`` on a
        fresh answer or an unparseable body)."""
        try:
            payload = self.json()
        except ValueError:
            return None
        if not isinstance(payload, dict):
            return None
        cache = payload.get("cache")
        if not isinstance(cache, dict):
            return None
        value = cache.get("stale_iterations")
        return value if isinstance(value, int) else None


class ServeClient:
    """One keep-alive connection to a running daemon."""

    def __init__(
        self,
        host: str,
        port: int,
        retry: Optional[ClientRetryPolicy] = None,
        sleep=None,
    ) -> None:
        self.host = host
        self.port = port
        self.retry = retry
        #: injectable for tests; the default genuinely waits
        self._sleep = sleep if sleep is not None else asyncio.sleep
        #: every delay the retry policy actually imposed, in order
        self.retry_delays: List[float] = []
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def close(self) -> None:
        if self._writer is not None and not self._writer.is_closing():
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = self._writer = None

    async def request(
        self,
        method: str,
        path: str,
        payload=None,
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> ClientResponse:
        """Send one request; with a retry policy attached, back off and
        re-send on 429/503 (honoring ``Retry-After``), fail fast on any
        other 4xx by returning it untouched."""
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        attempt = 1
        while True:
            response = await self._send_once(method, path, body, headers)
            if self.retry is None or not self.retry.should_retry(
                response.status, attempt
            ):
                return response
            delay = self.retry.delay_s(
                attempt,
                (method, path),
                _parse_retry_after(response.headers.get("retry-after")),
            )
            self.retry_delays.append(delay)
            await self._sleep(delay)
            attempt += 1

    async def _send_once(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: Tuple[Tuple[str, str], ...],
    ) -> ClientResponse:
        """One wire exchange, reconnecting once if the kept-alive
        connection went stale under us."""
        for attempt in (0, 1):
            await self._connect()
            try:
                return await self._roundtrip(method, path, body, headers)
            except (ConnectionError, asyncio.IncompleteReadError):
                await self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    async def _roundtrip(
        self,
        method: str,
        path: str,
        body: bytes,
        extra_headers: Tuple[Tuple[str, str], ...],
    ) -> ClientResponse:
        assert self._reader is not None and self._writer is not None
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            f"Content-Length: {len(body)}",
        ]
        if body:
            lines.append("Content-Type: application/json")
        lines.extend(f"{name}: {value}" for name, value in extra_headers)
        head = "\r\n".join(lines) + "\r\n\r\n"
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()

        raw = await self._reader.readuntil(b"\r\n\r\n")
        text = raw.decode("latin-1")
        status_line, _, header_block = text.partition("\r\n")
        status = int(status_line.split(" ")[1])
        headers: Dict[str, str] = {}
        for line in header_block.split("\r\n"):
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        payload = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return ClientResponse(status=status, headers=headers, body=payload)

    async def get(self, path: str, **kwargs) -> ClientResponse:
        return await self.request("GET", path, **kwargs)

    async def post(self, path: str, payload, **kwargs) -> ClientResponse:
        return await self.request("POST", path, payload=payload, **kwargs)


async def fetch_json(host: str, port: int, method: str, path: str, payload=None):
    """One-shot convenience: connect, request, decode, disconnect."""
    client = ServeClient(host, port)
    try:
        response = await client.request(method, path, payload=payload)
        return response.status, response.json()
    finally:
        await client.close()
