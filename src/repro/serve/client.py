"""A minimal async HTTP client for the serving daemon.

Tests, the latency benchmark, and the CI smoke job all need to talk to
``gpu-blob serve`` without adding dependencies; this module is the
client-side twin of :mod:`repro.serve.httpd` — one connection, HTTP/1.1
with Content-Length framing, keep-alive reuse, JSON bodies.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["ClientResponse", "ServeClient", "fetch_json"]


@dataclass
class ClientResponse:
    """One response as seen by the client."""

    status: int
    headers: Dict[str, str]
    body: bytes

    def json(self):
        return json.loads(self.body.decode("utf-8"))


class ServeClient:
    """One keep-alive connection to a running daemon."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def close(self) -> None:
        if self._writer is not None and not self._writer.is_closing():
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = self._writer = None

    async def request(
        self,
        method: str,
        path: str,
        payload=None,
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> ClientResponse:
        """Send one request, reconnecting once if the kept-alive
        connection went stale under us."""
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        for attempt in (0, 1):
            await self._connect()
            try:
                return await self._roundtrip(method, path, body, headers)
            except (ConnectionError, asyncio.IncompleteReadError):
                await self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    async def _roundtrip(
        self,
        method: str,
        path: str,
        body: bytes,
        extra_headers: Tuple[Tuple[str, str], ...],
    ) -> ClientResponse:
        assert self._reader is not None and self._writer is not None
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            f"Content-Length: {len(body)}",
        ]
        if body:
            lines.append("Content-Type: application/json")
        lines.extend(f"{name}: {value}" for name, value in extra_headers)
        head = "\r\n".join(lines) + "\r\n\r\n"
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()

        raw = await self._reader.readuntil(b"\r\n\r\n")
        text = raw.decode("latin-1")
        status_line, _, header_block = text.partition("\r\n")
        status = int(status_line.split(" ")[1])
        headers: Dict[str, str] = {}
        for line in header_block.split("\r\n"):
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        payload = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return ClientResponse(status=status, headers=headers, body=payload)

    async def get(self, path: str, **kwargs) -> ClientResponse:
        return await self.request("GET", path, **kwargs)

    async def post(self, path: str, payload, **kwargs) -> ClientResponse:
        return await self.request("POST", path, payload=payload, **kwargs)


async def fetch_json(host: str, port: int, method: str, path: str, payload=None):
    """One-shot convenience: connect, request, decode, disconnect."""
    client = ServeClient(host, port)
    try:
        response = await client.request(method, path, payload=payload)
        return response.status, response.json()
    finally:
        await client.close()
