"""Sparse SpMV extension — deferred.

The paper's final future-work item (sparse BLAS support) is planned but
not yet restored in this subsystem rebuild.  The public names are
importable so that benchmark modules collect, but constructing a model
or calling a kernel raises :class:`~repro.errors.DeferredFeatureError`.

Planned surface (see DESIGN.md X4): CSR/COO/ELL formats with conversion,
three real SpMV kernels cross-validated by checksum, and a
``SparseNodeModel`` giving size- and re-use offload thresholds by
density and structure (``BANDED`` vs ``RANDOM`` patterns).
"""

from __future__ import annotations

from ..errors import DeferredFeatureError

__all__ = [
    "BANDED",
    "RANDOM",
    "SparseNodeModel",
    "SpmvProblem",
    "banded_csr",
    "make_spmv_operands",
    "random_csr",
    "spmv_coo",
    "spmv_csr",
    "spmv_ell",
]

_MESSAGE = "the sparse SpMV extension (DESIGN.md item X4)"

#: Structure-pattern sentinels for threshold queries (importable today;
#: only meaningful once the extension lands).
BANDED = "banded"
RANDOM = "random"


class SparseNodeModel:
    def __init__(self, *args, **kwargs):
        raise DeferredFeatureError(_MESSAGE)


class SpmvProblem:
    def __init__(self, *args, **kwargs):
        raise DeferredFeatureError(_MESSAGE)


def banded_csr(*args, **kwargs):
    raise DeferredFeatureError(_MESSAGE)


def random_csr(*args, **kwargs):
    raise DeferredFeatureError(_MESSAGE)


def make_spmv_operands(*args, **kwargs):
    raise DeferredFeatureError(_MESSAGE)


def spmv_csr(*args, **kwargs):
    raise DeferredFeatureError(_MESSAGE)


def spmv_coo(*args, **kwargs):
    raise DeferredFeatureError(_MESSAGE)


def spmv_ell(*args, **kwargs):
    raise DeferredFeatureError(_MESSAGE)
