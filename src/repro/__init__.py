"""GPU-BLOB reproduction engine.

Analytic reproduction of "Assessing the GPU Offload Threshold of GEMM
and GEMV Kernels on Modern Heterogeneous HPC Systems" (Wilkinson et al.,
PMBS @ SC 2024).  The package models three heterogeneous nodes (DAWN,
LUMI-G, Isambard-AI) in closed form, sweeps BLAS problem shapes over
CPU and GPU under the paper's three transfer paradigms, and extracts the
GPU offload threshold from the resulting curves.

Typical use::

    from repro import AnalyticBackend, RunConfig, make_model, run_sweep

    backend = AnalyticBackend(make_model("isambard-ai"))
    result = run_sweep(backend, RunConfig(max_dim=1024, iterations=8))
    print(result.thresholds())
"""

from __future__ import annotations

from .backends import backend_names, make_backend
from .backends.des import DESBackend, DesBackend
from .backends.host import CombinedBackend, HostCpuBackend
from .backends.simulated import AnalyticBackend
from .core.config import RunConfig
from .core.fsck import Finding, fsck_paths
from .core.invariants import InvariantContext, check_samples, validate_spec
from .core.records import PerfSample, ProblemSeries, QuarantineEntry
from .core.runner import RetryPolicy, RunResult, SweepStats, run_sweep
from .core.sweepcache import prune_cache
from .core.campaign import (
    CampaignResult,
    CampaignSpec,
    Scenario,
    expand_scenarios,
    load_campaign,
    run_campaign,
)
from .errors import (
    CacheIntegrityWarning,
    CampaignDriftError,
    CheckpointError,
    ConfigError,
    IntegrityError,
    ModelInvariantError,
    ModelInvariantWarning,
    PartialSweepWarning,
    ReproError,
    SweepFaultError,
)
from .core.threshold import (
    ThresholdResult,
    find_offload_threshold,
    threshold_for_series,
)
from .faults import FaultInjector, FaultKind, FaultPlan
from .systems.catalog import (
    get_system,
    make_model,
    register_system,
    resolve_system,
    system_names,
)
from .systems.specio import dumps_spec, load_spec, loads_spec, write_spec
from .systems.specs import (
    CpuSocketSpec,
    GpuSpec,
    LinkSpec,
    MatrixEngineSpec,
    SystemSpec,
    UsmSpec,
)
from .types import (
    ALL_PRECISIONS,
    PAPER_ITERATION_COUNTS,
    DeviceKind,
    Dims,
    Kernel,
    Precision,
    TransferType,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_PRECISIONS",
    "AnalyticBackend",
    "CacheIntegrityWarning",
    "CampaignDriftError",
    "CampaignResult",
    "CampaignSpec",
    "CheckpointError",
    "CombinedBackend",
    "ConfigError",
    "CpuSocketSpec",
    "DESBackend",
    "DesBackend",
    "DeviceKind",
    "Dims",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "Finding",
    "GpuSpec",
    "HostCpuBackend",
    "IntegrityError",
    "InvariantContext",
    "Kernel",
    "LinkSpec",
    "MatrixEngineSpec",
    "ModelInvariantError",
    "ModelInvariantWarning",
    "PAPER_ITERATION_COUNTS",
    "PartialSweepWarning",
    "PerfSample",
    "Precision",
    "ProblemSeries",
    "QuarantineEntry",
    "ReproError",
    "RetryPolicy",
    "RunConfig",
    "RunResult",
    "Scenario",
    "SweepFaultError",
    "SweepStats",
    "SystemSpec",
    "ThresholdResult",
    "TransferType",
    "UsmSpec",
    "backend_names",
    "check_samples",
    "dumps_spec",
    "expand_scenarios",
    "find_offload_threshold",
    "fsck_paths",
    "get_system",
    "load_campaign",
    "load_spec",
    "loads_spec",
    "make_backend",
    "make_model",
    "prune_cache",
    "register_system",
    "resolve_system",
    "run_campaign",
    "run_sweep",
    "system_names",
    "threshold_for_series",
    "validate_spec",
    "write_spec",
]
