"""Real execution on the host CPU, plus the combined real+simulated mode.

``HostCpuBackend`` times the NumPy reference kernels with a wall clock —
the same code path GPU-BLOB takes on a CPU-only partition — and verifies
each run's output checksum against an independent float64 evaluation.
``CombinedBackend`` pairs any CPU backend with any GPU backend so a real
host CPU can be swept against a simulated accelerator.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..blas import numpy_backend
from ..core.checksum import checksum, checksums_match
from ..core.records import PerfSample
from ..types import DeviceKind, Dims, Precision
from .base import Backend

__all__ = ["CombinedBackend", "HostCpuBackend"]


class HostCpuBackend(Backend):
    """Times ``repro.blas.numpy_backend`` kernels on this machine."""

    gpu_transfers = ()

    def __init__(self, validate: bool = True) -> None:
        self.validate = validate

    def cpu_sample(self, kernel, dims: Dims, precision: Precision,
                   iterations: int, alpha: float = 1.0,
                   beta: float = 0.0) -> PerfSample:
        dtype = precision.np_dtype
        if dims.is_gemm:
            m, n, k = dims.m, dims.n, dims.k
            a, b, c = numpy_backend.make_operands_gemm(m, n, k, dtype)
            start = time.perf_counter()
            for _ in range(iterations):
                numpy_backend.gemm(m, n, k, alpha, a, m, b, k, beta, c, m)
            seconds = time.perf_counter() - start
            ok = self._check_gemm(dims, alpha, beta, c) if self.validate else None
        else:
            m, n = dims.m, dims.n
            a, x, y = numpy_backend.make_operands_gemv(m, n, dtype)
            start = time.perf_counter()
            for _ in range(iterations):
                numpy_backend.gemv(m, n, alpha, a, m, x, 1, beta, y, 1)
            seconds = time.perf_counter() - start
            ok = self._check_gemv(dims, alpha, beta, y) if self.validate else None
        return PerfSample.from_seconds(
            DeviceKind.CPU, None, dims, iterations, seconds,
            checksum_ok=ok, beta=beta)

    # -- independent float64 verification -----------------------------
    def _check_gemm(self, dims: Dims, alpha, beta, c) -> bool:
        m, n, k = dims.m, dims.n, dims.k
        a64, b64, c64 = numpy_backend.make_operands_gemm(m, n, k, np.float64)
        # beta-accumulation repeated over iterations is chaotic to track;
        # beta == 0 overwrites C every call, so one reference call suffices.
        if beta == 0.0:
            numpy_backend.gemm(m, n, k, alpha, a64, m, b64, k, 0.0, c64, m)
            return checksums_match(checksum(c), checksum(c64))
        return bool(np.isfinite(c).all())

    def _check_gemv(self, dims: Dims, alpha, beta, y) -> bool:
        m, n = dims.m, dims.n
        a64, x64, y64 = numpy_backend.make_operands_gemv(m, n, np.float64)
        if beta == 0.0:
            numpy_backend.gemv(m, n, alpha, a64, m, x64, 1, 0.0, y64, 1)
            return checksums_match(checksum(y), checksum(y64))
        return bool(np.isfinite(y).all())


class CombinedBackend(Backend):
    """CPU samples from one backend, GPU samples from another."""

    def __init__(self, cpu_backend: Backend, gpu_backend: Backend) -> None:
        self.cpu_backend = cpu_backend
        self.gpu_backend = gpu_backend
        self.gpu_transfers = tuple(gpu_backend.gpu_transfers)

    def cpu_sample(self, kernel, dims, precision, iterations,
                   alpha=1.0, beta=0.0) -> PerfSample:
        return self.cpu_backend.cpu_sample(
            kernel, dims, precision, iterations, alpha, beta)

    def gpu_sample(self, kernel, dims, precision, iterations, transfer,
                   alpha=1.0, beta=0.0) -> Optional[PerfSample]:
        return self.gpu_backend.gpu_sample(
            kernel, dims, precision, iterations, transfer, alpha, beta)
