"""Discrete-event-simulation backend.

Where :class:`~repro.backends.simulated.AnalyticBackend` sums closed
forms, this backend *replays* every measurement as the explicit command
sequence GPU-BLOB issues — upload commands on the H2D DMA engine, kernel
launches on the compute engine, fault-batch migrations for unified
memory, downloads on the D2H engine — through
:class:`~repro.sim.engine.EventEngine`.  Both paths price individual
commands from the same calibrated :class:`~repro.sim.perfmodel.NodePerfModel`
curves, so on the single-stream schedules the runner issues they must
agree; the AB1 ablation (`bench_ablation_des.py`) asserts that they do
and measures the simulation-speed cost of event replay.

By default the USM path uses fractional page accounting
(``usm_page_granular=False``) so agreement with the closed form is exact
and the ablation isolates *scheduling*.  Set ``usm_page_granular=True``
to quantize migrations to whole pages and whole fault batches — the
driver-realistic mode, which converges to the closed form as the working
set grows (asserted in ``tests/test_usm_pages.py``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.flops import d2h_bytes, h2d_bytes
from ..core.records import PerfSample
from ..sim.engine import EventEngine
from ..sim.perfmodel import NodePerfModel
from ..sim.pipeline import always_iteration_costs
from ..sim.usm import PageTable
from ..types import DeviceKind, Dims, Precision, TransferType
from .base import Backend, model_cache_token

__all__ = ["DESBackend", "DesBackend"]

#: Resource names of the simulated node's engines.
CPU, COMPUTE, H2D, D2H = "cpu", "gpu", "dma-h2d", "dma-d2h"


class DesBackend(Backend):
    """Times problems by replaying command schedules on the DES."""

    def __init__(
        self,
        model: NodePerfModel,
        *,
        usm_page_granular: bool = False,
        max_fault_events: int = 64,
        keep_traces: bool = False,
    ) -> None:
        self.model = model
        self.usm_page_granular = usm_page_granular
        self.max_fault_events = max_fault_events
        self.gpu_transfers = tuple(TransferType) if model.has_gpu else ()
        #: ``(dims, precision, transfer, trace)`` per sample when enabled.
        self.traces: List[Tuple[Dims, Precision, Optional[TransferType], list]] = []
        self._keep_traces = keep_traces

    @property
    def system_name(self) -> str:
        return self.model.spec.name

    @property
    def cache_token(self) -> str:
        return (
            f"des:pages={self.usm_page_granular}:"
            f"events={self.max_fault_events}:{model_cache_token(self.model)}"
        )

    # -- schedule builders --------------------------------------------
    def _build_once(self, engine, dims, precision, iterations, alpha, beta):
        up = engine.submit(
            "h2d",
            self.model.h2d_time(dims, precision),
            queue=H2D,
            resource=H2D,
            label="h2d[A,B,C]",
        )
        kern = self.model.gpu.kernel_time(dims, precision, alpha, beta)
        last = up
        for i in range(iterations):
            deps = (last,) if i == 0 else ()
            last = engine.submit(
                "kernel", kern, queue=COMPUTE, resource=COMPUTE, deps=deps,
                label=f"kernel[{i}]",
            )
        engine.submit(
            "d2h",
            self.model.d2h_time(dims, precision),
            queue=D2H,
            resource=D2H,
            deps=(last,),
            label="d2h[C]",
        )

    def _build_always(self, engine, dims, precision, iterations, alpha, beta):
        h2d, kern, d2h = always_iteration_costs(
            self.model, dims, precision, alpha, beta
        )
        for i in range(iterations):
            engine.submit(
                "h2d", h2d, queue="stream0", resource=H2D, label=f"h2d[{i}]"
            )
            engine.submit(
                "kernel", kern, queue="stream0", resource=COMPUTE,
                label=f"kernel[{i}]",
            )
            engine.submit(
                "d2h", d2h, queue="stream0", resource=D2H, label=f"d2h[{i}]"
            )

    def _submit_migration(self, engine, plan, kind, deps=()):
        """Spread one migration plan over up to ``max_fault_events``
        DMA commands whose durations sum to the plan's total."""
        events = max(1, min(int(plan.batches) or 1, self.max_fault_events))
        slice_s = (plan.fault_s + plan.copy_s) / events
        last = engine.submit(
            kind, plan.latency_s + slice_s, queue=H2D, resource=H2D,
            deps=deps, label=f"{kind}[0/{events}]",
        )
        for i in range(1, events):
            last = engine.submit(
                kind, slice_s, queue=H2D, resource=H2D,
                label=f"{kind}[{i}/{events}]",
            )
        return last

    def _build_unified(self, engine, dims, precision, iterations, alpha, beta):
        pages = PageTable(
            self.model.spec.usm,
            self.model.spec.link,
            quantize=self.usm_page_granular,
        )
        up = h2d_bytes(dims, precision)
        down = d2h_bytes(dims, precision)
        kern = self.model.gpu.kernel_time(dims, precision, alpha, beta)
        last = self._submit_migration(engine, pages.fault_in(up), "fault")
        for i in range(iterations):
            refresh = pages.refresh(up)
            last = engine.submit(
                "refresh", refresh.seconds, queue=H2D, resource=H2D,
                deps=(last,), label=f"refresh[{i}]",
            )
            last = engine.submit(
                "kernel", kern, queue=COMPUTE, resource=COMPUTE,
                deps=(last,), label=f"kernel[{i}]",
            )
        writeback = pages.writeback(down)
        engine.submit(
            "writeback", writeback.seconds, queue=D2H, resource=D2H,
            deps=(last,), label="writeback[C]",
        )

    # -- Backend interface --------------------------------------------
    def cpu_sample(
        self, kernel, dims, precision, iterations, alpha=1.0, beta=0.0
    ) -> PerfSample:
        per_iter = (
            self.model.cpu_time(dims, precision, iterations, alpha=alpha, beta=beta)
            / iterations
        )
        engine = EventEngine()
        for i in range(iterations):
            engine.submit("host", per_iter, queue=CPU, resource=CPU,
                          label=f"host[{i}]")
        seconds = engine.run()
        self._record(engine, dims, precision, None)
        return PerfSample.from_seconds(
            DeviceKind.CPU, None, dims, iterations, seconds,
            checksum_ok=True, beta=beta,
        )

    def gpu_sample(
        self, kernel, dims, precision, iterations, transfer, alpha=1.0, beta=0.0
    ) -> Optional[PerfSample]:
        if not self.model.has_gpu:
            return None
        engine = EventEngine()
        if transfer is TransferType.ONCE:
            self._build_once(engine, dims, precision, iterations, alpha, beta)
        elif transfer is TransferType.ALWAYS:
            self._build_always(engine, dims, precision, iterations, alpha, beta)
        else:
            self._build_unified(engine, dims, precision, iterations, alpha, beta)
        seconds = engine.run()
        # Same deterministic-noise key the closed-form path uses, so the
        # two backends stay comparable under a noisy model too.
        seconds *= self.model.noise.factor(
            ("gpu", transfer.value, dims.as_tuple(), precision.value, iterations)
        )
        self._record(engine, dims, precision, transfer)
        return PerfSample.from_seconds(
            DeviceKind.GPU, transfer, dims, iterations, seconds,
            checksum_ok=True, beta=beta,
        )

    def _record(self, engine, dims, precision, transfer) -> None:
        if self._keep_traces:
            self.traces.append((dims, precision, transfer, list(engine.trace)))


#: Preferred public spelling.
DESBackend = DesBackend
