"""Analytic backend: samples come from the closed-form performance model.

This is the default backend of the repro engine — it evaluates
:class:`repro.sim.perfmodel.NodePerfModel` instead of running kernels,
so full paper-scale sweeps finish in seconds on any machine.
"""

from __future__ import annotations

from typing import Optional

from ..core.records import PerfSample
from ..sim.perfmodel import NodePerfModel
from ..types import DeviceKind, TransferType
from .base import Backend
from .des import DESBackend, DesBackend

__all__ = ["AnalyticBackend", "DESBackend", "DesBackend"]


class AnalyticBackend(Backend):
    """Evaluates the analytic node model; checksums are vacuously OK."""

    def __init__(self, model: NodePerfModel) -> None:
        self.model = model
        self.gpu_transfers = (
            tuple(TransferType) if model.has_gpu else ()
        )

    @property
    def system_name(self) -> str:
        return self.model.spec.name

    def cpu_sample(self, kernel, dims, precision, iterations,
                   alpha=1.0, beta=0.0) -> PerfSample:
        seconds = self.model.cpu_time(
            dims, precision, iterations, alpha=alpha, beta=beta)
        return PerfSample.from_seconds(
            DeviceKind.CPU, None, dims, iterations, seconds,
            checksum_ok=True, beta=beta)

    def gpu_sample(self, kernel, dims, precision, iterations, transfer,
                   alpha=1.0, beta=0.0) -> Optional[PerfSample]:
        if not self.model.has_gpu:
            return None
        seconds = self.model.gpu_time(
            dims, precision, iterations, transfer, alpha=alpha, beta=beta)
        return PerfSample.from_seconds(
            DeviceKind.GPU, transfer, dims, iterations, seconds,
            checksum_ok=True, beta=beta)
