"""Analytic backend: samples come from the closed-form performance model.

This is the default backend of the repro engine — it evaluates
:class:`repro.sim.perfmodel.NodePerfModel` instead of running kernels,
so full paper-scale sweeps finish in seconds on any machine.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.records import PerfSample
from ..sim.perfmodel import NodePerfModel
from ..types import DeviceKind, Dims, TransferType
from .base import Backend, model_cache_token
from .des import DESBackend, DesBackend

__all__ = ["AnalyticBackend", "DESBackend", "DesBackend"]


class AnalyticBackend(Backend):
    """Evaluates the analytic node model; checksums are vacuously OK."""

    def __init__(self, model: NodePerfModel) -> None:
        self.model = model
        self.gpu_transfers = (
            tuple(TransferType) if model.has_gpu else ()
        )

    @property
    def system_name(self) -> str:
        return self.model.spec.name

    @property
    def cache_token(self) -> str:
        return f"analytic:{model_cache_token(self.model)}"

    def cpu_sample(self, kernel, dims, precision, iterations,
                   alpha=1.0, beta=0.0) -> PerfSample:
        seconds = self.model.cpu_time(
            dims, precision, iterations, alpha=alpha, beta=beta)
        return PerfSample.from_seconds(
            DeviceKind.CPU, None, dims, iterations, seconds,
            checksum_ok=True, beta=beta)

    def gpu_sample(self, kernel, dims, precision, iterations, transfer,
                   alpha=1.0, beta=0.0) -> Optional[PerfSample]:
        if not self.model.has_gpu:
            return None
        seconds = self.model.gpu_time(
            dims, precision, iterations, transfer, alpha=alpha, beta=beta)
        return PerfSample.from_seconds(
            DeviceKind.GPU, transfer, dims, iterations, seconds,
            checksum_ok=True, beta=beta)

    # -- vectorized fast path -----------------------------------------
    #
    # One closed-form evaluation over a whole same-kernel batch of
    # dims.  Each returned sample is bit-identical to what the scalar
    # method produces for that cell, so the runner can switch paths
    # freely without perturbing goldens.

    def cpu_sample_batch(
        self, kernel, dims_list: Sequence[Dims], precision, iterations,
        alpha=1.0, beta=0.0,
    ) -> List[PerfSample]:
        seconds = self.model.cpu_time_batch(
            dims_list, precision, iterations, alpha=alpha, beta=beta)
        return _build_samples(
            DeviceKind.CPU, None, kernel, dims_list, iterations, seconds,
            beta,
        )

    def gpu_sample_batch(
        self, kernel, dims_list: Sequence[Dims], precision, iterations,
        transfer, alpha=1.0, beta=0.0,
    ) -> Optional[List[PerfSample]]:
        if not self.model.has_gpu:
            return None
        seconds = self.model.gpu_time_batch(
            dims_list, precision, iterations, transfer, alpha=alpha, beta=beta)
        return _build_samples(
            DeviceKind.GPU, transfer, kernel, dims_list, iterations, seconds,
            beta,
        )


def _build_samples(
    device, transfer, kernel, dims_list, iterations, seconds, beta,
) -> List[PerfSample]:
    """Batch twin of :meth:`PerfSample.from_seconds`: the GFLOP/s rates
    vectorize (flop counts and the iterations product stay < 2**53, so
    the float64 division matches the scalar arithmetic bit-for-bit)."""
    import numpy as np

    from ..core.flops import flops_for_batch

    count = len(dims_list)
    m = np.fromiter((d.m for d in dims_list), dtype=np.int64, count=count)
    n = np.fromiter((d.n for d in dims_list), dtype=np.int64, count=count)
    k = np.fromiter((d.k for d in dims_list), dtype=np.int64, count=count)
    flops = flops_for_batch(kernel, m, n, k, beta)
    with np.errstate(divide="ignore"):
        gflops = np.where(
            seconds > 0, iterations * flops / seconds / 1e9, 0.0
        )
    return [
        PerfSample(device, transfer, dims, iterations, float(s), float(g),
                   True)
        for dims, s, g in zip(dims_list, seconds, gflops)
    ]
