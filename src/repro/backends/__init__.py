"""Measurement backends: analytic simulation and real host execution."""

from .base import Backend, PerfSample
from .host import CombinedBackend, HostCpuBackend
from .simulated import AnalyticBackend, DesBackend

__all__ = [
    "AnalyticBackend",
    "Backend",
    "CombinedBackend",
    "DesBackend",
    "HostCpuBackend",
    "PerfSample",
]
