"""Measurement backends: analytic model, discrete-event replay, real host.

Every backend implements the same :class:`~repro.backends.base.Backend`
interface, so the sweep runner, threshold detector and CSV writers are
backend-agnostic.  The registry below is what `repro.cli --backend` and
``run_sweep("des", ...)`` resolve names through.
"""

from __future__ import annotations

from ..errors import ConfigError
from .base import Backend, PerfSample
from .des import DESBackend, DesBackend
from .host import CombinedBackend, HostCpuBackend
from .simulated import AnalyticBackend

__all__ = [
    "AnalyticBackend",
    "Backend",
    "CombinedBackend",
    "DESBackend",
    "DesBackend",
    "HostCpuBackend",
    "PerfSample",
    "backend_names",
    "make_backend",
]

#: Model-driven backends (need a NodePerfModel) by registry name.
_MODEL_BACKENDS = {
    "analytic": AnalyticBackend,
    "des": DesBackend,
}


def backend_names() -> tuple:
    """Every name :func:`make_backend` accepts."""
    return tuple(sorted(_MODEL_BACKENDS)) + ("host",)


def make_backend(name: str, model=None, *, system=None, **kwargs) -> Backend:
    """Build a backend by registry name.

    ``analytic`` and ``des`` need a performance model — pass one as
    ``model``, or a catalog ``system`` name to build it from; ``host``
    runs real NumPy kernels on this machine and takes neither.
    """
    if name == "host":
        return HostCpuBackend(**kwargs)
    cls = _MODEL_BACKENDS.get(name)
    if cls is None:
        known = ", ".join(backend_names())
        raise ConfigError(f"unknown backend {name!r}; known backends: {known}")
    if model is None:
        if system is None:
            raise ConfigError(
                f"backend {name!r} needs a model: pass model=... or system=..."
            )
        from ..systems.catalog import make_model

        model = make_model(system)
    return cls(model, **kwargs)
