"""Backend interface: anything that can time a BLAS problem.

A backend produces one :class:`~repro.core.records.PerfSample` per
(device, problem, iteration-count) query.  The analytic backend asks the
performance model; the host backend runs the kernel for real.  The sweep
runner (``repro.core.runner``) is backend-agnostic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from ..core.records import PerfSample
from ..types import Dims, Precision, TransferType

__all__ = ["Backend", "PerfSample", "model_cache_token"]


def model_cache_token(model) -> str:
    """Deterministic description of a :class:`NodePerfModel`'s full
    parameterization (specs, libraries, thread cap, noise) for the
    content-addressed sweep cache.  Frozen-dataclass reprs are stable
    and value-based, so two models built the same way tokenize the
    same."""
    return repr((
        model.spec,
        model.cpu.library,
        model.cpu.max_threads,
        model.gpu.library if model.gpu is not None else None,
        model.noise,
    ))


class Backend(ABC):
    """Times problems on a CPU and, optionally, on a GPU."""

    #: transfer types this backend can measure; empty means CPU-only
    gpu_transfers: tuple = ()

    #: content-addressed sweep-cache identity; ``None`` (the default)
    #: marks the backend uncacheable (e.g. real host measurements)
    @property
    def cache_token(self):
        return None

    @property
    def has_gpu(self) -> bool:
        return bool(self.gpu_transfers)

    @abstractmethod
    def cpu_sample(
        self,
        kernel,
        dims: Dims,
        precision: Precision,
        iterations: int,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> PerfSample:
        """Run/estimate ``iterations`` kernel calls on the CPU."""

    def gpu_sample(
        self,
        kernel,
        dims: Dims,
        precision: Precision,
        iterations: int,
        transfer: TransferType,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> Optional[PerfSample]:
        """Run/estimate on the GPU under ``transfer``; None if unsupported."""
        return None
