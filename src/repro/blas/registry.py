"""Calibrated behaviour models of the BLAS libraries the paper used.

The paper's central observation is that the offload threshold is shaped
as much by *library heuristics* as by silicon: NVPL wakes every thread
for every call, AOCL refuses to parallelize GEMV, oneMKL falls off a
cliff at {629, 629, 629}, rocBLAS carries a large GEMV launch cost.
Each library model therefore carries the handful of constants the
CPU/GPU timing models need, calibrated against the artifact's CSVs.

Threading models
----------------
* ``"always-max"`` — every call synchronizes every thread (NVPL).
* ``"scale-with-size"`` — threads engage with problem size: the engaged
  count is ``ceil(flops / grain_flops)`` capped at the configured
  maximum (oneMKL, ArmPL, AOCL, OpenBLAS).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..errors import UnknownLibraryError

__all__ = [
    "AOCL",
    "ARMPL",
    "CPU_LIBRARIES",
    "CUBLAS",
    "CpuLibraryModel",
    "GPU_LIBRARIES",
    "GpuLibraryModel",
    "NVPL",
    "ONEMKL",
    "ONEMKL_GPU",
    "ONEMKL_GPU_IMPLICIT",
    "OPENBLAS",
    "ROCBLAS",
    "get_cpu_library",
    "get_gpu_library",
]


@dataclass(frozen=True)
class CpuLibraryModel:
    """Constants describing how a CPU BLAS library behaves.

    ``out_half``/``k_half`` parameterize the saturating shape-efficiency
    factors ``min(m,n)/(min(m,n)+out_half)`` and ``k/(k+k_half)``;
    ``ramp_flops`` is the per-thread work at which parallel efficiency
    reaches 50% with every thread engaged; ``eff_floor`` bounds that
    efficiency from below (small calls are slow, not infinitely slow).
    """

    name: str
    threading: str = "scale-with-size"  # or "always-max"
    overhead_s: float = 1.0e-6
    sync_per_thread_s: float = 20.0e-9
    grain_flops: float = 24.0e3
    ramp_flops: float = 260.0e3
    eff_floor: float = 0.005
    gemm_eff: float = 1.0
    out_half: float = 40.0
    k_half: float = 200.0
    k_aspect_half: float = 8.0  # k >> min(m, n) re-streams operand panels
    shape_floor: float = 0.0  # skinny GEMM degenerates to streaming, not to zero
    gemv_parallel: bool = True
    gemv_grain_rows: Optional[float] = None  # partition GEMV by longest dim
    gemv_fanout: bool = False  # pay sync for *all* threads on every GEMV
    gemv_overhead_s: float = 1.5e-6
    gemv_grain_bytes: float = 256.0e3
    batched_eff: float = 0.5
    batch_half: float = 0.0  # batch width at which the batched path ramps up
    quirks: Tuple[str, ...] = ()
    threads: Optional[int] = None  # explicit override of the thread count

    def with_threads(self, threads: int) -> "CpuLibraryModel":
        return replace(self, threads=threads)


@dataclass(frozen=True)
class GpuLibraryModel:
    """Constants for a GPU BLAS library + runtime pair.

    ``occ_ramp_flops`` parameterizes the occupancy ramp
    ``F / (F + occ_ramp_flops)`` — how much work a kernel needs before
    it fills the device.  ``gemv_row_half`` models GEMV row-parallelism:
    matrices with few rows cannot occupy the memory system
    (``m / (m + gemv_row_half)``).
    """

    name: str
    launch_s: float = 5.0e-6
    gemv_launch_s: float = 6.0e-6
    occ_ramp_flops: float = 300.0e6
    hbm_eff: float = 0.85
    gemv_bw_eff: float = 0.7
    gemv_row_half: float = 1000.0
    quirks: Tuple[str, ...] = ()


ONEMKL = CpuLibraryModel(
    name="onemkl",
    threading="scale-with-size",
    overhead_s=1.2e-6,
    sync_per_thread_s=20.0e-9,
    grain_flops=24.0e3,
    ramp_flops=260.0e3,
    eff_floor=0.002,
    gemm_eff=1.0,
    out_half=40.0,
    k_half=475.0,
    shape_floor=0.15,  # Table V: fixed-32 shapes stay bandwidth-bound, not dead
    gemv_parallel=True,
    gemv_overhead_s=1.4e-6,
    gemv_grain_bytes=2.0e6,
    gemv_grain_rows=256.0,  # oneMKL partitions along the longest extent
    batched_eff=0.55,
    quirks=("onemkl-sq629-cliff",),
)

NVPL = CpuLibraryModel(
    name="nvpl",
    threading="always-max",
    overhead_s=0.3e-6,
    sync_per_thread_s=45.0e-9,
    grain_flops=24.0e3,  # unused under always-max
    ramp_flops=1.5e6,
    eff_floor=0.01,
    gemm_eff=1.0,
    out_half=30.0,
    k_half=16.0,
    gemv_parallel=True,
    gemv_overhead_s=2.8e-6,
    gemv_grain_bytes=1.5e6,
    batched_eff=0.5,
    quirks=("nvpl-gemv-flatten",),
)

ARMPL = CpuLibraryModel(
    name="armpl",
    threading="scale-with-size",
    overhead_s=0.5e-6,
    sync_per_thread_s=45.0e-9,
    grain_flops=24.0e3,
    ramp_flops=300.0e3,
    eff_floor=0.008,
    gemm_eff=0.85,
    out_half=35.0,
    k_half=90.0,
    gemv_parallel=True,
    gemv_overhead_s=2.0e-6,
    gemv_grain_bytes=1.0e6,
    batched_eff=0.5,
)

AOCL = CpuLibraryModel(
    name="aocl",
    threading="scale-with-size",
    overhead_s=6.0e-6,
    sync_per_thread_s=25.0e-9,
    grain_flops=40.0e3,
    ramp_flops=500.0e3,
    eff_floor=0.005,
    gemm_eff=1.0,
    out_half=40.0,
    k_half=400.0,
    gemv_parallel=False,  # the Fig. 6 pathology: 0.89 CPUs used
    gemv_overhead_s=6.0e-6,
    gemv_grain_bytes=256.0e3,
    batched_eff=0.15,  # strided batch access defeats blis blocking
    batch_half=8.0,  # narrow batches cannot amortize the blis pack phase
)

OPENBLAS = CpuLibraryModel(
    name="openblas",
    threading="scale-with-size",
    overhead_s=1.5e-6,
    sync_per_thread_s=0.15e-6,
    grain_flops=32.0e3,
    ramp_flops=400.0e3,
    eff_floor=0.005,
    gemm_eff=0.9,
    out_half=40.0,
    k_half=200.0,
    gemv_parallel=True,
    gemv_fanout=True,  # 56 threads wake for every GEMV: poor small sizes
    gemv_overhead_s=1.5e-6,
    gemv_grain_bytes=128.0e3,
    batched_eff=0.45,
)

ONEMKL_GPU = GpuLibraryModel(
    name="onemkl-gpu",
    launch_s=10.0e-6,
    gemv_launch_s=10.0e-6,
    occ_ramp_flops=450.0e6,
    hbm_eff=0.85,
    gemv_bw_eff=0.37,
    gemv_row_half=30.0,
)

ONEMKL_GPU_IMPLICIT = GpuLibraryModel(
    name="onemkl-gpu-implicit",
    launch_s=12.0e-6,
    gemv_launch_s=12.0e-6,
    occ_ramp_flops=450.0e6,
    hbm_eff=0.85,
    gemv_bw_eff=0.37,
    gemv_row_half=30.0,
    quirks=("implicit-scaling",),
)

CUBLAS = GpuLibraryModel(
    name="cublas",
    launch_s=3.5e-6,
    gemv_launch_s=4.5e-6,
    occ_ramp_flops=10.0e6,
    hbm_eff=0.85,
    gemv_bw_eff=0.7,
    gemv_row_half=1000.0,
)

ROCBLAS = GpuLibraryModel(
    name="rocblas",
    launch_s=4.0e-6,
    gemv_launch_s=14.0e-6,  # large GEMV dispatch: pins Table VI on LUMI
    occ_ramp_flops=130.0e6,
    hbm_eff=0.8,
    gemv_bw_eff=1.0,
    gemv_row_half=9000.0,
    quirks=("rocblas-sgemm-k2560",),
)

CPU_LIBRARIES = {lib.name: lib for lib in (ONEMKL, NVPL, ARMPL, AOCL, OPENBLAS)}
GPU_LIBRARIES = {
    lib.name: lib for lib in (ONEMKL_GPU, ONEMKL_GPU_IMPLICIT, CUBLAS, ROCBLAS)
}


def get_cpu_library(name: str) -> CpuLibraryModel:
    try:
        return CPU_LIBRARIES[name]
    except KeyError:
        raise UnknownLibraryError(
            f"unknown CPU BLAS library {name!r}; known: {sorted(CPU_LIBRARIES)}"
        ) from None


def get_gpu_library(name: str) -> GpuLibraryModel:
    try:
        return GPU_LIBRARIES[name]
    except KeyError:
        raise UnknownLibraryError(
            f"unknown GPU BLAS library {name!r}; known: {sorted(GPU_LIBRARIES)}"
        ) from None
