"""BLAS layer: library behaviour models and real NumPy kernels."""

from .registry import (
    AOCL,
    ARMPL,
    CUBLAS,
    NVPL,
    ONEMKL,
    ONEMKL_GPU,
    OPENBLAS,
    ROCBLAS,
    CpuLibraryModel,
    GpuLibraryModel,
    get_cpu_library,
    get_gpu_library,
)

__all__ = [
    "AOCL",
    "ARMPL",
    "CUBLAS",
    "CpuLibraryModel",
    "GpuLibraryModel",
    "NVPL",
    "ONEMKL",
    "ONEMKL_GPU",
    "OPENBLAS",
    "ROCBLAS",
    "get_cpu_library",
    "get_gpu_library",
]
