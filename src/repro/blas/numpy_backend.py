"""Real BLAS-style kernels on NumPy, column-major flat buffers.

These implement the C BLAS calling convention GPU-BLOB uses (flat
column-major arrays + leading dimensions) so the host backend times a
genuine memory-layout-faithful execution, and implement the same
``beta == 0`` fast path the paper measured in Table I.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gemm",
    "gemv",
    "make_operands_gemm",
    "make_operands_gemv",
]

_SEED = 12345  # constant-seed init, as in the benchmark


def make_operands_gemm(m: int, n: int, k: int, dtype) -> tuple:
    """Flat column-major A (m x k), B (k x n), C (m x n)."""
    rng = np.random.default_rng(_SEED)
    a = rng.uniform(-1.0, 1.0, size=m * k).astype(dtype)
    b = rng.uniform(-1.0, 1.0, size=k * n).astype(dtype)
    c = np.zeros(m * n, dtype=dtype)
    return a, b, c


def make_operands_gemv(m: int, n: int, dtype) -> tuple:
    """Column-major A (m x n), x (n), y (m).

    ``A`` is returned as a Fortran-ordered 2-D array so callers can use
    it directly (``a @ x``) as well as pass it to :func:`gemv`.
    """
    rng = np.random.default_rng(_SEED)
    a = np.asfortranarray(
        rng.uniform(-1.0, 1.0, size=(m, n)).astype(dtype)
    )
    x = rng.uniform(-1.0, 1.0, size=n).astype(dtype)
    y = np.zeros(m, dtype=dtype)
    return a, x, y


def _col_major(flat, rows: int, cols: int, ld: int):
    """View a flat column-major buffer as a (rows x cols) matrix."""
    return flat.reshape(cols, ld)[:, :rows].T


def gemm(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc) -> None:
    """C = alpha * A @ B + beta * C (column-major, in place).

    ``beta == 0`` skips reading C entirely — the Table I fast path.
    """
    A = _col_major(a, m, k, lda)
    B = _col_major(b, k, n, ldb)
    C = _col_major(c, m, n, ldc)
    product = A @ B
    if alpha != 1.0:
        product *= alpha
    if beta == 0.0:
        C[:, :] = product
    else:
        C[:, :] = product + beta * C


def gemv(m, n, alpha, a, lda, x, incx, beta, y, incy) -> None:
    """y = alpha * A @ x + beta * y (column-major, in place).

    ``a`` may be a flat column-major buffer or an (m x n) 2-D array.
    """
    if incx != 1 or incy != 1:
        raise ValueError("only unit strides are supported")
    A = a[:m, :n] if a.ndim == 2 else _col_major(a, m, n, lda)
    product = A @ x[:n]
    if alpha != 1.0:
        product *= alpha
    if beta == 0.0:
        y[:m] = product
    else:
        y[:m] = product + beta * y[:m]
