"""A GotoBLAS-style blocked GEMM, independent of ``numpy_backend.gemm``.

Used by the validation harness as the second, independently-implemented
kernel of the paper's checksum cross-check.  Loops over (mc, nc, kc)
panels and accumulates in float64 regardless of operand precision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BlockingParams", "blocked_gemm"]


@dataclass(frozen=True)
class BlockingParams:
    mc: int = 64
    nc: int = 64
    kc: int = 64


def blocked_gemm(
    m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
    blocking: BlockingParams = BlockingParams(),
) -> None:
    """C = alpha * A @ B + beta * C over cache-sized panels."""
    A = a.reshape(k, lda)[:, :m].T.astype(np.float64)
    B = b.reshape(n, ldb)[:, :k].T.astype(np.float64)
    C = c.reshape(n, ldc)[:, :m].T
    acc = np.zeros((m, n), dtype=np.float64)
    for j0 in range(0, n, blocking.nc):
        j1 = min(j0 + blocking.nc, n)
        for p0 in range(0, k, blocking.kc):
            p1 = min(p0 + blocking.kc, k)
            for i0 in range(0, m, blocking.mc):
                i1 = min(i0 + blocking.mc, m)
                acc[i0:i1, j0:j1] += A[i0:i1, p0:p1] @ B[p0:p1, j0:j1]
    result = alpha * acc
    if beta != 0.0:
        result += beta * C.astype(np.float64)
    C[:, :] = result.astype(c.dtype)
