"""Seeded fault plans: *which* fault fires for *which* sample attempt.

The decision function follows the spirit of
:class:`repro.sim.noise.DeterministicNoise` — hash the sample key, map
to a unit float, fire when it falls below the kind's rate — but uses
BLAKE2b instead of CRC32: CRC is linear, so keys differing only in the
attempt counter produce strongly correlated draws, and a retried sample
would keep hitting the same fault.  With a cryptographic hash each
``(seed, kind, attempt, key)`` tuple is an independent draw, so retries
can genuinely succeed, while two runs with the same seed (or an
interrupted run and its resume) still see byte-identical fault
sequences.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping

from ..errors import ConfigError

__all__ = ["FaultKind", "FaultPlan", "NO_FAULTS"]


class FaultKind(Enum):
    """Everything the injector can do to one sample attempt."""

    #: transient kernel launch/execution failure → TransientKernelError
    KERNEL = "kernel"
    #: DMA transfer error on an explicit-copy GPU sample → TransferError
    TRANSFER = "transfer"
    #: sample hang: the simulated clock gains ``hang_s`` extra seconds
    HANG = "hang"
    #: ECC retry storm: the sample slows by ``ecc_slowdown``x
    ECC = "ecc"
    #: the GPU falls off the bus, permanently → DeviceLostError
    DEVICE_LOST = "device-lost"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic, seeded per-fault-kind firing rates.

    ``rates`` maps each :class:`FaultKind` to a probability in
    ``[0, 1)``; kinds absent from the mapping never fire.  ``hang_s``
    is the simulated wall-time a hung sample loses, ``ecc_slowdown``
    the multiplicative penalty of an ECC retry storm.
    """

    seed: int = 0
    rates: Mapping[FaultKind, float] = field(default_factory=dict)
    hang_s: float = 30.0
    ecc_slowdown: float = 1.35

    def __post_init__(self) -> None:
        for kind, rate in self.rates.items():
            if not isinstance(kind, FaultKind):
                raise ConfigError(f"rates keys must be FaultKind, got {kind!r}")
            if not 0.0 <= rate < 1.0:
                raise ConfigError(
                    f"fault rate for {kind.value!r} must be in [0, 1), got {rate}"
                )
        if self.hang_s <= 0.0:
            raise ConfigError(f"hang_s must be > 0, got {self.hang_s}")
        if self.ecc_slowdown < 1.0:
            raise ConfigError(
                f"ecc_slowdown must be >= 1, got {self.ecc_slowdown}"
            )

    @classmethod
    def uniform(
        cls,
        rate: float,
        *,
        seed: int = 0,
        device_lost_rate: float = 0.0,
        hang_s: float = 30.0,
        ecc_slowdown: float = 1.35,
    ) -> "FaultPlan":
        """One rate for every transient kind; device loss set separately
        (it is permanent, so it defaults to off)."""
        rates = {
            FaultKind.KERNEL: rate,
            FaultKind.TRANSFER: rate,
            FaultKind.HANG: rate,
            FaultKind.ECC: rate,
        }
        if device_lost_rate:
            rates[FaultKind.DEVICE_LOST] = device_lost_rate
        return cls(seed=seed, rates=rates, hang_s=hang_s,
                   ecc_slowdown=ecc_slowdown)

    @classmethod
    def chaos(cls, seed: int = 0) -> "FaultPlan":
        """The aggressive preset the chaos tests and CI smoke job use."""
        return cls.uniform(0.25, seed=seed, device_lost_rate=0.002)

    @property
    def enabled(self) -> bool:
        return any(rate > 0.0 for rate in self.rates.values())

    def fires(self, kind: FaultKind, key: tuple, attempt: int) -> bool:
        """Does ``kind`` fire for this (sample key, attempt) pair?"""
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0:
            return False
        return _unit((self.seed, kind.value, attempt) + tuple(key)) < rate


def _unit(key: tuple) -> float:
    """Deterministic hash of ``key`` to a unit float in [0, 1)."""
    digest = hashlib.blake2b(repr(key).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


#: The do-nothing plan (every rate zero).
NO_FAULTS = FaultPlan()
