"""Deterministic fault injection for sweep robustness testing.

Real sweeps on LUMI/DAWN/Isambard queues hit transient kernel launch
failures, DMA stalls, watchdog timeouts, ECC-retry slowdowns, and the
occasional mid-run device loss.  This package reproduces all of them
*deterministically*: a seeded :class:`FaultPlan` decides, per sample
key and attempt, which fault (if any) fires, and a
:class:`FaultInjector` wraps any :class:`~repro.backends.base.Backend`
— analytic, DES, or host — to act the plan out.  The same seed always
produces the same fault sequence, so chaos runs are replayable and the
resumable runner can be property-tested against them.

Checkpointing lives in :mod:`repro.faults.checkpoint`: an append-only
JSONL log of completed samples and quarantine decisions that
:func:`repro.core.runner.run_sweep` replays on ``resume=True``.
"""

from __future__ import annotations

from .checkpoint import (
    CheckpointReader,
    CheckpointWriter,
    sample_key,
)
from .injector import FaultInjector
from .plan import NO_FAULTS, FaultKind, FaultPlan
from .servechaos import ServeChaosKind, ServeChaosPlan

__all__ = [
    "CheckpointReader",
    "CheckpointWriter",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "NO_FAULTS",
    "ServeChaosKind",
    "ServeChaosPlan",
    "sample_key",
]
