"""Append-only JSONL sweep checkpoints.

One line per event, flushed as it happens, so a killed sweep loses at
most the in-flight sample:

* ``header`` — format version + a fingerprint of the RunConfig, checked
  on resume so a checkpoint can never silently continue a *different*
  sweep.
* ``sample`` — one completed :class:`~repro.core.records.PerfSample`
  with its series key.  Floats are stored as JSON numbers, which
  round-trip exactly, so a resumed run is byte-identical to an
  uninterrupted one.
* ``quarantine`` — a cell that exhausted its retries.
* ``event`` — sweep-level state changes (``device-lost``, ``degraded``)
  that the resuming runner must re-apply, plus informational worker-
  supervision events (``shard-retry``, ``shard-inprocess``).

Every record carries a ``cs`` field — a truncated SHA-256 of the
record's canonical JSON form without it — so a flipped byte inside a
*syntactically valid* line can never replay as truth: checksums are
verified on load and by ``repro fsck``.

A torn final line (the classic crash artifact) is dropped on read;
corruption anywhere else — unparseable JSON or a failed record
checksum — raises :class:`~repro.errors.CheckpointError`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Tuple

from ..core.records import PerfSample, QuarantineEntry
from ..errors import CheckpointError
from ..types import DeviceKind, Dims, Kernel, Precision, TransferType

__all__ = [
    "CheckpointReader",
    "CheckpointState",
    "CheckpointWriter",
    "config_fingerprint",
    "record_checksum",
    "sample_key",
]

#: v2 added the per-record ``cs`` integrity checksum.
FORMAT_VERSION = 2

#: The key one sweep cell is checkpointed and resumed under.
SampleKey = Tuple[str, str, str, str, Optional[str], int, int, int, int]


def sample_key(
    kernel: Kernel,
    ident: str,
    precision: Precision,
    device: DeviceKind,
    transfer: Optional[TransferType],
    dims: Dims,
    iterations: int,
) -> SampleKey:
    return (
        kernel.value,
        ident,
        precision.value,
        device.value,
        transfer.value if transfer else None,
        dims.m,
        dims.n,
        dims.k,
        iterations,
    )


def config_fingerprint(config, system_name: Optional[str]) -> str:
    """Stable hash of everything that must match for a resume to be
    meaningful."""
    payload = {
        "min_dim": config.min_dim,
        "max_dim": config.max_dim,
        "iterations": config.iterations,
        "step": config.step,
        "kernels": [k.value for k in config.kernels],
        "problem_idents": list(config.problem_idents),
        "precisions": [p.value for p in config.precisions],
        "transfers": [t.value for t in config.transfers],
        "cpu_enabled": config.cpu_enabled,
        "gpu_enabled": config.gpu_enabled,
        "alpha": config.alpha,
        "beta": config.beta,
        "system": system_name,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def record_checksum(record: dict) -> str:
    """Truncated SHA-256 of a journal record's canonical JSON form,
    excluding the ``cs`` field itself.  Canonicalization (sorted keys,
    compact separators) makes the digest independent of field order, so
    hand-repaired or merged records verify as long as their *values*
    are intact."""
    body = {k: v for k, v in record.items() if k != "cs"}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _key_fields(key: SampleKey) -> dict:
    kernel, ident, precision, device, transfer, m, n, k, iterations = key
    return {
        "kernel": kernel,
        "ident": ident,
        "precision": precision,
        "device": device,
        "transfer": transfer,
        "m": m,
        "n": n,
        "k": k,
        "iterations": iterations,
    }


def _record_key(rec: dict) -> SampleKey:
    return (
        rec["kernel"], rec["ident"], rec["precision"], rec["device"],
        rec["transfer"], rec["m"], rec["n"], rec["k"], rec["iterations"],
    )


def _repair_torn_tail(path: Path) -> None:
    """Drop a torn (crash-truncated) final line before appending."""
    text = path.read_text()
    lines = text.splitlines(keepends=True)
    if not lines:
        return
    last = lines[-1]
    torn = not last.endswith("\n")
    if not torn:
        try:
            json.loads(last)
        except ValueError:
            torn = True
    if torn:
        path.write_text("".join(lines[:-1]))


class CheckpointWriter:
    """Appends sweep events to a JSONL checkpoint file."""

    def __init__(self, path, config, system_name: Optional[str],
                 resume: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not (resume and self.path.exists())
        if not fresh:
            _repair_torn_tail(self.path)
        mode = "a" if resume else "w"
        self._fh: Optional[TextIO] = self.path.open(mode)
        if fresh:
            self._write({
                "t": "header",
                "version": FORMAT_VERSION,
                "fingerprint": config_fingerprint(config, system_name),
                "system": system_name,
            })

    def _write(self, record: dict) -> None:
        if self._fh is None:  # pragma: no cover - defensive
            raise CheckpointError("checkpoint writer is closed")
        record["cs"] = record_checksum(record)
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()

    def sample(self, key: SampleKey, sample: PerfSample) -> None:
        rec = {"t": "sample", **_key_fields(key)}
        rec.update(
            seconds=sample.seconds,
            gflops=sample.gflops,
            checksum_ok=sample.checksum_ok,
        )
        self._write(rec)

    def quarantine(self, entry: QuarantineEntry) -> None:
        key = sample_key(
            entry.kernel, entry.ident, entry.precision, entry.device,
            entry.transfer, entry.dims, entry.iterations,
        )
        rec = {"t": "quarantine", **_key_fields(key)}
        rec.update(
            attempts=entry.attempts, error=entry.error, message=entry.message
        )
        self._write(rec)

    def event(self, kind: str, detail: str = "") -> None:
        self._write({"t": "event", "kind": kind, "detail": detail})

    def merge_shard(self, path) -> int:
        """Append every record of a per-worker shard journal (written by
        the parallel executor) to this journal, skipping the shard's own
        header line.  Returns the number of records merged."""
        if self._fh is None:  # pragma: no cover - defensive
            raise CheckpointError("checkpoint writer is closed")
        lines = Path(path).read_text().splitlines()
        for line in lines[1:]:
            self._fh.write(line + "\n")
        self._fh.flush()
        return max(0, len(lines) - 1)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


@dataclass
class CheckpointState:
    """Everything a resuming sweep replays from the checkpoint."""

    samples: Dict[SampleKey, PerfSample] = field(default_factory=dict)
    quarantine: List[QuarantineEntry] = field(default_factory=list)
    events: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def device_lost(self) -> bool:
        return any(kind == "device-lost" for kind, _ in self.events)

    @property
    def degraded(self) -> bool:
        return any(kind == "degraded" for kind, _ in self.events)

    def quarantined_keys(self) -> set:
        return {
            sample_key(e.kernel, e.ident, e.precision, e.device, e.transfer,
                       e.dims, e.iterations)
            for e in self.quarantine
        }


class CheckpointReader:
    """Parses and validates a checkpoint for resumption."""

    @staticmethod
    def load(path, config, system_name: Optional[str]) -> CheckpointState:
        path = Path(path)
        if not path.exists():
            raise CheckpointError(f"checkpoint {path} does not exist")
        lines = path.read_text().splitlines()
        if not lines:
            raise CheckpointError(f"checkpoint {path} is empty")
        records: List[dict] = []
        for i, line in enumerate(lines):
            try:
                rec = json.loads(line)
            except ValueError:
                if i == len(lines) - 1:
                    break  # torn final line from a crash: drop it
                raise CheckpointError(
                    f"checkpoint {path} is corrupt at line {i + 1}"
                )
            if not isinstance(rec, dict) or rec.get("cs") != record_checksum(rec):
                raise CheckpointError(
                    f"checkpoint {path} failed its record checksum at "
                    f"line {i + 1}; the journal has been corrupted "
                    "(run `gpu-blob fsck` to audit and repair it)"
                )
            records.append(rec)
        if not records or records[0].get("t") != "header":
            raise CheckpointError(f"checkpoint {path} has no header line")
        header = records[0]
        if header.get("version") != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has format version "
                f"{header.get('version')!r}; this build writes "
                f"{FORMAT_VERSION}"
            )
        expect = config_fingerprint(config, system_name)
        if header.get("fingerprint") != expect:
            raise CheckpointError(
                f"checkpoint {path} belongs to a different sweep "
                "configuration; refusing to resume (pass resume=False to "
                "start over)"
            )
        state = CheckpointState()
        for rec in records[1:]:
            kind = rec.get("t")
            if kind == "sample":
                state.samples[_record_key(rec)] = _parse_sample(rec)
            elif kind == "quarantine":
                state.quarantine.append(_parse_quarantine(rec))
            elif kind == "event":
                state.events.append((rec.get("kind", ""), rec.get("detail", "")))
            else:
                raise CheckpointError(
                    f"checkpoint {path} has an unknown record type {kind!r}"
                )
        return state


def _parse_sample(rec: dict) -> PerfSample:
    return PerfSample(
        device=DeviceKind(rec["device"]),
        transfer=TransferType(rec["transfer"]) if rec["transfer"] else None,
        dims=Dims(rec["m"], rec["n"], rec["k"]),
        iterations=rec["iterations"],
        seconds=rec["seconds"],
        gflops=rec["gflops"],
        checksum_ok=rec["checksum_ok"],
    )


def _parse_quarantine(rec: dict) -> QuarantineEntry:
    return QuarantineEntry(
        kernel=Kernel(rec["kernel"]),
        ident=rec["ident"],
        precision=Precision(rec["precision"]),
        device=DeviceKind(rec["device"]),
        transfer=TransferType(rec["transfer"]) if rec["transfer"] else None,
        dims=Dims(rec["m"], rec["n"], rec["k"]),
        iterations=rec["iterations"],
        attempts=rec["attempts"],
        error=rec["error"],
        message=rec["message"],
    )
