"""A backend wrapper that acts out a :class:`~repro.faults.plan.FaultPlan`.

``FaultInjector`` composes with *any* backend — analytic, DES, or host —
because it only intercepts the two ``Backend`` sampling methods.  Raising
faults (kernel, transfer, device loss) abort the sample with the matching
:mod:`repro.errors` exception; degrading faults (hang, ECC) let the inner
backend produce its sample and then stretch its simulated seconds, which
is exactly how the real pathologies present: the run "succeeds" but the
timing is poisoned until a watchdog or retry policy notices.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional

from ..backends.base import Backend
from ..core.records import PerfSample
from ..errors import (
    DeviceLostError,
    TransferError,
    TransientKernelError,
)
from ..types import DeviceKind, Dims, Precision, TransferType
from .plan import FaultKind, FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector(Backend):
    """Wraps ``inner`` and injects the faults ``plan`` dictates.

    The injector keeps a per-sample-key attempt counter, so the n-th
    call for the same cell is draw ``attempt=n`` of the plan — retries
    see fresh, still-deterministic outcomes.  ``stats`` counts fired
    faults by kind.  Device loss is sticky: once it fires, every later
    GPU sample raises :class:`~repro.errors.DeviceLostError`.
    """

    def __init__(self, inner: Backend, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.device_lost = False
        self.stats: Counter = Counter()
        self._attempts: Dict[tuple, int] = {}

    @property
    def gpu_transfers(self) -> tuple:
        return () if self.device_lost else self.inner.gpu_transfers

    @property
    def system_name(self) -> Optional[str]:
        return getattr(self.inner, "system_name", None)

    def reset(self) -> None:
        """Forget attempt counters, stats and device loss."""
        self.device_lost = False
        self.stats.clear()
        self._attempts.clear()

    # -- internals ----------------------------------------------------
    def _attempt(self, key: tuple) -> int:
        attempt = self._attempts.get(key, 0)
        self._attempts[key] = attempt + 1
        return attempt

    def _degrade(self, sample: PerfSample, key: tuple, attempt: int,
                 beta: float) -> PerfSample:
        """Apply the non-raising (timing-poisoning) fault kinds."""
        seconds = sample.seconds
        if self.plan.fires(FaultKind.ECC, key, attempt):
            self.stats[FaultKind.ECC] += 1
            seconds *= self.plan.ecc_slowdown
        if self.plan.fires(FaultKind.HANG, key, attempt):
            self.stats[FaultKind.HANG] += 1
            seconds += self.plan.hang_s
        if seconds == sample.seconds:
            return sample
        return PerfSample.from_seconds(
            sample.device, sample.transfer, sample.dims, sample.iterations,
            seconds, checksum_ok=sample.checksum_ok, beta=beta,
        )

    # -- Backend interface --------------------------------------------
    def cpu_sample(self, kernel, dims: Dims, precision: Precision,
                   iterations: int, alpha: float = 1.0,
                   beta: float = 0.0) -> PerfSample:
        key = (DeviceKind.CPU.value, None, kernel.value, dims.as_tuple(),
               precision.value, iterations)
        attempt = self._attempt(key)
        if self.plan.fires(FaultKind.KERNEL, key, attempt):
            self.stats[FaultKind.KERNEL] += 1
            raise TransientKernelError(
                f"injected CPU kernel failure at {dims} (attempt {attempt})"
            )
        sample = self.inner.cpu_sample(
            kernel, dims, precision, iterations, alpha, beta
        )
        return self._degrade(sample, key, attempt, beta)

    def gpu_sample(self, kernel, dims: Dims, precision: Precision,
                   iterations: int, transfer: TransferType,
                   alpha: float = 1.0,
                   beta: float = 0.0) -> Optional[PerfSample]:
        if self.device_lost:
            raise DeviceLostError("GPU device was lost earlier in this sweep")
        key = (DeviceKind.GPU.value, transfer.value, kernel.value,
               dims.as_tuple(), precision.value, iterations)
        attempt = self._attempt(key)
        if self.plan.fires(FaultKind.DEVICE_LOST, key, attempt):
            self.stats[FaultKind.DEVICE_LOST] += 1
            self.device_lost = True
            raise DeviceLostError(
                f"injected device loss at {dims} ({transfer.value})"
            )
        if self.plan.fires(FaultKind.TRANSFER, key, attempt):
            self.stats[FaultKind.TRANSFER] += 1
            raise TransferError(
                f"injected DMA {transfer.value} failure at {dims} "
                f"(attempt {attempt})"
            )
        if self.plan.fires(FaultKind.KERNEL, key, attempt):
            self.stats[FaultKind.KERNEL] += 1
            raise TransientKernelError(
                f"injected GPU kernel failure at {dims} (attempt {attempt})"
            )
        sample = self.inner.gpu_sample(
            kernel, dims, precision, iterations, transfer, alpha, beta
        )
        if sample is None:
            return None
        return self._degrade(sample, key, attempt, beta)
