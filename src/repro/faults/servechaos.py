"""Seeded chaos plans for the *serving* layer.

:class:`~repro.faults.plan.FaultPlan` injects faults into individual
sweep samples; this module raises the blast radius to the service
itself — the failure modes a long-running threshold daemon meets in
production:

* ``slow-backend`` — the sweep behind one job stalls for ``slow_s``
  wall seconds before running (queue pressure, p99 inflation);
* ``fail-backend`` — the sweep raises
  :class:`~repro.errors.TransientKernelError` instead of running
  (feeds the circuit breaker and the degraded-answer path);
* ``wal-stall`` — the write-ahead append for one accepted job is
  swallowed as if the disk were full (``/readyz`` must flip, the job
  must still run);
* ``wal-bitflip`` — one byte of the just-written WAL record is flipped
  on disk (the lenient loader must skip it; ``gpu-blob fsck`` must
  find and repair it).

Draws are deterministic the same way the sweep plan's are: BLAKE2b
over ``(seed, kind, key)``, so a chaos run is replayable and two runs
with one seed see identical fault sequences.  The per-job key includes
the attempt number, so a replayed job redraws its faults and retries
can genuinely succeed.

Worker death is *not* a draw here: killing a real pool worker mid-job
is already wired through the supervised executor's
``REPRO_CHAOS_KILL_SHARD`` hook, which the serve layer inherits when
it runs sweeps with ``--sweep-jobs > 1`` — the CI serve-chaos job uses
exactly that.  Burst overload is a property of the replayed trace, not
a fault kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Mapping

from ..errors import ConfigError
from .plan import _unit

__all__ = ["ServeChaosKind", "ServeChaosPlan", "flip_byte_in_last_record"]


class ServeChaosKind(Enum):
    """Everything the serve-level chaos harness can do to one job."""

    SLOW_BACKEND = "slow-backend"
    FAIL_BACKEND = "fail-backend"
    WAL_STALL = "wal-stall"
    WAL_BITFLIP = "wal-bitflip"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ServeChaosPlan:
    """Deterministic, seeded firing rates per serve-fault kind.

    ``rates`` maps each :class:`ServeChaosKind` to a probability in
    ``[0, 1)``; absent kinds never fire.  ``slow_s`` is the wall-clock
    stall of one ``slow-backend`` hit.
    """

    seed: int = 0
    rates: Mapping[ServeChaosKind, float] = field(default_factory=dict)
    slow_s: float = 0.2

    def __post_init__(self) -> None:
        for kind, rate in self.rates.items():
            if not isinstance(kind, ServeChaosKind):
                raise ConfigError(
                    f"rates keys must be ServeChaosKind, got {kind!r}"
                )
            if not 0.0 <= rate < 1.0:
                raise ConfigError(
                    f"chaos rate for {kind.value!r} must be in [0, 1), "
                    f"got {rate}"
                )
        if self.slow_s <= 0.0:
            raise ConfigError(f"slow_s must be > 0, got {self.slow_s}")

    @property
    def enabled(self) -> bool:
        return any(rate > 0.0 for rate in self.rates.values())

    def fires(self, kind: ServeChaosKind, key: tuple) -> bool:
        """Does ``kind`` fire for this job key?  Include the attempt
        number in ``key`` so retries decorrelate."""
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0:
            return False
        return _unit((self.seed, "serve", kind.value) + tuple(key)) < rate

    # -- presets -------------------------------------------------------

    @classmethod
    def light(cls, seed: int = 0) -> "ServeChaosPlan":
        """Mild background chaos: occasional stalls and failures."""
        return cls(seed=seed, rates={
            ServeChaosKind.SLOW_BACKEND: 0.15,
            ServeChaosKind.FAIL_BACKEND: 0.05,
        }, slow_s=0.1)

    @classmethod
    def heavy(cls, seed: int = 0) -> "ServeChaosPlan":
        """The aggressive preset the chaos bench and CI job use."""
        return cls(seed=seed, rates={
            ServeChaosKind.SLOW_BACKEND: 0.35,
            ServeChaosKind.FAIL_BACKEND: 0.2,
            ServeChaosKind.WAL_STALL: 0.1,
        }, slow_s=0.25)

    @classmethod
    def blackout(cls, seed: int = 0) -> "ServeChaosPlan":
        """Near-total backend failure: trips every breaker, forcing the
        degraded-answer path (rates must stay < 1, so 'near')."""
        return cls(seed=seed, rates={
            ServeChaosKind.FAIL_BACKEND: 0.999,
        })

    _PRESETS = ("light", "heavy", "blackout")

    @classmethod
    def parse(cls, text: str) -> "ServeChaosPlan":
        """Build a plan from a ``--chaos-plan`` argument:
        ``"<preset>"`` or ``"<preset>:<seed>"``."""
        name, _, seed_text = text.partition(":")
        seed = 0
        if seed_text:
            try:
                seed = int(seed_text)
            except ValueError:
                raise ConfigError(
                    f"chaos-plan seed must be an integer, got {seed_text!r}"
                ) from None
        if name not in cls._PRESETS:
            raise ConfigError(
                f"unknown chaos plan {name!r}; valid: "
                + ", ".join(cls._PRESETS)
            )
        return getattr(cls, name)(seed=seed)


def flip_byte_in_last_record(path) -> bool:
    """The ``wal-bitflip`` act: XOR one digit byte inside the final
    line of ``path`` (staying syntactically valid JSON so only the
    record checksum trips).  Returns False when there is nothing to
    flip."""
    path = Path(path)
    try:
        blob = bytearray(path.read_bytes())
    except OSError:
        return False
    for i in range(len(blob) - 1, -1, -1):
        if chr(blob[i]).isdigit():
            blob[i] ^= 0x01
            path.write_bytes(bytes(blob))
            return True
    return False
