"""Seeded chaos plans for *distributed* campaign execution.

:mod:`repro.faults.servechaos` attacks one daemon's jobs; this module
attacks the fleet.  The dispatcher applies the plan from its own side
of the wire, so one implementation covers both worker flavors
(subprocess and in-process simulated):

* ``node-kill`` — the victim worker is killed (SIGKILL for a
  subprocess, an instant drop for a simulated worker) right after it
  is handed its trigger assignment.  The scenario's lease expires and
  a healthy worker steals it.
* ``partition`` — the victim stays alive but every message it sends
  (heartbeats *and* results) is dropped for a window.  The dispatcher
  must mark it suspect, steal its scenario, and — when the window ends
  and the victim's late ``done`` finally lands — dedupe the duplicate
  finish against the ledger.
* ``slow-worker`` — the victim's messages are delayed, not dropped:
  heartbeats arrive late enough to look suspicious, exercising the
  renew/steal boundary without losing anything.

Which worker is the victim and which of its assignments triggers are
deterministic BLAKE2b draws over the seed (same machinery as every
other fault plan), so a chaos campaign is replayable: two runs with
one seed kill the same worker at the same point.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..errors import ConfigError
from .plan import _unit

__all__ = ["DistChaosKind", "DistChaosPlan"]


class DistChaosKind(Enum):
    """Everything the dispatcher-side chaos harness can do to a fleet."""

    NODE_KILL = "node-kill"
    PARTITION = "partition"
    SLOW_WORKER = "slow-worker"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class DistChaosPlan:
    """One seeded fleet fault.

    ``partition_s``/``slow_s`` default to ``None``, which the
    dispatcher resolves relative to its lease (2x and 1.5x) so the
    fault is guaranteed to outlive the lease and actually force a
    steal at any ``--lease`` setting.
    """

    kind: DistChaosKind
    seed: int = 0
    partition_s: Optional[float] = None
    slow_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.partition_s is not None and self.partition_s <= 0:
            raise ConfigError(
                f"partition_s must be > 0, got {self.partition_s}"
            )
        if self.slow_s is not None and self.slow_s <= 0:
            raise ConfigError(f"slow_s must be > 0, got {self.slow_s}")

    def victim(self, n_workers: int) -> int:
        """Deterministic victim index in ``[0, n_workers)``."""
        if n_workers < 1:
            raise ConfigError("chaos needs at least one worker to attack")
        draw = _unit((self.seed, "dist", self.kind.value, "victim"))
        return min(int(draw * n_workers), n_workers - 1)

    def trigger_assignment(self) -> int:
        """Which of the victim's assignments (1-based) pulls the
        trigger — the 1st or 2nd, drawn from the seed, so the fault
        lands mid-campaign rather than always on the opening dispatch."""
        draw = _unit((self.seed, "dist", self.kind.value, "trigger"))
        return 1 + int(draw * 2)

    def partition_window(self, lease_s: float) -> float:
        return self.partition_s if self.partition_s is not None \
            else 2.0 * lease_s

    def slow_delay(self, lease_s: float) -> float:
        return self.slow_s if self.slow_s is not None else 1.5 * lease_s

    @classmethod
    def parse(cls, text: str) -> "DistChaosPlan":
        """Build a plan from a ``--chaos-plan`` argument:
        ``"<kind>"`` or ``"<kind>:<seed>"``."""
        name, _, seed_text = text.partition(":")
        seed = 0
        if seed_text:
            try:
                seed = int(seed_text)
            except ValueError:
                raise ConfigError(
                    f"chaos-plan seed must be an integer, got {seed_text!r}"
                ) from None
        try:
            kind = DistChaosKind(name)
        except ValueError:
            valid = ", ".join(k.value for k in DistChaosKind)
            raise ConfigError(
                f"unknown dist chaos plan {name!r}; valid: {valid}"
            ) from None
        return cls(kind=kind, seed=seed)
