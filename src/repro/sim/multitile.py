"""Structural multi-tile GPU model — deferred.

Appendix A's implicit-scaling behaviour is reproduced by the measured
``implicit-scaling`` quirk (``repro.sim.quirks``); the idealized
structural two-tile model (work split + MDFI sharing) is deferred.
"""

from __future__ import annotations

from ..errors import DeferredFeatureError

__all__ = ["MultiTileGpu"]


class MultiTileGpu:
    def __init__(self, *args, **kwargs) -> None:
        raise DeferredFeatureError(
            "the structural multi-tile model is deferred; implicit scaling "
            "is modelled by the 'implicit-scaling' quirk "
            "(gpu_library='onemkl-gpu-implicit')"
        )
