"""Simulation layer: closed-form device models and deterministic noise."""

from .cpu import CpuModel
from .gpu import GpuModel
from .noise import NO_NOISE, DeterministicNoise, NoiseModel
from .perfmodel import NodePerfModel

__all__ = [
    "CpuModel",
    "DeterministicNoise",
    "GpuModel",
    "NO_NOISE",
    "NodePerfModel",
    "NoiseModel",
]
