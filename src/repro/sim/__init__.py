"""Simulation layer: closed-form device models, deterministic noise and
the discrete-event engine (command queues, DMA engines, USM page tables,
pipelined transfer schedules)."""

from .cpu import CpuModel
from .engine import Command, EventEngine, TraceEvent
from .gpu import GpuModel
from .noise import NO_NOISE, DeterministicNoise, NoiseModel
from .perfmodel import NodePerfModel
from .pipeline import pipelined_always_time, serial_always_time
from .usm import MigrationPlan, PageTable

__all__ = [
    "Command",
    "CpuModel",
    "DeterministicNoise",
    "EventEngine",
    "GpuModel",
    "MigrationPlan",
    "NO_NOISE",
    "NodePerfModel",
    "NoiseModel",
    "PageTable",
    "TraceEvent",
    "pipelined_always_time",
    "serial_always_time",
]
