"""Discrete-event execution engine: command queues, DMA and compute engines.

The DES replays each measurement as the explicit command sequence the C++
benchmark issues — enqueue H2D, launch kernel, enqueue D2H, service USM
fault batches — instead of summing closed forms.  It is the timing
substrate of the AB1 ablation (`bench_ablation_des.py`), the pipelined
Transfer-Always study (`repro.sim.pipeline`) and the
:class:`repro.backends.des.DesBackend`.

Execution model
---------------

* A **command** has a fixed duration (taken from the calibrated
  :class:`~repro.sim.perfmodel.NodePerfModel` curves), lives on one
  in-order **queue**, executes on one exclusive **resource** (a DMA
  engine, a compute engine, a CPU socket), and may declare explicit
  cross-queue **dependencies**.
* A command starts once the previous command on its queue has completed,
  every dependency has completed, and its resource is free.  Resources
  are non-preemptive and granted in submission order (FIFO arbitration).
* Completions are driven off a monotonic event heap; :meth:`run` raises
  if the heap would ever run backwards or if dependencies deadlock.

The engine is deterministic: identical submissions always produce the
identical trace, a property the ablation benchmark asserts.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Tuple

from ..errors import ReproError

__all__ = ["Command", "EngineDeadlockError", "EventEngine", "TraceEvent"]


class EngineDeadlockError(ReproError):
    """The submitted command graph can make no further progress."""


@dataclass(frozen=True)
class Command:
    """One unit of simulated work on a queue/resource pair."""

    cid: int
    kind: str
    queue: str
    resource: str
    duration: float
    deps: Tuple[int, ...] = ()
    label: str = ""


@dataclass(frozen=True)
class TraceEvent:
    """The executed record of one command: where and when it ran."""

    cid: int
    kind: str
    queue: str
    resource: str
    start: float
    end: float
    label: str = ""


@dataclass
class EventEngine:
    """A monotonic-clock discrete-event simulator of one node."""

    now: float = 0.0
    trace: List[TraceEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._commands: Dict[int, Command] = {}
        self._queues: Dict[str, Deque[int]] = {}
        self._queue_free: Dict[str, float] = {}
        self._resource_free: Dict[str, float] = {}
        self._busy: Dict[str, float] = {}
        self._end_time: Dict[int, float] = {}
        self._heap: List[Tuple[float, int, int]] = []
        self._seq = 0
        self._ran = False

    # -- submission ---------------------------------------------------
    def submit(
        self,
        kind: str,
        duration: float,
        *,
        queue: str = "default",
        resource: str | None = None,
        deps: Tuple[int, ...] = (),
        label: str = "",
    ) -> int:
        """Enqueue one command; returns its command id for use in deps."""
        if self._ran:
            raise ReproError("EventEngine.run() already consumed this engine")
        if duration < 0.0:
            raise ReproError(f"command duration must be >= 0, got {duration}")
        for dep in deps:
            if dep not in self._commands:
                raise ReproError(f"dependency on unknown command id {dep}")
        cid = self._seq
        self._seq += 1
        cmd = Command(
            cid=cid,
            kind=kind,
            queue=queue,
            resource=resource if resource is not None else queue,
            duration=duration,
            deps=tuple(deps),
            label=label,
        )
        self._commands[cid] = cmd
        self._queues.setdefault(queue, deque()).append(cid)
        return cid

    # -- execution ----------------------------------------------------
    def _dispatch(self, cmd: Command) -> None:
        """Schedule one ready command and push its completion event."""
        start = max(
            self._queue_free.get(cmd.queue, 0.0),
            self._resource_free.get(cmd.resource, 0.0),
            max((self._end_time[d] for d in cmd.deps), default=0.0),
        )
        end = start + cmd.duration
        self._queue_free[cmd.queue] = end
        self._resource_free[cmd.resource] = end
        self._busy[cmd.resource] = self._busy.get(cmd.resource, 0.0) + cmd.duration
        self._end_time[cmd.cid] = end
        heapq.heappush(self._heap, (end, cmd.cid, cmd.cid))
        self.trace.append(
            TraceEvent(
                cid=cmd.cid,
                kind=cmd.kind,
                queue=cmd.queue,
                resource=cmd.resource,
                start=start,
                end=end,
                label=cmd.label,
            )
        )

    def run(self) -> float:
        """Execute every submitted command; returns the makespan.

        The clock advances strictly monotonically along the completion
        heap; a cyclic dependency graph raises
        :class:`EngineDeadlockError` instead of spinning.
        """
        self._ran = True
        remaining = sum(len(q) for q in self._queues.values())
        while remaining:
            progressed = False
            for q in self._queues.values():
                while q and all(d in self._end_time for d in self._commands[q[0]].deps):
                    self._dispatch(self._commands[q.popleft()])
                    remaining -= 1
                    progressed = True
            if not progressed:
                blocked = [q[0] for q in self._queues.values() if q]
                raise EngineDeadlockError(
                    f"dependency deadlock; blocked command ids {blocked}"
                )
        while self._heap:
            end, _, _ = heapq.heappop(self._heap)
            if end < self.now:
                raise ReproError(
                    "event heap ran backwards: completion at "
                    f"{end} after clock reached {self.now}"
                )
            self.now = end
        return self.now

    # -- inspection ---------------------------------------------------
    @property
    def elapsed(self) -> float:
        """Makespan after :meth:`run` (0.0 before)."""
        return self.now

    def busy_time(self, resource: str) -> float:
        """Total seconds ``resource`` spent executing commands."""
        return self._busy.get(resource, 0.0)

    def resources(self) -> Tuple[str, ...]:
        return tuple(sorted(self._busy))

    def end_of(self, cid: int) -> float:
        """Completion time of one command (after :meth:`run`)."""
        return self._end_time[cid]

    def events_on(self, resource: str) -> List[TraceEvent]:
        """Trace events of one resource, in execution order."""
        return sorted(
            (t for t in self.trace if t.resource == resource),
            key=lambda t: (t.start, t.cid),
        )
