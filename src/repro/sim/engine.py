"""Discrete-event execution engine — deferred.

The DES replays each measurement as explicit commands on simulated DMA
and compute engines.  The closed-form analytic backend covers every
paper result; the event engine lands with the overlap studies
(``repro.sim.pipeline``).
"""

from __future__ import annotations

from ..errors import DeferredFeatureError

__all__ = ["EventEngine"]


class EventEngine:
    """Placeholder for the discrete-event engine (see DESIGN.md)."""

    def __init__(self, *args, **kwargs) -> None:
        raise DeferredFeatureError(
            "the discrete-event engine is not part of this milestone; "
            "use repro.backends.simulated.AnalyticBackend"
        )
