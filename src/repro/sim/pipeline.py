"""Double-buffered Transfer-Always schedules — deferred.

These require the discrete-event engine (``repro.sim.engine``) to model
copy/compute overlap; the serialized closed forms live in
:class:`repro.sim.perfmodel.NodePerfModel`.
"""

from __future__ import annotations

from ..errors import DeferredFeatureError

__all__ = ["pipelined_always_time", "serial_always_time"]


def serial_always_time(model, dims, precision, iterations: int) -> float:
    raise DeferredFeatureError(
        "pipeline schedules are deferred with the discrete-event engine; "
        "use NodePerfModel.gpu_time(..., transfer=TransferType.ALWAYS)"
    )


def pipelined_always_time(model, dims, precision, iterations: int) -> float:
    raise DeferredFeatureError(
        "pipeline schedules are deferred with the discrete-event engine"
    )
