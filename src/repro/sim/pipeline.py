"""Transfer-Always schedules on the discrete-event engine.

The paper's Transfer-Always serializes ``h2d -> kernel -> d2h`` every
iteration through one in-order queue, which is why its offload
thresholds *rise* with data re-use.  This module replays that serialized
schedule on the DES (it must and does match the closed form in
:class:`~repro.sim.perfmodel.NodePerfModel`) and builds the overlapped
alternative: a double-buffered schedule where iteration ``i+1``'s upload
streams on the H2D DMA engine while kernel ``i`` computes and iteration
``i-1``'s result drains on the D2H engine.

Buffer re-use is the only extra constraint: with ``buffers`` staging
buffers, upload ``i`` may not start before download ``i - buffers`` has
completed.  Because the overlapped dependency graph is a strict
relaxation of the serial queue order over identical command durations,
``pipelined_always_time <= serial_always_time`` always holds.
"""

from __future__ import annotations

from ..core.flops import d2h_bytes, h2d_bytes
from ..types import Dims, Precision, TransferType
from .engine import EventEngine

__all__ = [
    "always_iteration_costs",
    "build_pipelined_always",
    "build_serial_always",
    "pipelined_always_time",
    "serial_always_time",
]

#: Resource/queue names used by the Transfer-Always schedules.
H2D, D2H, COMPUTE = "dma-h2d", "dma-d2h", "gpu"


def always_iteration_costs(
    model,
    dims: Dims,
    precision: Precision,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> tuple[float, float, float]:
    """Per-iteration ``(h2d, kernel, d2h)`` seconds under Transfer-Always.

    Staged copies stream through unpinned bounce buffers, so both
    directions pay the link latency and the derated staging bandwidth —
    the same pricing the closed-form paradigm uses.
    """
    link = model.spec.link
    staged_bw = link.bw_gbs * link.staging_bw_scale * 1e9
    h2d = link.latency_s + h2d_bytes(dims, precision) / staged_bw
    d2h = link.latency_s + d2h_bytes(dims, precision) / staged_bw
    kern = model.gpu.kernel_time(dims, precision, alpha, beta)
    return h2d, kern, d2h


def build_serial_always(
    model,
    dims: Dims,
    precision: Precision,
    iterations: int,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> EventEngine:
    """The paper's schedule: one in-order queue, fully serialized."""
    h2d, kern, d2h = always_iteration_costs(model, dims, precision, alpha, beta)
    engine = EventEngine()
    for i in range(iterations):
        engine.submit("h2d", h2d, queue="stream0", resource=H2D, label=f"h2d[{i}]")
        engine.submit(
            "kernel", kern, queue="stream0", resource=COMPUTE, label=f"kernel[{i}]"
        )
        engine.submit("d2h", d2h, queue="stream0", resource=D2H, label=f"d2h[{i}]")
    return engine


def build_pipelined_always(
    model,
    dims: Dims,
    precision: Precision,
    iterations: int,
    alpha: float = 1.0,
    beta: float = 0.0,
    buffers: int = 2,
) -> EventEngine:
    """Double-buffered overlap: three queues, cross-linked by data deps.

    ``kernel[i]`` waits for ``h2d[i]``; ``d2h[i]`` waits for
    ``kernel[i]``; ``h2d[i]`` waits for ``d2h[i - buffers]`` (staging
    buffer free).  Each queue stays in-order on its own engine.
    """
    if buffers < 1:
        raise ValueError("pipelining needs at least one staging buffer")
    h2d, kern, d2h = always_iteration_costs(model, dims, precision, alpha, beta)
    engine = EventEngine()
    d2h_ids: list[int] = []
    for i in range(iterations):
        up_deps = (d2h_ids[i - buffers],) if i >= buffers else ()
        up = engine.submit(
            "h2d", h2d, queue=H2D, resource=H2D, deps=up_deps, label=f"h2d[{i}]"
        )
        run = engine.submit(
            "kernel",
            kern,
            queue=COMPUTE,
            resource=COMPUTE,
            deps=(up,),
            label=f"kernel[{i}]",
        )
        down = engine.submit(
            "d2h", d2h, queue=D2H, resource=D2H, deps=(run,), label=f"d2h[{i}]"
        )
        d2h_ids.append(down)
    return engine


def _measurement_noise(model, dims, precision, iterations: int) -> float:
    """The node model's deterministic jitter for this measurement.

    Both schedules replay the *same* Transfer-Always measurement, so
    they share the closed form's noise key — serial stays bit-comparable
    to :meth:`NodePerfModel.gpu_time` and the overlap speedup is
    noise-free.
    """
    return model.noise.factor(
        (
            "gpu",
            TransferType.ALWAYS.value,
            dims.as_tuple(),
            precision.value,
            iterations,
        )
    )


def serial_always_time(
    model,
    dims: Dims,
    precision: Precision,
    iterations: int,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> float:
    """Serialized Transfer-Always seconds (DES replay of the closed form)."""
    engine = build_serial_always(model, dims, precision, iterations, alpha, beta)
    return engine.run() * _measurement_noise(model, dims, precision, iterations)


def pipelined_always_time(
    model,
    dims: Dims,
    precision: Precision,
    iterations: int,
    alpha: float = 1.0,
    beta: float = 0.0,
    buffers: int = 2,
) -> float:
    """Double-buffered Transfer-Always seconds on the DES."""
    engine = build_pipelined_always(
        model, dims, precision, iterations, alpha, beta, buffers
    )
    return engine.run() * _measurement_noise(model, dims, precision, iterations)
