"""Closed-form CPU timing model.

Per-call GEMM time::

    overhead + sync_per_thread * T + max(compute, memory)

with ``T`` engaged threads (library threading heuristic), a parallel-
efficiency ramp in per-thread work, saturating shape-efficiency factors
in ``min(m, n)`` and ``k``, and a warm-data compute boost once the
working set is cache-resident (iterations after the first).

GEMV is modelled as pure data movement: the first (cold) iteration
streams from memory at a bandwidth limited by the engaged thread count;
warm iterations run at cache bandwidth while the working set fits the
effective LLC — crossing that boundary is DAWN's {4089} cliff.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..blas.registry import CpuLibraryModel
from ..core.flops import flops_for, flops_for_batch, kernel_bytes, kernel_bytes_batch
from ..systems.specs import CpuSocketSpec
from ..types import Dims, Kernel, Precision
from .noise import NO_NOISE, NoiseModel
from .quirks import quirk_factor, quirk_factor_batch

__all__ = ["CpuModel"]


class CpuModel:
    def __init__(
        self,
        spec: CpuSocketSpec,
        library: CpuLibraryModel,
        max_threads: Optional[int] = None,
        noise: NoiseModel = NO_NOISE,
    ) -> None:
        self.spec = spec
        self.library = library
        self.max_threads = max_threads or library.threads or spec.cores
        self.noise = noise

    # -- threading ----------------------------------------------------
    def engaged_threads(self, flops: float) -> int:
        lib = self.library
        if lib.threading == "always-max":
            return self.max_threads
        return max(1, min(self.max_threads, int(-(-flops // lib.grain_flops))))

    def _parallel_eff(self, flops: float, threads: int) -> float:
        lib = self.library
        if threads <= 1:
            return 1.0
        ramp = lib.ramp_flops * (threads - 1) / max(1, self.max_threads - 1)
        ptw = flops / threads
        # The efficiency floor is a *single-core* small-call throughput:
        # the absolute floor rate must not grow with the team width, so
        # the per-thread floor shrinks as threads are added.
        floor = min(1.0, lib.eff_floor * self.spec.cores / threads)
        return max(floor, ptw / (ptw + ramp))

    def _shape_eff(self, dims: Dims) -> float:
        lib = self.library
        out = min(dims.m, dims.n)
        eff = out / (out + lib.out_half)
        if dims.is_gemm:
            eff *= dims.k / (dims.k + lib.k_half)
            # A reduction dimension far longer than the output tile keeps
            # re-streaming operand panels through cache; square shapes
            # (aspect == 1) are unaffected.
            aspect = dims.k / out
            if aspect > 1.0:
                eff *= lib.k_aspect_half / (lib.k_aspect_half + aspect - 1.0)
        # When several extents are tiny the two saturating factors stack
        # multiplicatively, but a real library degenerates to a streaming
        # kernel — bound the penalty from below.
        return max(eff, lib.shape_floor)

    def _peak_gflops(self, precision: Precision) -> float:
        peak = self.spec.peak_gflops(precision.itemsize)
        peak *= self.max_threads / self.spec.cores
        engine = self.spec.matrix_engine
        if engine is not None:
            peak *= engine.speedup_for(precision.value)
        return peak

    # -- GEMM ---------------------------------------------------------
    def _gemm_call(
        self,
        dims: Dims,
        precision: Precision,
        warm: bool,
        alpha: float,
        beta: float,
    ) -> float:
        lib = self.library
        flops = flops_for(dims, beta)
        threads = self.engaged_threads(flops)
        rate = (
            self._peak_gflops(precision)
            * (threads / self.max_threads)
            * self._parallel_eff(flops, threads)
            * self._shape_eff(dims)
            * lib.gemm_eff
        ) * 1e9
        compute = flops / rate
        bytes_moved = kernel_bytes(dims, precision, beta)
        if warm and self._fits_llc(bytes_moved):
            compute /= self.spec.warm_compute_boost
            memory = bytes_moved / (self.spec.cache_bw_gbs * 1e9)
        else:
            memory = bytes_moved / (self.spec.mem_bw_gbs * 1e9)
        return lib.overhead_s + lib.sync_per_thread_s * threads + max(compute, memory)

    # -- GEMV ---------------------------------------------------------
    def _fits_llc(self, bytes_moved: float) -> bool:
        return bytes_moved <= self.spec.llc_bytes

    def _gemv_call(self, dims: Dims, precision: Precision, warm: bool) -> float:
        lib = self.library
        spec = self.spec
        bytes_moved = kernel_bytes(dims, precision)
        if not lib.gemv_parallel:
            threads = 1
        elif lib.gemv_grain_rows is not None:
            # Partition along the longest matrix extent (rows when tall,
            # columns when wide): skinny shapes still engage many threads.
            extent = max(dims.m, dims.n)
            threads = max(
                1,
                min(self.max_threads, int(-(-extent // lib.gemv_grain_rows))),
            )
        else:
            threads = max(
                1,
                min(self.max_threads, int(-(-bytes_moved // lib.gemv_grain_bytes))),
            )
        if warm:
            engaged = self.max_threads if lib.gemv_parallel else 1
            bw = min(spec.cache_bw_gbs, engaged * spec.single_core_cache_bw_gbs)
            if not self._fits_llc(bytes_moved):
                bw = min(spec.mem_bw_gbs, engaged * spec.single_core_mem_bw_gbs)
        else:
            bw = min(spec.mem_bw_gbs, threads * spec.single_core_mem_bw_gbs)
        t = lib.gemv_overhead_s + bytes_moved / (bw * 1e9)
        if lib.gemv_fanout:
            t += lib.sync_per_thread_s * self.max_threads
        else:
            t += lib.sync_per_thread_s * threads
        return t

    # -- public API ---------------------------------------------------
    def time(
        self,
        dims: Dims,
        precision: Precision,
        iterations: int = 1,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> float:
        """Total seconds for ``iterations`` back-to-back library calls."""
        if dims.kernel is Kernel.GEMM:
            first = self._gemm_call(dims, precision, False, alpha, beta)
            rest = (
                self._gemm_call(dims, precision, True, alpha, beta)
                if iterations > 1
                else 0.0
            )
        else:
            first = self._gemv_call(dims, precision, False)
            rest = self._gemv_call(dims, precision, True) if iterations > 1 else 0.0
        total = first + (iterations - 1) * rest
        total *= quirk_factor(self.library.quirks, dims.kernel, dims, precision)
        total *= self.noise.factor(("cpu", self.library.name, dims.as_tuple(),
                                    precision.value, iterations))
        return total

    def gflops(
        self,
        dims: Dims,
        precision: Precision,
        iterations: int = 1,
        beta: float = 0.0,
    ) -> float:
        t = self.time(dims, precision, iterations, beta=beta)
        return iterations * flops_for(dims, beta) / t / 1e9

    # -- vectorized fast path -----------------------------------------
    #
    # Every ``*_batch`` method mirrors its scalar twin expression-for-
    # expression (same operations, same association) so the two agree to
    # the bit; the batch==scalar hypothesis test pins this.

    def _engaged_threads_batch(self, flops: np.ndarray) -> np.ndarray:
        lib = self.library
        if lib.threading == "always-max":
            return np.full(len(flops), self.max_threads, dtype=np.int64)
        raw = (-((-flops) // lib.grain_flops)).astype(np.int64)
        return np.maximum(1, np.minimum(self.max_threads, raw))

    def _parallel_eff_batch(
        self, flops: np.ndarray, threads: np.ndarray
    ) -> np.ndarray:
        lib = self.library
        ramp = lib.ramp_flops * (threads - 1) / max(1, self.max_threads - 1)
        ptw = flops / threads
        floor = np.minimum(1.0, lib.eff_floor * self.spec.cores / threads)
        eff = np.maximum(floor, ptw / (ptw + ramp))
        return np.where(threads <= 1, 1.0, eff)

    def _shape_eff_batch(
        self, kernel: Kernel, m: np.ndarray, n: np.ndarray, k: np.ndarray
    ) -> np.ndarray:
        lib = self.library
        out = np.minimum(m, n)
        eff = out / (out + lib.out_half)
        if kernel is Kernel.GEMM:
            eff = eff * (k / (k + lib.k_half))
            aspect = k / out
            narrowed = eff * (
                lib.k_aspect_half / (lib.k_aspect_half + aspect - 1.0)
            )
            eff = np.where(aspect > 1.0, narrowed, eff)
        return np.maximum(eff, lib.shape_floor)

    def _gemm_call_batch(
        self,
        m: np.ndarray,
        n: np.ndarray,
        k: np.ndarray,
        precision: Precision,
        warm: bool,
        alpha: float,
        beta: float,
    ) -> np.ndarray:
        lib = self.library
        flops = flops_for_batch(Kernel.GEMM, m, n, k, beta)
        threads = self._engaged_threads_batch(flops)
        rate = (
            self._peak_gflops(precision)
            * (threads / self.max_threads)
            * self._parallel_eff_batch(flops, threads)
            * self._shape_eff_batch(Kernel.GEMM, m, n, k)
            * lib.gemm_eff
        ) * 1e9
        compute = flops / rate
        bytes_moved = kernel_bytes_batch(Kernel.GEMM, m, n, k, precision, beta)
        memory = bytes_moved / (self.spec.mem_bw_gbs * 1e9)
        if warm:
            fits = bytes_moved <= self.spec.llc_bytes
            compute = np.where(
                fits, compute / self.spec.warm_compute_boost, compute
            )
            memory = np.where(
                fits, bytes_moved / (self.spec.cache_bw_gbs * 1e9), memory
            )
        return lib.overhead_s + lib.sync_per_thread_s * threads + np.maximum(
            compute, memory
        )

    def _gemv_call_batch(
        self, m: np.ndarray, n: np.ndarray, precision: Precision, warm: bool
    ) -> np.ndarray:
        lib = self.library
        spec = self.spec
        k = np.zeros(len(m), dtype=np.int64)
        bytes_moved = kernel_bytes_batch(Kernel.GEMV, m, n, k, precision)
        if not lib.gemv_parallel:
            threads = np.ones(len(m), dtype=np.int64)
        elif lib.gemv_grain_rows is not None:
            extent = np.maximum(m, n)
            raw = (-((-extent) // lib.gemv_grain_rows)).astype(np.int64)
            threads = np.maximum(1, np.minimum(self.max_threads, raw))
        else:
            raw = (-((-bytes_moved) // lib.gemv_grain_bytes)).astype(np.int64)
            threads = np.maximum(1, np.minimum(self.max_threads, raw))
        if warm:
            engaged = self.max_threads if lib.gemv_parallel else 1
            bw_hit = min(spec.cache_bw_gbs, engaged * spec.single_core_cache_bw_gbs)
            bw_miss = min(spec.mem_bw_gbs, engaged * spec.single_core_mem_bw_gbs)
            bw = np.where(bytes_moved <= spec.llc_bytes, bw_hit, bw_miss)
        else:
            bw = np.minimum(
                spec.mem_bw_gbs, threads * spec.single_core_mem_bw_gbs
            )
        t = lib.gemv_overhead_s + bytes_moved / (bw * 1e9)
        if lib.gemv_fanout:
            t = t + lib.sync_per_thread_s * self.max_threads
        else:
            t = t + lib.sync_per_thread_s * threads
        return t

    def time_batch(
        self,
        dims_list: Sequence[Dims],
        precision: Precision,
        iterations: int = 1,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> np.ndarray:
        """Vectorized :meth:`time` over a same-kernel batch of problems.

        Returns one total-seconds value per entry of ``dims_list``, each
        bit-identical to the scalar path's answer for that entry.
        """
        if not len(dims_list):
            return np.zeros(0)
        kernel = dims_list[0].kernel
        count = len(dims_list)
        m = np.fromiter((d.m for d in dims_list), dtype=np.int64, count=count)
        n = np.fromiter((d.n for d in dims_list), dtype=np.int64, count=count)
        k = np.fromiter((d.k for d in dims_list), dtype=np.int64, count=count)
        if kernel is Kernel.GEMM:
            first = self._gemm_call_batch(m, n, k, precision, False, alpha, beta)
            rest = (
                self._gemm_call_batch(m, n, k, precision, True, alpha, beta)
                if iterations > 1
                else 0.0
            )
        else:
            first = self._gemv_call_batch(m, n, precision, False)
            rest = (
                self._gemv_call_batch(m, n, precision, True)
                if iterations > 1
                else 0.0
            )
        total = first + (iterations - 1) * rest
        total = total * quirk_factor_batch(
            self.library.quirks, kernel, m, n, k, precision
        )
        name, pv = self.library.name, precision.value
        total = total * self.noise.factor_batch([
            ("cpu", name, d.as_tuple(), pv, iterations) for d in dims_list
        ])
        return total
