"""Page-granular unified-memory simulation.

Unified/managed memory migrates on demand: the GPU's first touch of a
non-resident page raises a fault, the driver services faults in batches
of ``pages_per_fault`` pages, and each serviced batch moves whole pages
over the link at the derated migration bandwidth.  Steady-state
iterations then pay a small residual fault cost plus the re-migration of
the fraction of pages the host touched between kernels
(``iter_refresh_fraction``), and the output pages migrate back on the
host's first post-kernel touch.

:class:`PageTable` tracks residency at page granularity and prices each
phase as a :class:`MigrationPlan`.  Two accounting modes exist:

* ``quantize=True`` (default): whole pages and whole fault batches, the
  behaviour a real driver exhibits.  Aggregate cost **converges to** the
  closed-form USM model of
  :meth:`repro.sim.perfmodel.NodePerfModel.gpu_time` as the working set
  grows (the quantization error is at most one page/batch per phase).
* ``quantize=False``: fractional pages and batches, reproducing the
  closed form **exactly** — the mode the DES backend uses so that the
  analytic-vs-DES ablation isolates scheduling, not rounding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..systems.specs import LinkSpec, UsmSpec

__all__ = ["MigrationPlan", "PageTable", "closed_form_unified_batch"]


def closed_form_unified_batch(
    usm: UsmSpec,
    link: LinkSpec,
    up_bytes,
    down_bytes,
    kernel_s,
    iterations: int,
):
    """Vectorized closed-form Unified-Memory total (fractional pages).

    ``up_bytes``/``down_bytes``/``kernel_s`` are equal-length NumPy
    arrays (one sweep cell each); the return value mirrors the UNIFIED
    branch of :meth:`repro.sim.perfmodel.NodePerfModel.gpu_time`
    expression-for-expression, so each entry is bit-identical to the
    scalar closed form — the same total the fractional (``quantize=
    False``) :class:`PageTable` accounting reproduces one phase at a
    time.
    """
    migrate_bw = link.bw_gbs * usm.migration_bw_scale * 1e9
    faults = up_bytes / (usm.pages_per_fault * usm.page_bytes)
    migrate_in = link.latency_s + faults * usm.fault_latency_s + up_bytes / migrate_bw
    refresh_s = usm.iter_refresh_fraction * (up_bytes / (link.bw_gbs * 1e9))
    per_iter = kernel_s + usm.iter_fault_s + refresh_s
    writeback = link.latency_s + down_bytes / migrate_bw
    return migrate_in + iterations * per_iter + writeback


@dataclass(frozen=True)
class MigrationPlan:
    """The priced outcome of one migration phase."""

    pages: float
    batches: float
    bytes_moved: float
    latency_s: float
    fault_s: float
    copy_s: float

    @property
    def seconds(self) -> float:
        return self.latency_s + self.fault_s + self.copy_s


class PageTable:
    """Residency tracking and migration pricing for one USM allocation
    set on one host<->device link."""

    def __init__(
        self,
        usm: UsmSpec,
        link: LinkSpec,
        *,
        quantize: bool = True,
    ) -> None:
        self.usm = usm
        self.link = link
        self.quantize = quantize
        self.resident_pages: float = 0.0
        self.faults_serviced: float = 0.0
        self.pages_migrated_in: float = 0.0
        self.pages_refreshed: float = 0.0
        self.pages_written_back: float = 0.0

    # -- unit helpers -------------------------------------------------
    def pages_for(self, nbytes: float) -> float:
        """Pages spanned by ``nbytes`` (whole pages when quantized)."""
        pages = nbytes / self.usm.page_bytes
        return float(math.ceil(pages)) if self.quantize else pages

    def _batches_for(self, pages: float) -> float:
        batches = pages / self.usm.pages_per_fault
        return float(math.ceil(batches)) if self.quantize else batches

    def _bytes_for(self, pages: float, nbytes: float) -> float:
        return pages * self.usm.page_bytes if self.quantize else nbytes

    @property
    def resident_bytes(self) -> float:
        return self.resident_pages * self.usm.page_bytes

    @property
    def migration_bw(self) -> float:
        """Fault-driven migration bandwidth in bytes/s (derated link)."""
        return self.link.bw_gbs * self.usm.migration_bw_scale * 1e9

    # -- phases -------------------------------------------------------
    def fault_in(self, nbytes: float) -> MigrationPlan:
        """First GPU touch of ``nbytes``: batched faults + page copies."""
        pages = self.pages_for(nbytes)
        batches = self._batches_for(pages)
        moved = self._bytes_for(pages, nbytes)
        self.resident_pages += pages
        self.faults_serviced += batches
        self.pages_migrated_in += pages
        return MigrationPlan(
            pages=pages,
            batches=batches,
            bytes_moved=moved,
            latency_s=self.link.latency_s,
            fault_s=batches * self.usm.fault_latency_s,
            copy_s=moved / self.migration_bw,
        )

    def refresh(self, nbytes: float) -> MigrationPlan:
        """One iteration's residency churn over a ``nbytes`` working set.

        The host invalidates ``iter_refresh_fraction`` of the pages
        between kernels; those re-migrate at the *full* link bandwidth
        (they are hot and prefetched, not fault-batched), on top of the
        fixed per-iteration fault residual ``iter_fault_s``.
        """
        pages = self.usm.iter_refresh_fraction * (nbytes / self.usm.page_bytes)
        if self.quantize:
            pages = float(math.ceil(pages))
        moved = self._bytes_for(pages, self.usm.iter_refresh_fraction * nbytes)
        self.pages_refreshed += pages
        return MigrationPlan(
            pages=pages,
            batches=0.0,
            bytes_moved=moved,
            latency_s=0.0,
            fault_s=self.usm.iter_fault_s,
            copy_s=moved / (self.link.bw_gbs * 1e9),
        )

    def writeback(self, nbytes: float) -> MigrationPlan:
        """Host re-touch of the output after the last kernel."""
        pages = self.pages_for(nbytes)
        moved = self._bytes_for(pages, nbytes)
        self.pages_written_back += pages
        return MigrationPlan(
            pages=pages,
            batches=0.0,
            bytes_moved=moved,
            latency_s=self.link.latency_s,
            fault_s=0.0,
            copy_s=moved / self.migration_bw,
        )

    def release(self, nbytes: float) -> float:
        """Drop residency for ``nbytes`` (free/evict); returns pages freed."""
        pages = min(self.pages_for(nbytes), self.resident_pages)
        self.resident_pages -= pages
        return pages
