"""Page-granular unified-memory simulation — deferred.

The closed-form USM cost model lives in
:meth:`repro.sim.perfmodel.NodePerfModel.gpu_time` (fault-driven
migration + per-iteration residency refresh).  The page-table-level
simulation of individual fault batches is deferred.
"""

from __future__ import annotations

from ..errors import DeferredFeatureError

__all__ = ["PageTable"]


class PageTable:
    def __init__(self, *args, **kwargs) -> None:
        raise DeferredFeatureError(
            "page-granular USM simulation is deferred; the closed-form "
            "USM model lives in NodePerfModel.gpu_time"
        )
