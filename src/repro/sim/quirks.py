"""Named library quirks the paper calls out.

Each quirk is a multiplicative *time* factor keyed by (kernel, dims,
precision).  Library models carry a tuple of quirk names; the CPU/GPU
models multiply the matching factors into every sample.

* ``onemkl-sq629-cliff`` — oneMKL's square-GEMM performance collapses
  at {629, 629, 629} and recovers gradually by ~{1400} (Fig. 2); this
  single quirk pins DAWN's 1-iteration GEMM thresholds.
* ``nvpl-gemv-flatten`` — NVPL GEMV throughput flattens around
  m = 256 on Grace, pinning Isambard-AI's GEMV thresholds (Table IV).
* ``rocblas-sgemm-k2560`` — rocBLAS SGEMM steps up once K >= 2560.
* ``implicit-scaling`` — DAWN's driver-implicit multi-tile scaling is
  both slower and far noisier than explicit scaling (Fig. 7).
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict

import numpy as np

from ..types import Dims, Kernel, Precision

__all__ = ["QUIRKS", "quirk_factor", "quirk_factor_batch"]

_CLIFF_START = 629
_CLIFF_DEPTH = 1.65  # time multiplier at the cliff edge is 1 + depth
_CLIFF_RECOVER = 1400


def _onemkl_sq629_cliff(kernel: Kernel, dims: Dims, precision: Precision) -> float:
    if kernel is not Kernel.GEMM or dims.min_dim < _CLIFF_START:
        return 1.0
    span = _CLIFF_RECOVER - _CLIFF_START
    frac = max(0.0, (_CLIFF_RECOVER - dims.min_dim) / span)
    return 1.0 + _CLIFF_DEPTH * frac


def _nvpl_gemv_flatten(kernel: Kernel, dims: Dims, precision: Precision) -> float:
    if kernel is not Kernel.GEMV:
        return 1.0
    s = min(dims.m, dims.n)
    if s < 195 or s >= 2048:
        return 1.0
    # Flat shoulder: strongest near 256, tapering away by 2048.
    frac = max(0.0, (2048 - s) / (2048 - 192))
    return 1.0 + 0.9 * frac


def _rocblas_sgemm_k2560(kernel: Kernel, dims: Dims, precision: Precision) -> float:
    if kernel is Kernel.GEMM and precision is Precision.SINGLE and dims.k >= 2560:
        return 0.85
    return 1.0


def _implicit_scaling(kernel: Kernel, dims: Dims, precision: Precision) -> float:
    if dims.max_dim < 512:
        return 1.05
    digest = zlib.crc32(repr(("implicit", dims.as_tuple())).encode())
    unit = digest / 0xFFFFFFFF
    return 1.40 + 0.55 * (2.0 * unit - 1.0)


QUIRKS: Dict[str, Callable[[Kernel, Dims, Precision], float]] = {
    "onemkl-sq629-cliff": _onemkl_sq629_cliff,
    "nvpl-gemv-flatten": _nvpl_gemv_flatten,
    "rocblas-sgemm-k2560": _rocblas_sgemm_k2560,
    "implicit-scaling": _implicit_scaling,
}


def quirk_factor(names, kernel: Kernel, dims: Dims, precision: Precision) -> float:
    factor = 1.0
    for name in names:
        factor *= QUIRKS[name](kernel, dims, precision)
    return factor


# -- vectorized forms -------------------------------------------------
#
# Each batch quirk mirrors its scalar twin expression-for-expression so
# the two agree to the bit (asserted by the batch==scalar hypothesis
# test).  Quirks without a vectorized form (the CRC-keyed implicit-
# scaling jitter) fall back to a per-element loop over the scalar
# function — still exact, just not array-fast.


def _onemkl_sq629_cliff_batch(
    kernel: Kernel, m: np.ndarray, n: np.ndarray, k: np.ndarray,
    precision: Precision,
) -> np.ndarray:
    if kernel is not Kernel.GEMM:
        return np.ones(len(m))
    min_dim = np.minimum(np.minimum(m, n), k)
    span = _CLIFF_RECOVER - _CLIFF_START
    frac = np.maximum(0.0, (_CLIFF_RECOVER - min_dim) / span)
    return np.where(min_dim < _CLIFF_START, 1.0, 1.0 + _CLIFF_DEPTH * frac)


def _nvpl_gemv_flatten_batch(
    kernel: Kernel, m: np.ndarray, n: np.ndarray, k: np.ndarray,
    precision: Precision,
) -> np.ndarray:
    if kernel is not Kernel.GEMV:
        return np.ones(len(m))
    s = np.minimum(m, n)
    frac = np.maximum(0.0, (2048 - s) / (2048 - 192))
    return np.where((s < 195) | (s >= 2048), 1.0, 1.0 + 0.9 * frac)


def _rocblas_sgemm_k2560_batch(
    kernel: Kernel, m: np.ndarray, n: np.ndarray, k: np.ndarray,
    precision: Precision,
) -> np.ndarray:
    if kernel is Kernel.GEMM and precision is Precision.SINGLE:
        return np.where(k >= 2560, 0.85, 1.0)
    return np.ones(len(m))


_QUIRKS_BATCH: Dict[str, Callable] = {
    "onemkl-sq629-cliff": _onemkl_sq629_cliff_batch,
    "nvpl-gemv-flatten": _nvpl_gemv_flatten_batch,
    "rocblas-sgemm-k2560": _rocblas_sgemm_k2560_batch,
}


def quirk_factor_batch(
    names, kernel: Kernel, m: np.ndarray, n: np.ndarray, k: np.ndarray,
    precision: Precision,
) -> np.ndarray:
    """Elementwise :func:`quirk_factor` over arrays of dimensions."""
    factor = np.ones(len(m))
    for name in names:
        batch_fn = _QUIRKS_BATCH.get(name)
        if batch_fn is not None:
            factor = factor * batch_fn(kernel, m, n, k, precision)
        else:
            scalar_fn = QUIRKS[name]
            factor = factor * np.array([
                scalar_fn(
                    kernel,
                    Dims(int(mi), int(ni), int(ki)),
                    precision,
                )
                for mi, ni, ki in zip(m, n, k)
            ])
    return factor
