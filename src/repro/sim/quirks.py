"""Named library quirks the paper calls out.

Each quirk is a multiplicative *time* factor keyed by (kernel, dims,
precision).  Library models carry a tuple of quirk names; the CPU/GPU
models multiply the matching factors into every sample.

* ``onemkl-sq629-cliff`` — oneMKL's square-GEMM performance collapses
  at {629, 629, 629} and recovers gradually by ~{1400} (Fig. 2); this
  single quirk pins DAWN's 1-iteration GEMM thresholds.
* ``nvpl-gemv-flatten`` — NVPL GEMV throughput flattens around
  m = 256 on Grace, pinning Isambard-AI's GEMV thresholds (Table IV).
* ``rocblas-sgemm-k2560`` — rocBLAS SGEMM steps up once K >= 2560.
* ``implicit-scaling`` — DAWN's driver-implicit multi-tile scaling is
  both slower and far noisier than explicit scaling (Fig. 7).
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict

from ..types import Dims, Kernel, Precision

__all__ = ["QUIRKS", "quirk_factor"]

_CLIFF_START = 629
_CLIFF_DEPTH = 1.65  # time multiplier at the cliff edge is 1 + depth
_CLIFF_RECOVER = 1400


def _onemkl_sq629_cliff(kernel: Kernel, dims: Dims, precision: Precision) -> float:
    if kernel is not Kernel.GEMM or dims.min_dim < _CLIFF_START:
        return 1.0
    span = _CLIFF_RECOVER - _CLIFF_START
    frac = max(0.0, (_CLIFF_RECOVER - dims.min_dim) / span)
    return 1.0 + _CLIFF_DEPTH * frac


def _nvpl_gemv_flatten(kernel: Kernel, dims: Dims, precision: Precision) -> float:
    if kernel is not Kernel.GEMV:
        return 1.0
    s = min(dims.m, dims.n)
    if s < 195 or s >= 2048:
        return 1.0
    # Flat shoulder: strongest near 256, tapering away by 2048.
    frac = max(0.0, (2048 - s) / (2048 - 192))
    return 1.0 + 0.9 * frac


def _rocblas_sgemm_k2560(kernel: Kernel, dims: Dims, precision: Precision) -> float:
    if kernel is Kernel.GEMM and precision is Precision.SINGLE and dims.k >= 2560:
        return 0.85
    return 1.0


def _implicit_scaling(kernel: Kernel, dims: Dims, precision: Precision) -> float:
    if dims.max_dim < 512:
        return 1.05
    digest = zlib.crc32(repr(("implicit", dims.as_tuple())).encode())
    unit = digest / 0xFFFFFFFF
    return 1.40 + 0.55 * (2.0 * unit - 1.0)


QUIRKS: Dict[str, Callable[[Kernel, Dims, Precision], float]] = {
    "onemkl-sq629-cliff": _onemkl_sq629_cliff,
    "nvpl-gemv-flatten": _nvpl_gemv_flatten,
    "rocblas-sgemm-k2560": _rocblas_sgemm_k2560,
    "implicit-scaling": _implicit_scaling,
}


def quirk_factor(names, kernel: Kernel, dims: Dims, precision: Precision) -> float:
    factor = 1.0
    for name in names:
        factor *= QUIRKS[name](kernel, dims, precision)
    return factor
