"""Node-level composition: CPU, GPU and the three transfer paradigms.

Closed forms (section III-B of the paper):

* Transfer-Once:   ``h2d(A,B,C) + i * kernel + d2h(C)``
* Transfer-Always: ``i * (staged h2d + kernel + staged d2h)``
* Unified-Memory:  fault-driven migration in, ``i *`` (kernel + residency
  refresh), then writeback.

Each direction of an explicit transfer pays the link latency; Transfer-
Always additionally streams through unpinned staging buffers
(``link.staging_bw_scale``), which is why its thresholds *rise* with
data re-use while Transfer-Once's fall.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..blas.registry import CpuLibraryModel, GpuLibraryModel, get_cpu_library, get_gpu_library
from ..core.flops import (
    d2h_bytes,
    d2h_bytes_batch,
    flops_for,
    h2d_bytes,
    h2d_bytes_batch,
)
from ..systems.specs import SystemSpec
from ..types import Dims, Precision, TransferType
from .cpu import CpuModel
from .gpu import GpuModel
from .noise import NO_NOISE, NoiseModel
from .usm import closed_form_unified_batch

__all__ = ["NodePerfModel"]


class NodePerfModel:
    """Analytic performance model of one heterogeneous node."""

    def __init__(
        self,
        spec: SystemSpec,
        cpu_library: Optional[CpuLibraryModel] = None,
        gpu_library: Optional[GpuLibraryModel] = None,
        cpu_threads: Optional[int] = None,
        noise: NoiseModel = NO_NOISE,
    ) -> None:
        self.spec = spec
        cpu_lib = cpu_library or get_cpu_library(spec.cpu_library)
        threads = cpu_threads or cpu_lib.threads or spec.cpu_threads
        self.cpu = CpuModel(spec.cpu, cpu_lib, max_threads=threads, noise=noise)
        if spec.gpu is not None:
            gpu_lib = gpu_library or get_gpu_library(spec.gpu_library)
            self.gpu = GpuModel(spec.gpu, gpu_lib, noise=NO_NOISE)
        else:
            self.gpu = None
        self.noise = noise

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def has_gpu(self) -> bool:
        return self.gpu is not None

    # -- device-side pieces -------------------------------------------
    def cpu_time(
        self,
        dims: Dims,
        precision: Precision,
        iterations: int = 1,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> float:
        return self.cpu.time(dims, precision, iterations, alpha, beta)

    def kernel_time(
        self, dims: Dims, precision: Precision, alpha: float = 1.0, beta: float = 0.0
    ) -> float:
        return self.gpu.kernel_time(dims, precision, alpha, beta)

    def h2d_time(self, dims: Dims, precision: Precision) -> float:
        link = self.spec.link
        return link.latency_s + h2d_bytes(dims, precision) / (link.bw_gbs * 1e9)

    def d2h_time(self, dims: Dims, precision: Precision) -> float:
        link = self.spec.link
        return link.latency_s + d2h_bytes(dims, precision) / (link.bw_gbs * 1e9)

    # -- paradigms ----------------------------------------------------
    def _gpu_total(
        self,
        dims: Dims,
        precision: Precision,
        iterations: int,
        transfer: TransferType,
        alpha: float,
        beta: float,
    ) -> float:
        link = self.spec.link
        kern = self.gpu.kernel_time(dims, precision, alpha, beta)
        up = h2d_bytes(dims, precision)
        down = d2h_bytes(dims, precision)
        if transfer is TransferType.ONCE:
            total = (
                self.h2d_time(dims, precision)
                + iterations * kern
                + self.d2h_time(dims, precision)
            )
        elif transfer is TransferType.ALWAYS:
            staged_bw = link.bw_gbs * link.staging_bw_scale * 1e9
            per_iter = (
                2.0 * link.latency_s + (up + down) / staged_bw + kern
            )
            total = iterations * per_iter
        else:  # UNIFIED
            usm = self.spec.usm
            migrate_bw = link.bw_gbs * usm.migration_bw_scale * 1e9
            faults = up / (usm.pages_per_fault * usm.page_bytes)
            migrate_in = link.latency_s + faults * usm.fault_latency_s + up / migrate_bw
            per_iter = kern + usm.iter_fault_s + usm.iter_refresh_fraction * (
                up / (link.bw_gbs * 1e9)
            )
            writeback = link.latency_s + down / migrate_bw
            total = migrate_in + iterations * per_iter + writeback
        return total

    def gpu_time(
        self,
        dims: Dims,
        precision: Precision,
        iterations: int = 1,
        transfer: TransferType = TransferType.ONCE,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> float:
        total = self._gpu_total(dims, precision, iterations, transfer, alpha, beta)
        total *= self.noise.factor(
            ("gpu", transfer.value, dims.as_tuple(), precision.value, iterations)
        )
        return total

    # -- vectorized fast path -----------------------------------------
    def cpu_time_batch(
        self,
        dims_list: Sequence[Dims],
        precision: Precision,
        iterations: int = 1,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> np.ndarray:
        """Vectorized :meth:`cpu_time` over a same-kernel batch of
        problems; entry-by-entry bit-identical to the scalar path."""
        return self.cpu.time_batch(dims_list, precision, iterations, alpha, beta)

    def gpu_time_batch(
        self,
        dims_list: Sequence[Dims],
        precision: Precision,
        iterations: int = 1,
        transfer: TransferType = TransferType.ONCE,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> np.ndarray:
        """Vectorized :meth:`gpu_time` over a same-kernel batch of
        problems; entry-by-entry bit-identical to the scalar path."""
        if not len(dims_list):
            return np.zeros(0)
        kernel = dims_list[0].kernel
        count = len(dims_list)
        m = np.fromiter((d.m for d in dims_list), dtype=np.int64, count=count)
        n = np.fromiter((d.n for d in dims_list), dtype=np.int64, count=count)
        k = np.fromiter((d.k for d in dims_list), dtype=np.int64, count=count)
        link = self.spec.link
        kern = self.gpu.kernel_time_batch(kernel, m, n, k, precision, alpha, beta)
        up = h2d_bytes_batch(kernel, m, n, k, precision)
        down = d2h_bytes_batch(kernel, m, n, k, precision)
        if transfer is TransferType.ONCE:
            h2d = link.latency_s + up / (link.bw_gbs * 1e9)
            d2h = link.latency_s + down / (link.bw_gbs * 1e9)
            total = (
                h2d
                + iterations * kern
                + d2h
            )
        elif transfer is TransferType.ALWAYS:
            staged_bw = link.bw_gbs * link.staging_bw_scale * 1e9
            per_iter = (
                2.0 * link.latency_s + (up + down) / staged_bw + kern
            )
            total = iterations * per_iter
        else:  # UNIFIED
            total = closed_form_unified_batch(
                self.spec.usm, link, up, down, kern, iterations
            )
        tv, pv = transfer.value, precision.value
        total = total * self.noise.factor_batch([
            ("gpu", tv, d.as_tuple(), pv, iterations) for d in dims_list
        ])
        return total

    # -- convenience rates --------------------------------------------
    def cpu_gflops(
        self, dims: Dims, precision: Precision, iterations: int = 1
    ) -> float:
        t = self.cpu_time(dims, precision, iterations)
        return iterations * flops_for(dims) / t / 1e9

    def gpu_gflops(
        self,
        dims: Dims,
        precision: Precision,
        iterations: int = 1,
        transfer: TransferType = TransferType.ONCE,
    ) -> float:
        t = self.gpu_time(dims, precision, iterations, transfer)
        return iterations * flops_for(dims) / t / 1e9
