"""Deterministic run-to-run noise.

Real sweeps jitter by a percent or two; the simulator reproduces that
with a *deterministic* multiplicative factor derived from a CRC of the
sample key, so identical configurations always produce identical
curves (a property the ablation benchmark relies on).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["NO_NOISE", "DeterministicNoise", "NoiseModel"]


@dataclass(frozen=True)
class NoiseModel:
    """Base: no noise.  ``factor`` maps a hashable sample key to a
    multiplicative time factor."""

    amplitude: float = 0.0

    def __post_init__(self) -> None:
        # amplitude >= 1 would allow a zero or negative time factor,
        # which poisons every GFLOP/s rate downstream.
        if not 0.0 <= self.amplitude < 1.0:
            raise ConfigError(
                f"noise amplitude must be in [0, 1), got {self.amplitude}"
            )

    def factor(self, key: tuple) -> float:
        return 1.0


@dataclass(frozen=True)
class DeterministicNoise(NoiseModel):
    """Uniform multiplicative noise in ``1 +/- amplitude``, keyed by a
    stable CRC32 of (seed, key)."""

    amplitude: float = 0.02
    seed: int = 0

    def factor(self, key: tuple) -> float:
        if self.amplitude == 0.0:
            return 1.0
        digest = zlib.crc32(repr((self.seed,) + tuple(key)).encode())
        unit = digest / 0xFFFFFFFF  # [0, 1]
        return 1.0 + self.amplitude * (2.0 * unit - 1.0)


NO_NOISE = NoiseModel()
