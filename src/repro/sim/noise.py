"""Deterministic run-to-run noise.

Real sweeps jitter by a percent or two; the simulator reproduces that
with a *deterministic* multiplicative factor derived from a CRC of the
sample key, so identical configurations always produce identical
curves (a property the ablation benchmark relies on).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from functools import lru_cache

from ..errors import ConfigError

__all__ = ["NO_NOISE", "DeterministicNoise", "NoiseModel"]


@lru_cache(maxsize=1 << 17)
def _crc_unit(seed: int, key: tuple) -> float:
    """Memoized CRC draw in [0, 1].  Pure in (seed, key), and sweep
    re-runs (warm caches, repeated bench rounds, resumed configs) ask
    for the same keys again — caching skips the repr+CRC round trip
    without changing a single drawn value."""
    return zlib.crc32(repr((seed,) + key).encode()) / 0xFFFFFFFF


@dataclass(frozen=True)
class NoiseModel:
    """Base: no noise.  ``factor`` maps a hashable sample key to a
    multiplicative time factor."""

    amplitude: float = 0.0

    def __post_init__(self) -> None:
        # amplitude >= 1 would allow a zero or negative time factor,
        # which poisons every GFLOP/s rate downstream.
        if not 0.0 <= self.amplitude < 1.0:
            raise ConfigError(
                f"noise amplitude must be in [0, 1), got {self.amplitude}"
            )

    def factor(self, key: tuple) -> float:
        return 1.0

    def factor_batch(self, keys) -> "object":
        """Array of :meth:`factor` over a sequence of sample keys.

        The base class hashes nothing, so subclasses that keep the
        default identity factor get a constant-time batch path; noisy
        subclasses inherit an exact per-key loop.
        """
        import numpy as np

        if type(self).factor is NoiseModel.factor:
            return np.ones(len(keys))
        return np.array([self.factor(key) for key in keys])


@dataclass(frozen=True)
class DeterministicNoise(NoiseModel):
    """Uniform multiplicative noise in ``1 +/- amplitude``, keyed by a
    stable CRC32 of (seed, key)."""

    amplitude: float = 0.02
    seed: int = 0

    def factor(self, key: tuple) -> float:
        if self.amplitude == 0.0:
            return 1.0
        unit = _crc_unit(self.seed, tuple(key))
        return 1.0 + self.amplitude * (2.0 * unit - 1.0)

    def factor_batch(self, keys):
        """Batch draw: the CRC stays per-key (and memoized), but the
        unit-to-factor arithmetic vectorizes.  CRC digests fit float64
        exactly (< 2**32), so each factor is bit-identical to
        :meth:`factor`."""
        import numpy as np

        if self.amplitude == 0.0:
            return np.ones(len(keys))
        seed = self.seed
        units = np.fromiter(
            (_crc_unit(seed, key) for key in keys),
            dtype=np.float64,
            count=len(keys),
        )
        return 1.0 + self.amplitude * (2.0 * units - 1.0)


NO_NOISE = NoiseModel()
