"""Closed-form GPU kernel timing model.

Per-iteration kernel time::

    launch + max(F / (peak * occupancy), bytes / effective_bw)

The occupancy ramp ``F / (F + occ_ramp)`` models device fill: small
kernels cannot use every execution unit, which is why GPU time is flat
(launch-bound) at small sizes.  GEMV adds a row-parallelism factor —
matrices with few rows cannot saturate the memory system.
"""

from __future__ import annotations

import numpy as np

from ..blas.registry import GpuLibraryModel
from ..core.flops import flops_for, flops_for_batch, kernel_bytes, kernel_bytes_batch
from ..systems.specs import GpuSpec
from ..types import Dims, Kernel, Precision
from .noise import NO_NOISE, NoiseModel
from .quirks import quirk_factor, quirk_factor_batch

__all__ = ["GpuModel"]

#: Fraction of the beta-update's extra output-read traffic that is NOT
#: hidden behind the operand streams.
_BETA_READ_EXPOSED = 0.7


class GpuModel:
    def __init__(
        self,
        spec: GpuSpec,
        library: GpuLibraryModel,
        noise: NoiseModel = NO_NOISE,
    ) -> None:
        self.spec = spec
        self.library = library
        self.noise = noise

    def occupancy(self, flops: float) -> float:
        return flops / (flops + self.library.occ_ramp_flops)

    def _bandwidth_gbs(self, dims: Dims) -> float:
        bw = self.spec.mem_bw_gbs * self.library.hbm_eff
        if dims.kernel is Kernel.GEMV:
            row_eff = dims.m / (dims.m + self.library.gemv_row_half)
            bw = self.spec.mem_bw_gbs * self.library.gemv_bw_eff * row_eff
        return bw

    def kernel_time(
        self,
        dims: Dims,
        precision: Precision,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> float:
        """One kernel execution, launch included (no data movement)."""
        flops = flops_for(dims, beta)
        peak = self.spec.peak_gflops(precision.value) * 1e9
        compute = flops / (peak * self.occupancy(flops))
        # The beta != 0 read of C streams alongside the operand reads and
        # is partially hidden — measured beta-update slowdowns top out
        # around 1.7x, not the 2x a pure traffic count would predict.
        base_bytes = kernel_bytes(dims, precision)
        beta_bytes = kernel_bytes(dims, precision, beta) - base_bytes
        memory = (base_bytes + _BETA_READ_EXPOSED * beta_bytes) / (
            self._bandwidth_gbs(dims) * 1e9
        )
        launch = (
            self.library.gemv_launch_s
            if dims.kernel is Kernel.GEMV
            else self.library.launch_s
        )
        t = launch + max(compute, memory)
        t *= quirk_factor(self.library.quirks, dims.kernel, dims, precision)
        return t

    def kernel_time_batch(
        self,
        kernel: Kernel,
        m: np.ndarray,
        n: np.ndarray,
        k: np.ndarray,
        precision: Precision,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> np.ndarray:
        """Vectorized :meth:`kernel_time` over a same-kernel batch,
        bit-identical to the scalar path entry by entry."""
        flops = flops_for_batch(kernel, m, n, k, beta)
        peak = self.spec.peak_gflops(precision.value) * 1e9
        occupancy = flops / (flops + self.library.occ_ramp_flops)
        compute = flops / (peak * occupancy)
        base_bytes = kernel_bytes_batch(kernel, m, n, k, precision)
        beta_bytes = kernel_bytes_batch(kernel, m, n, k, precision, beta) - base_bytes
        if kernel is Kernel.GEMV:
            row_eff = m / (m + self.library.gemv_row_half)
            bw = self.spec.mem_bw_gbs * self.library.gemv_bw_eff * row_eff
            launch = self.library.gemv_launch_s
        else:
            bw = self.spec.mem_bw_gbs * self.library.hbm_eff
            launch = self.library.launch_s
        memory = (base_bytes + _BETA_READ_EXPOSED * beta_bytes) / (bw * 1e9)
        t = launch + np.maximum(compute, memory)
        t = t * quirk_factor_batch(self.library.quirks, kernel, m, n, k, precision)
        return t

    def noisy_kernel_time(
        self,
        dims: Dims,
        precision: Precision,
        iterations: int = 1,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> float:
        """Total kernel-only seconds for ``iterations`` launches."""
        t = iterations * self.kernel_time(dims, precision, alpha, beta)
        t *= self.noise.factor(("gpu", self.library.name, dims.as_tuple(),
                                precision.value, iterations))
        return t
