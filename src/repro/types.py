"""Core value types shared by every layer of the repro engine.

These mirror the vocabulary of the paper: two kernels (GEMM/GEMV), two
benchmarked precisions (plus the two extension precisions from the
future-work section), three data-transfer paradigms, and the problem
dimensions ``{m, n, k}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = [
    "ALL_PRECISIONS",
    "DeviceKind",
    "Dims",
    "Kernel",
    "PAPER_ITERATION_COUNTS",
    "Precision",
    "TransferType",
]


class Kernel(Enum):
    """The two dense BLAS kernels the paper sweeps."""

    GEMM = "gemm"
    GEMV = "gemv"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Precision(Enum):
    """Floating-point precisions; SINGLE/DOUBLE are the paper's pair."""

    SINGLE = "single"
    DOUBLE = "double"
    HALF = "half"
    BFLOAT16 = "bfloat16"

    @property
    def itemsize(self) -> int:
        return _ITEMSIZE[self]

    @property
    def blas_prefix(self) -> str:
        """The BLAS naming prefix: sgemm, dgemm, hgemm, bf16gemm."""
        return _PREFIX[self]

    @property
    def np_dtype(self) -> str:
        """NumPy dtype name (bfloat16 is emulated with float32)."""
        return _NP_DTYPE[self]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_ITEMSIZE = {
    Precision.SINGLE: 4,
    Precision.DOUBLE: 8,
    Precision.HALF: 2,
    Precision.BFLOAT16: 2,
}
_PREFIX = {
    Precision.SINGLE: "s",
    Precision.DOUBLE: "d",
    Precision.HALF: "h",
    Precision.BFLOAT16: "bf16",
}
_NP_DTYPE = {
    Precision.SINGLE: "float32",
    Precision.DOUBLE: "float64",
    Precision.HALF: "float16",
    Precision.BFLOAT16: "float32",
}

#: The precisions every paper table/figure reports.
ALL_PRECISIONS = (Precision.SINGLE, Precision.DOUBLE)

#: The iteration counts used throughout the paper's tables.
PAPER_ITERATION_COUNTS = (1, 8, 32, 64, 128)


class TransferType(Enum):
    """The three CPU->GPU data-transfer paradigms of section III-B."""

    ONCE = "once"
    ALWAYS = "always"
    UNIFIED = "unified"

    @property
    def label(self) -> str:
        return _TRANSFER_LABEL[self]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_TRANSFER_LABEL = {
    TransferType.ONCE: "Transfer-Once",
    TransferType.ALWAYS: "Transfer-Always",
    TransferType.UNIFIED: "Unified-Memory",
}


class DeviceKind(Enum):
    CPU = "cpu"
    GPU = "gpu"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=True)
class Dims:
    """Problem dimensions.  GEMV uses ``k == 0`` (y = alpha*A@x + beta*y
    with A of shape m x n), so ``Dims(m, n)`` is the GEMV form.
    """

    m: int
    n: int
    k: int = 0

    @property
    def is_gemm(self) -> bool:
        return self.k > 0

    @property
    def kernel(self) -> Kernel:
        return Kernel.GEMM if self.is_gemm else Kernel.GEMV

    @property
    def min_dim(self) -> int:
        dims = (self.m, self.n, self.k) if self.is_gemm else (self.m, self.n)
        return min(dims)

    @property
    def max_dim(self) -> int:
        return max(self.m, self.n, self.k)

    def as_tuple(self) -> tuple:
        return (self.m, self.n, self.k) if self.is_gemm else (self.m, self.n)

    def __str__(self) -> str:
        """Paper-style threshold notation: ``{m, n, k}`` / ``{m, n}``."""
        return "{" + ", ".join(str(d) for d in self.as_tuple()) + "}"
