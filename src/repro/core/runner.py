"""The sweep runner: GPU-BLOB's main loop over a backend.

For every (problem type, precision) pair in the config the runner walks
the sweep parameters in ascending order, samples the CPU and then the
GPU under each transfer paradigm, and collects the timings into one
:class:`~repro.core.records.ProblemSeries` — the unit the threshold
detector and all tables/figures consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..types import Kernel, Precision, TransferType
from .config import RunConfig
from .records import ProblemSeries
from .threshold import ThresholdResult, threshold_for_series

__all__ = ["RunResult", "run_sweep"]


@dataclass
class RunResult:
    """Everything one ``run_sweep`` call produced."""

    config: RunConfig
    system_name: Optional[str] = None
    series: List[ProblemSeries] = field(default_factory=list)

    def series_for(
        self, kernel: Kernel, ident: str, precision: Precision
    ) -> ProblemSeries:
        for s in self.series:
            if (
                s.kernel is kernel
                and s.ident == ident
                and s.precision is precision
            ):
                return s
        raise KeyError(
            f"no series for ({kernel.value}, {ident!r}, {precision.value}) "
            "in this run"
        )

    def thresholds(
        self, min_consecutive: int = 2
    ) -> Dict[Tuple[str, str, TransferType], ThresholdResult]:
        """Offload thresholds of every series under every swept paradigm,
        keyed ``(blas_name, problem_ident, transfer)`` — e.g.
        ``("sgemm", "square", TransferType.ONCE)``."""
        out: Dict[Tuple[str, str, TransferType], ThresholdResult] = {}
        for s in self.series:
            blas_name = s.precision.blas_prefix + s.kernel.value
            for transfer in s.transfer_types():
                out[(blas_name, s.ident, transfer)] = threshold_for_series(
                    s, transfer, min_consecutive
                )
        return out


def run_sweep(
    backend,
    config: RunConfig,
    system_name: Optional[str] = None,
) -> RunResult:
    """Execute one GPU-BLOB sweep of ``config`` on ``backend``.

    ``backend`` is either a :class:`~repro.backends.base.Backend`
    instance or a registry name (``"analytic"``, ``"des"``, ``"host"``);
    a name is resolved through :func:`repro.backends.make_backend`,
    building the model from ``system_name`` when one is needed.
    """
    if isinstance(backend, str):
        from ..backends import make_backend

        backend = make_backend(backend, system=system_name)
    if system_name is None:
        system_name = getattr(backend, "system_name", None)
    result = RunResult(config=config, system_name=system_name)
    gpu_on = config.gpu_enabled and backend.has_gpu
    transfers = tuple(
        t for t in config.transfers if t in backend.gpu_transfers
    ) if gpu_on else ()

    for problem_type in config.problem_types():
        params = config.sweep_params(problem_type)
        for precision in config.precisions:
            series = ProblemSeries(
                problem_type=problem_type,
                precision=precision,
                iterations=config.iterations,
            )
            for p in params:
                dims = problem_type.dims_at(p)
                if config.cpu_enabled:
                    series.add(
                        backend.cpu_sample(
                            problem_type.kernel, dims, precision,
                            config.iterations, config.alpha, config.beta,
                        )
                    )
                for transfer in transfers:
                    sample = backend.gpu_sample(
                        problem_type.kernel, dims, precision,
                        config.iterations, transfer,
                        config.alpha, config.beta,
                    )
                    if sample is not None:
                        series.add(sample)
            result.series.append(series)
    return result
