"""The sweep runner: GPU-BLOB's main loop over a backend, made resilient.

For every (problem type, precision) pair in the config the runner walks
the sweep parameters in ascending order, samples the CPU and then the
GPU under each transfer paradigm, and collects the timings into one
:class:`~repro.core.records.ProblemSeries` — the unit the threshold
detector and all tables/figures consume.

Three execution strategies exist, all producing bit-identical results:

* the classic per-cell loop (the reference path — always correct, and
  the only path under fault injection);
* a **vectorized fast path**: when no fault injector wraps the backend
  and the backend exposes ``cpu_sample_batch``/``gpu_sample_batch``
  (the analytic backend does), every (device, transfer) column of a
  series is evaluated in one NumPy shot;
* a **parallel executor**: ``run_sweep(..., jobs=N)`` shards the
  (problem type, precision) series across a persistent *warm* process
  pool (:mod:`repro.core.workerpool` — spawned once, reused across
  sweeps) and merges the results in deterministic series order.  Each
  worker runs the vectorized fast path over its whole shard and returns
  samples through a shared-memory segment instead of pickled lists.
  Each worker journals to its own checkpoint shard, merged into the
  single JSONL journal when the pool drains.  The runner falls back to
  in-process execution when ``jobs=1``, when faults are enabled, or
  when the backend/config cannot be pickled (the DES engine stays
  serial *within* a series, but series still parallelize).

A fourth, orthogonal mode — ``RunConfig.adaptive`` — replaces the dense
grid walk with a coarse-grid + bisection sweep
(:mod:`repro.core.adaptive`) that produces dense-identical thresholds
from a fraction of the cells.

With ``cache_dir=`` the runner keys a content-addressed result store on
the checkpoint config fingerprint plus the backend's ``cache_token``;
re-running an identical (config, system, backend) sweep is a cache hit
that replays the stored samples exactly (floats round-trip through JSON
bit-for-bit).  Only complete, fault-free, non-degraded runs are stored.

Unlike a lab-bench loop, ``run_sweep`` assumes samples can *fail* the
way they do on real HPC queues (see :mod:`repro.faults`):

* transient faults (kernel failures, DMA errors, deadline overruns) are
  retried up to :attr:`RetryPolicy.max_retries` times with exponential
  backoff and deterministic jitter, tracked on a simulated clock;
* cells that exhaust their retries land on the run's quarantine list
  instead of crashing the sweep;
* an unexpected backend exception (a DES engine bug, say) degrades the
  sweep to a fallback backend — by default the analytic model behind a
  failing DES backend — and flags the result ``degraded``;
* :class:`~repro.errors.DeviceLostError` is permanent: the sweep
  finishes CPU-only and every series with missing GPU cells is flagged
  ``partial``.

With ``checkpoint=`` the runner journals every completed cell to an
append-only JSONL file (:mod:`repro.faults.checkpoint`); ``resume=True``
replays the journal so an interrupted sweep continues — and finishes
byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from ..errors import (
    RETRYABLE_ERRORS,
    DeviceLostError,
    PartialSweepWarning,
    ReproError,
    SampleTimeoutError,
)
from ..faults.checkpoint import (
    CheckpointReader,
    CheckpointWriter,
    sample_key,
)
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..types import DeviceKind, Dims, Kernel, Precision, TransferType
from .config import RunConfig
from .invariants import (
    InvariantContext,
    guard_samples,
    guard_spec,
    invariant_context,
)
from .records import PerfSample, ProblemSeries, QuarantineEntry
from .threshold import ThresholdResult, threshold_for_series

__all__ = ["RetryPolicy", "RunResult", "SweepStats", "run_sweep"]


@dataclass(frozen=True)
class RetryPolicy:
    """How the runner reacts to per-sample failures.

    Backoff is *simulated* — the runner never sleeps; it accumulates the
    would-be wait on :attr:`SweepStats.backoff_s` so chaos sweeps stay
    fast and deterministic.  ``sample_timeout_s`` is a per-sample
    deadline against the sample's simulated seconds: overruns raise
    :class:`~repro.errors.SampleTimeoutError` and are retried like any
    transient fault (a hung sample redraws its faults on retry).
    """

    max_retries: int = 3
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0
    jitter: float = 0.1
    sample_timeout_s: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        from ..errors import ConfigError

        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_s < 0 or self.backoff_factor < 1:
            raise ConfigError("backoff must be non-negative and non-shrinking")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.sample_timeout_s is not None and self.sample_timeout_s <= 0:
            raise ConfigError(
                f"sample_timeout_s must be > 0, got {self.sample_timeout_s}"
            )

    def backoff_s(self, attempt: int, key: tuple) -> float:
        """Simulated wait before retry ``attempt`` (1-based), with
        deterministic jitter keyed like the fault plan."""
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        if self.jitter == 0.0:
            return base
        unit = _backoff_unit(self.seed, attempt, tuple(key))
        return base * (1.0 + self.jitter * (2.0 * unit - 1.0))


@lru_cache(maxsize=8192)
def _backoff_unit(seed: int, attempt: int, key: tuple) -> float:
    """Memoized BLAKE2b jitter draw for :meth:`RetryPolicy.backoff_s`.

    The draw is pure in (seed, attempt, key), and chaos sweeps re-ask
    for the same cell's jitter on every retry ladder replay — caching
    skips the repr+hash round trip without changing a single value.
    """
    from ..faults.plan import _unit

    return _unit((seed, "backoff", attempt) + key)


@dataclass
class SweepStats:
    """Bookkeeping of one resilient sweep (excluded from equality, so a
    resumed run still compares equal to an uninterrupted one)."""

    retries: int = 0
    backoff_s: float = 0.0
    resumed_samples: int = 0
    fallback_samples: int = 0
    #: samples replayed from the content-addressed sweep cache
    cached_samples: int = 0
    #: parallel shards re-submitted after a worker death or deadline
    worker_retries: int = 0
    #: parallel shards that exhausted pool retries and ran in-process
    inprocess_shards: int = 0
    #: adaptive mode: cells actually sampled vs. the dense grid they
    #: answered for (both zero on dense sweeps and cache replays)
    adaptive_cells_sampled: int = 0
    adaptive_cells_dense: int = 0


@dataclass
class RunResult:
    """Everything one ``run_sweep`` call produced."""

    config: RunConfig
    system_name: Optional[str] = None
    series: List[ProblemSeries] = field(default_factory=list)
    #: cells that exhausted retries (or died with the device) — excluded
    #: from their series, listed here instead of crashing the sweep
    quarantine: List[QuarantineEntry] = field(default_factory=list)
    #: requested transfer paradigms the backend could not measure
    skipped_transfers: Tuple[TransferType, ...] = ()
    #: True once the sweep switched to the fallback backend
    degraded: bool = False
    #: True once the GPU was lost and the sweep continued CPU-only
    device_lost: bool = False
    stats: SweepStats = field(default_factory=SweepStats, compare=False)

    @property
    def complete(self) -> bool:
        """No quarantined, skipped, or device-lost cells anywhere."""
        return not (
            self.quarantine
            or self.skipped_transfers
            or self.device_lost
            or any(s.partial for s in self.series)
        )

    @property
    def cache_hit(self) -> bool:
        """True when this run was replayed wholesale from the content-
        addressed sweep cache (the serving daemon's hot-path signal;
        checkpoint-resumed samples count separately on
        :attr:`SweepStats.resumed_samples`)."""
        return self.stats.cached_samples > 0

    def series_for(
        self, kernel: Kernel, ident: str, precision: Precision
    ) -> ProblemSeries:
        for s in self.series:
            if (
                s.kernel is kernel
                and s.ident == ident
                and s.precision is precision
            ):
                return s
        raise KeyError(
            f"no series for ({kernel.value}, {ident!r}, {precision.value}) "
            "in this run"
        )

    def thresholds(
        self, min_consecutive: int = 2
    ) -> Dict[Tuple[str, str, TransferType], ThresholdResult]:
        """Offload thresholds of every series under every swept paradigm,
        keyed ``(blas_name, problem_ident, transfer)`` — e.g.
        ``("sgemm", "square", TransferType.ONCE)``."""
        out: Dict[Tuple[str, str, TransferType], ThresholdResult] = {}
        for s in self.series:
            blas_name = s.precision.blas_prefix + s.kernel.value
            for transfer in s.transfer_types():
                out[(blas_name, s.ident, transfer)] = threshold_for_series(
                    s, transfer, min_consecutive
                )
        return out

    def quarantine_report(self) -> List[dict]:
        """JSON-serializable view of the quarantine list."""
        return [
            {
                "kernel": e.kernel.value,
                "ident": e.ident,
                "precision": e.precision.value,
                "device": e.device.value,
                "transfer": e.transfer.value if e.transfer else None,
                "dims": list(e.dims.as_tuple()),
                "iterations": e.iterations,
                "attempts": e.attempts,
                "error": e.error,
                "message": e.message,
            }
            for e in self.quarantine
        ]


def _derive_fallback(backend):
    """The graceful-degradation target: a failing DES backend falls back
    to the analytic model it was built from."""
    from ..backends.des import DesBackend
    from ..backends.simulated import AnalyticBackend

    inner = backend.inner if isinstance(backend, FaultInjector) else backend
    if isinstance(inner, DesBackend):
        return AnalyticBackend(inner.model)
    return None


class _SweepState:
    """Mutable per-sweep machinery shared by every cell."""

    def __init__(self, backend, fallback, retry: RetryPolicy,
                 writer: Optional[CheckpointWriter], result: RunResult,
                 ctx: Optional[InvariantContext] = None,
                 strict: bool = False):
        self.backend = backend
        self.fallback = fallback
        self.retry = retry
        self.writer = writer
        self.result = result
        self.gpu_lost = False
        #: model-invariant guard context (spec + noise slack) and mode
        self.ctx = ctx if ctx is not None else invariant_context(backend)
        self.strict = strict

    def guard(self, samples, precision: Precision) -> None:
        """Invariant-check freshly produced samples (replays skip)."""
        guard_samples(samples, precision, self.ctx, self.strict)

    def can_batch(self) -> bool:
        """Whether the vectorized fast path may replace per-cell calls.

        Requires a backend with batch entry points, no fault injector
        (faults are drawn per attempt, so cells must be sampled one at a
        time) and no per-sample deadline (the timeout feeds the retry
        ladder, which is per-cell machinery).  A subclass that overrides
        only the scalar samplers keeps the reference path: the batch
        methods are trusted only when the same class defines both halves
        of the pair, so the fast path can never diverge from overridden
        scalar behavior.
        """
        return (
            self.retry.sample_timeout_s is None
            and not isinstance(self.backend, FaultInjector)
            and _batch_trustworthy(type(self.backend))
        )

    def _quarantine(self, entry: QuarantineEntry) -> None:
        self.result.quarantine.append(entry)
        if self.writer is not None:
            self.writer.quarantine(entry)
        warnings.warn(
            f"quarantined sweep cell: {entry}", PartialSweepWarning,
            stacklevel=4,
        )

    def _degrade(self, exc: Exception) -> None:
        self.backend = self.fallback
        self.fallback = None
        self.result.degraded = True
        if self.writer is not None:
            self.writer.event("degraded", f"{type(exc).__name__}: {exc}")
        warnings.warn(
            f"backend failed ({type(exc).__name__}: {exc}); continuing on "
            "the analytic fallback — series are flagged degraded",
            PartialSweepWarning, stacklevel=5,
        )

    def _lose_device(self, exc: DeviceLostError) -> None:
        self.gpu_lost = True
        self.result.device_lost = True
        if self.writer is not None:
            self.writer.event("device-lost", str(exc))
        warnings.warn(
            f"GPU device lost ({exc}); finishing the sweep CPU-only — "
            "series with missing GPU cells are flagged partial",
            PartialSweepWarning, stacklevel=5,
        )

    def sample_cell(self, fn, key: tuple, make_entry) -> Optional[PerfSample]:
        """Sample one cell under the retry policy.

        ``fn(backend)`` produces the sample; ``make_entry(attempts, exc)``
        builds the quarantine entry if the cell is abandoned.  Returns
        the sample, or None when the cell was quarantined or the device
        was lost (``self.gpu_lost`` distinguishes the two).
        """
        retry = self.retry
        attempt = 0
        last_exc: Optional[Exception] = None
        while attempt <= retry.max_retries:
            try:
                sample = fn(self.backend)
                if (
                    sample is not None
                    and retry.sample_timeout_s is not None
                    and sample.seconds > retry.sample_timeout_s
                ):
                    raise SampleTimeoutError(
                        f"sample took {sample.seconds:.3g}s of simulated "
                        f"time (deadline {retry.sample_timeout_s:.3g}s)",
                        elapsed_s=sample.seconds,
                    )
                if self.result.degraded:
                    self.result.stats.fallback_samples += 1
                return sample
            except RETRYABLE_ERRORS as exc:
                last_exc = exc
                attempt += 1
                if attempt <= retry.max_retries:
                    self.result.stats.retries += 1
                    self.result.stats.backoff_s += retry.backoff_s(
                        attempt, key
                    )
            except DeviceLostError as exc:
                self._lose_device(exc)
                self._quarantine(make_entry(attempt + 1, exc))
                return None
            except ReproError:
                raise  # configuration-class errors are real bugs
            except Exception as exc:  # unexpected backend failure
                if self.fallback is not None:
                    self._degrade(exc)
                    continue  # re-attempt this cell on the fallback
                last_exc = exc
                attempt += 1
                break
        self._quarantine(make_entry(attempt, last_exc))
        return None


def _defining_class(cls, name: str):
    for base in cls.__mro__:
        if name in base.__dict__:
            return base
    return None


def _batch_trustworthy(cls) -> bool:
    """True when ``cls`` may serve batch calls in place of scalar ones:
    each scalar/batch pair must come from the same class in the MRO."""
    if _defining_class(cls, "cpu_sample_batch") is None:
        return False
    for scalar, batch in (
        ("cpu_sample", "cpu_sample_batch"),
        ("gpu_sample", "gpu_sample_batch"),
    ):
        if _defining_class(cls, scalar) is not _defining_class(cls, batch):
            return False
    return True


def run_sweep(
    backend,
    config: RunConfig,
    system_name: Optional[str] = None,
    *,
    faults: Optional[FaultPlan] = None,
    retry: Optional[RetryPolicy] = None,
    fallback=None,
    checkpoint=None,
    resume: bool = False,
    jobs: int = 1,
    shard_timeout_s: Optional[float] = None,
    cache_dir=None,
) -> RunResult:
    """Execute one GPU-BLOB sweep of ``config`` on ``backend``.

    ``backend`` is either a :class:`~repro.backends.base.Backend`
    instance or a registry name (``"analytic"``, ``"des"``, ``"host"``);
    a name is resolved through :func:`repro.backends.make_backend`,
    building the model from ``system_name`` when one is needed.

    Keyword options turn on the resilience machinery (all default off,
    in which case the sweep behaves exactly like the classic loop):

    ``faults``
        a :class:`~repro.faults.plan.FaultPlan` to wrap ``backend`` in a
        :class:`~repro.faults.injector.FaultInjector` (no-op if the
        backend already is one).
    ``retry``
        a :class:`RetryPolicy`; defaults to ``RetryPolicy()`` (3 retries,
        exponential backoff, no deadline).
    ``fallback``
        backend to degrade to on unexpected backend errors; derived
        automatically for DES backends (→ analytic twin).
    ``checkpoint`` / ``resume``
        JSONL journal path; with ``resume=True`` completed cells are
        replayed from it instead of re-sampled.
    ``jobs``
        shard the (problem type, precision) series across a process
        pool of this many workers; ``1`` (the default) runs in-process.
        The merged result is bit-identical to a serial run.  The pool
        is *supervised*: a shard whose worker dies (``BrokenProcessPool``)
        or blows its deadline is re-submitted on a fresh pool with
        simulated backoff, and after :data:`_MAX_SHARD_RETRIES` failed
        pool attempts it degrades to in-process execution in the parent
        — the sweep completes unattended either way, with every
        recovery journaled (``shard-retry`` / ``shard-inprocess``
        events) and counted on :class:`SweepStats`.
    ``shard_timeout_s``
        wall-clock deadline per parallel shard.  An overrun kills the
        pool and re-submits the late shard (other shards keep their
        finished results and are re-run without penalty).  ``None`` (the
        default) waits indefinitely; ignored when the sweep runs
        serially.  In-process degradation trades the deadline for
        completion: a shard on its last resort is never killed.
    ``cache_dir``
        directory of the content-addressed sweep cache.  A prior run of
        the identical (config, system, backend) triple is replayed from
        the store instead of re-executed; complete fault-free runs are
        stored on the way out.  ``None`` (the default) disables caching.
    """
    if isinstance(backend, str):
        from ..backends import make_backend

        backend = make_backend(backend, system=system_name)
    if faults is not None and not isinstance(backend, FaultInjector):
        backend = FaultInjector(backend, faults)
    if system_name is None:
        system_name = getattr(backend, "system_name", None)
    retry = retry or RetryPolicy()
    if jobs < 1:
        from ..errors import ConfigError

        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    if shard_timeout_s is not None and shard_timeout_s <= 0:
        from ..errors import ConfigError

        raise ConfigError(
            f"shard_timeout_s must be > 0, got {shard_timeout_s}"
        )
    if config.adaptive and (
        faults is not None
        or isinstance(backend, FaultInjector)
        or checkpoint is not None
        or resume
    ):
        from ..errors import ConfigError

        raise ConfigError(
            "adaptive sweeps cannot compose with fault injection or "
            "checkpoint journaling; run those sweeps dense"
        )
    if fallback is None:
        fallback = _derive_fallback(backend)

    # Model-invariant guard: audit the spec's own calibration up front
    # (strict mode rejects a spec calibrated above its own link peak),
    # then check every fresh sample as the sweep produces it.
    ctx = invariant_context(backend)
    guard_spec(ctx, config.validate)

    cacheable = (
        cache_dir is not None
        and faults is None
        and not isinstance(backend, FaultInjector)
        and checkpoint is None
        and getattr(backend, "cache_token", None) is not None
    )
    if cacheable:
        from .sweepcache import load_cached_run

        cached = load_cached_run(cache_dir, config, system_name, backend)
        if cached is not None:
            return cached

    result = RunResult(config=config, system_name=system_name)
    gpu_on = config.gpu_enabled and backend.has_gpu
    transfers = tuple(
        t for t in config.transfers if t in backend.gpu_transfers
    ) if gpu_on else ()
    if gpu_on:
        skipped = tuple(
            t for t in config.transfers if t not in backend.gpu_transfers
        )
        if skipped:
            result.skipped_transfers = skipped
            names = ", ".join(t.value for t in skipped)
            warnings.warn(
                f"backend cannot measure transfer paradigm(s): {names}; "
                "the sweep continues without them",
                PartialSweepWarning, stacklevel=2,
            )

    done: Dict[tuple, PerfSample] = {}
    quarantined_keys: set = set()
    resumed = None
    if checkpoint is not None and resume:
        from pathlib import Path

        if Path(checkpoint).exists():
            resumed = CheckpointReader.load(checkpoint, config, system_name)
    writer = (
        CheckpointWriter(checkpoint, config, system_name, resume=resume)
        if checkpoint is not None
        else None
    )
    state = _SweepState(
        backend, fallback, retry, writer, result,
        ctx=ctx, strict=config.validate,
    )
    if resumed is not None:
        done = resumed.samples
        result.quarantine.extend(resumed.quarantine)
        quarantined_keys = resumed.quarantined_keys()
        if resumed.device_lost:
            state.gpu_lost = True
            result.device_lost = True
        if resumed.degraded and fallback is not None:
            state.backend = fallback
            state.fallback = None
            result.degraded = True

    shards = [
        (problem_type, precision)
        for problem_type in config.problem_types()
        for precision in config.precisions
    ]
    use_parallel = (
        jobs > 1
        and len(shards) > 1
        and faults is None
        and not isinstance(state.backend, FaultInjector)
        and _picklable((state.backend, config, retry))
    )
    try:
        if use_parallel:
            _run_parallel(
                state, shards, config, transfers, done, quarantined_keys,
                jobs, system_name, shard_timeout_s,
            )
        else:
            for problem_type, precision in shards:
                result.series.append(
                    _run_series(
                        state, problem_type, precision, config, transfers,
                        done, quarantined_keys,
                    )
                )
    finally:
        if writer is not None:
            writer.close()
    # Adaptive runs may *load* a dense entry (dense replay wins — the
    # full grid for free) but never store: a dense run replaying a
    # sparse adaptive series would be wrong.
    if cacheable and result.complete and not result.degraded and not config.adaptive:
        from .sweepcache import store_run

        store_run(cache_dir, backend, result)
    return result


def _run_series(
    state: _SweepState,
    problem_type,
    precision: Precision,
    config: RunConfig,
    transfers: Tuple[TransferType, ...],
    done: Dict[tuple, PerfSample],
    quarantined_keys: set,
) -> ProblemSeries:
    """Fill one (problem type, precision) series, batched when possible."""
    series = ProblemSeries(
        problem_type=problem_type,
        precision=precision,
        iterations=config.iterations,
    )
    if (
        config.adaptive
        and transfers
        and config.cpu_enabled
        and not done
        and not quarantined_keys
        and not state.gpu_lost
        and state.writer is None
    ):
        from .adaptive import adaptive_fill_series

        if adaptive_fill_series(
            state, series, problem_type, precision, config, transfers
        ):
            return series
    missing: Optional[int] = None
    if state.can_batch():
        missing = _run_series_batched(
            state, series, done, quarantined_keys, problem_type, precision,
            config, transfers,
        )
    if missing is None:
        missing = 0
        for p in config.sweep_params(problem_type):
            dims = problem_type.dims_at(p)
            if config.cpu_enabled:
                _run_cell(
                    state, series, done, quarantined_keys,
                    problem_type, precision, config,
                    DeviceKind.CPU, None, dims,
                )
            for transfer in transfers:
                status = _run_cell(
                    state, series, done, quarantined_keys,
                    problem_type, precision, config,
                    DeviceKind.GPU, transfer, dims,
                )
                if status == "lost":
                    missing += 1
    quarantined_here = any(
        e.kernel is series.kernel
        and e.ident == series.ident
        and e.precision is series.precision
        for e in state.result.quarantine
    )
    series.partial = missing > 0 or quarantined_here
    return series


def _run_series_batched(
    state: _SweepState,
    series: ProblemSeries,
    done: Dict[tuple, PerfSample],
    quarantined_keys: set,
    problem_type,
    precision: Precision,
    config: RunConfig,
    transfers: Tuple[TransferType, ...],
) -> Optional[int]:
    """Vectorized evaluation of one series, column by column.

    Every (device, transfer) column is partitioned into replayed,
    skipped and fresh cells; the fresh cells go through the backend's
    batch entry point in one call.  All backend work happens *before*
    the series or the journal is touched, so a batch failure leaves no
    partial state behind — the caller falls back to the per-cell
    reference path (returns ``None``) and retries there.  Returns the
    count of device-lost cells otherwise.
    """
    dims_all = [
        problem_type.dims_at(p) for p in config.sweep_params(problem_type)
    ]
    columns = []
    if config.cpu_enabled:
        columns.append((DeviceKind.CPU, None))
    columns.extend((DeviceKind.GPU, t) for t in transfers)

    backend = state.backend
    # Common case — nothing to replay, skip, or journal: per-cell key
    # construction and classification are pure overhead, so each column
    # is one batch call appended wholesale.
    if (
        not done
        and not quarantined_keys
        and not state.gpu_lost
        and state.writer is None
    ):
        fresh_columns = []
        try:
            for device, transfer in columns:
                if device is DeviceKind.CPU:
                    fresh = backend.cpu_sample_batch(
                        problem_type.kernel, dims_all, precision,
                        config.iterations, config.alpha, config.beta,
                    )
                else:
                    fresh = backend.gpu_sample_batch(
                        problem_type.kernel, dims_all, precision,
                        config.iterations, transfer, config.alpha,
                        config.beta,
                    )
                if fresh is None or len(fresh) != len(dims_all):
                    return None
                fresh_columns.append((device, transfer, fresh))
        except Exception:
            return None
        for device, transfer, fresh in fresh_columns:
            state.guard(fresh, precision)
            _extend_column(series, device, transfer, fresh)
            if state.result.degraded:
                state.result.stats.fallback_samples += len(fresh)
        return 0

    evaluated = []
    # Keys are built inline (same layout as ``sample_key``) with the
    # enum values hoisted: per-cell enum attribute lookups were a
    # measurable slice of the fast path's runtime.
    kernel_v, ident_v = problem_type.kernel.value, problem_type.ident
    precision_v, iterations_v = precision.value, config.iterations
    try:
        for device, transfer in columns:
            device_v = device.value
            transfer_v = transfer.value if transfer else None
            cells = []  # per sweep param: (kind, payload)
            fresh_dims: List = []
            fresh_keys: List[tuple] = []
            for dims in dims_all:
                key = (
                    kernel_v, ident_v, precision_v, device_v, transfer_v,
                    dims.m, dims.n, dims.k, iterations_v,
                )
                if key in quarantined_keys:
                    cells.append(("quarantined", None))
                elif key in done:
                    cells.append(("replay", done[key]))
                elif device is DeviceKind.GPU and state.gpu_lost:
                    cells.append(("lost", None))
                else:
                    cells.append(("fresh", len(fresh_dims)))
                    fresh_dims.append(dims)
                    fresh_keys.append(key)
            if fresh_dims:
                if device is DeviceKind.CPU:
                    fresh = backend.cpu_sample_batch(
                        problem_type.kernel, fresh_dims, precision,
                        config.iterations, config.alpha, config.beta,
                    )
                else:
                    fresh = backend.gpu_sample_batch(
                        problem_type.kernel, fresh_dims, precision,
                        config.iterations, transfer, config.alpha,
                        config.beta,
                    )
                if fresh is None or len(fresh) != len(fresh_dims):
                    return None
            else:
                fresh = []
            evaluated.append((cells, fresh, fresh_keys))
    except Exception:
        return None

    # Invariant-check every fresh column before the series or journal
    # is touched: a strict-mode rejection leaves no partial state.
    for _cells, fresh, _keys in evaluated:
        state.guard(fresh, precision)

    missing = 0
    stats = state.result.stats
    for (cells, fresh, fresh_keys) in evaluated:
        for kind, payload in cells:
            if kind == "replay":
                series.add(payload)
                stats.resumed_samples += 1
            elif kind == "lost":
                missing += 1
            elif kind == "fresh":
                sample = fresh[payload]
                series.add(sample)
                if state.writer is not None:
                    state.writer.sample(fresh_keys[payload], sample)
                if state.result.degraded:
                    stats.fallback_samples += 1
    return missing


def _extend_column(
    series: ProblemSeries,
    device: DeviceKind,
    transfer: Optional[TransferType],
    samples: List[PerfSample],
) -> None:
    """Bulk :meth:`ProblemSeries.add` of one (device, transfer) column."""
    if device is DeviceKind.CPU:
        series.cpu.extend(samples)
    else:
        series.gpu.setdefault(transfer, []).extend(samples)


def _picklable(obj) -> bool:
    import pickle

    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


def _encode_done(done_sub: Dict[tuple, PerfSample]) -> list:
    """Flatten a shard's resume samples to primitive rows for the pool
    pipe: the sample key already carries every identity field, so only
    the measured values ride along (floats pickle exactly)."""
    return [
        (key, s.seconds, s.gflops, s.checksum_ok)
        for key, s in done_sub.items()
    ]


def _decode_done(rows: list) -> Dict[tuple, PerfSample]:
    out: Dict[tuple, PerfSample] = {}
    for key, seconds, gflops, checksum_ok in rows:
        _kernel, _ident, _precision, device_v, transfer_v, m, n, k, its = key
        out[key] = PerfSample(
            device=DeviceKind(device_v),
            transfer=TransferType(transfer_v) if transfer_v else None,
            dims=Dims(m, n, k),
            iterations=its,
            seconds=seconds,
            gflops=gflops,
            checksum_ok=checksum_ok,
        )
    return out


#: checksum_ok tristate encoding in the shared-memory check column
_CHECK_CODE = {None: -1, False: 0, True: 1}
_CHECK_DECODE = {-1: None, 0: False, 1: True}


def _pack_shard_result(series: ProblemSeries, result: RunResult) -> tuple:
    """Worker-side result encoding: one shared-memory segment per shard.

    Layout (DESIGN §14): int64 dims ``(nd, 3)`` | float64 values
    ``(n, 2)`` (seconds, gflops — raw bit patterns, so the parent's
    reconstruction is bitwise identical) | int8 checksum codes ``(n,)``,
    where ``n`` counts every sample in series order (CPU column, then
    each transfer column).  In the common full-shard case every column
    samples the same dims sequence, so the dims table is deduplicated
    to one column's worth (``nd = n / len(columns)``) and the parent
    reuses one ``Dims`` object per row across all columns; otherwise
    ``nd == n`` and dims ship per sample.  The segment is unregistered
    from the worker's resource tracker — ownership transfers to the
    parent, which copies and unlinks it.  Any trouble (no shm support,
    empty series, mixed iteration counts) falls back to returning the
    pickled series.
    """
    try:
        import numpy as np
        from multiprocessing import resource_tracker, shared_memory

        cols = [series.cpu] + list(series.gpu.values())
        samples = series.all_samples()
        n = len(samples)
        if n == 0:
            raise ValueError("empty series")
        for s in samples:
            if s.iterations != series.iterations:
                raise ValueError("mixed iteration counts")
        columns = [("cpu", None, len(series.cpu))]
        columns.extend(
            ("gpu", transfer.value, len(col))
            for transfer, col in series.gpu.items()
        )
        first = cols[0]
        shared_dims = all(len(col) == len(first) for col in cols) and all(
            a.dims is b.dims or a.dims == b.dims
            for col in cols[1:]
            for a, b in zip(first, col)
        )
        dim_samples = first if shared_dims else samples
        nd = len(dim_samples)
        nbytes = nd * 24 + n * 16 + n
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        try:
            dims_arr = np.ndarray((nd, 3), dtype=np.int64, buffer=shm.buf)
            vals_arr = np.ndarray(
                (n, 2), dtype=np.float64, buffer=shm.buf, offset=nd * 24
            )
            checks_arr = np.ndarray(
                (n,), dtype=np.int8, buffer=shm.buf,
                offset=nd * 24 + n * 16,
            )
            # bulk assignments: per-row scalar stores cost more than the
            # shard's kernel math on large sweeps
            dims_arr[:] = [
                (s.dims.m, s.dims.n, s.dims.k) for s in dim_samples
            ]
            vals_arr[:] = [(s.seconds, s.gflops) for s in samples]
            checks_arr[:] = [_CHECK_CODE[s.checksum_ok] for s in samples]
            name = shm.name
        finally:
            del dims_arr, vals_arr, checks_arr
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
            shm.close()
        return (
            "shm", name, n, nd, nbytes, columns, series.partial,
            series.adaptive_wins, result.quarantine, result.degraded,
            result.device_lost, result.stats,
        )
    except Exception:
        return (
            "pickle-worker", series, result.quarantine, result.degraded,
            result.device_lost, result.stats,
        )


def _decode_shard_result(outcome: tuple, shard, config: RunConfig):
    """Parent-side inverse of :func:`_pack_shard_result`."""
    from . import workerpool

    if outcome[0] in ("pickle", "pickle-worker"):
        # bare "pickle" is the parent's own in-process last resort — not
        # a pool transport, so it never counts as a fallback
        if outcome[0] == "pickle-worker":
            workerpool.record_shard(pickled=True)
        return outcome[1:]
    (
        _tag, name, n, nd, nbytes, columns, partial, adaptive_wins,
        quarantine, degraded, device_lost, stats,
    ) = outcome
    import numpy as np
    from multiprocessing import shared_memory

    problem_type, precision = shard
    shm = shared_memory.SharedMemory(name=name)
    try:
        # tolist() detaches into pure-Python objects, so no copy is
        # needed before closing the segment; column-wise flat lists
        # keep the reconstruction loop free of nested tuple unpacking
        dims_arr = np.ndarray((nd, 3), dtype=np.int64, buffer=shm.buf)
        vals_arr = np.ndarray(
            (n, 2), dtype=np.float64, buffer=shm.buf, offset=nd * 24
        )
        checks_arr = np.ndarray(
            (n,), dtype=np.int8, buffer=shm.buf, offset=nd * 24 + n * 16
        )
        col_m = dims_arr[:, 0].tolist()
        col_n = dims_arr[:, 1].tolist()
        col_k = dims_arr[:, 2].tolist()
        col_s = vals_arr[:, 0].tolist()
        col_g = vals_arr[:, 1].tolist()
        check_codes = checks_arr.tolist()
    finally:
        del dims_arr, vals_arr, checks_arr
        shm.close()
        shm.unlink()
    series = ProblemSeries(
        problem_type=problem_type,
        precision=precision,
        iterations=config.iterations,
        partial=partial,
    )
    iterations = config.iterations
    decode = _CHECK_DECODE
    # deduplicated dims table (see _pack_shard_result): build each Dims
    # once and share the objects across columns, exactly as the batch
    # fast path does worker-side
    shared = nd < n
    dims_objs = (
        [Dims(m, n_, k) for m, n_, k in zip(col_m, col_n, col_k)]
        if shared else None
    )
    row = 0
    for device_v, transfer_v, count in columns:
        device = DeviceKind(device_v)
        transfer = TransferType(transfer_v) if transfer_v else None
        end = row + count
        # positional construction in one comprehension: this loop
        # rebuilds every sample of every shard, so it is the parent's
        # hottest path under jobs=N
        if shared:
            column = [
                PerfSample(
                    device, transfer, d, iterations,
                    seconds, gflops, decode[code],
                )
                for d, seconds, gflops, code in zip(
                    dims_objs, col_s[row:end], col_g[row:end],
                    check_codes[row:end],
                )
            ]
        else:
            column = [
                PerfSample(
                    device, transfer, Dims(m, n_, k), iterations,
                    seconds, gflops, decode[code],
                )
                for m, n_, k, seconds, gflops, code in zip(
                    col_m[row:end], col_n[row:end], col_k[row:end],
                    col_s[row:end], col_g[row:end], check_codes[row:end],
                )
            ]
        row = end
        if device is DeviceKind.CPU:
            series.cpu.extend(column)
        else:
            series.gpu[transfer] = column
    if adaptive_wins is not None:
        series.adaptive_wins = adaptive_wins
        series.adaptive_dims = [
            problem_type.dims_at(p) for p in config.sweep_params(problem_type)
        ]
    workerpool.record_shard(nbytes)
    return series, quarantine, degraded, device_lost, stats


def _sweep_shard_worker(payload: tuple):
    """Run one (problem type, precision) series in a pool worker.

    Returns a tagged result tuple — ``("shm", ...)`` from pool workers
    (samples ride a shared-memory segment, see :func:`_pack_shard_result`)
    or ``("pickle", series, quarantine, degraded, device_lost, stats)``
    from the in-process last resort — that :func:`_decode_shard_result`
    turns back into everything the parent's ordered merge needs.

    Chaos hook: setting ``REPRO_CHAOS_KILL_SHARD=<index>`` hard-kills
    the worker assigned that shard (``os._exit``, no cleanup — the way
    an OOM kill or node failure looks to the parent).  The value is
    captured in the *parent* at payload-build time, so warm-pool workers
    forked before the variable was set still honor it.  The guard on the
    parent pid means only *pool* attempts die; the supervised executor's
    last-resort in-process attempt runs in the parent and survives, so a
    kill-always chaos run still completes.
    """
    import os

    (
        backend, problem_type, precision, config, retry, done_rows,
        quarantined, shard_path, system_name, transfers, gpu_lost, degraded,
        shard_index, parent_pid, chaos,
    ) = payload
    in_worker = os.getpid() != parent_pid
    if chaos == str(shard_index) and in_worker:
        os._exit(1)
    result = RunResult(config=config, system_name=system_name)
    writer = (
        CheckpointWriter(shard_path, config, system_name)
        if shard_path is not None
        else None
    )
    fallback = _derive_fallback(backend)
    state = _SweepState(
        backend, fallback, retry, writer, result, strict=config.validate
    )
    # Re-apply sweep-level events the parent replayed from a checkpoint:
    # a lost GPU stays lost, and a degraded sweep keeps counting its
    # samples as fallback samples.
    state.gpu_lost = gpu_lost
    if degraded:
        result.degraded = True
    try:
        series = _run_series(
            state, problem_type, precision, config, transfers,
            _decode_done(done_rows), quarantined,
        )
    finally:
        if writer is not None:
            writer.close()
    if in_worker:
        return _pack_shard_result(series, result)
    return (
        "pickle", series, result.quarantine, result.degraded,
        result.device_lost, result.stats,
    )


#: Pool attempts per shard before the supervised executor gives up on
#: process isolation and runs the shard in the parent: the initial
#: submission plus this many re-submissions on fresh pools.
_MAX_SHARD_RETRIES = 2


def _shard_label(shards, i: int) -> str:
    problem_type, precision = shards[i]
    return (
        f"shard {i} ({problem_type.kernel.value}/{problem_type.ident}/"
        f"{precision.value})"
    )


def _terminate_pool(pool) -> None:
    """Tear a pool down *now*: a deadline overrun means a worker is
    wedged, so a cooperative shutdown would block behind it.

    The process list must be snapshotted *before* ``shutdown()`` —
    ``Executor.shutdown`` drops its ``_processes`` reference even with
    ``wait=False``, and a wedged worker left running would block
    interpreter exit behind the executor's atexit join.
    """
    import contextlib

    procs = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        with contextlib.suppress(Exception):
            proc.terminate()


def _run_parallel(
    state: _SweepState,
    shards,
    config: RunConfig,
    transfers: Tuple[TransferType, ...],
    done: Dict[tuple, PerfSample],
    quarantined_keys: set,
    jobs: int,
    system_name: Optional[str],
    shard_timeout_s: Optional[float] = None,
) -> None:
    """Shard series across the *supervised* warm pool; merge in
    submission order.

    Supervision loop: every round submits the still-pending shards and
    waits on each future (bounded by ``shard_timeout_s``).  First-attempt
    shards share the persistent warm pool (:mod:`repro.core.workerpool`
    — spawned once, reused across sweeps); a shard that already broke a
    pool runs on an ephemeral dedicated single-worker pool, so a repeat
    death cannot take its siblings' work with it.  A worker death
    (``BrokenProcessPool``) charges every shard that lost its result and
    retires the warm pool (the next acquisition respawns it); a deadline
    overrun kills the wedged pool and charges only the late shard —
    siblings keep finished results and re-run uncharged.  A shard that
    fails :data:`_MAX_SHARD_RETRIES` + 1 pool attempts runs in-process
    in the parent, which cannot be killed, so the sweep always
    completes.  Backoff between attempts is simulated (accumulated on
    stats, never slept), recoveries are journaled as ``shard-retry`` /
    ``shard-inprocess`` events, and the merged result stays bit-identical
    to a clean serial run (workers return samples through shared-memory
    segments whose float64 bit patterns survive the trip exactly).
    """
    import concurrent.futures
    import os
    from pathlib import Path

    from . import workerpool

    result = state.result
    stats = result.stats
    was_degraded = result.degraded
    parent_pid = os.getpid()
    chaos = os.environ.get("REPRO_CHAOS_KILL_SHARD")
    payloads = []
    shard_paths = []
    for i, (problem_type, precision) in enumerate(shards):
        ident = (problem_type.kernel.value, problem_type.ident, precision.value)
        done_rows = _encode_done(
            {k: v for k, v in done.items() if k[:3] == ident}
        )
        quarantined_sub = {k for k in quarantined_keys if k[:3] == ident}
        shard_path = (
            f"{state.writer.path}.shard-{i}" if state.writer is not None
            else None
        )
        shard_paths.append(shard_path)
        payloads.append((
            state.backend, problem_type, precision, config, state.retry,
            done_rows, quarantined_sub, shard_path, system_name, transfers,
            state.gpu_lost, result.degraded, i, parent_pid, chaos,
        ))

    def charge(i: int, reason: str) -> None:
        attempts[i] += 1
        stats.worker_retries += 1
        stats.backoff_s += state.retry.backoff_s(
            min(attempts[i], state.retry.max_retries + 1), ("shard", i)
        )
        if state.writer is not None:
            state.writer.event(
                "shard-retry",
                f"{_shard_label(shards, i)} attempt {attempts[i]} "
                f"failed: {reason}",
            )

    outcomes: List[Optional[tuple]] = [None] * len(payloads)
    attempts = [0] * len(payloads)
    pending = list(range(len(payloads)))
    while pending:
        # Last resort for shards that burned every pool attempt: run
        # them right here in the parent.  No process isolation and no
        # deadline — but nothing left to crash, either.
        exhausted = [i for i in pending if attempts[i] > _MAX_SHARD_RETRIES]
        for i in exhausted:
            stats.inprocess_shards += 1
            if state.writer is not None:
                state.writer.event(
                    "shard-inprocess",
                    f"{_shard_label(shards, i)} degraded to in-process "
                    f"execution after {attempts[i]} failed pool attempts",
                )
            # Quarantine warnings are re-emitted by the merge loop (as
            # they are for pool shards, whose warnings die with the
            # worker process) — mute the duplicates from running in the
            # parent.
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", PartialSweepWarning)
                outcomes[i] = _sweep_shard_worker(payloads[i])
        pending = [i for i in pending if attempts[i] <= _MAX_SHARD_RETRIES]
        if not pending:
            break
        # Blast-radius control: a shard that already broke a pool runs
        # in its own *ephemeral* single-worker pool this round, so a
        # repeat death cannot take its siblings' work (and attempt
        # budgets) — or the shared warm pool — with it.  First-attempt
        # shards share the warm pool for throughput.
        fresh = [i for i in pending if attempts[i] == 0]
        groups = ([(fresh, True)] if fresh else []) + [
            ([i], False) for i in pending if attempts[i] > 0
        ]
        still = []
        for group, warm in groups:
            pool = (
                workerpool.get_pool(jobs) if warm
                else workerpool.dedicated_pool()
            )
            try:
                futures = {
                    i: pool.submit(_sweep_shard_worker, payloads[i])
                    for i in group
                }
            except Exception:
                # A warm pool can report healthy and still refuse the
                # submit: a prior sweep's worker death is detected by
                # the executor's manager thread asynchronously, so the
                # breakage may only surface now.  Retire it and submit
                # to a fresh respawn (uncharged — no shard ran).
                if not warm:
                    raise
                workerpool.mark_broken(jobs)
                pool = workerpool.get_pool(jobs)
                futures = {
                    i: pool.submit(_sweep_shard_worker, payloads[i])
                    for i in group
                }
            broken = False
            try:
                deadline_hit = False
                for i, future in futures.items():
                    if deadline_hit:
                        # The pool is dead; salvage whatever finished
                        # before the kill, re-run the rest uncharged
                        # (our own termination broke their futures, not
                        # their fault).
                        salvaged = False
                        if future.done() and not future.cancelled():
                            try:
                                outcomes[i] = future.result()
                                salvaged = True
                            except Exception:
                                pass
                        if not salvaged:
                            still.append(i)
                        continue
                    try:
                        outcomes[i] = future.result(timeout=shard_timeout_s)
                    except concurrent.futures.TimeoutError:
                        still.append(i)
                        charge(
                            i,
                            f"deadline of {shard_timeout_s:.3g}s exceeded",
                        )
                        if warm:
                            workerpool.terminate(jobs)
                        else:
                            _terminate_pool(pool)
                        deadline_hit = True
                    except Exception:
                        # A dead worker breaks its whole pool: every
                        # shard whose future now raises lost its result
                        # and is charged a pool attempt.
                        still.append(i)
                        charge(i, "worker died")
                        broken = True
            finally:
                if warm:
                    # The warm pool outlives the sweep unless a worker
                    # death poisoned it — then retire it so the next
                    # acquisition respawns warm workers.
                    if broken:
                        workerpool.mark_broken(jobs)
                else:
                    pool.shutdown(wait=False, cancel_futures=True)
        pending = still
    for i, (outcome, shard_path) in enumerate(zip(outcomes, shard_paths)):
        series, quarantine, degraded, device_lost, shard_stats = (
            _decode_shard_result(outcome, shards[i], config)
        )
        result.series.append(series)
        result.quarantine.extend(quarantine)
        for entry in quarantine:
            warnings.warn(
                f"quarantined sweep cell: {entry}", PartialSweepWarning,
                stacklevel=3,
            )
        if degraded and not was_degraded:
            result.degraded = True
        if device_lost:
            result.device_lost = True
        stats.retries += shard_stats.retries
        stats.backoff_s += shard_stats.backoff_s
        stats.resumed_samples += shard_stats.resumed_samples
        stats.fallback_samples += shard_stats.fallback_samples
        stats.adaptive_cells_sampled += shard_stats.adaptive_cells_sampled
        stats.adaptive_cells_dense += shard_stats.adaptive_cells_dense
        if shard_path is not None:
            state.writer.merge_shard(shard_path)
            Path(shard_path).unlink(missing_ok=True)


def _run_cell(
    state: _SweepState,
    series: ProblemSeries,
    done: Dict[tuple, PerfSample],
    quarantined_keys: set,
    problem_type,
    precision: Precision,
    config: RunConfig,
    device: DeviceKind,
    transfer: Optional[TransferType],
    dims,
) -> str:
    """Sample (or replay) one sweep cell into ``series``.

    Returns a status string: ``"sampled"``, ``"replayed"`` (from the
    checkpoint), ``"quarantined"`` (this run or a resumed one), or
    ``"lost"`` (skipped because the GPU is gone).  Replay lookups come
    *before* the device-loss check so a resumed sweep keeps the GPU
    samples it completed before the device disappeared.
    """
    key = sample_key(
        problem_type.kernel, problem_type.ident, precision, device,
        transfer, dims, config.iterations,
    )
    if key in quarantined_keys:
        return "quarantined"
    cached = done.get(key)
    if cached is not None:
        series.add(cached)
        state.result.stats.resumed_samples += 1
        return "replayed"
    if device is DeviceKind.GPU and state.gpu_lost:
        return "lost"

    if device is DeviceKind.CPU:
        def fn(backend):
            return backend.cpu_sample(
                problem_type.kernel, dims, precision,
                config.iterations, config.alpha, config.beta,
            )
    else:
        def fn(backend):
            return backend.gpu_sample(
                problem_type.kernel, dims, precision,
                config.iterations, transfer, config.alpha, config.beta,
            )

    def make_entry(attempts: int, exc: Optional[Exception]) -> QuarantineEntry:
        return QuarantineEntry(
            kernel=problem_type.kernel,
            ident=problem_type.ident,
            precision=precision,
            device=device,
            transfer=transfer,
            dims=dims,
            iterations=config.iterations,
            attempts=attempts,
            error=type(exc).__name__ if exc is not None else "UnknownError",
            message=str(exc) if exc is not None else "",
        )

    sample = state.sample_cell(fn, key, make_entry)
    if sample is None:
        return "quarantined"
    state.guard((sample,), precision)
    series.add(sample)
    if state.writer is not None:
        state.writer.sample(key, sample)
    return "sampled"
