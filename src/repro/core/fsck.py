"""Artifact auditing and repair — the engine behind ``gpu-blob fsck``.

Three artifact families leave a sweep on disk, and all three now carry
enough redundancy to be audited offline:

* **checkpoint journals, serve WALs and dispatch ledgers**
  (``*.jsonl``) — every record carries a ``cs`` checksum
  (:func:`repro.faults.checkpoint.record_checksum`), the first line
  must be a versioned header (``kind: "serve-wal"`` / ``"dist-ledger"``
  headers select their dialect's own format version; an *unknown* kind
  is reported, never silently version-checked as a checkpoint), and
  only the *final* line may be torn (the crash artifact the writer
  itself repairs on resume/restart);
* **distributed result shards** (``<fp16>.json``) — a scenario
  fingerprint in the filename and a ``payload_sha256`` digest inside;
* **sweep-cache entries** (``<sha256>.json``) — every entry embeds a
  ``payload_sha256`` over its canonical payload
  (:func:`repro.core.sweepcache.payload_digest`);
* **results CSVs** (``*.csv`` + ``quarantine.json``) — rows must parse
  back into :class:`~repro.core.records.PerfSample` with finite,
  positive seconds and finite, non-negative GFLOP/s, under the series
  the filename promises.

:func:`fsck_paths` dispatches on what it finds; each checker returns
:class:`Finding` objects.  With ``repair=True`` the damage is *moved
out of the way*, never silently dropped: bad journal lines go to a
``<journal>.bad`` sidecar (the journal is rewritten with only verified
records), and bad cache entries / CSVs move into a ``quarantine/``
subdirectory.  A finding that cannot be repaired (a journal with no
valid header, say) stays ``repaired=False`` and keeps the exit code
non-zero.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional

from ..faults.checkpoint import FORMAT_VERSION, record_checksum
from .csvio import QUARANTINE_FILENAME, read_samples
from .sweepcache import CACHE_VERSION, LOCK_FILENAME, payload_digest

__all__ = [
    "Finding",
    "fsck_cache_entry",
    "fsck_journal",
    "fsck_paths",
    "fsck_result_shard",
    "fsck_results_csv",
]

#: Cache-entry stems are full SHA-256 hex digests.
_SHA256_HEX = 64

#: Dist result-shard stems are 16-hex scenario fingerprints.
_FP_HEX = 16


@dataclass
class Finding:
    """One integrity problem fsck found in one artifact."""

    path: Path
    kind: str  # "journal" | "cache" | "results"
    problem: str
    repaired: bool = False

    def __str__(self) -> str:
        status = "repaired" if self.repaired else "FOUND"
        return f"[{status}] {self.kind} {self.path}: {self.problem}"


def _quarantine_file(path: Path, kind: str, problem: str,
                     repair: bool) -> Finding:
    """Move a damaged artifact into a ``quarantine/`` sibling directory
    (repair mode) and report the finding either way."""
    repaired = False
    if repair:
        dest_dir = path.parent / "quarantine"
        dest_dir.mkdir(parents=True, exist_ok=True)
        path.replace(dest_dir / path.name)
        repaired = True
    return Finding(path=path, kind=kind, problem=problem, repaired=repaired)


# -- journals ---------------------------------------------------------


def _journal_versions() -> dict:
    """The dialect registry: header ``kind`` marker -> the format
    version this build reads.  ``None`` is the sweep checkpoint
    dialect (no kind marker).  Lazy imports: repro.serve/.dist pull in
    this module's siblings."""
    from ..dist.ledger import LEDGER_KIND, LEDGER_VERSION
    from ..serve.wal import WAL_KIND, WAL_VERSION

    return {
        None: FORMAT_VERSION,
        WAL_KIND: WAL_VERSION,
        LEDGER_KIND: LEDGER_VERSION,
    }


def fsck_journal(path, repair: bool = False) -> List[Finding]:
    """Audit one checkpoint journal line by line.

    Repair rewrites the journal with only the records that verify and
    appends every rejected line to a ``<journal>.bad`` sidecar.  A
    journal whose header itself is missing or corrupt cannot be
    repaired — resuming from it would be meaningless anyway.
    """
    path = Path(path)
    findings: List[Finding] = []
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        return [Finding(path, "journal", f"unreadable: {exc}")]

    good: List[str] = []
    bad: List[str] = []

    def flag(line_no: int, problem: str, line: str) -> None:
        findings.append(Finding(path, "journal", f"line {line_no}: {problem}"))
        bad.append(line)

    for i, line in enumerate(lines):
        try:
            rec = json.loads(line)
        except ValueError:
            if i == len(lines) - 1:
                flag(i + 1, "torn final line (crash artifact)", line)
            else:
                flag(i + 1, "unparseable JSON", line)
            continue
        if not isinstance(rec, dict) or rec.get("cs") != record_checksum(rec):
            flag(i + 1, "record checksum mismatch", line)
            continue
        good.append(line)

    header_ok = False
    if good:
        header = json.loads(good[0])
        kind = header.get("kind")
        expected_version = _journal_versions().get(kind)
        if header.get("t") != "header":
            findings.append(
                Finding(path, "journal", "first valid record is not a header")
            )
        elif expected_version is None:
            # an unknown dialect must be *reported*, not silently
            # version-checked as a checkpoint: a version-skewed ledger
            # from a newer build should be visible, not ignored
            known = ", ".join(
                repr(k) for k in _journal_versions() if k is not None
            )
            findings.append(Finding(
                path, "journal",
                f"unknown journal kind {kind!r} (this build reads: "
                f"sweep checkpoints, {known})",
            ))
        elif header.get("version") != expected_version:
            findings.append(Finding(
                path, "journal",
                f"format version {header.get('version')!r} "
                f"(this build reads {expected_version} for "
                + (f"kind {kind!r})" if kind else "sweep checkpoints)"),
            ))
        else:
            header_ok = True
    else:
        findings.append(Finding(path, "journal", "no valid records at all"))

    if repair and bad and header_ok:
        sidecar = path.with_name(path.name + ".bad")
        with sidecar.open("a") as fh:
            for line in bad:
                fh.write(line + "\n")
        path.write_text("".join(line + "\n" for line in good))
        for f in findings:
            f.repaired = True
    return findings


# -- distributed result shards ----------------------------------------


def fsck_result_shard(path, repair: bool = False) -> List[Finding]:
    """Audit one distributed-campaign result shard (``<fp16>.json``):
    the format version, the fingerprint the filename promises, and the
    embedded payload digest must all verify.  Repair quarantines the
    shard — the dispatcher then simply re-executes that scenario."""
    from ..dist.worker import SHARD_VERSION

    path = Path(path)
    try:
        entry = json.loads(path.read_text())
    except OSError as exc:
        return [Finding(path, "shard", f"unreadable: {exc}")]
    except ValueError:
        return [_quarantine_file(path, "shard", "unparseable JSON", repair)]
    if not isinstance(entry, dict) or entry.get("version") != SHARD_VERSION:
        return [_quarantine_file(
            path, "shard",
            f"stale or missing format version (this build writes "
            f"{SHARD_VERSION})",
            repair,
        )]
    if entry.get("fingerprint") != path.stem:
        return [_quarantine_file(
            path, "shard",
            f"fingerprint {entry.get('fingerprint')!r} contradicts the "
            "filename",
            repair,
        )]
    payload = {
        k: v for k, v in entry.items()
        if k not in ("version", "fingerprint", "payload_sha256")
    }
    if entry.get("payload_sha256") != payload_digest(payload):
        return [_quarantine_file(
            path, "shard", "payload sha256 mismatch", repair
        )]
    return []


# -- sweep-cache entries ----------------------------------------------


def fsck_cache_entry(path, repair: bool = False) -> List[Finding]:
    """Audit one content-addressed cache entry; repair quarantines it."""
    path = Path(path)
    try:
        entry = json.loads(path.read_text())
    except OSError as exc:
        return [Finding(path, "cache", f"unreadable: {exc}")]
    except ValueError:
        return [_quarantine_file(path, "cache", "unparseable JSON", repair)]
    if not isinstance(entry, dict) or entry.get("version") != CACHE_VERSION:
        return [_quarantine_file(
            path, "cache",
            f"stale or missing format version (this build writes "
            f"{CACHE_VERSION})",
            repair,
        )]
    payload = {
        k: v for k, v in entry.items()
        if k not in ("version", "payload_sha256")
    }
    if entry.get("payload_sha256") != payload_digest(payload):
        return [_quarantine_file(
            path, "cache", "payload sha256 mismatch", repair
        )]
    return []


# -- results CSVs -----------------------------------------------------


def fsck_results_csv(path, repair: bool = False) -> List[Finding]:
    """Audit one per-series results CSV; repair quarantines the file.

    Beyond "do the rows parse", every sample must be physically
    plausible on its face (finite positive seconds, finite non-negative
    GFLOP/s) and the iteration count must match the ``_iN`` suffix the
    filename promises — a renamed or truncated artifact fails loudly.
    """
    path = Path(path)
    problems: List[str] = []
    try:
        samples = read_samples(path)
    except OSError as exc:
        return [Finding(path, "results", f"unreadable: {exc}")]
    except Exception as exc:
        problems.append(f"rows do not parse: {type(exc).__name__}: {exc}")
        samples = []
    iterations: Optional[int] = None
    stem = path.stem
    if "_i" in stem:
        tail = stem.rsplit("_i", 1)[1]
        if tail.isdigit():
            iterations = int(tail)
    for row, sample in enumerate(samples, start=2):  # row 1 is the header
        if not (math.isfinite(sample.seconds) and sample.seconds > 0):
            problems.append(f"row {row}: non-positive or non-finite seconds")
        elif not (math.isfinite(sample.gflops) and sample.gflops >= 0):
            problems.append(f"row {row}: negative or non-finite gflops")
        elif iterations is not None and sample.iterations != iterations:
            problems.append(
                f"row {row}: iterations {sample.iterations} contradict "
                f"the filename's _i{iterations} suffix"
            )
    if not problems:
        return []
    summary = problems[0] if len(problems) == 1 else (
        f"{problems[0]} (+{len(problems) - 1} more)"
    )
    return [_quarantine_file(path, "results", summary, repair)]


def _fsck_quarantine_json(path: Path, repair: bool) -> List[Finding]:
    try:
        report = json.loads(path.read_text())
    except OSError as exc:
        return [Finding(path, "results", f"unreadable: {exc}")]
    except ValueError:
        return [_quarantine_file(path, "results", "unparseable JSON", repair)]
    if not isinstance(report, list):
        return [_quarantine_file(
            path, "results", "quarantine report is not a JSON list", repair
        )]
    return []


# -- dispatcher -------------------------------------------------------


def _is_hex_stem(path: Path, length: int) -> bool:
    stem = path.stem
    return len(stem) == length and all(
        c in "0123456789abcdef" for c in stem
    )


def _is_cache_entry(path: Path) -> bool:
    return _is_hex_stem(path, _SHA256_HEX)


def _is_result_shard(path: Path) -> bool:
    return _is_hex_stem(path, _FP_HEX)


def _fsck_one_file(path: Path, repair: bool) -> List[Finding]:
    if path.suffix == ".jsonl":
        return fsck_journal(path, repair)
    if path.suffix == ".csv":
        return fsck_results_csv(path, repair)
    if path.name == QUARANTINE_FILENAME:
        return _fsck_quarantine_json(path, repair)
    if path.suffix == ".json" and _is_cache_entry(path):
        return fsck_cache_entry(path, repair)
    if path.suffix == ".json" and _is_result_shard(path):
        return fsck_result_shard(path, repair)
    return []


def fsck_paths(paths: Iterable, repair: bool = False) -> List[Finding]:
    """Audit every artifact reachable from ``paths``.

    Files are dispatched by shape (``*.jsonl`` journal, ``*.csv``
    results series, ``quarantine.json`` report, 64-hex ``*.json`` cache
    entry); directories are scanned one level deep, skipping the cache
    lock file and anything already quarantined.
    """
    findings: List[Finding] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            for child in sorted(p.iterdir()):
                if child.name == LOCK_FILENAME or child.name == "quarantine":
                    continue
                if child.is_file():
                    findings.extend(_fsck_one_file(child, repair))
        elif p.is_file():
            findings.extend(_fsck_one_file(p, repair))
        else:
            findings.append(
                Finding(p, "path", "does not exist")
            )
    return findings
