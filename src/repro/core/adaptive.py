"""Adaptive sweeps: coarse grid + bisection refinement around crossings.

A dense sweep times every size in the grid to find a threshold that
depends only on *where the GPU starts winning* — O(d) samples for an
answer a bisection can localize in O(log d).  This module samples a
coarse grid (stride ``~sqrt(d)``, endpoints always included), then
refines: any adjacent sampled pair whose win/lose verdicts differ is
bisected until the flip is localized to neighboring indices, and a
guard band of :data:`GUARD` cells around every localized flip is
sampled so short counter-streaks next to a crossing (the flips the
paper's ``min_consecutive`` smoothing exists for) cannot hide between
samples.  The loop runs to a fixpoint — guard-band samples that expose
new flips are themselves bisected — so oscillating regions densify
automatically while smooth regions stay at the coarse stride.

Exactness rests on one documented invariant (DESIGN §14): win flips
are confined to the contiguous windows the refinement discovers — the
calibrated machine models produce smooth time-difference curves whose
every sign change is visible at the coarse stride.  Under it, every
unsampled index sits strictly between two sampled neighbors with equal
verdicts and inherits their value, giving the exact dense win sequence;
thresholds computed from it (``threshold_for_series`` short-circuits on
:attr:`ProblemSeries.adaptive_wins`) are identical to the dense scan
for every ``min_consecutive``.  The tier-1 suite proves the identity on
every calibrated system under both backends, and a hypothesis property
test re-proves it across random configs.

Adaptive mode is an *optimization of clean sweeps only*: it refuses to
compose with fault injection or checkpoint journaling (``run_sweep``
raises ``ConfigError``), so quarantine gaps cannot occur inside an
adaptive series; any unexpected trouble while sampling simply abandons
the attempt and the runner falls back to the dense reference path.
"""

from __future__ import annotations

from math import isqrt
from typing import Dict, List, Tuple

from ..types import DeviceKind, Precision, TransferType
from .config import RunConfig
from .records import ProblemSeries

__all__ = ["GUARD", "adaptive_fill_series"]

#: Cells sampled on each side of a localized win flip.  Matches the
#: paper's ``min_consecutive`` smoothing window (2): a counter-streak
#: short enough to hide inside an unsampled gap next to a crossing is
#: exactly the kind that moves a smoothed threshold.
GUARD = 2

#: Below this many grid points a dense scan is already minimal.
_MIN_GRID = 3


def adaptive_fill_series(
    state,
    series: ProblemSeries,
    problem_type,
    precision: Precision,
    config: RunConfig,
    transfers: Tuple[TransferType, ...],
) -> bool:
    """Fill ``series`` adaptively; return False to fall back to dense.

    All columns (CPU + every transfer) are sampled at the *union* of
    refined indices, keeping them aligned.  On success the series holds
    the sampled subset in ascending order, carries the inferred
    full-grid win sequences on ``adaptive_wins``/``adaptive_dims``, and
    the sampled/dense cell counts land on the run's stats.
    """
    params = config.sweep_params(problem_type)
    d = len(params)
    if d < _MIN_GRID:
        return False
    dims_all = [problem_type.dims_at(p) for p in params]
    columns: List[Tuple[DeviceKind, TransferType]] = [(DeviceKind.CPU, None)]
    columns.extend((DeviceKind.GPU, t) for t in transfers)

    backend = state.backend
    batched = state.can_batch()
    kernel = problem_type.kernel
    by_column: Dict[tuple, Dict[int, object]] = {
        (device, transfer): {} for device, transfer in columns
    }

    def evaluate(indices: List[int]) -> None:
        """Sample every column at ``indices`` (ascending, all fresh)."""
        dims_sub = [dims_all[i] for i in indices]
        fresh_columns = []
        for device, transfer in columns:
            if batched:
                if device is DeviceKind.CPU:
                    fresh = backend.cpu_sample_batch(
                        kernel, dims_sub, precision, config.iterations,
                        config.alpha, config.beta,
                    )
                else:
                    fresh = backend.gpu_sample_batch(
                        kernel, dims_sub, precision, config.iterations,
                        transfer, config.alpha, config.beta,
                    )
                if fresh is None or len(fresh) != len(dims_sub):
                    raise RuntimeError("batch sampler returned a short column")
            elif device is DeviceKind.CPU:
                fresh = [
                    backend.cpu_sample(
                        kernel, dims, precision, config.iterations,
                        config.alpha, config.beta,
                    )
                    for dims in dims_sub
                ]
            else:
                fresh = [
                    backend.gpu_sample(
                        kernel, dims, precision, config.iterations,
                        transfer, config.alpha, config.beta,
                    )
                    for dims in dims_sub
                ]
            fresh_columns.append((device, transfer, fresh))
        # Invariant-check every column before recording anything, same
        # all-or-nothing discipline as the vectorized fast path.
        for _device, _transfer, fresh in fresh_columns:
            state.guard(fresh, precision)
        for device, transfer, fresh in fresh_columns:
            col = by_column[(device, transfer)]
            for i, sample in zip(indices, fresh):
                col[i] = sample

    try:
        stride = max(2, isqrt(d))
        sampled = set(range(0, d, stride))
        sampled.add(d - 1)
        evaluate(sorted(sampled))
        cpu_col = by_column[(DeviceKind.CPU, None)]
        while True:
            ordered = sorted(sampled)
            need = set()
            for device, transfer in columns[1:]:
                gpu_col = by_column[(device, transfer)]
                wins = {
                    i: gpu_col[i].seconds < cpu_col[i].seconds
                    for i in ordered
                }
                for a, b in zip(ordered, ordered[1:]):
                    if wins[a] == wins[b]:
                        continue
                    if b - a > 1:
                        need.add((a + b) // 2)
                    else:
                        lo = max(0, a - (GUARD - 1))
                        hi = min(d, b + GUARD)
                        need.update(range(lo, hi))
            need -= sampled
            if not need:
                break
            evaluate(sorted(need))
            sampled |= need
    except Exception:
        # Nothing touched the series yet — dense path takes over.
        return False

    ordered = sorted(sampled)
    for device, transfer in columns:
        col = by_column[(device, transfer)]
        samples = [col[i] for i in ordered]
        if device is DeviceKind.CPU:
            series.cpu.extend(samples)
        else:
            series.gpu.setdefault(transfer, []).extend(samples)

    wins_by_transfer: Dict[TransferType, List[bool]] = {}
    for device, transfer in columns[1:]:
        gpu_col = by_column[(device, transfer)]
        wins: List[bool] = [False] * d
        for i in ordered:
            wins[i] = gpu_col[i].seconds < cpu_col[i].seconds
        # After the fixpoint every gap's endpoints agree; the gap
        # inherits their shared verdict.
        for a, b in zip(ordered, ordered[1:]):
            if b - a > 1:
                for j in range(a + 1, b):
                    wins[j] = wins[a]
        wins_by_transfer[transfer] = wins
    series.adaptive_wins = wins_by_transfer
    series.adaptive_dims = dims_all

    stats = state.result.stats
    ncols = len(columns)
    sampled_cells = len(ordered) * ncols
    stats.adaptive_cells_sampled += sampled_cells
    stats.adaptive_cells_dense += d * ncols
    if state.result.degraded:
        stats.fallback_samples += sampled_cells
    return True
