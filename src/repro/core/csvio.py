"""Artifact-style CSV persistence for sweep results.

One file per (precision, kernel, problem type) series, named like the
GPU-BLOB artifact's outputs (``sgemm_square_i8.csv``), with one row per
timed sample.  ``read_samples``/``read_run_dir`` round-trip everything
``write_run`` produces.  Runs with a non-empty quarantine list also get
a ``quarantine.json`` report, so partial sweeps are auditable from the
output directory alone.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import List, Optional

from ..types import DeviceKind, Dims, TransferType
from .records import PerfSample, ProblemSeries

__all__ = [
    "FIELDNAMES",
    "QUARANTINE_FILENAME",
    "read_samples",
    "read_run_dir",
    "sample_row",
    "series_filename",
    "write_quarantine",
    "write_run",
    "write_series",
]

QUARANTINE_FILENAME = "quarantine.json"

FIELDNAMES = (
    "device", "transfer", "kernel", "problem_type",
    "m", "n", "k", "iterations", "seconds", "gflops", "checksum_ok",
)


def series_filename(series: ProblemSeries) -> str:
    """``{s|d|h|bf16}{gemm|gemv}_{ident}_i{iterations}.csv``"""
    blas = series.precision.blas_prefix + series.kernel.value
    return f"{blas}_{series.ident}_i{series.iterations}.csv"


def _row(sample: PerfSample, series: ProblemSeries) -> dict:
    return {
        "device": sample.device.value,
        "transfer": sample.transfer.value if sample.transfer else "",
        "kernel": series.kernel.value,
        "problem_type": series.ident,
        "m": sample.dims.m,
        "n": sample.dims.n,
        "k": sample.dims.k,
        "iterations": sample.iterations,
        "seconds": repr(sample.seconds),
        "gflops": repr(sample.gflops),
        "checksum_ok": "" if sample.checksum_ok is None else int(sample.checksum_ok),
    }


def sample_row(sample: PerfSample, series: ProblemSeries) -> dict:
    """One sample as the exact cell strings :func:`write_series` emits.

    ``csv.DictWriter`` stringifies every value on the way out, so this
    is the byte-level contract of a CSV row — the serving daemon reuses
    it for its ``series`` payloads, which keeps a cached API response
    byte-identical to the CLI's CSV output.
    """
    return {k: str(v) for k, v in _row(sample, series).items()}


def write_series(series: ProblemSeries, path) -> Path:
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=FIELDNAMES)
        writer.writeheader()
        for sample in series.samples:
            writer.writerow(_row(sample, series))
    return path


def write_quarantine(result, path) -> Path:
    """JSON report of every quarantined cell of a run."""
    path = Path(path)
    path.write_text(json.dumps(result.quarantine_report(), indent=2) + "\n")
    return path


def write_run(result, directory) -> List[Path]:
    """Write every series of a run (plus a ``quarantine.json`` report
    when the run quarantined samples); returns the files written."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = [
        write_series(series, directory / series_filename(series))
        for series in result.series
    ]
    if getattr(result, "quarantine", None):
        paths.append(
            write_quarantine(result, directory / QUARANTINE_FILENAME)
        )
    return paths


def _parse_sample(row: dict) -> PerfSample:
    dims = Dims(int(row["m"]), int(row["n"]), int(row["k"]))
    transfer: Optional[TransferType] = (
        TransferType(row["transfer"]) if row["transfer"] else None
    )
    checksum_ok = None if row["checksum_ok"] == "" else bool(int(row["checksum_ok"]))
    return PerfSample(
        device=DeviceKind(row["device"]),
        transfer=transfer,
        dims=dims,
        iterations=int(row["iterations"]),
        seconds=float(row["seconds"]),
        gflops=float(row["gflops"]),
        checksum_ok=checksum_ok,
    )


def read_samples(path) -> List[PerfSample]:
    """All samples of one series file, in file order."""
    with Path(path).open(newline="") as fh:
        return [_parse_sample(row) for row in csv.DictReader(fh)]


def read_run_dir(directory) -> dict:
    """Every ``*.csv`` under ``directory``, keyed by file stem."""
    return {
        p.stem: read_samples(p)
        for p in sorted(Path(directory).glob("*.csv"))
    }
