"""The paper's exact FLOP and byte model (section III-C).

GEMM performs ``2MNK + MN`` flops with ``beta == 0`` and an extra
``q*MN`` (q = 1) when ``beta != 0``; GEMV performs ``2MN + M + q*M``.
The byte helpers model GPU-BLOB's transfer set: all operands travel
host-to-device (A, B and C — the benchmark uploads the output buffer
too), only the output travels back.

Two call forms exist for every helper:

* the scalar form takes one :class:`~repro.types.Dims` and returns an
  ``int`` — memoized with ``functools.lru_cache``, since a sweep asks
  for the same (dims, precision, beta) triple once per device and per
  transfer paradigm;
* the ``*_batch`` form takes NumPy integer arrays of dimensions (one
  uniform kernel per batch) and returns an ``int64`` array in one shot —
  the building block of the vectorized analytic fast path.  All swept
  dimensions stay far below 2**53, so the batch arithmetic converts to
  float exactly where the scalar path does and the two forms agree to
  the bit.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..types import Dims, Kernel, Precision

__all__ = [
    "arithmetic_intensity",
    "d2h_bytes",
    "d2h_bytes_batch",
    "flops_for",
    "flops_for_batch",
    "h2d_bytes",
    "h2d_bytes_batch",
    "kernel_bytes",
    "kernel_bytes_batch",
    "naive_flops",
]

#: Bound on the memoized helpers; large enough for several full-range
#: paper sweeps (4096 sizes x 14 problem types x precisions).
_CACHE_SIZE = 1 << 17


@lru_cache(maxsize=_CACHE_SIZE)
def flops_for(dims: Dims, beta: float = 0.0) -> int:
    """Exact flop count of one kernel invocation."""
    q = 1 if beta != 0.0 else 0
    if dims.is_gemm:
        return 2 * dims.m * dims.n * dims.k + dims.m * dims.n + q * dims.m * dims.n
    return 2 * dims.m * dims.n + dims.m + q * dims.m


def naive_flops(dims: Dims) -> int:
    """The commonly quoted ``2MNK`` / ``2MN`` approximation."""
    if dims.is_gemm:
        return 2 * dims.m * dims.n * dims.k
    return 2 * dims.m * dims.n


def _elements(dims: Dims) -> tuple:
    """(input elements, output elements) touched by one invocation."""
    if dims.is_gemm:
        return (dims.m * dims.k + dims.k * dims.n, dims.m * dims.n)
    return (dims.m * dims.n + dims.n, dims.m)


@lru_cache(maxsize=_CACHE_SIZE)
def h2d_bytes(dims: Dims, precision: Precision) -> int:
    """Bytes uploaded before the first iteration (A, B and C/x and y)."""
    inputs, outputs = _elements(dims)
    return (inputs + outputs) * precision.itemsize


@lru_cache(maxsize=_CACHE_SIZE)
def d2h_bytes(dims: Dims, precision: Precision) -> int:
    """Bytes downloaded after the last iteration (the output only)."""
    _, outputs = _elements(dims)
    return outputs * precision.itemsize


@lru_cache(maxsize=_CACHE_SIZE)
def kernel_bytes(dims: Dims, precision: Precision, beta: float = 0.0) -> int:
    """Memory traffic of one invocation assuming perfect operand reuse
    (reads of A and B/x, a write of the output, plus a read of the
    output when ``beta != 0``)."""
    inputs, outputs = _elements(dims)
    q = 1 if beta != 0.0 else 0
    return (inputs + outputs + q * outputs) * precision.itemsize


def arithmetic_intensity(dims: Dims, precision: Precision, beta: float = 0.0) -> float:
    """Flops per byte of minimum memory traffic — the paper's lens for
    why GEMM offloads and GEMV mostly does not."""
    return flops_for(dims, beta) / kernel_bytes(dims, precision, beta)


# -- vectorized forms -------------------------------------------------

def flops_for_batch(
    kernel: Kernel, m: np.ndarray, n: np.ndarray, k: np.ndarray,
    beta: float = 0.0,
) -> np.ndarray:
    """Exact flop counts of a batch of same-kernel problems (int64)."""
    q = 1 if beta != 0.0 else 0
    if kernel is Kernel.GEMM:
        return 2 * m * n * k + m * n + q * m * n
    return 2 * m * n + m + q * m


def _elements_batch(
    kernel: Kernel, m: np.ndarray, n: np.ndarray, k: np.ndarray
) -> tuple:
    if kernel is Kernel.GEMM:
        return (m * k + k * n, m * n)
    return (m * n + n, m)


def h2d_bytes_batch(
    kernel: Kernel, m: np.ndarray, n: np.ndarray, k: np.ndarray,
    precision: Precision,
) -> np.ndarray:
    inputs, outputs = _elements_batch(kernel, m, n, k)
    return (inputs + outputs) * precision.itemsize


def d2h_bytes_batch(
    kernel: Kernel, m: np.ndarray, n: np.ndarray, k: np.ndarray,
    precision: Precision,
) -> np.ndarray:
    _, outputs = _elements_batch(kernel, m, n, k)
    return outputs * precision.itemsize


def kernel_bytes_batch(
    kernel: Kernel, m: np.ndarray, n: np.ndarray, k: np.ndarray,
    precision: Precision, beta: float = 0.0,
) -> np.ndarray:
    inputs, outputs = _elements_batch(kernel, m, n, k)
    q = 1 if beta != 0.0 else 0
    return (inputs + outputs + q * outputs) * precision.itemsize
