"""The paper's exact FLOP and byte model (section III-C).

GEMM performs ``2MNK + MN`` flops with ``beta == 0`` and an extra
``q*MN`` (q = 1) when ``beta != 0``; GEMV performs ``2MN + M + q*M``.
The byte helpers model GPU-BLOB's transfer set: all operands travel
host-to-device (A, B and C — the benchmark uploads the output buffer
too), only the output travels back.
"""

from __future__ import annotations

from ..types import Dims, Precision

__all__ = [
    "arithmetic_intensity",
    "d2h_bytes",
    "flops_for",
    "h2d_bytes",
    "kernel_bytes",
    "naive_flops",
]


def flops_for(dims: Dims, beta: float = 0.0) -> int:
    """Exact flop count of one kernel invocation."""
    q = 1 if beta != 0.0 else 0
    if dims.is_gemm:
        return 2 * dims.m * dims.n * dims.k + dims.m * dims.n + q * dims.m * dims.n
    return 2 * dims.m * dims.n + dims.m + q * dims.m


def naive_flops(dims: Dims) -> int:
    """The commonly quoted ``2MNK`` / ``2MN`` approximation."""
    if dims.is_gemm:
        return 2 * dims.m * dims.n * dims.k
    return 2 * dims.m * dims.n


def _elements(dims: Dims) -> tuple:
    """(input elements, output elements) touched by one invocation."""
    if dims.is_gemm:
        return (dims.m * dims.k + dims.k * dims.n, dims.m * dims.n)
    return (dims.m * dims.n + dims.n, dims.m)


def h2d_bytes(dims: Dims, precision: Precision) -> int:
    """Bytes uploaded before the first iteration (A, B and C/x and y)."""
    inputs, outputs = _elements(dims)
    return (inputs + outputs) * precision.itemsize


def d2h_bytes(dims: Dims, precision: Precision) -> int:
    """Bytes downloaded after the last iteration (the output only)."""
    _, outputs = _elements(dims)
    return outputs * precision.itemsize


def kernel_bytes(dims: Dims, precision: Precision, beta: float = 0.0) -> int:
    """Memory traffic of one invocation assuming perfect operand reuse
    (reads of A and B/x, a write of the output, plus a read of the
    output when ``beta != 0``)."""
    inputs, outputs = _elements(dims)
    q = 1 if beta != 0.0 else 0
    return (inputs + outputs + q * outputs) * precision.itemsize


def arithmetic_intensity(dims: Dims, precision: Precision, beta: float = 0.0) -> float:
    """Flops per byte of minimum memory traffic — the paper's lens for
    why GEMM offloads and GEMV mostly does not."""
    return flops_for(dims, beta) / kernel_bytes(dims, precision, beta)
