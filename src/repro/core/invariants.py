"""Model-invariant guard: physical plausibility checks at the backend
boundary.

A miscalibrated :class:`~repro.systems.specs.SystemSpec` or a buggy
backend subclass can silently bend every offload threshold downstream —
a sample that implies moving data faster than the host-device link, or
computing above the device roofline, is not a data point, it is a bug.
The guard checks every *fresh* sample the sweep runner collects (replays
from checkpoints and cache hits are covered by the artifact integrity
layer instead):

1. **Finiteness** — ``seconds`` must be finite and strictly positive,
   ``gflops`` finite and non-negative.
2. **Link-bandwidth floor** — a GPU sample's total time cannot beat the
   bytes its paradigm must move across the link at the link's peak
   bandwidth.  The floor is schedule-agnostic (``max`` of the two
   directions, so double-buffered overlap is never a false positive)
   and derated by the model's noise amplitude.
3. **Roofline ceiling** — the aggregate GFLOP/s rate cannot exceed the
   device's spec peak.  The ceiling carries a documented slack factor:
   the CPU's warm-data compute boost and matrix-engine speedups are
   folded in exactly, and library quirks that *speed up* a kernel (e.g.
   ``rocblas-sgemm-k2560`` at 0.85x time) are covered by
   :data:`QUIRK_SLACK`.

:func:`validate_spec` separately audits a spec's own calibration —
scale factors above 1.0 (an effective bandwidth above the link peak),
non-positive peaks, NaN anywhere — which is how ``--strict`` rejects a
spec "calibrated above its own link bandwidth" before the sweep starts.

Violations raise :class:`~repro.errors.ModelInvariantError` in strict
mode (``RunConfig.validate=True`` / ``--strict``) and emit
:class:`~repro.errors.ModelInvariantWarning` otherwise.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import ModelInvariantError, ModelInvariantWarning
from ..types import DeviceKind, Precision, TransferType

__all__ = [
    "QUIRK_SLACK",
    "InvariantContext",
    "check_samples",
    "guard_samples",
    "guard_spec",
    "invariant_context",
    "validate_spec",
]

#: Headroom above the spec roofline for known library quirks that model
#: *speedups* (time factors < 1; the largest today is rocBLAS's 0.85x,
#: i.e. a 1.18x rate), plus float-noise between the analytic and DES
#: paths.  A real miscalibration overshoots by far more than this.
QUIRK_SLACK = 1.25

#: Relative tolerance absorbing float-sum differences between the
#: closed-form and event-replay paths.
_REL_EPS = 1e-6


@dataclass(frozen=True)
class InvariantContext:
    """Everything the per-sample checks need about the model behind a
    backend.  ``spec=None`` (host measurements, unknown backends)
    reduces the guard to the finiteness checks."""

    spec: object = None  # Optional[SystemSpec]
    noise_amplitude: float = 0.0

    @property
    def time_slack(self) -> float:
        """Worst-case multiplicative shrink the noise model may apply."""
        return max(0.0, 1.0 - self.noise_amplitude) * (1.0 - _REL_EPS)


def invariant_context(backend) -> InvariantContext:
    """Build the check context for a backend, unwrapping fault
    injectors.  Injected faults only ever *slow* samples down, so the
    inner model's spec and noise amplitude stay authoritative."""
    inner = getattr(backend, "inner", backend)
    model = getattr(inner, "model", None)
    if model is None:
        return InvariantContext()
    noise = getattr(model, "noise", None)
    amplitude = float(getattr(noise, "amplitude", 0.0) or 0.0)
    return InvariantContext(spec=model.spec, noise_amplitude=amplitude)


# -- spec calibration -------------------------------------------------


def _bad(value: float) -> bool:
    return not math.isfinite(value)


def validate_spec(spec) -> List[str]:
    """Audit a :class:`SystemSpec`'s calibration; returns violation
    strings (empty = clean).

    The decisive checks are the bandwidth scale factors: a
    ``staging_bw_scale`` or ``migration_bw_scale`` above 1.0 makes the
    model move data faster than the link's own peak — a spec calibrated
    above its own link bandwidth.
    """
    out: List[str] = []
    cpu, gpu, link, usm = spec.cpu, spec.gpu, spec.link, spec.usm
    for label, value in (
        ("cpu.cores", cpu.cores),
        ("cpu.freq_ghz", cpu.freq_ghz),
        ("cpu.flops_per_cycle_f64", cpu.flops_per_cycle_f64),
        ("cpu.mem_bw_gbs", cpu.mem_bw_gbs),
        ("cpu.single_core_mem_bw_gbs", cpu.single_core_mem_bw_gbs),
        ("cpu.cache_bw_gbs", cpu.cache_bw_gbs),
        ("cpu.single_core_cache_bw_gbs", cpu.single_core_cache_bw_gbs),
        ("link.bw_gbs", link.bw_gbs),
    ):
        if _bad(value) or value <= 0:
            out.append(f"{spec.name}: {label} must be positive, got {value!r}")
    if _bad(link.latency_s) or link.latency_s < 0:
        out.append(
            f"{spec.name}: link.latency_s must be >= 0, got {link.latency_s!r}"
        )
    if _bad(cpu.warm_compute_boost) or cpu.warm_compute_boost < 1.0:
        out.append(
            f"{spec.name}: cpu.warm_compute_boost must be >= 1, got "
            f"{cpu.warm_compute_boost!r}"
        )
    if _bad(link.staging_bw_scale) or not 0.0 < link.staging_bw_scale <= 1.0:
        out.append(
            f"{spec.name}: link.staging_bw_scale={link.staging_bw_scale!r} "
            "implies a staged transfer bandwidth above the link peak "
            f"({link.bw_gbs} GB/s); must be in (0, 1]"
        )
    if _bad(usm.migration_bw_scale) or not 0.0 < usm.migration_bw_scale <= 1.0:
        out.append(
            f"{spec.name}: usm.migration_bw_scale={usm.migration_bw_scale!r} "
            "implies a migration bandwidth above the link peak "
            f"({link.bw_gbs} GB/s); must be in (0, 1]"
        )
    if usm.pages_per_fault < 1 or usm.page_bytes < 1:
        out.append(
            f"{spec.name}: usm pages_per_fault/page_bytes must be >= 1"
        )
    if gpu is not None:
        for label, value in (
            ("gpu.peak_gflops_f64", gpu.peak_gflops_f64),
            ("gpu.peak_gflops_f32", gpu.peak_gflops_f32),
            ("gpu.mem_bw_gbs", gpu.mem_bw_gbs),
        ):
            if _bad(value) or value <= 0:
                out.append(
                    f"{spec.name}: {label} must be positive, got {value!r}"
                )
    return out


# -- per-sample checks ------------------------------------------------


def _cpu_peak_gflops(spec, precision: Precision) -> float:
    peak = spec.cpu.peak_gflops(precision.itemsize)
    peak *= spec.cpu.warm_compute_boost
    engine = spec.cpu.matrix_engine
    if engine is not None:
        peak *= engine.speedup_for(precision.value)
    return peak


def _check_one(sample, precision: Precision, ctx: InvariantContext
               ) -> Optional[str]:
    """One sample's violation string, or ``None`` when plausible."""
    seconds, gflops = sample.seconds, sample.gflops
    if not math.isfinite(seconds) or seconds <= 0.0:
        return f"non-finite or non-positive time {seconds!r}"
    if not math.isfinite(gflops) or gflops < 0.0:
        return f"non-finite or negative rate {gflops!r} GFLOP/s"
    spec = ctx.spec
    if spec is None:
        return None
    if sample.device is DeviceKind.GPU and sample.transfer is not None:
        from .flops import d2h_bytes, h2d_bytes

        up = h2d_bytes(sample.dims, precision)
        down = d2h_bytes(sample.dims, precision)
        if sample.transfer is TransferType.ALWAYS:
            up, down = up * sample.iterations, down * sample.iterations
        # Schedule-agnostic floor: whatever the overlap, each direction
        # must move its bytes through the link at no more than peak.
        floor = max(up, down) / (spec.link.bw_gbs * 1e9)
        if seconds < floor * ctx.time_slack:
            eff = max(up, down) / seconds / 1e9
            return (
                f"effective link bandwidth {eff:.1f} GB/s exceeds the "
                f"{spec.link.bw_gbs:.1f} GB/s link peak of {spec.name}"
            )
        peak = spec.gpu.peak_gflops(precision.value) if spec.gpu else None
    else:
        peak = _cpu_peak_gflops(spec, precision)
    if peak is not None and gflops > peak * QUIRK_SLACK / ctx.time_slack:
        return (
            f"throughput {gflops:.1f} GFLOP/s exceeds the {peak:.1f} "
            f"GFLOP/s {sample.device.value} roofline of {spec.name}"
        )
    return None


def check_samples(
    samples: Sequence, precision: Precision, ctx: InvariantContext
) -> List[Tuple[object, str]]:
    """Violations among ``samples``: ``(sample, reason)`` pairs."""
    out: List[Tuple[object, str]] = []
    for sample in samples:
        if sample is None:
            continue
        reason = _check_one(sample, precision, ctx)
        if reason is not None:
            out.append((sample, reason))
    return out


#: Column length above which the guard vectorizes its checks.
_BATCH_THRESHOLD = 32


def _check_column(samples: Sequence, precision: Precision,
                  ctx: InvariantContext):
    """Vectorized twin of :func:`_check_one` for one *uniform*
    (device, transfer, iterations) column — the shape the runner's fast
    path produces.  Returns indices of violating samples; the caller
    re-checks only those scalarly for the violation message.
    """
    import numpy as np

    count = len(samples)
    seconds = np.fromiter(
        (s.seconds for s in samples), dtype=np.float64, count=count
    )
    gflops = np.fromiter(
        (s.gflops for s in samples), dtype=np.float64, count=count
    )
    bad = (
        ~np.isfinite(seconds) | (seconds <= 0.0)
        | ~np.isfinite(gflops) | (gflops < 0.0)
    )
    spec = ctx.spec
    if spec is not None:
        first = samples[0]
        peak = None
        if first.device is DeviceKind.GPU and first.transfer is not None:
            from .flops import d2h_bytes_batch, h2d_bytes_batch

            kernel = first.dims.kernel
            m = np.fromiter((s.dims.m for s in samples), np.int64, count=count)
            n = np.fromiter((s.dims.n for s in samples), np.int64, count=count)
            k = np.fromiter((s.dims.k for s in samples), np.int64, count=count)
            up = h2d_bytes_batch(kernel, m, n, k, precision)
            down = d2h_bytes_batch(kernel, m, n, k, precision)
            if first.transfer is TransferType.ALWAYS:
                up, down = up * first.iterations, down * first.iterations
            floor = np.maximum(up, down) / (spec.link.bw_gbs * 1e9)
            with np.errstate(invalid="ignore"):
                bad |= seconds < floor * ctx.time_slack
            if spec.gpu is not None:
                peak = spec.gpu.peak_gflops(precision.value)
        else:
            peak = _cpu_peak_gflops(spec, precision)
        if peak is not None:
            bad |= gflops > peak * QUIRK_SLACK / ctx.time_slack
    return np.nonzero(bad)[0]


def _is_uniform_column(samples: Sequence) -> bool:
    first = samples[0]
    device, transfer, iterations = first.device, first.transfer, first.iterations
    return all(
        s is not None
        and s.device is device
        and s.transfer is transfer
        and s.iterations == iterations
        for s in samples
    )


def guard_samples(
    samples: Sequence,
    precision: Precision,
    ctx: InvariantContext,
    strict: bool,
) -> None:
    """Enforce the invariants on freshly produced samples.

    Strict mode raises :class:`ModelInvariantError` on the first
    violation; the default mode emits one
    :class:`ModelInvariantWarning` per violating sample and keeps it.
    Long uniform columns (the vectorized fast path's shape) are checked
    in one NumPy shot so the guard stays off the critical path.
    """
    if len(samples) >= _BATCH_THRESHOLD and _is_uniform_column(samples):
        flagged = [samples[i] for i in _check_column(samples, precision, ctx)]
        if not flagged:
            return
        violations = check_samples(flagged, precision, ctx)
    else:
        violations = check_samples(samples, precision, ctx)
    for sample, reason in violations:
        message = f"model invariant violated at {sample.dims}: {reason}"
        if strict:
            raise ModelInvariantError(message)
        warnings.warn(message, ModelInvariantWarning, stacklevel=3)


def guard_spec(ctx: InvariantContext, strict: bool) -> None:
    """Enforce :func:`validate_spec` before a sweep starts."""
    if ctx.spec is None:
        return
    violations = validate_spec(ctx.spec)
    if not violations:
        return
    message = "; ".join(violations)
    if strict:
        raise ModelInvariantError(message)
    warnings.warn(message, ModelInvariantWarning, stacklevel=3)
