"""Content-addressed sweep cache.

Re-running the exact same sweep is the common case of the golden-
regression workflow: the tables/figures regenerate from configurations
that have not changed.  The cache keys a JSON store on the checkpoint
layer's config fingerprint (:func:`repro.faults.checkpoint
.config_fingerprint`) combined with the backend's ``cache_token`` — the
full parameterization of the model behind it — so a hit can only replay
a run that would have been recomputed identically.

Floats are stored as JSON numbers, which round-trip exactly, so a
cache hit reproduces every ``PerfSample`` bit-for-bit and downstream
CSVs stay byte-identical.  Only complete, fault-free, non-degraded runs
are stored; anything else (quarantined cells, device loss, host
measurements with no token) falls through to a real execution.

Integrity: every entry embeds a ``payload_sha256`` over its canonical
payload, verified on load — a flipped byte inside syntactically valid
JSON is a *warned* miss (:class:`~repro.errors.CacheIntegrityWarning`),
never a silent replay of corrupted data.  Entries are written atomically
(tmp file + rename) under a cross-process ``flock`` so concurrent
sweeps racing on one store never expose a torn entry; a stale-format
entry is treated as a quiet miss and overwritten.

Hits refresh an entry's mtime, which is the recency order
:func:`prune_cache` (``gpu-blob cache prune``) evicts against.

The store also keeps running **hit/miss/store counters** in a hidden
``.stats`` sidecar (no ``.json`` suffix, so it is invisible to the
``*.json`` entry globs and to fsck's cache-entry dispatch).  They are
bumped under the same writer lock, survive across processes, and back
both ``gpu-blob cache stats`` and the serving daemon's ``/metrics``
endpoint.  :class:`SingleFlight` lives here too: the keyed
compute-coalescing primitive the daemon wraps around cache fills so a
thundering herd on one cold key runs a single sweep.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
import warnings
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..errors import CacheIntegrityWarning, ConfigError
from ..faults.checkpoint import config_fingerprint
from ..types import DeviceKind, Dims, Kernel, Precision, TransferType
from .config import RunConfig
from .problem import get_problem_type
from .records import PerfSample, ProblemSeries

__all__ = [
    "SingleFlight",
    "cache_stats",
    "find_stale_series",
    "load_cached_run",
    "parse_run_payload",
    "payload_digest",
    "prune_cache",
    "run_payload",
    "store_run",
    "sweep_cache_key",
    "top_entries",
]

#: v2 added the ``payload_sha256`` integrity digest.
CACHE_VERSION = 2

#: Cross-process writer lock, held only around mutations of the store.
LOCK_FILENAME = ".lock"

#: Hidden sidecar holding the store's running hit/miss/store counters.
STATS_FILENAME = ".stats"


def sweep_cache_key(
    config: RunConfig, system_name: Optional[str], backend
) -> Optional[str]:
    """SHA-256 content address of one (config, system, backend) sweep,
    or ``None`` when the backend declines caching (no ``cache_token``)."""
    token = getattr(backend, "cache_token", None)
    if token is None:
        return None
    fingerprint = config_fingerprint(config, system_name)
    return hashlib.sha256(f"{fingerprint}\n{token}".encode()).hexdigest()


def payload_digest(payload: dict) -> str:
    """SHA-256 of an entry payload's canonical JSON form (everything
    except the ``version``/``payload_sha256`` envelope fields)."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@contextlib.contextmanager
def _cache_lock(cache_dir):
    """Exclusive cross-process lock over one cache directory.

    Uses ``flock`` on a sidecar ``.lock`` file; platforms without
    ``fcntl`` fall back to the atomic-rename guarantee alone (writers
    can then race, but never tear an entry).
    """
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX platforms
        yield
        return
    with (cache_dir / LOCK_FILENAME).open("w") as fh:
        fcntl.flock(fh, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(fh, fcntl.LOCK_UN)


def _entry_path(cache_dir, key: str) -> Path:
    return Path(cache_dir) / f"{key}.json"


def _bump_stat(cache_dir, field: str, entry_key: Optional[str] = None) -> None:
    """Increment one persistent store counter (best-effort: a stats
    write must never fail a sweep).  ``entry_key`` additionally bumps
    that entry's per-key hit count (``gpu-blob cache stats --top``)."""
    path = Path(cache_dir) / STATS_FILENAME
    with contextlib.suppress(Exception):
        with _cache_lock(path.parent):
            try:
                counters = json.loads(path.read_text())
            except (OSError, ValueError):
                counters = {}
            if not isinstance(counters, dict):
                counters = {}
            counters[field] = int(counters.get(field, 0)) + 1
            if entry_key is not None:
                per_entry = counters.get("entry_hits")
                if not isinstance(per_entry, dict):
                    per_entry = {}
                per_entry[entry_key] = int(per_entry.get(entry_key, 0)) + 1
                counters["entry_hits"] = per_entry
            tmp = path.with_suffix(f".tmp-{os.getpid()}")
            tmp.write_text(json.dumps(counters, sort_keys=True) + "\n")
            tmp.replace(path)


def top_entries(cache_dir, limit: int = 10) -> List[dict]:
    """The store's hottest entries by per-key hit count, descending
    (ties broken by key for a stable listing)."""
    cache_dir = Path(cache_dir)
    try:
        counters = json.loads((cache_dir / STATS_FILENAME).read_text())
    except (OSError, ValueError):
        counters = {}
    per_entry = counters.get("entry_hits") if isinstance(counters, dict) else {}
    if not isinstance(per_entry, dict):
        per_entry = {}
    ranked = sorted(
        per_entry.items(), key=lambda kv: (-int(kv[1]), kv[0])
    )[: max(0, limit)]
    out = []
    for key, hits in ranked:
        present = _entry_path(cache_dir, key).is_file()
        out.append({"key": key, "hits": int(hits), "present": present})
    return out


def cache_stats(cache_dir) -> dict:
    """Entry count, total payload bytes, and the persistent hit/miss/
    store counters of one cache directory.

    The same numbers back ``gpu-blob cache stats`` and the serving
    daemon's ``/metrics`` endpoint, so the two always agree.
    """
    cache_dir = Path(cache_dir)
    entries = 0
    total_bytes = 0
    if cache_dir.is_dir():
        for path in cache_dir.glob("*.json"):
            with contextlib.suppress(OSError):
                total_bytes += path.stat().st_size
                entries += 1
    try:
        counters = json.loads((cache_dir / STATS_FILENAME).read_text())
        if not isinstance(counters, dict):
            counters = {}
    except (OSError, ValueError):
        counters = {}
    hits = int(counters.get("hits", 0))
    misses = int(counters.get("misses", 0))
    lookups = hits + misses
    return {
        "entries": entries,
        "total_bytes": total_bytes,
        "hits": hits,
        "misses": misses,
        "stores": int(counters.get("stores", 0)),
        "hit_rate": (hits / lookups) if lookups else 0.0,
    }


class _Flight:
    """One in-progress computation shared by a leader and followers."""

    __slots__ = ("event", "result", "exc", "followers")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result = None
        self.exc: Optional[BaseException] = None
        self.followers = 0


class SingleFlight:
    """Keyed compute coalescing: concurrent :meth:`do` calls for one key
    run the function once and share its outcome.

    The first caller (the leader) executes ``fn``; callers that arrive
    while it is still running block and receive the leader's result —
    or its exception, re-raised in every follower.  Thread-safe; the
    serving daemon uses it so a burst of identical cold-key requests
    fills the sweep cache with exactly one execution.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: Dict[object, _Flight] = {}
        #: calls served from another caller's in-progress computation
        self.coalesced = 0

    def do(self, key, fn: Callable[[], object]):
        with self._lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._flights[key] = flight
            else:
                flight.followers += 1
        if not leader:
            flight.event.wait()
            with self._lock:
                self.coalesced += 1
            if flight.exc is not None:
                raise flight.exc
            return flight.result
        try:
            flight.result = fn()
        except BaseException as exc:
            flight.exc = exc
            raise
        finally:
            with self._lock:
                del self._flights[key]
            flight.event.set()
        return flight.result


def _sample_record(sample: PerfSample) -> dict:
    return {
        "device": sample.device.value,
        "transfer": sample.transfer.value if sample.transfer else None,
        "m": sample.dims.m,
        "n": sample.dims.n,
        "k": sample.dims.k,
        "iterations": sample.iterations,
        "seconds": sample.seconds,
        "gflops": sample.gflops,
        "checksum_ok": sample.checksum_ok,
    }


def _parse_sample(rec: dict) -> PerfSample:
    return PerfSample(
        device=DeviceKind(rec["device"]),
        transfer=TransferType(rec["transfer"]) if rec["transfer"] else None,
        dims=Dims(rec["m"], rec["n"], rec["k"]),
        iterations=rec["iterations"],
        seconds=rec["seconds"],
        gflops=rec["gflops"],
        checksum_ok=rec["checksum_ok"],
    )


def run_payload(result) -> dict:
    """The canonical JSON form of one run's series — the shared
    serialization of cache entries and distributed-campaign result
    shards.  Floats round-trip through JSON exactly, so a payload
    parsed back by :func:`parse_run_payload` reproduces the run
    byte-for-byte in every CSV it feeds."""
    return {
        "system": result.system_name,
        "series": [
            {
                "kernel": series.kernel.value,
                "ident": series.ident,
                "precision": series.precision.value,
                "iterations": series.iterations,
                "samples": [_sample_record(s) for s in series.samples],
            }
            for series in result.series
        ],
    }


def parse_run_payload(payload: dict, config: RunConfig,
                      system_name: Optional[str]):
    """Reconstruct a :class:`~repro.core.runner.RunResult` from a
    :func:`run_payload` dict.  Raises ``KeyError``/``TypeError``/
    ``ValueError`` on malformed payloads — callers decide whether that
    is a warned cache miss or a re-dispatched scenario."""
    from .runner import RunResult  # local import: runner imports us lazily

    series_list: List[ProblemSeries] = []
    for rec in payload["series"]:
        series = ProblemSeries(
            problem_type=get_problem_type(Kernel(rec["kernel"]), rec["ident"]),
            precision=Precision(rec["precision"]),
            iterations=rec["iterations"],
        )
        for sample_rec in rec["samples"]:
            series.add(_parse_sample(sample_rec))
        series_list.append(series)
    return RunResult(
        config=config,
        system_name=payload.get("system", system_name),
        series=series_list,
    )


def store_run(cache_dir, backend, result) -> Optional[Path]:
    """Store one completed run; returns the entry path (None if the
    backend is uncacheable)."""
    key = sweep_cache_key(result.config, result.system_name, backend)
    if key is None:
        return None
    payload = run_payload(result)
    entry = {
        "version": CACHE_VERSION,
        "payload_sha256": payload_digest(payload),
        **payload,
    }
    path = _entry_path(cache_dir, key)
    with _cache_lock(path.parent):
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        tmp.write_text(json.dumps(entry, separators=(",", ":")) + "\n")
        tmp.replace(path)
    _bump_stat(cache_dir, "stores")
    return path


def _warn_corrupt(path: Path, why: str) -> None:
    warnings.warn(
        f"sweep-cache entry {path.name} {why}; treating it as a miss "
        "(run `gpu-blob fsck` to audit, `--repair` to quarantine)",
        CacheIntegrityWarning,
        stacklevel=4,
    )


def load_cached_run(
    cache_dir, config: RunConfig, system_name: Optional[str], backend
):
    """Replay a stored run of the identical (config, system, backend)
    triple; ``None`` on a miss.  Unparseable or digest-mismatched
    entries are warned misses, stale format versions quiet ones."""
    key = sweep_cache_key(config, system_name, backend)
    if key is None:
        return None
    result = _load_entry(cache_dir, key, config, system_name)
    if result is None:
        _bump_stat(cache_dir, "misses")
    else:
        _bump_stat(cache_dir, "hits", entry_key=key)
    return result


def _load_entry(cache_dir, key: str, config: RunConfig, system_name):
    path = _entry_path(cache_dir, key)
    try:
        text = path.read_text()
    except OSError:
        return None  # absent (or racing eviction): a plain miss
    try:
        entry = json.loads(text)
    except ValueError:
        _warn_corrupt(path, "is not parseable JSON")
        return None
    if not isinstance(entry, dict) or entry.get("version") != CACHE_VERSION:
        return None  # stale format: recompute and overwrite quietly
    payload = {
        k: v for k, v in entry.items()
        if k not in ("version", "payload_sha256")
    }
    if entry.get("payload_sha256") != payload_digest(payload):
        _warn_corrupt(path, "failed its payload sha256 check")
        return None
    try:
        result = parse_run_payload(payload, config, system_name)
    except (KeyError, TypeError, ValueError):
        _warn_corrupt(path, "does not decode to a stored run")
        return None
    with contextlib.suppress(OSError):
        os.utime(path)  # refresh LRU recency for `cache prune`
    result.stats.cached_samples = sum(len(s.samples) for s in result.series)
    return result


def find_stale_series(
    cache_dir,
    system_name: Optional[str],
    kernel: Kernel,
    ident: str,
    precision: Precision,
    iterations: int,
):
    """Degraded-mode (stale-while-revalidate) lookup for the serving
    daemon: when the backend behind a threshold query is circuit-broken,
    the *nearest* stored series beats a 500.

    Scans every intact cache entry for ``system_name`` and returns the
    series matching (kernel, problem ident, precision) whose iteration
    count is closest to ``iterations`` — the exact count when present —
    as ``(series, matched_iterations)``, or ``None`` when nothing
    matches.  Ties and scan order are deterministic (sorted entry
    names), and entries failing their payload digest are skipped: even
    a degraded answer never serves corrupted data.
    """
    cache_dir = Path(cache_dir)
    if not cache_dir.is_dir():
        return None
    best = None  # ((|Δiterations|, iterations, entry name), series record)
    for path in sorted(cache_dir.glob("*.json")):
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if not isinstance(entry, dict) or entry.get("version") != CACHE_VERSION:
            continue
        payload = {
            k: v for k, v in entry.items()
            if k not in ("version", "payload_sha256")
        }
        if entry.get("payload_sha256") != payload_digest(payload):
            continue
        if payload.get("system") != system_name:
            continue
        for rec in payload.get("series", ()):
            try:
                matches = (
                    rec["kernel"] == kernel.value
                    and rec["ident"] == ident
                    and rec["precision"] == precision.value
                )
                rec_iterations = int(rec["iterations"])
            except (KeyError, TypeError, ValueError):
                continue
            if not matches:
                continue
            rank = (abs(rec_iterations - iterations), rec_iterations, path.name)
            if best is None or rank < best[0]:
                best = (rank, rec)
    if best is None:
        return None
    rec = best[1]
    try:
        series = ProblemSeries(
            problem_type=get_problem_type(Kernel(rec["kernel"]), rec["ident"]),
            precision=Precision(rec["precision"]),
            iterations=rec["iterations"],
        )
        for sample_rec in rec["samples"]:
            series.add(_parse_sample(sample_rec))
    except (KeyError, TypeError, ValueError):
        return None
    return series, int(rec["iterations"])


def prune_cache(
    cache_dir,
    max_entries: Optional[int] = None,
    max_bytes: Optional[int] = None,
) -> List[Path]:
    """LRU-evict cache entries until the store fits the given bounds.

    Recency is the entry mtime (hits refresh it); the oldest entries go
    first.  Returns the evicted paths.  ``None`` bounds are unlimited.
    """
    for label, bound in (("max_entries", max_entries), ("max_bytes", max_bytes)):
        if bound is not None and bound < 0:
            raise ConfigError(f"{label} must be >= 0, got {bound}")
    cache_dir = Path(cache_dir)
    if not cache_dir.is_dir():
        return []
    evicted: List[Path] = []
    with _cache_lock(cache_dir):
        entries = []
        for path in cache_dir.glob("*.json"):
            try:
                st = path.stat()
            except OSError:  # pragma: no cover - racing writer
                continue
            entries.append((st.st_mtime, st.st_size, path))
        entries.sort(key=lambda e: (e[0], e[2].name))
        count = len(entries)
        total = sum(size for _, size, _ in entries)
        for _, size, path in entries:
            over_entries = max_entries is not None and count > max_entries
            over_bytes = max_bytes is not None and total > max_bytes
            if not (over_entries or over_bytes):
                break
            with contextlib.suppress(OSError):
                path.unlink()
            evicted.append(path)
            count -= 1
            total -= size
    return evicted
