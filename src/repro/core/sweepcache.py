"""Content-addressed sweep cache.

Re-running the exact same sweep is the common case of the golden-
regression workflow: the tables/figures regenerate from configurations
that have not changed.  The cache keys a JSON store on the checkpoint
layer's config fingerprint (:func:`repro.faults.checkpoint
.config_fingerprint`) combined with the backend's ``cache_token`` — the
full parameterization of the model behind it — so a hit can only replay
a run that would have been recomputed identically.

Floats are stored as JSON numbers, which round-trip exactly, so a
cache hit reproduces every ``PerfSample`` bit-for-bit and downstream
CSVs stay byte-identical.  Only complete, fault-free, non-degraded runs
are stored; anything else (quarantined cells, device loss, host
measurements with no token) falls through to a real execution.

Entries are written atomically (tmp file + rename) so concurrent
sweeps racing on one store never expose a torn entry; an unreadable or
version-skewed entry is treated as a miss and overwritten.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import List, Optional

from ..faults.checkpoint import config_fingerprint
from ..types import DeviceKind, Dims, Kernel, Precision, TransferType
from .config import RunConfig
from .problem import get_problem_type
from .records import PerfSample, ProblemSeries

__all__ = ["load_cached_run", "store_run", "sweep_cache_key"]

CACHE_VERSION = 1


def sweep_cache_key(
    config: RunConfig, system_name: Optional[str], backend
) -> Optional[str]:
    """SHA-256 content address of one (config, system, backend) sweep,
    or ``None`` when the backend declines caching (no ``cache_token``)."""
    token = getattr(backend, "cache_token", None)
    if token is None:
        return None
    fingerprint = config_fingerprint(config, system_name)
    return hashlib.sha256(f"{fingerprint}\n{token}".encode()).hexdigest()


def _entry_path(cache_dir, key: str) -> Path:
    return Path(cache_dir) / f"{key}.json"


def _sample_record(sample: PerfSample) -> dict:
    return {
        "device": sample.device.value,
        "transfer": sample.transfer.value if sample.transfer else None,
        "m": sample.dims.m,
        "n": sample.dims.n,
        "k": sample.dims.k,
        "iterations": sample.iterations,
        "seconds": sample.seconds,
        "gflops": sample.gflops,
        "checksum_ok": sample.checksum_ok,
    }


def _parse_sample(rec: dict) -> PerfSample:
    return PerfSample(
        device=DeviceKind(rec["device"]),
        transfer=TransferType(rec["transfer"]) if rec["transfer"] else None,
        dims=Dims(rec["m"], rec["n"], rec["k"]),
        iterations=rec["iterations"],
        seconds=rec["seconds"],
        gflops=rec["gflops"],
        checksum_ok=rec["checksum_ok"],
    )


def store_run(cache_dir, backend, result) -> Optional[Path]:
    """Store one completed run; returns the entry path (None if the
    backend is uncacheable)."""
    key = sweep_cache_key(result.config, result.system_name, backend)
    if key is None:
        return None
    payload = {
        "version": CACHE_VERSION,
        "system": result.system_name,
        "series": [
            {
                "kernel": series.kernel.value,
                "ident": series.ident,
                "precision": series.precision.value,
                "iterations": series.iterations,
                "samples": [_sample_record(s) for s in series.samples],
            }
            for series in result.series
        ],
    }
    path = _entry_path(cache_dir, key)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp-{os.getpid()}")
    tmp.write_text(json.dumps(payload, separators=(",", ":")) + "\n")
    tmp.replace(path)
    return path


def load_cached_run(
    cache_dir, config: RunConfig, system_name: Optional[str], backend
):
    """Replay a stored run of the identical (config, system, backend)
    triple; ``None`` on a miss (including unreadable entries)."""
    from .runner import RunResult  # local import: runner imports us lazily

    key = sweep_cache_key(config, system_name, backend)
    if key is None:
        return None
    path = _entry_path(cache_dir, key)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
        if payload.get("version") != CACHE_VERSION:
            return None
        series_list: List[ProblemSeries] = []
        count = 0
        for rec in payload["series"]:
            series = ProblemSeries(
                problem_type=get_problem_type(
                    Kernel(rec["kernel"]), rec["ident"]
                ),
                precision=Precision(rec["precision"]),
                iterations=rec["iterations"],
            )
            for sample_rec in rec["samples"]:
                series.add(_parse_sample(sample_rec))
                count += 1
            series_list.append(series)
    except (KeyError, ValueError, OSError):
        return None  # torn or stale entry: treat as a miss
    result = RunResult(
        config=config,
        system_name=payload.get("system", system_name),
        series=series_list,
    )
    result.stats.cached_samples = count
    return result
