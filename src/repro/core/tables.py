"""Paper-style text tables for sweep results.

``threshold_table_for_runs`` renders the Table III/IV layout (rows are
iteration counts, columns transfer paradigms, cells ``S : D`` threshold
dims); ``first_threshold_iteration`` answers the Table V/VI question
(how much data re-use before Transfer-Once first yields a threshold);
``run_summary`` is the per-run report the CLI and quickstart print.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..types import ALL_PRECISIONS, Kernel, Precision, TransferType
from .threshold import threshold_for_series

__all__ = [
    "first_threshold_iteration",
    "render_table",
    "run_summary",
    "threshold_table_for_runs",
]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: Optional[str] = None,
) -> str:
    """Monospace table with a header rule, column-width aligned."""
    table = [list(map(str, headers))] + [list(map(str, r)) for r in rows]
    widths = [
        max(len(row[col]) for row in table if col < len(row))
        for col in range(max(len(r) for r in table))
    ]

    def fmt(row):
        return " | ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(row)
        ).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(table[0]))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in table[1:])
    return "\n".join(lines)


def _cell(run, kernel: Kernel, ident: str, transfer: TransferType) -> str:
    """``S : D`` threshold cell for one (run, transfer)."""
    parts = []
    for precision in ALL_PRECISIONS:
        try:
            series = run.series_for(kernel, ident, precision)
        except KeyError:
            parts.append("—")
            continue
        result = threshold_for_series(series, transfer)
        parts.append(str(result.dims) if result.found else "—")
    return " : ".join(parts)


def threshold_table_for_runs(
    runs: Dict[int, "RunResult"],
    kernel: Kernel,
    ident: str,
    title: Optional[str] = None,
) -> str:
    """Table III/IV layout: one row per iteration count, one column per
    transfer paradigm, ``SGEMM : DGEMM`` threshold dims per cell."""
    iterations = sorted(runs)
    transfers = _swept_transfers(runs[iterations[0]], kernel, ident)
    headers = ["Iterations"] + [t.label for t in transfers]
    rows = [
        [str(i)] + [_cell(runs[i], kernel, ident, t) for t in transfers]
        for i in iterations
    ]
    return render_table(headers, rows, title=title)


def _swept_transfers(run, kernel: Kernel, ident: str) -> List[TransferType]:
    for s in run.series:
        if s.kernel is kernel and s.ident == ident:
            return list(s.transfer_types())
    return []


def first_threshold_iteration(
    runs: Dict[int, "RunResult"],
    kernel: Kernel,
    ident: str,
    precision: Precision,
    transfer: TransferType = TransferType.ONCE,
) -> Optional[int]:
    """The smallest iteration count at which ``transfer`` first yields an
    offload threshold — the Table V/VI statistic.  None if it never does."""
    for i in sorted(runs):
        try:
            series = runs[i].series_for(kernel, ident, precision)
        except KeyError:
            continue
        if threshold_for_series(series, transfer).found:
            return i
    return None


def run_summary(result) -> str:
    """One table per run: every (kernel, problem, precision) row with its
    thresholds under each swept transfer paradigm."""
    transfers = []
    for s in result.series:
        for t in s.transfer_types():
            if t not in transfers:
                transfers.append(t)
    headers = ["Problem", "Precision"] + [t.label for t in transfers]
    rows = []
    for s in result.series:
        row = [f"{s.kernel.value}:{s.ident}", s.precision.value]
        for t in transfers:
            if t in s.transfer_types():
                r = threshold_for_series(s, t)
                row.append(str(r.dims) if r.found else "—")
            else:
                row.append("n/a")
        rows.append(row)
    name = result.system_name or "unnamed system"
    title = (
        f"GPU offload thresholds on {name} "
        f"(iterations={result.config.iterations})"
    )
    return render_table(headers, rows, title=title)
