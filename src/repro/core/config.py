"""Sweep configuration, mirroring GPU-BLOB's command line."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ConfigError
from ..types import ALL_PRECISIONS, Kernel, Precision, TransferType
from .problem import ProblemType, get_problem_type

__all__ = ["RunConfig"]

_ALL_TRANSFERS = (TransferType.ONCE, TransferType.ALWAYS, TransferType.UNIFIED)


@dataclass(frozen=True)
class RunConfig:
    """What to sweep.

    ``min_dim``/``max_dim`` bound every dimension (``-s``/``-d`` in the
    C++ benchmark), ``iterations`` is the data re-use count (``-i``),
    ``step`` strides the sweep parameter (the final size is always
    included so the threshold monitor sees the top of the range).
    """

    min_dim: int = 1
    max_dim: int = 4096
    iterations: int = 1
    step: int = 1
    kernels: Tuple[Kernel, ...] = (Kernel.GEMM, Kernel.GEMV)
    problem_idents: Tuple[str, ...] = ("square",)
    precisions: Tuple[Precision, ...] = ALL_PRECISIONS
    transfers: Tuple[TransferType, ...] = _ALL_TRANSFERS
    cpu_enabled: bool = True
    gpu_enabled: bool = True
    alpha: float = 1.0
    beta: float = 0.0
    validate: bool = False
    #: Adaptive sweep mode: coarse grid + bisection refinement around
    #: each threshold crossing instead of a dense scan (see
    #: :mod:`repro.core.adaptive`).  Deliberately *excluded* from the
    #: checkpoint/cache config fingerprint — adaptive runs answer with
    #: dense-identical thresholds, may replay a dense cache entry, and
    #: never store one.
    adaptive: bool = False

    def __post_init__(self) -> None:
        if self.min_dim < 1:
            raise ConfigError(f"min_dim must be >= 1, got {self.min_dim}")
        if self.max_dim < self.min_dim:
            raise ConfigError(
                f"max_dim ({self.max_dim}) must be >= min_dim ({self.min_dim})"
            )
        if self.iterations < 1:
            raise ConfigError(f"iterations must be >= 1, got {self.iterations}")
        if self.step < 1:
            raise ConfigError(f"step must be >= 1, got {self.step}")
        if not self.cpu_enabled and not self.gpu_enabled:
            raise ConfigError("at least one of cpu_enabled/gpu_enabled is required")
        if self.gpu_enabled and self.cpu_enabled and not self.transfers:
            raise ConfigError("gpu_enabled sweeps need at least one transfer type")
        for t in self.transfers:
            if t not in _ALL_TRANSFERS:
                raise ConfigError(f"unknown transfer type: {t!r}")
        # Resolve every (kernel, ident) pair eagerly so typos fail fast,
        # and fail with the valid registry names instead of a bare miss.
        if not self.problem_types():
            from .problem import problem_idents

            valid = "; ".join(
                f"{k.value}: {list(problem_idents(k))}" for k in self.kernels
            )
            raise ConfigError(
                f"no problem type in {self.problem_idents!r} exists for "
                f"kernels {[k.value for k in self.kernels]!r}; valid "
                f"problem types — {valid}"
            )

    def problem_types(self) -> List[ProblemType]:
        """The resolved (kernel, ident) matrix, skipping idents that do
        not exist for a kernel (e.g. ``mn_k32`` under GEMV)."""
        out = []
        for kernel in self.kernels:
            for ident in self.problem_idents:
                try:
                    out.append(get_problem_type(kernel, ident))
                except Exception:
                    continue
        return out

    def sweep_params(self, problem_type: ProblemType) -> List[int]:
        """Strided sweep parameters, always including the top value."""
        params = list(problem_type.param_range(self.min_dim, self.max_dim))
        if not params:
            return []
        strided = params[:: self.step]
        if strided[-1] != params[-1]:
            strided.append(params[-1])
        return strided
