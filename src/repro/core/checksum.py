"""Output checksums, mirroring GPU-BLOB's consistency check.

The benchmark validates each device/paradigm run by summing the output
buffer and comparing against the host result within a relative
tolerance that scales with the reduction depth.
"""

from __future__ import annotations

import math

__all__ = ["checksum", "checksums_match"]


def checksum(array) -> float:
    """Sum of all elements of a NumPy array (or any iterable)."""
    total = getattr(array, "sum", None)
    if total is not None:
        return float(array.sum())
    return float(math.fsum(array))


def checksums_match(a: float, b: float, rel_tol: float = 1e-3, abs_tol: float = 1e-6) -> bool:
    """0.1% relative margin, as in the paper's consistency check."""
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
