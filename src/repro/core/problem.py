"""Problem-type generators (paper Table II).

Each problem type maps a sweep parameter ``p`` to concrete dimensions.
Three families exist:

* ``square`` — all dims equal ``p``; ``p`` sweeps ``s..d``.
* fixed-32 — one or two dims pinned at 32, the rest sweep ``s..d``.
* ratio-16 — two dims are 16x the third; ``p`` sweeps ``1..d//16`` so
  that *every* dimension stays within the requested range (this is how
  the artifact's CSVs are parameterized: ``mn_m16k`` at ``p=256`` is
  ``{4096, 4096, 256}``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

from ..errors import UnknownProblemTypeError
from ..types import Dims, Kernel

__all__ = [
    "ALL_PROBLEM_TYPES",
    "GEMM_PROBLEM_TYPES",
    "GEMV_PROBLEM_TYPES",
    "NONSQUARE_GEMM_TYPES",
    "NONSQUARE_GEMV_TYPES",
    "ProblemType",
    "get_problem_type",
    "problem_idents",
]


@dataclass(frozen=True)
class ProblemType:
    ident: str
    kernel: Kernel
    _dims: Callable[[int], Tuple[int, ...]]
    ratio16: bool = False

    def dims_at(self, p: int) -> Dims:
        if p < 1:
            raise ValueError(f"sweep parameter must be >= 1, got {p}")
        return Dims(*self._dims(p))

    def param_range(self, min_dim: int, max_dim: int) -> range:
        """All sweep parameters whose dims fit inside [min_dim, max_dim]."""
        if self.ratio16:
            lo = max(1, -(-min_dim // 16))
            hi = max_dim // 16
        else:
            lo, hi = max(1, min_dim), max_dim
        return range(lo, hi + 1)

    @property
    def name(self) -> str:
        """Alias of ``ident`` (the name used in tables and filenames)."""
        return self.ident

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kernel.value}:{self.ident}"

    def __reduce__(self):
        """Pickle by registry key: the ``_dims`` lambdas cannot cross a
        process boundary, but every problem type is a catalog singleton,
        so the parallel sweep executor ships (kernel, ident) instead."""
        return (get_problem_type, (self.kernel, self.ident))


def _pt(ident, kernel, fn, ratio16=False):
    return ProblemType(ident, kernel, fn, ratio16)


GEMM_PROBLEM_TYPES = (
    _pt("square", Kernel.GEMM, lambda p: (p, p, p)),
    # ratio-16 family: two dims 16x the third
    _pt("mn_m16k", Kernel.GEMM, lambda p: (16 * p, 16 * p, p), ratio16=True),
    _pt("mn_k16m", Kernel.GEMM, lambda p: (p, p, 16 * p), ratio16=True),
    _pt("mk_n16k", Kernel.GEMM, lambda p: (p, 16 * p, p), ratio16=True),
    _pt("kn_m16k", Kernel.GEMM, lambda p: (16 * p, p, p), ratio16=True),
    # fixed-32 family
    _pt("mn_k32", Kernel.GEMM, lambda p: (p, p, 32)),
    _pt("mn32_k", Kernel.GEMM, lambda p: (32, 32, p)),
    _pt("mk32_n", Kernel.GEMM, lambda p: (32, p, 32)),
    _pt("kn32_m", Kernel.GEMM, lambda p: (p, 32, 32)),
)

GEMV_PROBLEM_TYPES = (
    _pt("square", Kernel.GEMV, lambda p: (p, p)),
    _pt("m16n", Kernel.GEMV, lambda p: (16 * p, p), ratio16=True),
    _pt("n16m", Kernel.GEMV, lambda p: (p, 16 * p), ratio16=True),
    _pt("m32_n", Kernel.GEMV, lambda p: (32, p)),
    _pt("n32_m", Kernel.GEMV, lambda p: (p, 32)),
)

ALL_PROBLEM_TYPES = GEMM_PROBLEM_TYPES + GEMV_PROBLEM_TYPES
NONSQUARE_GEMM_TYPES = tuple(t for t in GEMM_PROBLEM_TYPES if t.ident != "square")
NONSQUARE_GEMV_TYPES = tuple(t for t in GEMV_PROBLEM_TYPES if t.ident != "square")

_BY_KEY = {(t.kernel, t.ident): t for t in ALL_PROBLEM_TYPES}


def problem_idents(kernel: Kernel) -> tuple:
    """Every registered problem-type ident of one kernel, sorted."""
    return tuple(
        sorted(t.ident for t in ALL_PROBLEM_TYPES if t.kernel is kernel)
    )


def get_problem_type(kernel: Kernel, ident: str) -> ProblemType:
    try:
        return _BY_KEY[(kernel, ident)]
    except KeyError:
        raise UnknownProblemTypeError(
            f"no problem type {ident!r} for kernel {kernel.value!r}; "
            f"known: {list(problem_idents(kernel))}"
        ) from None
