"""Run records: one timed sample and one per-problem-type series."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..types import DeviceKind, Dims, Kernel, Precision, TransferType
from .flops import flops_for
from .problem import ProblemType

__all__ = ["PerfSample", "ProblemSeries", "QuarantineEntry"]


@dataclass(frozen=True, slots=True)
class PerfSample:
    """One timed data point: a (device, transfer, dims) cell.

    ``seconds`` is the total wall time over all iterations; ``gflops``
    is the aggregate rate ``iterations * flops / seconds``.

    Slotted: full-range sweeps hold hundreds of thousands of samples,
    and construction sits on the vectorized fast path's critical loop.
    """

    device: DeviceKind
    transfer: Optional[TransferType]
    dims: Dims
    iterations: int
    seconds: float
    gflops: float
    checksum_ok: Optional[bool] = None

    @classmethod
    def from_seconds(
        cls,
        device: DeviceKind,
        transfer: Optional[TransferType],
        dims: Dims,
        iterations: int,
        seconds: float,
        checksum_ok: Optional[bool] = None,
        beta: float = 0.0,
    ) -> "PerfSample":
        gflops = iterations * flops_for(dims, beta) / seconds / 1e9 if seconds > 0 else 0.0
        return cls(device, transfer, dims, iterations, seconds, gflops, checksum_ok)


@dataclass(frozen=True)
class QuarantineEntry:
    """One sweep cell that exhausted its retries (or hit a permanent
    fault) and was excluded from the series instead of crashing the run."""

    kernel: Kernel
    ident: str
    precision: Precision
    device: DeviceKind
    transfer: Optional[TransferType]
    dims: Dims
    iterations: int
    attempts: int
    error: str
    message: str

    def __str__(self) -> str:
        where = self.transfer.value if self.transfer else self.device.value
        return (
            f"{self.precision.blas_prefix}{self.kernel.value}:{self.ident} "
            f"{self.dims} [{where}] after {self.attempts} attempt(s): "
            f"{self.error}: {self.message}"
        )


@dataclass
class ProblemSeries:
    """All samples of one (kernel, problem type, precision, iterations)
    sweep, grouped by device and transfer paradigm.

    ``partial`` is set by the resilient runner when the sweep could not
    fill every requested cell — quarantined samples or device loss —
    so downstream consumers can distrust thresholds over gaps.
    """

    problem_type: ProblemType
    precision: Precision
    iterations: int
    cpu: List[PerfSample] = field(default_factory=list)
    gpu: Dict[TransferType, List[PerfSample]] = field(default_factory=dict)
    partial: bool = False
    #: Set only by adaptive sweeps (``RunConfig.adaptive``): the *full
    #: dense-grid* win/lose sequence per transfer paradigm, inferred
    #: exactly from the sampled subset, plus the dense dims grid it
    #: indexes.  ``threshold_for_series`` answers any ``min_consecutive``
    #: from these without a dense scan.  Excluded from equality and repr:
    #: the sampled payload above is the identity of the series.
    adaptive_wins: Optional[Dict[TransferType, List[bool]]] = field(
        default=None, compare=False, repr=False
    )
    adaptive_dims: Optional[List[Dims]] = field(
        default=None, compare=False, repr=False
    )

    @property
    def kernel(self) -> Kernel:
        return self.problem_type.kernel

    @property
    def ident(self) -> str:
        return self.problem_type.ident

    def add(self, sample: PerfSample) -> None:
        if sample.device is DeviceKind.CPU:
            self.cpu.append(sample)
        else:
            self.gpu.setdefault(sample.transfer, []).append(sample)

    def cpu_samples(self) -> List[PerfSample]:
        return list(self.cpu)

    def gpu_samples(self, transfer: TransferType) -> List[PerfSample]:
        return list(self.gpu.get(transfer, []))

    def transfers(self) -> tuple:
        return tuple(self.gpu.keys())

    def transfer_types(self) -> tuple:
        return tuple(self.gpu.keys())

    @property
    def samples(self) -> List[PerfSample]:
        """Every sample in a deterministic order (CPU first, then GPU
        per transfer paradigm in insertion order)."""
        return self.all_samples()

    def sizes(self) -> List[Dims]:
        source = self.cpu or next(iter(self.gpu.values()), [])
        return [s.dims for s in source]

    def all_samples(self) -> List[PerfSample]:
        out = list(self.cpu)
        for samples in self.gpu.values():
            out.extend(samples)
        return out
