"""Campaign orchestration: scenario matrices over many systems.

A *campaign* is a committed TOML/JSON file describing a benchmarking
matrix — systems x problem types x precisions x transfer paradigms (and
iteration counts) — plus the sweep bounds and execution policy to run
it under.  ``gpu-blob campaign`` expands the matrix into *scenarios*
(one resilient :func:`~repro.core.runner.run_sweep` per (system,
iterations) pair, whose (problem type, precision) series fan across the
supervised parallel executor), then aggregates every offload threshold
into one cross-system report (CSV + JSON).

Campaign file schema::

    schema = 1
    name = "ci-smoke"

    [matrix]
    systems = ["dawn", "../specs/lumi.toml"]   # names or spec paths
    kernels = ["gemm"]                # default: gemm + gemv
    problems = ["square", "mn_k32"]   # default: square
    precisions = ["single", "double"] # default: single + double
    transfers = ["once", "always"]    # default: all three paradigms
    iterations = [8]                  # default: [1]

    [sweep]
    min_dim = 1
    max_dim = 256
    step = 32

    [execution]
    backend = "analytic"              # default analytic
    jobs = 2                          # default 1 (in-process)
    adaptive = true                   # default false (dense sweeps)

    [drift]
    golden = "../results/campaign/ci-smoke/campaign_report.csv"

Relative paths (spec files in ``systems``, the drift golden) resolve
against the campaign file's own directory, so a campaign is a portable
artifact.  Scenario runs compose with the rest of the resilience stack:
``cache_dir`` replays identical scenarios from the content-addressed
sweep cache, ``checkpoint_dir`` journals each scenario to its own JSONL
file and ``resume=True`` replays them — an interrupted campaign resumes
to a **byte-identical** aggregated report.

Drift detection compares the fresh report against the stored golden
row by row; any moved, vanished or new threshold raises
:class:`~repro.errors.CampaignDriftError` (CLI exit 4, the integrity
family), which is how a silent model change fails CI instead of
shipping.
"""

from __future__ import annotations

import csv
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import CampaignDriftError, ConfigError
from ..types import Kernel, Precision, TransferType
from .config import RunConfig
from .runner import RunResult, run_sweep
from .threshold import threshold_for_series

__all__ = [
    "CAMPAIGN_SCHEMA_VERSION",
    "REPORT_CSV",
    "REPORT_FIELDNAMES",
    "REPORT_JSON",
    "CampaignResult",
    "CampaignSpec",
    "Scenario",
    "check_drift",
    "expand_scenarios",
    "load_campaign",
    "loads_campaign",
    "report_rows",
    "run_campaign",
    "write_report",
]

CAMPAIGN_SCHEMA_VERSION = 1

REPORT_CSV = "campaign_report.csv"
REPORT_JSON = "campaign_report.json"

#: One aggregated report row per (scenario, series, paradigm) threshold.
REPORT_FIELDNAMES = (
    "system", "kernel", "problem", "precision", "transfer", "iterations",
    "found", "m", "n", "k",
)

#: The columns that identify a row for drift comparison; the rest are
#: the compared payload.
_KEY_FIELDS = ("system", "kernel", "problem", "precision", "transfer",
               "iterations")


@dataclass(frozen=True)
class CampaignSpec:
    """One parsed campaign file (see the module docstring schema)."""

    name: str
    systems: Tuple[str, ...]
    kernels: Tuple[Kernel, ...] = (Kernel.GEMM, Kernel.GEMV)
    problems: Tuple[str, ...] = ("square",)
    precisions: Tuple[Precision, ...] = (Precision.SINGLE, Precision.DOUBLE)
    transfers: Tuple[TransferType, ...] = tuple(TransferType)
    iterations: Tuple[int, ...] = (1,)
    min_dim: int = 1
    max_dim: int = 4096
    step: int = 8
    backend: str = "analytic"
    jobs: int = 1
    #: adaptive sweeps (coarse grid + bisection): dense-identical
    #: thresholds from a fraction of the cells, so the report — and the
    #: campaign fingerprint — are unchanged.  Incompatible with
    #: checkpoint journaling.
    adaptive: bool = False
    golden: Optional[str] = None
    #: directory the campaign file lives in; relative paths resolve here
    base_dir: str = "."

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("campaign name must be non-empty")
        for label, seq in (
            ("systems", self.systems),
            ("kernels", self.kernels),
            ("problems", self.problems),
            ("precisions", self.precisions),
            ("transfers", self.transfers),
            ("iterations", self.iterations),
        ):
            if not seq:
                raise ConfigError(
                    f"campaign {self.name!r}: matrix.{label} must be "
                    "non-empty"
                )
        for count in self.iterations:
            if count < 1:
                raise ConfigError(
                    f"campaign {self.name!r}: iterations must be >= 1, "
                    f"got {count}"
                )
        if self.jobs < 1:
            raise ConfigError(
                f"campaign {self.name!r}: execution.jobs must be >= 1, "
                f"got {self.jobs}"
            )

    @property
    def matrix_size(self) -> int:
        """Scenario cells: systems x problems x precisions x paradigms
        (x iteration counts)."""
        return (
            len(self.systems) * len(self.problems) * len(self.precisions)
            * len(self.transfers) * len(self.iterations)
        )

    def golden_path(self) -> Optional[Path]:
        if self.golden is None:
            return None
        return Path(self.base_dir) / self.golden

    def fingerprint(self) -> str:
        """Stable identity of the campaign configuration (everything
        that changes what the matrix computes)."""
        payload = (
            self.name, self.systems,
            tuple(k.value for k in self.kernels), self.problems,
            tuple(p.value for p in self.precisions),
            tuple(t.value for t in self.transfers), self.iterations,
            self.min_dim, self.max_dim, self.step, self.backend,
        )
        return hashlib.sha256(repr(payload).encode()).hexdigest()[:16]


@dataclass(frozen=True)
class Scenario:
    """One expanded matrix cell group: a (system, iterations) sweep
    whose (problem, precision) series shard across the executor."""

    index: int
    system: str  #: ident as written in the campaign (name or path)
    iterations: int
    config: RunConfig

    @property
    def slug(self) -> str:
        """Filesystem-safe scenario id (checkpoint shard filenames)."""
        stem = Path(self.system).stem if _looks_like_path(self.system) \
            else self.system
        safe = "".join(c if c.isalnum() or c in "-_" else "-" for c in stem)
        return f"{self.index:02d}-{safe}-i{self.iterations}"


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    campaign: CampaignSpec
    scenarios: List[Scenario] = field(default_factory=list)
    results: List[Optional[RunResult]] = field(default_factory=list)
    #: scenarios actually executed this call (resume replays count)
    executed: int = 0
    #: dead-lettered scenario index -> reason; a distributed campaign
    #: that exhausts a scenario's attempts completes *degraded*, and
    #: these report as ``found=quarantined`` rows instead of results
    quarantined: Dict[int, str] = field(default_factory=dict)
    #: dispatcher counters (plus a turnaround-latency histogram
    #: snapshot) when the run was distributed, None otherwise
    dist_stats: Optional[Dict[str, object]] = None

    @property
    def complete(self) -> bool:
        """Every scenario is accounted for — by a result or by a
        quarantine entry (degraded completion still completes)."""
        return len(self.results) == len(self.scenarios) and all(
            r is not None or i in self.quarantined
            for i, r in enumerate(self.results)
        )

    def rows(self) -> List[Dict[str, str]]:
        return report_rows(self)


def _looks_like_path(ident: str) -> bool:
    import os

    from ..systems.specio import SPEC_SUFFIXES

    return (
        os.sep in ident
        or (os.altsep is not None and os.altsep in ident)
        or ident.endswith(SPEC_SUFFIXES)
    )


# -- campaign file parsing --------------------------------------------


def _str_tuple(table: dict, key: str, default, source: str) -> tuple:
    value = table.get(key, default)
    if isinstance(value, str):
        value = [value]
    if not isinstance(value, list) or not all(
        isinstance(v, str) for v in value
    ):
        raise ConfigError(
            f"{source}: matrix.{key} must be an array of strings"
        )
    return tuple(value)


def _enum_tuple(table: dict, key: str, enum, default, source: str) -> tuple:
    names = _str_tuple(table, key, [e.value for e in default], source)
    out = []
    for name in names:
        try:
            out.append(enum(name))
        except ValueError:
            valid = [e.value for e in enum]
            raise ConfigError(
                f"{source}: matrix.{key} entry {name!r} is not one of "
                f"{valid}"
            ) from None
    return tuple(out)


def _int_value(table: dict, key: str, default: int, source: str) -> int:
    value = table.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigError(f"{source}: {key} must be an integer, got {value!r}")
    return value


def loads_campaign(text: str, format: str = "toml",
                   source: str = "<string>",
                   base_dir: str = ".") -> CampaignSpec:
    """Parse campaign text (``"toml"`` or ``"json"``)."""
    from ..systems.specio import parse_toml

    if format == "toml":
        data = parse_toml(text, source)
    elif format == "json":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConfigError(f"{source}: invalid JSON: {exc}") from None
    else:
        raise ConfigError(f"unknown campaign format {format!r} (toml or json)")
    if not isinstance(data, dict):
        raise ConfigError(f"{source}: campaign must be a table")
    schema = data.get("schema", CAMPAIGN_SCHEMA_VERSION)
    if schema != CAMPAIGN_SCHEMA_VERSION:
        raise ConfigError(
            f"{source}: unsupported campaign schema {schema!r} (this "
            f"build reads schema {CAMPAIGN_SCHEMA_VERSION})"
        )
    known = {"schema", "name", "matrix", "sweep", "execution", "drift"}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ConfigError(
            f"{source}: unknown table(s)/key(s) {unknown}; valid: "
            f"{sorted(known)}"
        )
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise ConfigError(f"{source}: campaign needs a non-empty name")
    matrix = data.get("matrix", {})
    sweep = data.get("sweep", {})
    execution = data.get("execution", {})
    drift = data.get("drift", {})
    for label, table in (("matrix", matrix), ("sweep", sweep),
                         ("execution", execution), ("drift", drift)):
        if not isinstance(table, dict):
            raise ConfigError(f"{source}: [{label}] must be a table")
    systems = _str_tuple(matrix, "systems", [], source)
    if not systems:
        raise ConfigError(f"{source}: matrix.systems must list at least one")
    iterations = matrix.get("iterations", [1])
    if isinstance(iterations, int):
        iterations = [iterations]
    if not isinstance(iterations, list) or not all(
        isinstance(i, int) and not isinstance(i, bool) for i in iterations
    ):
        raise ConfigError(
            f"{source}: matrix.iterations must be an array of integers"
        )
    golden = drift.get("golden")
    if golden is not None and not isinstance(golden, str):
        raise ConfigError(f"{source}: drift.golden must be a path string")
    backend = execution.get("backend", "analytic")
    if not isinstance(backend, str):
        raise ConfigError(f"{source}: execution.backend must be a string")
    adaptive = execution.get("adaptive", False)
    if not isinstance(adaptive, bool):
        raise ConfigError(f"{source}: execution.adaptive must be a boolean")
    return CampaignSpec(
        name=name,
        systems=systems,
        kernels=_enum_tuple(matrix, "kernels", Kernel,
                            (Kernel.GEMM, Kernel.GEMV), source),
        problems=_str_tuple(matrix, "problems", ["square"], source),
        precisions=_enum_tuple(matrix, "precisions", Precision,
                               (Precision.SINGLE, Precision.DOUBLE), source),
        transfers=_enum_tuple(matrix, "transfers", TransferType,
                              tuple(TransferType), source),
        iterations=tuple(iterations),
        min_dim=_int_value(sweep, "min_dim", 1, source),
        max_dim=_int_value(sweep, "max_dim", 4096, source),
        step=_int_value(sweep, "step", 8, source),
        backend=backend,
        jobs=_int_value(execution, "jobs", 1, source),
        adaptive=adaptive,
        golden=golden,
        base_dir=base_dir,
    )


def load_campaign(path) -> CampaignSpec:
    """Load one campaign file (``.toml`` or ``.json``)."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ConfigError(f"cannot read campaign file {path}: {exc}") from None
    format = "json" if path.suffix == ".json" else "toml"
    return loads_campaign(
        text, format=format, source=str(path), base_dir=str(path.parent)
    )


# -- matrix expansion -------------------------------------------------


def expand_scenarios(campaign: CampaignSpec,
                     strict: bool = False,
                     adaptive: bool = False) -> List[Scenario]:
    """Expand the campaign matrix into scenarios, one resilient sweep
    per (system, iterations) pair.  Problem types, precisions and
    paradigms expand *inside* each scenario's :class:`RunConfig`, whose
    (problem type, precision) series are exactly the shards the
    supervised parallel executor fans out.
    """
    scenarios: List[Scenario] = []
    for system in campaign.systems:
        ident = system
        if _looks_like_path(system) and not Path(system).is_absolute():
            ident = str(Path(campaign.base_dir) / system)
        for iterations in campaign.iterations:
            config = RunConfig(
                min_dim=campaign.min_dim,
                max_dim=campaign.max_dim,
                iterations=iterations,
                step=campaign.step,
                kernels=campaign.kernels,
                problem_idents=campaign.problems,
                precisions=campaign.precisions,
                transfers=campaign.transfers,
                validate=strict,
                adaptive=adaptive,
            )
            scenarios.append(
                Scenario(
                    index=len(scenarios),
                    system=ident,
                    iterations=iterations,
                    config=config,
                )
            )
    return scenarios


# -- execution --------------------------------------------------------


def run_campaign(
    campaign: CampaignSpec,
    *,
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
    checkpoint_dir=None,
    resume: bool = False,
    cache_dir=None,
    strict: bool = False,
    stop_after: Optional[int] = None,
    adaptive: Optional[bool] = None,
    log: Optional[Callable[[str], None]] = None,
) -> CampaignResult:
    """Run every scenario of a campaign and collect the results.

    ``jobs``/``backend``/``adaptive`` override the campaign's execution
    table.  Adaptive campaigns produce the same report bytes as dense
    ones from a fraction of the sweep cells (sampled counts are logged),
    but cannot journal checkpoints.  With
    ``checkpoint_dir`` each scenario journals to its own JSONL file
    (``ck-<slug>.jsonl``); ``resume=True`` replays completed samples, so
    an interrupted campaign finishes byte-identical to an uninterrupted
    one.  ``cache_dir`` engages the content-addressed sweep cache for
    journal-less runs.  ``stop_after=N`` stops the campaign after N
    scenarios (the supported way to interrupt deterministically — CI
    chaos uses it plus ``REPRO_CHAOS_KILL_SHARD`` for worker kills);
    the partial result has ``complete=False`` and no report.
    """
    from ..backends import make_backend
    from ..systems.catalog import make_model, resolve_system

    if stop_after is not None and stop_after < 1:
        raise ConfigError(f"stop_after must be >= 1, got {stop_after}")
    jobs = campaign.jobs if jobs is None else jobs
    backend_name = campaign.backend if backend is None else backend
    adaptive = campaign.adaptive if adaptive is None else adaptive
    if adaptive and checkpoint_dir is not None:
        raise ConfigError(
            "adaptive campaigns cannot journal checkpoints; drop "
            "--checkpoint-dir or run dense"
        )
    scenarios = expand_scenarios(campaign, strict=strict, adaptive=adaptive)
    out = CampaignResult(campaign=campaign, scenarios=scenarios)
    out.results = [None] * len(scenarios)
    ck_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
    if ck_dir is not None:
        ck_dir.mkdir(parents=True, exist_ok=True)
    for scenario in scenarios:
        if stop_after is not None and scenario.index >= stop_after:
            if log is not None:
                remaining = len(scenarios) - scenario.index
                log(
                    f"campaign stopped after {stop_after} scenario(s); "
                    f"{remaining} remain (resume with --resume)"
                )
            break
        spec = resolve_system(scenario.system, strict=strict)
        if log is not None:
            log(
                f"[{scenario.index + 1}/{len(scenarios)}] {spec.name} "
                f"i={scenario.iterations}: "
                f"{len(scenario.config.problem_types())} problem type(s) "
                f"x {len(campaign.precisions)} precision(s) "
                f"x {len(campaign.transfers)} paradigm(s)"
            )
        scenario_backend = make_backend(backend_name, make_model(spec))
        checkpoint = (
            str(ck_dir / f"ck-{scenario.slug}.jsonl")
            if ck_dir is not None
            else None
        )
        out.results[scenario.index] = run_sweep(
            scenario_backend,
            scenario.config,
            system_name=spec.name,
            jobs=jobs,
            checkpoint=checkpoint,
            resume=resume and checkpoint is not None,
            cache_dir=cache_dir,
        )
        out.executed += 1
    if adaptive and log is not None:
        sampled = sum(
            r.stats.adaptive_cells_sampled for r in out.results if r is not None
        )
        dense = sum(
            r.stats.adaptive_cells_dense for r in out.results if r is not None
        )
        if dense:
            log(
                f"adaptive campaign sampled {sampled} of {dense} grid "
                f"cell(s) ({sampled / dense:.1%})"
            )
    return out


# -- aggregation, persistence, drift ----------------------------------


def report_rows(result: CampaignResult) -> List[Dict[str, str]]:
    """The aggregated cross-system threshold report, one row per
    (scenario, series, paradigm), in deterministic matrix order.  Every
    cell is a string — the byte-level contract of the report CSV."""
    rows: List[Dict[str, str]] = []
    for scenario, run in zip(result.scenarios, result.results):
        if run is None:
            if scenario.index in result.quarantined:
                rows.extend(_quarantined_rows(scenario))
            continue
        for series in run.series:
            for transfer in series.transfer_types():
                found = threshold_for_series(series, transfer)
                rows.append({
                    "system": run.system_name or scenario.system,
                    "kernel": series.kernel.value,
                    "problem": series.ident,
                    "precision": series.precision.value,
                    "transfer": transfer.value,
                    "iterations": str(series.iterations),
                    "found": str(int(found.found)),
                    "m": str(found.dims.m) if found.found else "",
                    "n": str(found.dims.n) if found.found else "",
                    "k": str(found.dims.k) if found.found else "",
                })
    return rows


def _quarantined_rows(scenario: Scenario) -> List[Dict[str, str]]:
    """Placeholder rows for a dead-lettered scenario: the cells it
    *would* have reported, with ``found=quarantined`` and no dims —
    same schema, so goldens and drift CSVs keep their columns."""
    from ..errors import ReproError
    from ..systems.catalog import resolve_system

    try:
        system = resolve_system(scenario.system).name
    except ReproError:
        system = scenario.system
    return [
        {
            "system": system,
            "kernel": pt.kernel.value,
            "problem": pt.ident,
            "precision": precision.value,
            "transfer": transfer.value,
            "iterations": str(scenario.iterations),
            "found": "quarantined",
            "m": "",
            "n": "",
            "k": "",
        }
        for pt in scenario.config.problem_types()
        for precision in scenario.config.precisions
        for transfer in scenario.config.transfers
    ]


def write_report(result: CampaignResult, directory) -> List[Path]:
    """Write ``campaign_report.csv`` + ``campaign_report.json`` (and the
    per-scenario series CSVs) under ``directory``; returns the report
    paths.  Output is deterministic byte-for-byte for identical runs."""
    from .csvio import write_run

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    rows = report_rows(result)
    csv_path = directory / REPORT_CSV
    with csv_path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=REPORT_FIELDNAMES)
        writer.writeheader()
        writer.writerows(rows)
    campaign = result.campaign
    payload = {
        "campaign": campaign.name,
        "fingerprint": campaign.fingerprint(),
        "schema": CAMPAIGN_SCHEMA_VERSION,
        "matrix": {
            "systems": list(campaign.systems),
            "kernels": [k.value for k in campaign.kernels],
            "problems": list(campaign.problems),
            "precisions": [p.value for p in campaign.precisions],
            "transfers": [t.value for t in campaign.transfers],
            "iterations": list(campaign.iterations),
            "size": campaign.matrix_size,
        },
        "scenarios": len(result.scenarios),
        "quarantined": {
            str(i): reason for i, reason in sorted(result.quarantined.items())
        },
        "rows": rows,
    }
    json_path = directory / REPORT_JSON
    json_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    paths = [csv_path, json_path]
    for scenario, run in zip(result.scenarios, result.results):
        if run is not None:
            write_run(run, directory / scenario.slug)
    return paths


def _row_key(row: Dict[str, str]) -> tuple:
    return tuple(row[f] for f in _KEY_FIELDS)


def _row_value(row: Dict[str, str]) -> tuple:
    return tuple(row[f] for f in REPORT_FIELDNAMES if f not in _KEY_FIELDS)


def _read_report_csv(path: Path) -> List[Dict[str, str]]:
    try:
        with path.open(newline="") as fh:
            reader = csv.DictReader(fh)
            if tuple(reader.fieldnames or ()) != REPORT_FIELDNAMES:
                raise ConfigError(
                    f"golden report {path} has columns "
                    f"{reader.fieldnames}; expected "
                    f"{list(REPORT_FIELDNAMES)}"
                )
            return list(reader)
    except OSError as exc:
        raise ConfigError(
            f"cannot read golden report {path}: {exc}"
        ) from None


def check_drift(rows: List[Dict[str, str]], golden_path) -> List[str]:
    """Compare fresh report rows against the stored golden CSV;
    returns one message per drifted key (empty = no drift)."""
    golden = {
        _row_key(r): _row_value(r)
        for r in _read_report_csv(Path(golden_path))
    }
    fresh = {_row_key(r): _row_value(r) for r in rows}
    drifts: List[str] = []
    for key in sorted(set(golden) | set(fresh)):
        label = "/".join(key)
        if key not in fresh:
            drifts.append(f"{label}: threshold vanished (golden {golden[key]})")
        elif key not in golden:
            drifts.append(f"{label}: new threshold {fresh[key]} not in golden")
        elif golden[key] != fresh[key]:
            drifts.append(
                f"{label}: threshold moved {golden[key]} -> {fresh[key]}"
            )
    return drifts


def assert_no_drift(rows: List[Dict[str, str]], golden_path) -> None:
    """Raise :class:`~repro.errors.CampaignDriftError` when the fresh
    report drifted from its golden."""
    drifts = check_drift(rows, golden_path)
    if drifts:
        preview = "; ".join(drifts[:3])
        if len(drifts) > 3:
            preview += f"; ... ({len(drifts) - 3} more)"
        raise CampaignDriftError(
            f"campaign report drifted from golden {golden_path} in "
            f"{len(drifts)} row(s): {preview}",
            drifts=drifts,
        )
