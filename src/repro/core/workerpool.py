"""Persistent warm worker pools for the supervised parallel executor.

``run_sweep(jobs=N)`` used to spin up a fresh ``ProcessPoolExecutor``
for every round of every sweep — on realistic sweeps the fork/teardown
cost swamped the parallel win (the throughput bench showed ``--jobs 4``
at ~1.28x serial while the vectorized fast path ran at ~5.9x).  This
module keeps one pool per worker count alive for the life of the
process, so consecutive sweeps — a campaign's scenario matrix, the
serve daemon's job queue, the bench's timing rounds — pay the spawn
cost once and reuse warm workers after that.

Supervision semantics are unchanged: the runner still charges shard
attempts, isolates repeat offenders on dedicated single-worker pools
(which stay ephemeral — a shard that already killed a worker must not
poison the shared warm pool), and degrades exhausted shards to
in-process execution.  What changes is the *lifecycle*: a worker death
or deadline kill marks the warm pool broken/terminated here, and the
next acquisition transparently respawns it (counted on
:func:`pool_stats`, exported by the serve daemon's ``/metrics``).

Teardown at interpreter exit must never hang behind a wedged worker.
``concurrent.futures.process`` registers its own exit hook via
``threading._register_atexit``; those callbacks run LIFO, so by
importing that module *first* and registering ours *after*, our
teardown — which snapshots the worker processes, shuts the executor
down without waiting, and terminates the processes — runs before the
executor's join and leaves it nothing to wait on.
"""

from __future__ import annotations

import concurrent.futures
import concurrent.futures.process  # noqa: F401 - registers its exit hook first
import contextlib
import multiprocessing
import os
import threading
from typing import Dict, Optional

__all__ = [
    "dedicated_pool",
    "get_pool",
    "mark_broken",
    "pool_stats",
    "reset_stats",
    "shutdown_all",
    "terminate",
]


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


_lock = threading.Lock()
_pools: Dict[int, concurrent.futures.ProcessPoolExecutor] = {}
_counters = {
    "spawns": 0,          # warm pools created (first spawn + respawns)
    "reuses": 0,          # get_pool() calls served by an existing pool
    "respawns": 0,        # spawns that replaced a broken/terminated pool
    "retired": 0,         # pools marked broken or terminated
    "shards_executed": 0, # shard results decoded from warm/dedicated pools
    "shm_bytes": 0,       # bytes returned through shared-memory segments
    "pickle_fallbacks": 0,# shard results that fell back to pickling
}
#: worker counts whose pool was ever retired — the next get_pool() for
#: that count is a *respawn*, not a first spawn.
_retired_sizes: set = set()


def _effective_workers(workers: int) -> int:
    """Cap pool size at the physical core count: CPU-bound shards gain
    nothing from oversubscription, and on a core-starved host the
    context-switch thrash of N idle-fighting workers is a measurable
    tax (the throughput bench lost ~25% to it at jobs=4 on one core).
    Pools stay keyed by the *requested* count, so supervision call
    sites (``mark_broken(jobs)``, ``terminate(jobs)``) are unaffected."""
    return max(1, min(workers, os.cpu_count() or workers))


def get_pool(workers: int) -> concurrent.futures.ProcessPoolExecutor:
    """The shared warm pool for ``workers`` workers, spawning or
    respawning it if none is alive."""
    with _lock:
        pool = _pools.get(workers)
        if pool is not None and not _is_broken(pool):
            _counters["reuses"] += 1
            return pool
        if pool is not None:
            _retire_locked(workers)
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=_effective_workers(workers),
            mp_context=_mp_context(),
        )
        _pools[workers] = pool
        _counters["spawns"] += 1
        if workers in _retired_sizes:
            _counters["respawns"] += 1
        return pool


def dedicated_pool(workers: int = 1) -> concurrent.futures.ProcessPoolExecutor:
    """An *ephemeral* pool for blast-radius isolation of repeat-offender
    shards; the caller owns its shutdown."""
    return concurrent.futures.ProcessPoolExecutor(
        max_workers=workers, mp_context=_mp_context()
    )


def _is_broken(pool) -> bool:
    return bool(getattr(pool, "_broken", False)) or bool(
        getattr(pool, "_shutdown_thread", False)
    )


def _retire_locked(workers: int, *, kill: bool = False) -> None:
    pool = _pools.pop(workers, None)
    if pool is None:
        return
    _counters["retired"] += 1
    _retired_sizes.add(workers)
    # Snapshot processes *before* shutdown(): the executor drops its
    # _processes reference even with wait=False, and an un-terminated
    # wedged worker would block interpreter exit behind the executor's
    # join (see _terminate_pool in runner.py, same idiom).
    procs = list((getattr(pool, "_processes", None) or {}).values())
    with contextlib.suppress(Exception):
        pool.shutdown(wait=False, cancel_futures=True)
    if kill:
        for proc in procs:
            with contextlib.suppress(Exception):
                proc.terminate()


def mark_broken(workers: int) -> None:
    """Retire the warm pool after a worker death (``BrokenProcessPool``);
    the next :func:`get_pool` respawns it."""
    with _lock:
        _retire_locked(workers)


def terminate(workers: int) -> None:
    """Kill the warm pool *now* (deadline overrun — a worker is wedged,
    a cooperative shutdown would block behind it)."""
    with _lock:
        _retire_locked(workers, kill=True)


def shutdown_all() -> None:
    """Retire every warm pool (tests, daemon drain, interpreter exit)."""
    with _lock:
        for workers in list(_pools):
            _retire_locked(workers, kill=True)


def record_shard(shm_bytes: int = 0, *, pickled: bool = False) -> None:
    """Count one decoded shard result (called by the runner's merge)."""
    with _lock:
        _counters["shards_executed"] += 1
        if pickled:
            _counters["pickle_fallbacks"] += 1
        else:
            _counters["shm_bytes"] += shm_bytes


def workers_alive() -> int:
    """Live worker processes across all warm pools (a gauge, best
    effort — the executor may still be forking)."""
    with _lock:
        alive = 0
        for pool in _pools.values():
            for proc in (getattr(pool, "_processes", None) or {}).values():
                if proc.is_alive():
                    alive += 1
        return alive


def pool_stats() -> dict:
    """Lifecycle counters plus live gauges, for benches and /metrics."""
    with _lock:
        snapshot = dict(_counters)
        snapshot["pools_alive"] = len(_pools)
    snapshot["workers_alive"] = workers_alive()
    return snapshot


def reset_stats() -> None:
    """Zero the counters (benches and tests bracket runs with this).
    The respawn epoch resets too: a spawn after the reset only counts
    as a respawn if its pool was retired *within* the new observation
    window — retirements from before the reset are history."""
    with _lock:
        for key in _counters:
            _counters[key] = 0
        _retired_sizes.clear()


def _shutdown_at_exit() -> None:  # pragma: no cover - interpreter exit
    shutdown_all()


try:  # CPython >= 3.9: run before concurrent.futures' own exit join
    threading._register_atexit(_shutdown_at_exit)
except (AttributeError, RuntimeError):  # pragma: no cover - fallback
    import atexit

    atexit.register(_shutdown_at_exit)
