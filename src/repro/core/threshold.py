"""The GPU offload-threshold detector (paper section III-D).

The threshold is the smallest problem size from which the GPU —
including data movement — beats the CPU *for every larger size in the
sweep*.  The paper smooths momentary flips: a candidate needs
``min_consecutive`` consecutive GPU wins to be accepted (2 in the
paper: previous + current), and is only discarded when the CPU retakes
the lead for the same number of consecutive sizes.  The reported dims
are the *start* of the surviving win streak, so a GPU that wins
everywhere yields a threshold at the first swept size.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import PartialSweepWarning
from ..types import Dims, TransferType
from .records import ProblemSeries

__all__ = ["ThresholdResult", "find_offload_threshold", "threshold_for_series"]


@dataclass(frozen=True)
class ThresholdResult:
    found: bool
    dims: Optional[Dims] = None
    index: Optional[int] = None

    def __bool__(self) -> bool:
        return self.found

    def __str__(self) -> str:
        return str(self.dims) if self.found else "none"


NOT_FOUND = ThresholdResult(False)


def find_offload_threshold(
    dims_list: Sequence[Dims],
    cpu_seconds: Sequence[float],
    gpu_seconds: Sequence[float],
    min_consecutive: int = 2,
) -> ThresholdResult:
    """Scan parallel CPU/GPU timing curves (ascending sizes)."""
    if len(dims_list) != len(cpu_seconds) or len(dims_list) != len(gpu_seconds):
        raise ValueError("dims, cpu and gpu curves must have equal length")
    if min_consecutive < 1:
        raise ValueError("min_consecutive must be >= 1")

    candidate: Optional[int] = None
    gpu_streak = 0
    cpu_streak = 0
    for j, (ct, gt) in enumerate(zip(cpu_seconds, gpu_seconds)):
        if gt < ct:
            gpu_streak += 1
            cpu_streak = 0
            if candidate is None and gpu_streak >= min_consecutive:
                candidate = j - gpu_streak + 1
        else:
            cpu_streak += 1
            gpu_streak = 0
            if candidate is not None and cpu_streak >= min_consecutive:
                candidate = None
    if candidate is None:
        return NOT_FOUND
    return ThresholdResult(True, dims_list[candidate], candidate)


def threshold_for_series(
    series: ProblemSeries,
    transfer: TransferType,
    min_consecutive: int = 2,
) -> ThresholdResult:
    """Offload threshold of one sweep series under one paradigm.

    Quarantined or otherwise missing cells never raise: sizes present on
    only one device are skipped with a :class:`PartialSweepWarning`, and
    the threshold is computed over the surviving pairs.
    """
    gpu = series.gpu_samples(transfer)
    cpu = series.cpu_samples()
    if not gpu or not cpu:
        return NOT_FOUND
    by_dims = {s.dims: s for s in gpu}
    dims_list, cpu_t, gpu_t = [], [], []
    missing = 0
    for c in cpu:
        g = by_dims.get(c.dims)
        if g is None:
            missing += 1
            continue
        dims_list.append(c.dims)
        cpu_t.append(c.seconds)
        gpu_t.append(g.seconds)
    missing_cpu = len(by_dims) - len(dims_list)
    if missing or missing_cpu:
        blas = series.precision.blas_prefix + series.kernel.value
        gaps = []
        if missing:
            gaps.append(f"{missing} of {len(cpu)} sizes lack a GPU sample")
        if missing_cpu:
            gaps.append(f"{missing_cpu} GPU sizes lack a CPU sample")
        warnings.warn(
            f"{blas}:{series.ident} [{transfer.value}]: "
            + "; ".join(gaps)
            + " (quarantined or device lost); threshold computed over the "
            f"remaining {len(dims_list)} pairs",
            PartialSweepWarning, stacklevel=2,
        )
    if not dims_list:
        return NOT_FOUND
    return find_offload_threshold(dims_list, cpu_t, gpu_t, min_consecutive)
