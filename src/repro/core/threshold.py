"""The GPU offload-threshold detector (paper section III-D).

The threshold is the smallest problem size from which the GPU —
including data movement — beats the CPU *for every larger size in the
sweep*.  The paper smooths momentary flips: a candidate needs
``min_consecutive`` consecutive GPU wins to be accepted (2 in the
paper: previous + current), and is only discarded when the CPU retakes
the lead for the same number of consecutive sizes.  The reported dims
are the *start* of the surviving win streak, so a GPU that wins
everywhere yields a threshold at the first swept size.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import PartialSweepWarning
from ..types import Dims, TransferType
from .records import ProblemSeries

__all__ = [
    "ThresholdResult",
    "find_offload_threshold",
    "find_threshold_index",
    "threshold_for_series",
]


@dataclass(frozen=True)
class ThresholdResult:
    found: bool
    dims: Optional[Dims] = None
    index: Optional[int] = None

    def __bool__(self) -> bool:
        return self.found

    def __str__(self) -> str:
        return str(self.dims) if self.found else "none"


NOT_FOUND = ThresholdResult(False)


def find_threshold_index(
    wins: Sequence[bool],
    min_consecutive: int = 2,
) -> Optional[int]:
    """Streak-scan a per-size GPU win/lose sequence; the single source
    of truth shared by the dense detector and adaptive sweeps (whose
    inferred full-grid win sequences feed straight in here)."""
    if min_consecutive < 1:
        raise ValueError("min_consecutive must be >= 1")
    candidate: Optional[int] = None
    gpu_streak = 0
    cpu_streak = 0
    for j, win in enumerate(wins):
        if win:
            gpu_streak += 1
            cpu_streak = 0
            if candidate is None and gpu_streak >= min_consecutive:
                candidate = j - gpu_streak + 1
        else:
            cpu_streak += 1
            gpu_streak = 0
            if candidate is not None and cpu_streak >= min_consecutive:
                candidate = None
    return candidate


def find_offload_threshold(
    dims_list: Sequence[Dims],
    cpu_seconds: Sequence[float],
    gpu_seconds: Sequence[float],
    min_consecutive: int = 2,
) -> ThresholdResult:
    """Scan parallel CPU/GPU timing curves (ascending sizes)."""
    if len(dims_list) != len(cpu_seconds) or len(dims_list) != len(gpu_seconds):
        raise ValueError("dims, cpu and gpu curves must have equal length")
    wins = [gt < ct for ct, gt in zip(cpu_seconds, gpu_seconds)]
    candidate = find_threshold_index(wins, min_consecutive)
    if candidate is None:
        return NOT_FOUND
    return ThresholdResult(True, dims_list[candidate], candidate)


def threshold_for_series(
    series: ProblemSeries,
    transfer: TransferType,
    min_consecutive: int = 2,
) -> ThresholdResult:
    """Offload threshold of one sweep series under one paradigm.

    Quarantined or otherwise missing cells never raise: sizes present on
    only one device are skipped with a :class:`PartialSweepWarning`, and
    the threshold is computed over the surviving pairs.

    A series produced by an adaptive sweep holds only the sampled subset
    of the grid but carries the exact inferred *full-grid* win sequence
    (:attr:`~repro.core.records.ProblemSeries.adaptive_wins`); the
    threshold is answered from that sequence directly, so adaptive runs
    return dense-identical thresholds for every ``min_consecutive``
    without tripping the pair-gap warning on unsampled sizes.
    """
    if series.adaptive_wins is not None and series.adaptive_dims is not None:
        wins = series.adaptive_wins.get(transfer)
        if wins is None:
            return NOT_FOUND
        candidate = find_threshold_index(wins, min_consecutive)
        if candidate is None:
            return NOT_FOUND
        return ThresholdResult(True, series.adaptive_dims[candidate], candidate)
    gpu = series.gpu_samples(transfer)
    cpu = series.cpu_samples()
    if not gpu or not cpu:
        return NOT_FOUND
    by_dims = {s.dims: s for s in gpu}
    dims_list, cpu_t, gpu_t = [], [], []
    missing = 0
    for c in cpu:
        g = by_dims.get(c.dims)
        if g is None:
            missing += 1
            continue
        dims_list.append(c.dims)
        cpu_t.append(c.seconds)
        gpu_t.append(g.seconds)
    missing_cpu = len(by_dims) - len(dims_list)
    if missing or missing_cpu:
        blas = series.precision.blas_prefix + series.kernel.value
        gaps = []
        if missing:
            gaps.append(f"{missing} of {len(cpu)} sizes lack a GPU sample")
        if missing_cpu:
            gaps.append(f"{missing_cpu} GPU sizes lack a CPU sample")
        warnings.warn(
            f"{blas}:{series.ident} [{transfer.value}]: "
            + "; ".join(gaps)
            + " (quarantined or device lost); threshold computed over the "
            f"remaining {len(dims_list)} pairs",
            PartialSweepWarning, stacklevel=2,
        )
    if not dims_list:
        return NOT_FOUND
    return find_offload_threshold(dims_list, cpu_t, gpu_t, min_consecutive)
