"""DAWN (Cambridge): Xeon Platinum 8468 + Intel Max 1550 (one tile).

The paper pins GPU-BLOB to a single Max 1550 tile (explicit scaling,
Appendix A) and one 48-core socket with oneMKL on both sides, linked by
PCIe 5.0.  Constants are calibrated against the artifact's CSVs: square
SGEMM plateaus near 5.7 TFLOP/s on the CPU and 18.5 TFLOP/s on the
tile, the PCIe path delivers ~55 GB/s, and the CPU GEMV warm-data cliff
sits where the working set leaves the effective LLC (~66.5 MB, the
{4089} boundary of Table IV).
"""

from __future__ import annotations

from .specs import CpuSocketSpec, GpuSpec, LinkSpec, SystemSpec, UsmSpec

__all__ = ["DAWN", "MAX_1550_TILE", "XEON_8468"]

XEON_8468 = CpuSocketSpec(
    name="xeon-platinum-8468",
    cores=48,
    freq_ghz=2.1,
    flops_per_cycle_f64=32.0,  # 2x AVX-512 FMA
    mem_bw_gbs=220.0,
    single_core_mem_bw_gbs=6.0,
    llc_bytes=66.5e6,  # effective; the Table IV {4089}/{2889} boundary
    cache_bw_gbs=600.0,
    single_core_cache_bw_gbs=35.0,
    warm_compute_boost=1.18,
)

MAX_1550_TILE = GpuSpec(
    name="max-1550-tile",
    peak_gflops_f64=12400.0,
    peak_gflops_f32=18500.0,
    # XMX systolic arrays: reduced precision runs far above 2x FP32.
    peak_gflops_f16=105.0e3,
    peak_gflops_bf16=105.0e3,
    mem_bw_gbs=1638.0,
)

DAWN = SystemSpec(
    name="dawn",
    cpu=XEON_8468,
    gpu=MAX_1550_TILE,
    link=LinkSpec(name="pcie-5", bw_gbs=55.0, latency_s=15.0e-6,
                  staging_bw_scale=0.75),
    usm=UsmSpec(fault_latency_s=20.0e-6, pages_per_fault=16,
                migration_bw_scale=0.6, iter_fault_s=10.0e-6,
                iter_refresh_fraction=0.02),
    cpu_library="onemkl",
    gpu_library="onemkl-gpu",
    cpu_threads=48,
)
