"""System specs as data: TOML/JSON files that round-trip ``SystemSpec``.

The calibrated machines started life as Python modules; this module is
what makes them *artifacts* instead — a spec file under ``specs/`` is
the complete description of one heterogeneous node, loadable by name or
path, shareable between repos, and linted in CI.  The schema mirrors the
:mod:`repro.systems.specs` dataclasses table for table::

    schema = 1
    name = "dawn"
    cpu_library = "onemkl"
    gpu_library = "onemkl-gpu"
    cpu_threads = 48

    [cpu]        # CpuSocketSpec
    [cpu.matrix_engine]           # optional MatrixEngineSpec
    [cpu.matrix_engine.speedups]  # {precision value: rate multiplier}
    [gpu]        # GpuSpec; omit the table entirely for a CPU-only node
    [link]       # LinkSpec
    [usm]        # UsmSpec (all fields optional, driver defaults apply)

Floats are written with ``repr`` and parsed back by the TOML/JSON
readers, which round-trips every IEEE-754 double exactly — so a spec
loaded from the committed file produces *byte-identical* goldens to the
Python dataclass it was exported from (a property the test suite pins).

Every load is audited by the model-invariant guard's
:func:`~repro.core.invariants.validate_spec`: a spec calibrated above
its own link bandwidth raises :class:`~repro.errors.ModelInvariantError`
(``strict=True``, the default) or warns
(:class:`~repro.errors.ModelInvariantWarning`).  Schema problems —
unknown keys, missing tables, wrong types — are
:class:`~repro.errors.ConfigError` (exit 2), calibration problems are
integrity errors (exit 4), matching the CLI exit-code taxonomy.

Python 3.11+ parses TOML with :mod:`tomllib`; on 3.10 a minimal
built-in reader covers the subset this schema (and the campaign schema)
emits: tables, dotted headers, strings, booleans, integers, floats and
single-line arrays.
"""

from __future__ import annotations

import json
import math
import warnings
from dataclasses import MISSING, fields
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigError, ModelInvariantError, ModelInvariantWarning
from .specs import (
    CpuSocketSpec,
    GpuSpec,
    LinkSpec,
    MatrixEngineSpec,
    SystemSpec,
    UsmSpec,
)

__all__ = [
    "SCHEMA_VERSION",
    "SPEC_SUFFIXES",
    "dumps_spec",
    "load_spec",
    "loads_spec",
    "parse_toml",
    "spec_from_dict",
    "spec_to_dict",
]

#: Bumped when the file layout changes incompatibly.
SCHEMA_VERSION = 1

#: File suffixes the loader (and spec discovery) accepts.
SPEC_SUFFIXES = (".toml", ".json")


# -- TOML reading -----------------------------------------------------


def parse_toml(text: str, source: str = "<string>") -> dict:
    """Parse TOML into a dict — :mod:`tomllib` when available (3.11+),
    else the minimal built-in reader."""
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python 3.10
        return _parse_toml_minimal(text, source)
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ConfigError(f"{source}: invalid TOML: {exc}") from None


def _parse_toml_minimal(text: str, source: str) -> dict:
    """Tiny TOML subset reader for Python 3.10 (no ``tomllib``).

    Covers exactly what :func:`dumps_spec` and the campaign schema emit:
    ``[dotted.table]`` headers, ``key = value`` pairs with basic
    strings, booleans, integers, floats, and single-line arrays.
    """
    root: Dict[str, Any] = {}
    table = root
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        where = f"{source}:{lineno}"
        if line.startswith("["):
            if not line.endswith("]") or line.startswith("[["):
                raise ConfigError(f"{where}: unsupported table header {line!r}")
            table = root
            for part in line[1:-1].strip().split("."):
                part = part.strip()
                if not part:
                    raise ConfigError(f"{where}: empty table name in {line!r}")
                table = table.setdefault(part, {})
                if not isinstance(table, dict):
                    raise ConfigError(f"{where}: {part!r} is not a table")
            continue
        if "=" not in line:
            raise ConfigError(f"{where}: expected `key = value`, got {line!r}")
        key, _, value = line.partition("=")
        table[key.strip().strip('"')] = _toml_value(value.strip(), where)
    return root


def _toml_value(token: str, where: str):
    if token.startswith('"'):
        try:
            value, end = json.JSONDecoder().raw_decode(token)
        except ValueError:
            raise ConfigError(f"{where}: bad string {token!r}") from None
        rest = token[end:].strip()
        if rest and not rest.startswith("#"):
            raise ConfigError(f"{where}: trailing junk after string: {rest!r}")
        return value
    if token.startswith("["):
        if not token.endswith("]"):
            raise ConfigError(f"{where}: arrays must be single-line")
        inner = token[1:-1].strip()
        if not inner:
            return []
        return [
            _toml_value(item.strip(), where)
            for item in _split_array(inner, where)
        ]
    token = token.split("#", 1)[0].strip()
    if token == "true":
        return True
    if token == "false":
        return False
    cleaned = token.replace("_", "")
    try:
        if not any(c in cleaned for c in ".eE") or cleaned.startswith("0x"):
            return int(cleaned, 0)
        return float(cleaned)
    except ValueError:
        raise ConfigError(f"{where}: unsupported value {token!r}") from None


def _split_array(inner: str, where: str) -> List[str]:
    """Split a single-line array body on top-level commas."""
    items, buf, in_str, escaped = [], [], False, False
    for ch in inner:
        if in_str:
            buf.append(ch)
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == '"':
                in_str = False
            continue
        if ch == '"':
            in_str = True
            buf.append(ch)
        elif ch == ",":
            items.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
    if in_str:
        raise ConfigError(f"{where}: unterminated string in array")
    tail = "".join(buf).strip()
    if tail:
        items.append(tail)
    return [i for i in (s.strip() for s in items) if i]


# -- dict <-> dataclass -----------------------------------------------

#: Spec-file fields that are integral counts (everything else numeric
#: is a float); used to canonicalize types so a loaded spec compares
#: equal to — and reprs identically to — its Python twin.
_INT_FIELDS = {
    "cores", "cpu_threads", "pages_per_fault", "page_bytes", "schema",
}


def _coerce(section: str, name: str, value, annotation):
    kind = str(annotation)
    if "float" in kind and isinstance(value, (int, float)) \
            and not isinstance(value, bool):
        return float(value)
    if "int" in kind and name in _INT_FIELDS:
        if isinstance(value, bool) or (
            isinstance(value, float) and not value.is_integer()
        ):
            raise ConfigError(
                f"[{section}] {name} must be an integer, got {value!r}"
            )
        if isinstance(value, (int, float)):
            return int(value)
    return value


def _build(cls, data: dict, section: str):
    """Build one spec dataclass from one table, catching unknown keys,
    missing required keys, and wrong types with file-oriented errors."""
    if not isinstance(data, dict):
        raise ConfigError(f"[{section}] must be a table, got {data!r}")
    spec_fields = {f.name: f for f in fields(cls)}
    unknown = sorted(set(data) - set(spec_fields))
    if unknown:
        raise ConfigError(
            f"[{section}] has unknown key(s) {unknown}; valid keys: "
            f"{sorted(spec_fields)}"
        )
    kwargs = {}
    for name, f in spec_fields.items():
        if name in data:
            kwargs[name] = _coerce(section, name, data[name], f.type)
        elif f.default is MISSING and f.default_factory is MISSING:
            raise ConfigError(f"[{section}] is missing required key {name!r}")
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ConfigError(f"[{section}]: {exc}") from None


def _engine_from_dict(data: dict) -> MatrixEngineSpec:
    if not isinstance(data, dict):
        raise ConfigError("[cpu.matrix_engine] must be a table")
    speedups = data.get("speedups", {})
    if not isinstance(speedups, dict):
        raise ConfigError("[cpu.matrix_engine.speedups] must be a table")
    rest = {k: v for k, v in data.items() if k != "speedups"}
    engine = _build(MatrixEngineSpec, rest, "cpu.matrix_engine")
    pairs = []
    for precision, factor in speedups.items():
        if not isinstance(factor, (int, float)) or isinstance(factor, bool):
            raise ConfigError(
                f"[cpu.matrix_engine.speedups] {precision} must be a "
                f"number, got {factor!r}"
            )
        pairs.append((precision, float(factor)))
    return MatrixEngineSpec(name=engine.name, speedups=tuple(pairs))


def spec_from_dict(data: dict, source: str = "<dict>",
                   strict: bool = True) -> SystemSpec:
    """Build a validated :class:`SystemSpec` from parsed spec-file data.

    Schema violations raise :class:`~repro.errors.ConfigError`;
    calibration violations (via the invariant auditor's
    :func:`~repro.core.invariants.validate_spec`) raise
    :class:`~repro.errors.ModelInvariantError` when ``strict`` (the
    default) and warn otherwise.
    """
    if not isinstance(data, dict):
        raise ConfigError(f"{source}: spec must be a table, got {data!r}")
    schema = data.get("schema", SCHEMA_VERSION)
    if schema != SCHEMA_VERSION:
        raise ConfigError(
            f"{source}: unsupported spec schema {schema!r} "
            f"(this build reads schema {SCHEMA_VERSION})"
        )
    top = dict(data)
    top.pop("schema", None)
    cpu_data = top.pop("cpu", None)
    gpu_data = top.pop("gpu", None)
    link_data = top.pop("link", None)
    usm_data = top.pop("usm", {})
    for table, payload in (("cpu", cpu_data), ("link", link_data)):
        if payload is None:
            raise ConfigError(f"{source}: missing required table [{table}]")
    engine_data = None
    if isinstance(cpu_data, dict) and "matrix_engine" in cpu_data:
        cpu_data = dict(cpu_data)
        engine_data = cpu_data.pop("matrix_engine")
    cpu = _build(CpuSocketSpec, cpu_data, "cpu")
    if engine_data is not None:
        cpu = CpuSocketSpec(
            **{
                **{f.name: getattr(cpu, f.name) for f in fields(CpuSocketSpec)},
                "matrix_engine": _engine_from_dict(engine_data),
            }
        )
    gpu = _build(GpuSpec, gpu_data, "gpu") if gpu_data is not None else None
    link = _build(LinkSpec, link_data, "link")
    usm = _build(UsmSpec, usm_data, "usm")
    top.update({"cpu": cpu, "gpu": gpu, "link": link, "usm": usm})
    spec = _build(SystemSpec, top, "system")
    if not spec.name:
        raise ConfigError(f"{source}: spec name must be non-empty")

    from ..core.invariants import validate_spec

    violations = validate_spec(spec)
    if violations:
        message = f"{source}: " + "; ".join(violations)
        if strict:
            raise ModelInvariantError(message)
        warnings.warn(message, ModelInvariantWarning, stacklevel=3)
    return spec


def spec_to_dict(spec: SystemSpec) -> dict:
    """The spec-file layout of one :class:`SystemSpec`, schema included."""
    cpu = {
        f.name: getattr(spec.cpu, f.name)
        for f in fields(CpuSocketSpec)
        if f.name != "matrix_engine"
    }
    if spec.cpu.matrix_engine is not None:
        engine = spec.cpu.matrix_engine
        cpu["matrix_engine"] = {
            "name": engine.name,
            "speedups": dict(engine.speedups),
        }
    out = {
        "schema": SCHEMA_VERSION,
        "name": spec.name,
        "cpu_library": spec.cpu_library,
        "gpu_library": spec.gpu_library,
        "cpu_threads": spec.cpu_threads,
        "cpu": cpu,
        "link": {f.name: getattr(spec.link, f.name) for f in fields(LinkSpec)},
        "usm": {f.name: getattr(spec.usm, f.name) for f in fields(UsmSpec)},
    }
    if spec.gpu is not None:
        out["gpu"] = {
            f.name: getattr(spec.gpu, f.name)
            for f in fields(GpuSpec)
            if getattr(spec.gpu, f.name) is not None
        }
    return out


# -- TOML writing -----------------------------------------------------


def _toml_scalar(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if not math.isfinite(value):  # pragma: no cover - rejected anyway
            return "inf" if value > 0 else "-inf" if value < 0 else "nan"
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)
    raise ConfigError(f"cannot write {value!r} to a spec file")


def _emit_table(lines: List[str], header: str, table: dict) -> None:
    subtables = {k: v for k, v in table.items() if isinstance(v, dict)}
    scalars = {k: v for k, v in table.items() if not isinstance(v, dict)}
    if header:
        lines.append(f"[{header}]")
    for key, value in scalars.items():
        lines.append(f"{key} = {_toml_scalar(value)}")
    for key, value in subtables.items():
        lines.append("")
        _emit_table(lines, f"{header}.{key}" if header else key, value)


def dumps_spec(spec: SystemSpec) -> str:
    """One :class:`SystemSpec` as canonical TOML text (the committed-
    file format; ``loads_spec`` round-trips it exactly)."""
    data = spec_to_dict(spec)
    lines: List[str] = [f"# {spec.name}: generated by repro.systems.specio"]
    for key in ("schema", "name", "cpu_library", "gpu_library", "cpu_threads"):
        lines.append(f"{key} = {_toml_scalar(data[key])}")
    for table in ("cpu", "gpu", "link", "usm"):
        if table not in data:
            continue
        lines.append("")
        _emit_table(lines, table, data[table])
    return "\n".join(lines) + "\n"


# -- file entry points ------------------------------------------------


def loads_spec(text: str, format: str = "toml", source: str = "<string>",
               strict: bool = True) -> SystemSpec:
    """Parse spec text (``"toml"`` or ``"json"``) into a validated
    :class:`SystemSpec`."""
    if format == "toml":
        data = parse_toml(text, source)
    elif format == "json":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConfigError(f"{source}: invalid JSON: {exc}") from None
    else:
        raise ConfigError(f"unknown spec format {format!r} (toml or json)")
    return spec_from_dict(data, source=source, strict=strict)


def load_spec(path, strict: bool = True) -> SystemSpec:
    """Load one spec file (``.toml`` or ``.json``) into a validated
    :class:`SystemSpec`."""
    path = Path(path)
    if path.suffix not in SPEC_SUFFIXES:
        raise ConfigError(
            f"spec file {path} must end in one of {list(SPEC_SUFFIXES)}"
        )
    try:
        text = path.read_text()
    except OSError as exc:
        raise ConfigError(f"cannot read spec file {path}: {exc}") from None
    format = "json" if path.suffix == ".json" else "toml"
    return loads_spec(text, format=format, source=str(path), strict=strict)


def write_spec(spec: SystemSpec, path) -> Path:
    """Export one spec as a TOML file (the committed-artifact format)."""
    path = Path(path)
    path.write_text(dumps_spec(spec))
    return path


def _main(argv: Optional[Tuple[str, ...]] = None) -> int:
    """``python -m repro.systems.specio SPEC...`` — lint spec files."""
    import sys

    paths = list(argv if argv is not None else sys.argv[1:])
    failures = 0
    for raw in paths:
        try:
            spec = load_spec(raw, strict=True)
        except (ConfigError, ModelInvariantError) as exc:
            print(f"{raw}: FAIL: {exc}", file=sys.stderr)
            failures += 1
        else:
            print(f"{raw}: ok ({spec.name})")
    return 4 if failures else 0


if __name__ == "__main__":  # pragma: no cover - thin wrapper
    raise SystemExit(_main())
