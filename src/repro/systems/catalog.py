"""System registry and model factory."""

from __future__ import annotations

from typing import Dict, Optional, Union

from ..errors import UnknownSystemError
from .dawn import DAWN
from .isambard import ISAMBARD_AI
from .lumi import LUMI
from .specs import SystemSpec

__all__ = [
    "get_system",
    "make_model",
    "register_system",
    "system_names",
]

_REGISTRY: Dict[str, SystemSpec] = {}


def register_system(spec: SystemSpec, overwrite: bool = False) -> SystemSpec:
    if spec.name in _REGISTRY and not overwrite:
        raise UnknownSystemError(
            f"system {spec.name!r} already registered (pass overwrite=True)"
        )
    _REGISTRY[spec.name] = spec
    return spec


for _spec in (DAWN, LUMI, ISAMBARD_AI):
    register_system(_spec)


def get_system(name: str) -> SystemSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownSystemError(
            f"unknown system {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def system_names() -> tuple:
    return tuple(sorted(_REGISTRY))


def make_model(
    system: Union[str, SystemSpec],
    cpu_library: Optional[str] = None,
    gpu_library: Optional[str] = None,
    cpu_threads: Optional[int] = None,
    noise=None,
):
    """Build a :class:`~repro.sim.perfmodel.NodePerfModel` for a system.

    ``system`` is a registered name or a :class:`SystemSpec`.  Library
    names and the thread count override the system defaults; ``noise``
    defaults to a small deterministic jitter (pass
    :data:`repro.sim.noise.NO_NOISE` for exact closed forms).
    """
    from ..blas.registry import get_cpu_library, get_gpu_library
    from ..sim.noise import DeterministicNoise
    from ..sim.perfmodel import NodePerfModel

    spec = system if isinstance(system, SystemSpec) else get_system(system)
    cpu_lib = get_cpu_library(cpu_library or spec.cpu_library)
    gpu_lib = get_gpu_library(gpu_library or spec.gpu_library)
    if cpu_threads is not None:
        cpu_lib = cpu_lib.with_threads(cpu_threads)
    if noise is None:
        noise = DeterministicNoise(amplitude=0.01)
    return NodePerfModel(spec, cpu_lib, gpu_lib, noise=noise)
