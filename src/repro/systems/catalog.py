"""System registry, spec-file discovery, and the model factory.

Systems resolve in a documented order (DESIGN §12):

1. an explicit :class:`SystemSpec` instance is used as-is;
2. an ident that *looks like a path* (contains a separator or ends in a
   spec suffix) is loaded as a spec file;
3. an exact registry name — the three calibrated machines plus anything
   :func:`register_system` added;
4. a spec file named ``<ident>.toml``/``<ident>.json`` discovered on
   the spec search path: ``$REPRO_SPEC_PATH`` entries first, then
   ``./specs``, then the repo's committed ``specs/`` directory.

The three calibrated systems are **dogfooded through the loader**: at
import the registry prefers the committed ``specs/*.toml`` files over
the Python fallback modules (:mod:`.dawn`, :mod:`.lumi`,
:mod:`.isambard`), so every golden regression exercises the spec-file
path end to end.  The test suite pins file == dataclass equality, which
is what keeps the Table III–VI goldens byte-identical either way.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import ReproWarning, UnknownSystemError
from .dawn import DAWN
from .isambard import ISAMBARD_AI
from .lumi import LUMI
from .specio import SPEC_SUFFIXES, load_spec
from .specs import SystemSpec

__all__ = [
    "builtin_spec_dir",
    "discover_specs",
    "get_system",
    "make_model",
    "register_system",
    "resolve_system",
    "spec_search_dirs",
    "system_names",
]

#: Environment variable naming extra spec directories (colon-separated
#: on POSIX, like ``$PATH``), searched before the defaults.
SPEC_PATH_ENV = "REPRO_SPEC_PATH"

_REGISTRY: Dict[str, SystemSpec] = {}

#: The Python fallback calibrations, used when the committed spec file
#: is absent (e.g. an installed wheel without the repo checkout).
_BUILTIN_FALLBACKS = (DAWN, LUMI, ISAMBARD_AI)


def builtin_spec_dir() -> Optional[Path]:
    """The repo's committed ``specs/`` directory, if this package runs
    from a checkout (``<root>/src/repro/systems/`` -> ``<root>/specs``);
    ``None`` otherwise."""
    try:
        root = Path(__file__).resolve().parents[3] / "specs"
    except (OSError, IndexError):  # pragma: no cover - exotic layouts
        return None
    return root if root.is_dir() else None


def spec_search_dirs() -> List[Path]:
    """Spec directories in search order: ``$REPRO_SPEC_PATH`` entries,
    then ``./specs``, then the repo's committed ``specs/``."""
    dirs: List[Path] = []
    env = os.environ.get(SPEC_PATH_ENV, "")
    for entry in env.split(os.pathsep):
        if entry:
            dirs.append(Path(entry))
    dirs.append(Path("specs"))
    builtin = builtin_spec_dir()
    if builtin is not None:
        dirs.append(builtin)
    seen = set()
    unique = []
    for d in dirs:
        key = str(d.resolve()) if d.exists() else str(d)
        if key not in seen:
            seen.add(key)
            unique.append(d)
    return unique


def discover_specs() -> Dict[str, Path]:
    """Spec files on the search path, keyed by file stem.  Earlier
    directories shadow later ones (first hit per name wins)."""
    found: Dict[str, Path] = {}
    for directory in spec_search_dirs():
        if not directory.is_dir():
            continue
        for suffix in SPEC_SUFFIXES:
            for path in sorted(directory.glob(f"*{suffix}")):
                found.setdefault(path.stem, path)
    return found


def register_system(spec: SystemSpec, overwrite: bool = False) -> SystemSpec:
    if spec.name in _REGISTRY and not overwrite:
        raise UnknownSystemError(
            f"system {spec.name!r} already registered (pass overwrite=True)"
        )
    _REGISTRY[spec.name] = spec
    return spec


def _register_builtins() -> None:
    """Register the calibrated systems, preferring the committed spec
    files (so the loader sits on the golden path) with the Python
    modules as fallback calibration."""
    spec_dir = builtin_spec_dir()
    for fallback in _BUILTIN_FALLBACKS:
        spec = fallback
        if spec_dir is not None:
            path = spec_dir / f"{fallback.name}.toml"
            if path.is_file():
                try:
                    loaded = load_spec(path, strict=True)
                except Exception as exc:
                    warnings.warn(
                        f"committed spec file {path} failed to load "
                        f"({exc}); using the built-in "
                        f"{fallback.name!r} calibration",
                        ReproWarning,
                        stacklevel=2,
                    )
                else:
                    if loaded.name == fallback.name:
                        spec = loaded
                    else:
                        warnings.warn(
                            f"spec file {path} names system "
                            f"{loaded.name!r}, expected "
                            f"{fallback.name!r}; using the built-in "
                            "calibration",
                            ReproWarning,
                            stacklevel=2,
                        )
        _REGISTRY[fallback.name] = spec


_register_builtins()


def _unknown_system(name: str) -> UnknownSystemError:
    """The full story of where a system name was looked for: registry
    names, discovered spec files, and the searched spec directories."""
    specs = discover_specs()
    discovered = sorted(set(specs) - set(_REGISTRY))
    searched = ", ".join(str(d) for d in spec_search_dirs())
    message = (
        f"unknown system {name!r}; registry: {sorted(_REGISTRY)}"
    )
    if discovered:
        message += f"; spec files: {discovered}"
    message += (
        f" (spec directories searched: {searched}; pass a name above or "
        "a path to a .toml/.json spec file)"
    )
    return UnknownSystemError(message)


def get_system(name: str) -> SystemSpec:
    """Exact registry lookup (no file fallback); see
    :func:`resolve_system` for the full resolution order."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise _unknown_system(name) from None


def system_names() -> tuple:
    return tuple(sorted(_REGISTRY))


def resolve_system(system: Union[str, SystemSpec],
                   strict: bool = True) -> SystemSpec:
    """Resolve a system ident — registry name, spec-file path, or
    discovered spec-file stem — into a :class:`SystemSpec`.

    Loaded files are audited by the invariant auditor
    (:func:`~repro.core.invariants.validate_spec`); ``strict`` rejects a
    miscalibrated file with
    :class:`~repro.errors.ModelInvariantError`.
    """
    if isinstance(system, SystemSpec):
        return system
    name = str(system)
    looks_like_path = (
        os.sep in name
        or (os.altsep is not None and os.altsep in name)
        or name.endswith(SPEC_SUFFIXES)
    )
    if looks_like_path:
        if Path(name).is_file():
            return load_spec(name, strict=strict)
        raise UnknownSystemError(
            f"spec file {name!r} does not exist (spec directories "
            f"searched for names: "
            f"{', '.join(str(d) for d in spec_search_dirs())})"
        )
    if name in _REGISTRY:
        return _REGISTRY[name]
    discovered = discover_specs().get(name)
    if discovered is not None:
        return load_spec(discovered, strict=strict)
    raise _unknown_system(name)


def make_model(
    system: Union[str, SystemSpec],
    cpu_library: Optional[str] = None,
    gpu_library: Optional[str] = None,
    cpu_threads: Optional[int] = None,
    noise=None,
):
    """Build a :class:`~repro.sim.perfmodel.NodePerfModel` for a system.

    ``system`` is anything :func:`resolve_system` accepts — a registry
    name, a spec-file path, a discovered spec stem, or a
    :class:`SystemSpec`.  Library names and the thread count override
    the system defaults; ``noise`` defaults to a small deterministic
    jitter (pass :data:`repro.sim.noise.NO_NOISE` for exact closed
    forms).
    """
    from ..blas.registry import get_cpu_library, get_gpu_library
    from ..sim.noise import DeterministicNoise
    from ..sim.perfmodel import NodePerfModel

    spec = resolve_system(system)
    cpu_lib = get_cpu_library(cpu_library or spec.cpu_library)
    gpu_lib = get_gpu_library(gpu_library or spec.gpu_library)
    if cpu_threads is not None:
        cpu_lib = cpu_lib.with_threads(cpu_threads)
    if noise is None:
        noise = DeterministicNoise(amplitude=0.01)
    return NodePerfModel(spec, cpu_lib, gpu_lib, noise=noise)
