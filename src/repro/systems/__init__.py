"""Calibrated system models of the paper's three machines."""

from .catalog import get_system, make_model, register_system, system_names
from .dawn import DAWN, MAX_1550_TILE, XEON_8468
from .isambard import GRACE_72, H100_GH200, ISAMBARD_AI
from .lumi import EPYC_7A53, LUMI, MI250X_GCD
from .specs import (
    CpuSocketSpec,
    GpuSpec,
    LinkSpec,
    MatrixEngineSpec,
    SystemSpec,
    UsmSpec,
)

__all__ = [
    "CpuSocketSpec",
    "DAWN",
    "EPYC_7A53",
    "GRACE_72",
    "GpuSpec",
    "H100_GH200",
    "ISAMBARD_AI",
    "LUMI",
    "LinkSpec",
    "MAX_1550_TILE",
    "MI250X_GCD",
    "MatrixEngineSpec",
    "SystemSpec",
    "UsmSpec",
    "XEON_8468",
    "get_system",
    "make_model",
    "register_system",
    "system_names",
]
