"""Calibrated system models of the paper's three machines, plus the
data-driven spec registry (TOML/JSON spec files under ``specs/``)."""

from .catalog import (
    discover_specs,
    get_system,
    make_model,
    register_system,
    resolve_system,
    spec_search_dirs,
    system_names,
)
from .dawn import DAWN, MAX_1550_TILE, XEON_8468
from .isambard import GRACE_72, H100_GH200, ISAMBARD_AI
from .lumi import EPYC_7A53, LUMI, MI250X_GCD
from .specio import dumps_spec, load_spec, loads_spec, write_spec
from .specs import (
    CpuSocketSpec,
    GpuSpec,
    LinkSpec,
    MatrixEngineSpec,
    SystemSpec,
    UsmSpec,
)

__all__ = [
    "CpuSocketSpec",
    "DAWN",
    "EPYC_7A53",
    "GRACE_72",
    "GpuSpec",
    "H100_GH200",
    "ISAMBARD_AI",
    "LUMI",
    "LinkSpec",
    "MAX_1550_TILE",
    "MI250X_GCD",
    "MatrixEngineSpec",
    "SystemSpec",
    "UsmSpec",
    "XEON_8468",
    "discover_specs",
    "dumps_spec",
    "get_system",
    "load_spec",
    "loads_spec",
    "make_model",
    "register_system",
    "resolve_system",
    "spec_search_dirs",
    "system_names",
    "write_spec",
]
