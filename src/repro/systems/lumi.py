"""LUMI-G (CSC): EPYC 7A53 "Trento" + one MI250X GCD.

AOCL on the CPU (56 threads pinned, as in the paper) and rocBLAS on a
single Graphics Compute Die, over Infinity-Fabric-attached PCIe-class
bandwidth.  The EPYC's 256 MB of V-Cache holds every swept working set,
so warm re-use boosts the CPU across the entire range — one reason
LUMI's Transfer-Always thresholds climb fastest.
"""

from __future__ import annotations

from .specs import CpuSocketSpec, GpuSpec, LinkSpec, SystemSpec, UsmSpec

__all__ = ["EPYC_7A53", "LUMI", "MI250X_GCD"]

EPYC_7A53 = CpuSocketSpec(
    name="epyc-7a53",
    cores=64,
    freq_ghz=2.0,
    flops_per_cycle_f64=16.0,
    mem_bw_gbs=340.0,
    single_core_mem_bw_gbs=28.0,
    llc_bytes=256.0e6,
    cache_bw_gbs=800.0,
    single_core_cache_bw_gbs=50.0,
    warm_compute_boost=1.18,
)

MI250X_GCD = GpuSpec(
    name="mi250x-gcd",
    peak_gflops_f64=19000.0,
    peak_gflops_f32=23900.0,
    mem_bw_gbs=1600.0,
)

LUMI = SystemSpec(
    name="lumi",
    cpu=EPYC_7A53,
    gpu=MI250X_GCD,
    link=LinkSpec(name="infinity-fabric-host", bw_gbs=24.0,
                  latency_s=10.0e-6, staging_bw_scale=0.75),
    usm=UsmSpec(fault_latency_s=25.0e-6, pages_per_fault=16,
                migration_bw_scale=0.5, iter_fault_s=25.0e-6,
                iter_refresh_fraction=0.05),
    cpu_library="aocl",
    gpu_library="rocblas",
    cpu_threads=56,
)
