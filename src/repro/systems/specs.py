"""Hardware specification dataclasses for heterogeneous nodes.

A ``SystemSpec`` bundles one CPU socket, one GPU (a single tile/GCD —
the paper benchmarks single-stack devices), the host<->device link and
the unified-memory behaviour, plus the library pairing the paper used
on that machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "CpuSocketSpec",
    "GpuSpec",
    "LinkSpec",
    "MatrixEngineSpec",
    "SystemSpec",
    "UsmSpec",
]


@dataclass(frozen=True)
class MatrixEngineSpec:
    """A CPU matrix engine (AMX / SME): rate multipliers by precision
    value (``"bfloat16"``, ``"half"``)."""

    name: str
    speedups: Tuple[Tuple[str, float], ...] = ()

    def speedup_for(self, precision_value: str) -> float:
        for name, factor in self.speedups:
            if name == precision_value:
                return factor
        return 1.0


@dataclass(frozen=True)
class CpuSocketSpec:
    """One CPU socket.

    ``flops_per_cycle_f64`` is the per-core FP64 FLOP rate per cycle
    (FP32 doubles it).  The two ``single_core_*`` bandwidths drive the
    thread-engagement ramp of memory-bound kernels; ``llc_bytes`` is the
    *effective* last-level-cache capacity at which warm-data reuse stops
    (the paper's DAWN GEMV boundary at ~{4089}).
    """

    name: str
    cores: int
    freq_ghz: float
    flops_per_cycle_f64: float
    mem_bw_gbs: float
    single_core_mem_bw_gbs: float
    llc_bytes: float
    cache_bw_gbs: float
    single_core_cache_bw_gbs: float
    warm_compute_boost: float = 1.18
    matrix_engine: Optional[MatrixEngineSpec] = None

    def peak_gflops(self, itemsize: int) -> float:
        per_core = self.flops_per_cycle_f64 * self.freq_ghz
        if itemsize <= 4:  # single and reduced precisions run FP32 SIMD
            per_core *= 2.0
        return self.cores * per_core


@dataclass(frozen=True)
class GpuSpec:
    """One GPU tile/GCD.  Reduced-precision peaks default to 2x FP32
    (matrix units), unless the part provides better."""

    name: str
    peak_gflops_f64: float
    peak_gflops_f32: float
    mem_bw_gbs: float
    peak_gflops_f16: Optional[float] = None
    peak_gflops_bf16: Optional[float] = None

    def peak_gflops(self, precision_value: str) -> float:
        if precision_value == "double":
            return self.peak_gflops_f64
        if precision_value == "single":
            return self.peak_gflops_f32
        if precision_value == "half":
            return self.peak_gflops_f16 or 2.0 * self.peak_gflops_f32
        return self.peak_gflops_bf16 or 2.0 * self.peak_gflops_f32


@dataclass(frozen=True)
class LinkSpec:
    """Host<->device link.  ``staging_bw_scale`` derates the effective
    bandwidth of Transfer-Always's per-iteration copies (no pinned-
    buffer reuse), one reason its thresholds rise with data re-use."""

    name: str
    bw_gbs: float
    latency_s: float
    staging_bw_scale: float = 0.75


@dataclass(frozen=True)
class UsmSpec:
    """Unified/managed memory behaviour (migration is fault-driven)."""

    fault_latency_s: float = 20.0e-6
    pages_per_fault: int = 16
    page_bytes: int = 4096
    migration_bw_scale: float = 0.6
    iter_fault_s: float = 10.0e-6
    iter_refresh_fraction: float = 0.02


@dataclass(frozen=True)
class SystemSpec:
    name: str
    cpu: CpuSocketSpec
    gpu: Optional[GpuSpec]
    link: LinkSpec
    usm: UsmSpec = field(default_factory=UsmSpec)
    cpu_library: str = "openblas"
    gpu_library: str = "cublas"
    cpu_threads: int = 16
