"""Isambard-AI (Bristol): one GH200 — Grace (72 cores) + H100, NVLink-C2C.

NVPL on the CPU and cuBLAS on the GPU.  Two properties pin its
extremely low offload thresholds: NVPL synchronizes all 72 threads on
every call (Fig. 3), and NVLink-C2C moves operands at ~450 GB/s with
~1 us latency, so even tiny GEMMs amortize their transfers.
"""

from __future__ import annotations

from .specs import CpuSocketSpec, GpuSpec, LinkSpec, SystemSpec, UsmSpec

__all__ = ["GRACE_72", "H100_GH200", "ISAMBARD_AI"]

GRACE_72 = CpuSocketSpec(
    name="grace-72",
    cores=72,
    freq_ghz=3.1,
    flops_per_cycle_f64=16.0,
    mem_bw_gbs=450.0,
    single_core_mem_bw_gbs=40.0,
    llc_bytes=114.0e6,
    cache_bw_gbs=880.0,
    single_core_cache_bw_gbs=40.0,
    # Grace's wide LPDDR5X-backed SLC rewards cache-resident re-use more
    # than the x86 sockets; this also separates the warm (i>1) Transfer-
    # Always crossover from the cold one across a stride-8 grid point.
    warm_compute_boost=1.25,
)

H100_GH200 = GpuSpec(
    name="h100-gh200",
    peak_gflops_f64=42000.0,
    peak_gflops_f32=53500.0,
    mem_bw_gbs=3500.0,
)

ISAMBARD_AI = SystemSpec(
    name="isambard-ai",
    cpu=GRACE_72,
    gpu=H100_GH200,
    link=LinkSpec(name="nvlink-c2c", bw_gbs=450.0, latency_s=1.2e-6,
                  staging_bw_scale=0.9),
    usm=UsmSpec(fault_latency_s=5.0e-6, pages_per_fault=64,
                migration_bw_scale=0.9, iter_fault_s=2.0e-6,
                iter_refresh_fraction=0.01),
    cpu_library="nvpl",
    gpu_library="cublas",
    cpu_threads=72,
)
