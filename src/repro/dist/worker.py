"""Campaign workers: scenario execution at the far end of the wire.

A worker receives one scenario at a time from the dispatcher, runs it
through the same supervised :func:`~repro.core.runner.run_sweep` a
single-node campaign uses, writes the result durably as a *shard*
file, and reports back.  Two flavors share the protocol:

* :class:`SubprocessWorker` — a real child process running
  ``gpu-blob dist-worker`` (:func:`worker_main`), speaking JSON lines
  over stdin/stdout with a background heartbeat thread.  It inherits
  the environment, so ``REPRO_CHAOS_KILL_SHARD`` composes: the
  dispatcher can lose a whole worker while that worker is losing a
  pool shard.
* :class:`SimulatedWorker` — in-process, no threads, executes one
  queued scenario per :meth:`~SimulatedWorker.poll`.  Deterministic
  under a fake clock, which is what the dist test-suite drives.

Idempotent completion lives here: a result shard is keyed by the
*scenario fingerprint* (:func:`scenario_fingerprint`) and carries a
``payload_sha256`` over the canonical run payload — the same
serialization the content-addressed sweep cache uses, so floats
round-trip exactly and a shard computed by *any* worker (or any
attempt) feeds the aggregated report byte-identically.  Duplicate
finishes of a stolen scenario overwrite the shard with identical
bytes; the ledger dedupes the bookkeeping.

Dispatcher -> worker messages: ``{"t": "run", "scenario": {...}}`` and
``{"t": "shutdown"}``.  Worker -> dispatcher: ``hello``, ``heartbeat``,
``done`` and ``failed`` (all tagged with the worker id; every one
counts as a liveness beat).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import threading
from collections import deque
from pathlib import Path
from queue import Empty, SimpleQueue
from typing import Callable, List, Optional, Sequence

from ..errors import ReproError
from ..faults.checkpoint import config_fingerprint
from ..types import Kernel, Precision, TransferType

__all__ = [
    "SHARD_VERSION",
    "SimulatedWorker",
    "SubprocessWorker",
    "default_worker_command",
    "execute_scenario",
    "load_result_shard",
    "scenario_fingerprint",
    "scenario_record",
    "worker_main",
    "write_result_shard",
]

#: Format version of result shard files.
SHARD_VERSION = 1


# -- scenario wire format ---------------------------------------------


def scenario_fingerprint(scenario) -> str:
    """Stable identity of one scenario — everything that changes what
    it computes.  Completion (ledger records, result shard filenames)
    is keyed on this, which is what makes re-execution after a steal
    idempotent."""
    blob = f"{scenario.system}|{config_fingerprint(scenario.config, scenario.system)}"
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def scenario_record(scenario, backend: str, jobs: int) -> dict:
    """The JSON form of one scenario as dispatched over the wire."""
    config = scenario.config
    return {
        "index": scenario.index,
        "fingerprint": scenario_fingerprint(scenario),
        "system": scenario.system,
        "iterations": scenario.iterations,
        "backend": backend,
        "jobs": jobs,
        "config": {
            "min_dim": config.min_dim,
            "max_dim": config.max_dim,
            "iterations": config.iterations,
            "step": config.step,
            "kernels": [k.value for k in config.kernels],
            "problems": list(config.problem_idents),
            "precisions": [p.value for p in config.precisions],
            "transfers": [t.value for t in config.transfers],
            "validate": config.validate,
            "adaptive": config.adaptive,
        },
    }


def _parse_scenario_config(rec: dict):
    from ..core.config import RunConfig

    return RunConfig(
        min_dim=rec["min_dim"],
        max_dim=rec["max_dim"],
        iterations=rec["iterations"],
        step=rec["step"],
        kernels=tuple(Kernel(k) for k in rec["kernels"]),
        problem_idents=tuple(rec["problems"]),
        precisions=tuple(Precision(p) for p in rec["precisions"]),
        transfers=tuple(TransferType(t) for t in rec["transfers"]),
        validate=rec.get("validate", False),
        adaptive=rec.get("adaptive", False),
    )


def execute_scenario(record: dict, cache_dir=None):
    """Run one dispatched scenario exactly the way a single-node
    campaign would; returns the :class:`~repro.core.runner.RunResult`.
    The model is deterministic, so every worker (and every retry)
    computes identical bytes for one fingerprint."""
    from ..backends import make_backend
    from ..core.runner import run_sweep
    from ..systems.catalog import make_model, resolve_system

    config = _parse_scenario_config(record["config"])
    spec = resolve_system(record["system"], strict=record["config"].get(
        "validate", False))
    backend = make_backend(record.get("backend", "analytic"),
                           make_model(spec))
    return run_sweep(
        backend,
        config,
        system_name=spec.name,
        jobs=int(record.get("jobs", 1)),
        cache_dir=cache_dir,
    )


# -- result shards ----------------------------------------------------


def _shard_path(results_dir, fp: str) -> Path:
    return Path(results_dir) / f"{fp}.json"


def write_result_shard(results_dir, fp: str, result) -> Path:
    """Durably persist one scenario result, keyed by fingerprint.
    Atomic (write-then-rename) so a kill -9 mid-write leaves either
    the old shard or none, never a torn one."""
    from ..core.sweepcache import payload_digest, run_payload

    payload = run_payload(result)
    entry = {
        "version": SHARD_VERSION,
        "fingerprint": fp,
        "payload_sha256": payload_digest(payload),
        **payload,
    }
    path = _shard_path(results_dir, fp)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp-{os.getpid()}")
    tmp.write_text(json.dumps(entry, separators=(",", ":")) + "\n")
    tmp.replace(path)
    return path


def load_result_shard(results_dir, fp: str, config,
                      system_name: Optional[str] = None):
    """Load and verify one result shard; ``None`` when the shard is
    missing, version-skewed, mis-keyed or fails its payload digest —
    the dispatcher treats all of those as "not done, re-run"."""
    from ..core.sweepcache import parse_run_payload, payload_digest

    path = _shard_path(results_dir, fp)
    try:
        entry = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(entry, dict):
        return None
    if entry.get("version") != SHARD_VERSION:
        return None
    if entry.get("fingerprint") != fp:
        return None
    payload = {k: v for k, v in entry.items()
               if k not in ("version", "fingerprint", "payload_sha256")}
    if entry.get("payload_sha256") != payload_digest(payload):
        return None
    try:
        return parse_run_payload(payload, config, system_name)
    except (KeyError, TypeError, ValueError):
        return None


# -- in-process simulated worker --------------------------------------


class SimulatedWorker:
    """An in-process worker for deterministic tests.

    ``send`` only queues; :meth:`poll` executes at most one queued
    scenario and returns the resulting messages plus a heartbeat —
    mirroring the asynchrony of a real subprocess closely enough that
    the dispatcher cannot tell them apart, while keeping execution on
    the test's own thread.  ``executor`` is injectable so tests can
    make a scenario fail deterministically (dead-letter paths).
    """

    def __init__(self, worker_id: str, results_dir, cache_dir=None,
                 executor: Optional[Callable] = None) -> None:
        self.worker_id = worker_id
        self.results_dir = Path(results_dir)
        self.cache_dir = cache_dir
        self._executor = executor if executor is not None else \
            execute_scenario
        self._inbox: deque = deque()
        self._alive = True

    def alive(self) -> bool:
        return self._alive

    def send(self, msg: dict) -> None:
        if not self._alive:
            raise BrokenPipeError(f"worker {self.worker_id} is gone")
        self._inbox.append(msg)

    def poll(self) -> List[dict]:
        """Drain: execute at most one queued scenario, then beat."""
        if not self._alive:
            return []
        out: List[dict] = []
        while self._inbox:
            msg = self._inbox.popleft()
            t = msg.get("t")
            if t == "shutdown":
                self._alive = False
                return out
            if t != "run":
                continue
            rec = msg["scenario"]
            fp = rec["fingerprint"]
            try:
                result = self._executor(rec, cache_dir=self.cache_dir)
            except ReproError as exc:
                out.append({"t": "failed", "worker": self.worker_id,
                            "fp": fp, "index": rec["index"],
                            "error": str(exc)})
            else:
                write_result_shard(self.results_dir, fp, result)
                out.append({"t": "done", "worker": self.worker_id,
                            "fp": fp, "index": rec["index"]})
            break
        out.append({"t": "heartbeat", "worker": self.worker_id})
        return out

    def kill(self) -> None:
        """The SIGKILL analog: queued work and unsent messages are
        lost; the worker never speaks again."""
        self._alive = False
        self._inbox.clear()

    def close(self) -> None:
        self._alive = False


# -- subprocess worker -------------------------------------------------


def default_worker_command() -> List[str]:
    """The argv prefix that launches this build's own dist-worker."""
    return [sys.executable, "-m", "repro.cli", "dist-worker"]


class SubprocessWorker:
    """A real child process speaking the JSON-lines worker protocol.

    A reader thread drains the child's stdout into a queue so
    :meth:`poll` never blocks the dispatch loop; :meth:`alive` is the
    process's own exit status, which is how a kill -9 is detected
    faster than waiting out the heartbeat timeout.
    """

    def __init__(self, worker_id: str, results_dir, cache_dir=None,
                 heartbeat_s: float = 2.0,
                 command: Optional[Sequence[str]] = None) -> None:
        self.worker_id = worker_id
        self.results_dir = Path(results_dir)
        argv = list(command) if command else default_worker_command()
        argv += [
            "--worker-id", worker_id,
            "--results-dir", str(results_dir),
            "--heartbeat", str(heartbeat_s),
        ]
        if cache_dir is not None:
            argv += ["--cache-dir", str(cache_dir)]
        self._proc = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            bufsize=1,
        )
        self._queue: SimpleQueue = SimpleQueue()
        self._reader = threading.Thread(target=self._drain, daemon=True)
        self._reader.start()

    @property
    def pid(self) -> int:
        return self._proc.pid

    def _drain(self) -> None:
        try:
            for line in self._proc.stdout:
                self._queue.put(line)
        except ValueError:  # stdout closed under us
            pass

    def alive(self) -> bool:
        return self._proc.poll() is None

    def send(self, msg: dict) -> None:
        if self._proc.poll() is not None:
            raise BrokenPipeError(f"worker {self.worker_id} has exited")
        self._proc.stdin.write(json.dumps(msg, separators=(",", ":")) + "\n")
        self._proc.stdin.flush()

    def poll(self) -> List[dict]:
        out: List[dict] = []
        while True:
            try:
                line = self._queue.get_nowait()
            except Empty:
                break
            try:
                rec = json.loads(line)
            except ValueError:
                continue
            if isinstance(rec, dict):
                out.append(rec)
        return out

    def kill(self) -> None:
        self._proc.kill()
        self._proc.wait()

    def close(self) -> None:
        if self.alive():
            try:
                self.send({"t": "shutdown"})
            except OSError:
                pass
            try:
                self._proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self._proc.kill()
                self._proc.wait()
        else:
            self._proc.wait()
        self._reader.join(timeout=2)
        for stream in (self._proc.stdin, self._proc.stdout):
            if stream is not None:
                try:
                    stream.close()
                except OSError:
                    pass


# -- the dist-worker entry point --------------------------------------


def worker_main(argv: Optional[Sequence[str]] = None) -> int:
    """``gpu-blob dist-worker``: serve scenarios over stdin/stdout.

    Meant to be spawned by the dispatcher, not typed by hand — but it
    is a plain subcommand so ``--worker-cmd`` can wrap it (srun, ssh,
    a container runtime) on real clusters.
    """
    parser = argparse.ArgumentParser(
        prog="gpu-blob dist-worker",
        description="campaign worker speaking JSON lines on stdin/stdout",
    )
    parser.add_argument("--worker-id", required=True)
    parser.add_argument("--results-dir", required=True,
                        help="directory for result shard files")
    parser.add_argument("--cache-dir", default=None,
                        help="shared content-addressed sweep cache")
    parser.add_argument("--heartbeat", type=float, default=2.0,
                        metavar="SECONDS")
    args = parser.parse_args(argv)
    if args.heartbeat <= 0:
        parser.error(f"--heartbeat must be > 0, got {args.heartbeat}")

    lock = threading.Lock()

    def emit(msg: dict) -> None:
        with lock:
            sys.stdout.write(json.dumps(msg, separators=(",", ":")) + "\n")
            sys.stdout.flush()

    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(args.heartbeat):
            try:
                emit({"t": "heartbeat", "worker": args.worker_id})
            except OSError:  # dispatcher is gone; nothing left to do
                return

    threading.Thread(target=beat, daemon=True).start()
    emit({"t": "hello", "worker": args.worker_id})
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        try:
            msg = json.loads(line)
        except ValueError:
            continue
        t = msg.get("t") if isinstance(msg, dict) else None
        if t == "shutdown":
            break
        if t != "run":
            continue
        rec = msg["scenario"]
        fp = rec["fingerprint"]
        try:
            result = execute_scenario(rec, cache_dir=args.cache_dir)
        except ReproError as exc:
            emit({"t": "failed", "worker": args.worker_id, "fp": fp,
                  "index": rec["index"], "error": str(exc)})
        else:
            write_result_shard(args.results_dir, fp, result)
            emit({"t": "done", "worker": args.worker_id, "fp": fp,
                  "index": rec["index"]})
    stop.set()
    return 0
