"""Durable dispatch ledger for distributed campaigns.

The dispatcher journals every scheduling decision — which worker holds
which scenario, under what lease, on which attempt — to an append-only
checksummed JSONL file in the shared journal dialect
(:class:`~repro.serve.wal.ChecksummedJournal`): one record per line,
each carrying a truncated-SHA-256 ``cs`` checksum, a torn final line
(the crash artifact) repaired on open, and a ``kind: "dist-ledger"``
header that lets ``gpu-blob fsck`` tell a ledger from a sweep
checkpoint or a serve WAL.

The ledger is what makes a distributed campaign restartable: kill -9
the *dispatcher* mid-campaign, run the same command again with
``--resume``, and the replay folds the surviving records back into
:class:`LedgerState` — completed scenarios load their result shards
from disk, in-flight assignments are stolen (their lease owner is
gone), and the aggregated report comes out byte-identical.

Record types (all with ``cs``):

* ``header`` — ``kind: "dist-ledger"`` + format version + the campaign
  name and fingerprint it belongs to.  Resuming against a ledger whose
  fingerprint does not match the campaign file is refused
  (:class:`~repro.errors.ConfigError`) — a ledger is not portable
  across matrix edits.
* ``assign`` — scenario ``fp`` (fingerprint) + ``index`` handed to
  ``worker`` as attempt ``attempt``, leased until ``deadline``.
  Re-assignment of the same fingerprint (a steal or retry) is just
  another ``assign`` with a higher attempt.
* ``renew`` — the holder heartbeated with less than half its lease
  remaining; extends ``deadline``.
* ``complete`` — the scenario's result shard is durably on disk.
  Written at most once per fingerprint (:meth:`DispatchLedger.complete`
  is idempotent — the second finisher of a stolen scenario gets
  ``False`` and its duplicate is dropped).
* ``dead`` — the scenario exhausted ``--max-attempts`` and was
  dead-lettered; it reports as a quarantined row instead of a result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ConfigError
from ..serve.wal import ChecksummedJournal, JournalScan, scan_journal

__all__ = [
    "LEDGER_FILENAME",
    "LEDGER_KIND",
    "LEDGER_VERSION",
    "DispatchLedger",
    "LedgerEntry",
    "LedgerState",
    "load_ledger_state",
]

#: Format version of the dispatch ledger journal.
LEDGER_VERSION = 1

#: Header ``kind`` marker distinguishing a dispatch ledger from the
#: other checksummed JSONL dialects (checkpoints, serve WALs).
LEDGER_KIND = "dist-ledger"

#: Canonical ledger filename inside a campaign's ``--dist-dir``.
LEDGER_FILENAME = "ledger.jsonl"

#: Record types a ledger may contain (beyond the header).
RECORD_TYPES = ("assign", "renew", "complete", "dead")


@dataclass
class LedgerEntry:
    """The latest known state of one scenario, keyed by fingerprint."""

    fp: str
    index: int
    state: str = "assigned"  # "assigned" | "complete" | "dead"
    worker: str = ""
    attempt: int = 0
    deadline: float = 0.0
    reason: str = ""

    def expired(self, now: float) -> bool:
        """Has the lease lapsed (the holder should have finished)?"""
        return now >= self.deadline


@dataclass
class LedgerState:
    """Everything a reader (the resuming dispatcher, fsck, a test)
    reconstructs from one ledger file."""

    entries: Dict[str, LedgerEntry] = field(default_factory=dict)
    corrupt_records: int = 0
    torn_tail: bool = False
    has_header: bool = False
    #: campaign fingerprint stamped into the header ("" when absent)
    campaign_fingerprint: str = ""
    campaign_name: str = ""

    def counts(self) -> Dict[str, int]:
        out = {"assigned": 0, "complete": 0, "dead": 0}
        for entry in self.entries.values():
            out[entry.state] += 1
        return out

    def in_flight(self) -> List[LedgerEntry]:
        """Assigned-but-unfinished scenarios, lowest index first —
        exactly what a restarted dispatcher must steal or re-run."""
        return sorted(
            (e for e in self.entries.values() if e.state == "assigned"),
            key=lambda e: e.index,
        )


def _apply_record(state: LedgerState, rec: dict) -> bool:
    """Fold one verified record into ``state``; False if malformed."""
    t = rec.get("t")
    if t == "assign":
        try:
            entry = LedgerEntry(
                fp=str(rec["fp"]),
                index=int(rec["index"]),
                worker=str(rec["worker"]),
                attempt=int(rec["attempt"]),
                deadline=float(rec["deadline"]),
            )
        except (KeyError, TypeError, ValueError):
            return False
        prior = state.entries.get(entry.fp)
        if prior is not None and prior.state != "assigned":
            # late assign after complete/dead: the terminal state wins
            return True
        state.entries[entry.fp] = entry
        return True
    if t == "renew":
        entry = state.entries.get(rec.get("fp"))
        if entry is None:
            return True  # renew for a lost assign: harmless
        try:
            entry.worker = str(rec["worker"])
            entry.deadline = float(rec["deadline"])
        except (KeyError, TypeError, ValueError):
            return False
        return True
    if t in ("complete", "dead"):
        entry = state.entries.get(rec.get("fp"))
        if entry is not None and entry.state == "assigned":
            entry.state = "complete" if t == "complete" else "dead"
            if t == "dead":
                entry.reason = str(rec.get("reason", ""))
        return True
    return False


def _fold(state: LedgerState, scan: JournalScan) -> LedgerState:
    state.corrupt_records = scan.corrupt_records
    state.torn_tail = scan.torn_tail
    state.has_header = scan.has_header
    if scan.header is not None:
        state.campaign_fingerprint = str(scan.header.get("campaign_fp", ""))
        state.campaign_name = str(scan.header.get("campaign", ""))
    for rec in scan.records:
        if not _apply_record(state, rec):
            state.corrupt_records += 1
    return state


def load_ledger_state(path) -> LedgerState:
    """Parse one ledger file leniently, skipping (and counting) damaged
    records.  A missing file is an empty state; damage never raises —
    ``gpu-blob fsck`` audits and repairs offline."""
    return _fold(LedgerState(), scan_journal(path, LEDGER_KIND,
                                             LEDGER_VERSION))


class DispatchLedger(ChecksummedJournal):
    """Append-only, fsynced journal of campaign scheduling decisions.

    Opening an existing ledger replays its records into
    :attr:`state`; a verified header bound to a *different* campaign
    fingerprint is vetoed with :class:`~repro.errors.ConfigError`
    before anything is written (the shared base class already rotates
    headerless or wrong-dialect files to a ``.bad`` sidecar).
    """

    kind = LEDGER_KIND
    version = LEDGER_VERSION

    def __init__(
        self,
        path,
        campaign_name: str,
        campaign_fingerprint: str,
        lease_s: float = 30.0,
        clock=time.time,
        sync: bool = True,
    ) -> None:
        if lease_s <= 0:
            raise ConfigError(f"lease_s must be > 0, got {lease_s}")
        self.campaign_name = campaign_name
        self.campaign_fingerprint = campaign_fingerprint
        self.lease_s = lease_s
        super().__init__(path, clock=clock, sync=sync)
        self.state = _fold(LedgerState(), self.scan)

    def _header_extra(self) -> dict:
        return {
            "campaign": self.campaign_name,
            "campaign_fp": self.campaign_fingerprint,
        }

    def _check_header(self, scan: JournalScan) -> None:
        if scan.header is None:
            return
        found = scan.header.get("campaign_fp")
        if found != self.campaign_fingerprint:
            raise ConfigError(
                f"dispatch ledger {self.path} belongs to campaign "
                f"{scan.header.get('campaign')!r} (fingerprint {found}); "
                f"this run is {self.campaign_name!r} "
                f"({self.campaign_fingerprint}) — remove the stale "
                "ledger or point --dist-dir elsewhere"
            )

    # -- write side ----------------------------------------------------

    def assign(self, fp: str, index: int, worker: str,
               attempt: int) -> float:
        """Journal handing scenario ``fp`` to ``worker``; returns the
        lease deadline.  A steal or retry is a fresh assign with a
        bumped attempt."""
        deadline = self.clock() + self.lease_s
        self._append({
            "t": "assign", "fp": fp, "index": index, "worker": worker,
            "attempt": attempt, "deadline": deadline,
        })
        self.state.entries[fp] = LedgerEntry(
            fp=fp, index=index, worker=worker, attempt=attempt,
            deadline=deadline,
        )
        return deadline

    def renew(self, fp: str, worker: str) -> float:
        """Extend the lease of an in-flight scenario (heartbeat with
        less than half the lease remaining); returns the new deadline."""
        entry = self.state.entries[fp]
        deadline = self.clock() + self.lease_s
        self._append({
            "t": "renew", "fp": fp, "worker": worker, "deadline": deadline,
        })
        entry.worker = worker
        entry.deadline = deadline
        return deadline

    def complete(self, fp: str) -> bool:
        """Journal completion exactly once per fingerprint: ``False``
        (and no record) when the scenario is unknown or already
        complete/dead — the duplicate-finish dedupe point."""
        entry = self.state.entries.get(fp)
        if entry is None or entry.state != "assigned":
            return False
        self._append({"t": "complete", "fp": fp})
        entry.state = "complete"
        return True

    def dead(self, fp: str, reason: str = "") -> bool:
        """Journal dead-lettering (attempts exhausted); idempotent like
        :meth:`complete`."""
        entry = self.state.entries.get(fp)
        if entry is None or entry.state != "assigned":
            return False
        self._append({"t": "dead", "fp": fp, "reason": reason})
        entry.state = "dead"
        entry.reason = reason
        return True

    # -- read side -----------------------------------------------------

    def counts(self) -> Dict[str, int]:
        return self.state.counts()

    def entry(self, fp: str) -> Optional[LedgerEntry]:
        return self.state.entries.get(fp)
