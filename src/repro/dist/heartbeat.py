"""Worker liveness tracking for the campaign dispatcher.

Every message a worker sends — hello, heartbeat, done, failed — counts
as a beat.  A worker whose last beat is older than ``timeout_s`` is
*suspect*: the dispatcher stops assigning it scenarios and, once the
scenario's ledger lease also expires, a healthy worker steals the
work.  Suspicion is reversible — a partitioned worker whose beats
resume (the partition healed) becomes assignable again; only a worker
whose *process* is gone is permanently lost.

The monitor is deliberately dumb and injectable-clock-driven so tests
drive it with a fake clock: no threads, no wall-time reads of its own.
"""

from __future__ import annotations

import time
from typing import Dict, List

__all__ = ["HeartbeatMonitor"]


class HeartbeatMonitor:
    """Last-beat bookkeeping over a set of worker ids."""

    def __init__(self, timeout_s: float, clock=time.monotonic) -> None:
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        self.timeout_s = timeout_s
        self.clock = clock
        self._last: Dict[str, float] = {}
        #: total beats observed (metrics)
        self.beats = 0

    def track(self, worker_id: str) -> None:
        """Start tracking a worker; spawn time counts as its first
        beat (a worker gets a full timeout to say hello)."""
        self._last.setdefault(worker_id, self.clock())

    def beat(self, worker_id: str) -> None:
        """Record one message from ``worker_id`` (any type)."""
        self._last[worker_id] = self.clock()
        self.beats += 1

    def forget(self, worker_id: str) -> None:
        self._last.pop(worker_id, None)

    def last_seen(self, worker_id: str) -> float:
        return self._last.get(worker_id, float("-inf"))

    def alive(self, worker_id: str) -> bool:
        """Has ``worker_id`` beaten within the timeout window?"""
        return self.clock() - self.last_seen(worker_id) < self.timeout_s

    def suspects(self) -> List[str]:
        """Tracked workers whose last beat is stale, sorted for
        deterministic logs."""
        now = self.clock()
        return sorted(
            w for w, seen in self._last.items()
            if now - seen >= self.timeout_s
        )
