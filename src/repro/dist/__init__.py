"""Distributed campaign execution.

``gpu-blob campaign --workers N`` shards a campaign's expanded
scenarios across worker processes, coordinated through a durable
dispatch ledger (:mod:`repro.dist.ledger`), worker heartbeats
(:mod:`repro.dist.heartbeat`), and a work-stealing dispatcher
(:mod:`repro.dist.dispatcher`).  Workers come in two flavors
(:mod:`repro.dist.worker`): subprocess executors speaking a JSON-lines
protocol (the ``gpu-blob dist-worker`` entry point) and in-process
simulated workers for deterministic tests.
"""

from .dispatcher import DistStats, run_campaign_distributed
from .ledger import (
    LEDGER_FILENAME,
    LEDGER_KIND,
    LEDGER_VERSION,
    DispatchLedger,
    LedgerEntry,
    LedgerState,
    load_ledger_state,
)
from .worker import (
    SimulatedWorker,
    SubprocessWorker,
    execute_scenario,
    load_result_shard,
    scenario_fingerprint,
    scenario_record,
    worker_main,
    write_result_shard,
)

__all__ = [
    "LEDGER_FILENAME",
    "LEDGER_KIND",
    "LEDGER_VERSION",
    "DispatchLedger",
    "DistStats",
    "LedgerEntry",
    "LedgerState",
    "SimulatedWorker",
    "SubprocessWorker",
    "execute_scenario",
    "load_ledger_state",
    "load_result_shard",
    "run_campaign_distributed",
    "scenario_fingerprint",
    "scenario_record",
    "worker_main",
    "write_result_shard",
]
