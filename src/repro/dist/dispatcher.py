"""The distributed campaign dispatcher: shard, lease, steal, aggregate.

One dispatcher owns one campaign run.  It expands the matrix into
scenarios, fingerprints each (:func:`~repro.dist.worker.scenario_fingerprint`),
journals every scheduling decision to the dispatch ledger
(:mod:`repro.dist.ledger`), and drives a fleet of workers — subprocess
``gpu-blob dist-worker`` children by default, in-process
:class:`~repro.dist.worker.SimulatedWorker` instances under test — one
scenario per worker at a time.

Failure handling, in order of escalation:

* **retry** — a scenario that *fails* (the worker reports ``failed``,
  or its result shard does not verify) goes back to pending with a
  deterministic-jitter backoff (:class:`~repro.core.runner.RetryPolicy`
  keyed on the fingerprint), attempt count preserved in the ledger.
* **steal** — a worker that stops beating (killed, partitioned, hung)
  or whose lease expires loses its scenario: the dispatcher first
  tries to *salvage* an already-written result shard (the worker may
  have finished before dying — completion is keyed by fingerprint, so
  the shard is the result), otherwise a healthy worker re-executes.
  The model is deterministic, so either path yields identical bytes.
* **dead-letter** — a scenario exhausting ``max_attempts`` is recorded
  ``dead`` in the ledger and reported as quarantined rows; the
  campaign completes degraded instead of failing.
* **local fallback** — when every worker process is gone (or the fleet
  stalls beyond ``4 x lease``), the dispatcher runs the remainder
  itself through the same supervised executor, exactly like a
  single-node campaign.

Restart story: kill -9 the dispatcher, re-run with ``resume=True`` —
the ledger replays, completed scenarios load their shards, in-flight
ones are stolen from the dead incarnation, and the report is
byte-identical.  Chaos plans (:mod:`repro.faults.distchaos`) inject
worker kills, partitions (messages deferred until the window heals —
which is how the late-duplicate-finish dedupe path gets exercised) and
slow workers, all seeded and replayable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from ..core.campaign import CampaignResult, CampaignSpec, expand_scenarios
from ..core.runner import RetryPolicy
from ..errors import ConfigError
from ..faults.distchaos import DistChaosKind, DistChaosPlan
from ..serve.metrics import LatencyHistogram
from .heartbeat import HeartbeatMonitor
from .ledger import LEDGER_FILENAME, DispatchLedger
from .worker import (
    SubprocessWorker,
    execute_scenario,
    load_result_shard,
    scenario_fingerprint,
    scenario_record,
    write_result_shard,
)

__all__ = ["DistStats", "run_campaign_distributed"]

#: Subdirectory of the dist dir holding result shard files.
RESULTS_DIRNAME = "results"


@dataclass
class DistStats:
    """Counters one distributed campaign run accumulates — the
    dispatcher's side of the observability story (the bench and the CI
    chaos job assert on these)."""

    workers: int = 0
    assignments: int = 0
    retries: int = 0
    steals: int = 0
    salvaged_shards: int = 0
    duplicate_finishes: int = 0
    dead_lettered: int = 0
    worker_deaths: int = 0
    heartbeats: int = 0
    replayed: int = 0
    local_fallback: int = 0
    backoff_s: float = 0.0
    #: assignment -> completion turnaround per scenario, reusing the
    #: serving layer's log-bucketed histogram so the bench and the
    #: daemon report latency in the same shape
    turnaround: LatencyHistogram = field(default_factory=LatencyHistogram)

    def snapshot(self) -> Dict[str, object]:
        return {
            "workers": self.workers,
            "assignments": self.assignments,
            "retries": self.retries,
            "steals": self.steals,
            "salvaged_shards": self.salvaged_shards,
            "duplicate_finishes": self.duplicate_finishes,
            "dead_lettered": self.dead_lettered,
            "worker_deaths": self.worker_deaths,
            "heartbeats": self.heartbeats,
            "replayed": self.replayed,
            "local_fallback": self.local_fallback,
            "backoff_s": round(self.backoff_s, 6),
            "turnaround": self.turnaround.snapshot(),
        }


@dataclass
class _Track:
    """Dispatcher-side bookkeeping for one scenario."""

    scenario: object
    fp: str
    state: str = "pending"  # pending | assigned | complete | dead
    attempt: int = 0
    worker: str = ""
    deadline: float = 0.0
    #: backoff gate: not assignable before this clock value
    not_before: float = 0.0
    #: clock value of the latest assignment (turnaround histogram);
    #: None until first assigned — 0.0 is a real fake-clock timestamp
    assigned_at: Optional[float] = None


def _default_make_workers(worker_count, worker_cmd, results_dir,
                          cache_dir, heartbeat_s):
    return [
        SubprocessWorker(
            f"w{i}", results_dir, cache_dir=cache_dir,
            heartbeat_s=heartbeat_s, command=worker_cmd,
        )
        for i in range(worker_count)
    ]


def run_campaign_distributed(
    campaign: CampaignSpec,
    *,
    dist_dir,
    worker_count: int = 2,
    worker_cmd: Optional[Sequence[str]] = None,
    make_workers: Optional[Callable] = None,
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
    cache_dir=None,
    strict: bool = False,
    adaptive: Optional[bool] = None,
    resume: bool = False,
    lease_s: float = 15.0,
    heartbeat_s: Optional[float] = None,
    max_attempts: int = 3,
    poll_s: float = 0.05,
    chaos: Optional[DistChaosPlan] = None,
    retry: Optional[RetryPolicy] = None,
    clock=time.monotonic,
    sleep=time.sleep,
    log: Optional[Callable[[str], None]] = None,
) -> CampaignResult:
    """Run a campaign across ``worker_count`` workers; returns a
    :class:`~repro.core.campaign.CampaignResult` whose report is
    byte-identical to the single-node run (dead-lettered scenarios
    excepted — they appear as quarantined rows).

    ``make_workers(results_dir)`` overrides worker construction for
    tests (simulated workers, injected executors); ``clock``/``sleep``
    are injectable so the whole steal/backoff state machine runs under
    a fake clock.  The run's :class:`DistStats` snapshot is attached to
    the result as ``dist_stats``.
    """
    if worker_count < 1:
        raise ConfigError(f"worker_count must be >= 1, got {worker_count}")
    if max_attempts < 1:
        raise ConfigError(f"max_attempts must be >= 1, got {max_attempts}")
    if lease_s <= 0:
        raise ConfigError(f"lease_s must be > 0, got {lease_s}")
    if heartbeat_s is None:
        heartbeat_s = lease_s / 5.0
    if heartbeat_s <= 0:
        raise ConfigError(f"heartbeat_s must be > 0, got {heartbeat_s}")
    jobs = campaign.jobs if jobs is None else jobs
    backend_name = campaign.backend if backend is None else backend
    adaptive = campaign.adaptive if adaptive is None else adaptive
    retry = retry if retry is not None else RetryPolicy()

    scenarios = expand_scenarios(campaign, strict=strict, adaptive=adaptive)
    records = {}
    tracks: Dict[str, _Track] = {}
    order: List[str] = []
    for scenario in scenarios:
        fp = scenario_fingerprint(scenario)
        if fp in tracks:
            raise ConfigError(
                f"campaign {campaign.name!r} expands to duplicate "
                f"scenarios (system {scenario.system!r}, iterations "
                f"{scenario.iterations}); distributed dispatch keys "
                "completion by scenario fingerprint and cannot tell "
                "them apart"
            )
        tracks[fp] = _Track(scenario=scenario, fp=fp)
        records[fp] = scenario_record(scenario, backend_name, jobs)
        order.append(fp)

    dist_dir = Path(dist_dir)
    results_dir = dist_dir / RESULTS_DIRNAME
    results_dir.mkdir(parents=True, exist_ok=True)
    ledger_path = dist_dir / LEDGER_FILENAME
    if not resume and ledger_path.exists():
        # a fresh run must not inherit a previous run's bookkeeping;
        # rotate (never delete) the stale ledger and drop this
        # campaign's stale shards so every scenario truly re-runs
        ledger_path.replace(ledger_path.with_name(ledger_path.name + ".old"))
        for fp in order:
            shard = results_dir / f"{fp}.json"
            if shard.exists():
                shard.unlink()

    stats = DistStats(workers=worker_count)
    out = CampaignResult(campaign=campaign, scenarios=scenarios)
    out.results = [None] * len(scenarios)

    ledger = DispatchLedger(
        ledger_path, campaign.name, campaign.fingerprint(),
        lease_s=lease_s, clock=clock,
    )

    def _complete(track: _Track, run, *, replayed: bool = False) -> None:
        ledger.complete(track.fp)  # False on a resume-replayed complete
        track.state = "complete"
        track.worker = ""
        out.results[track.scenario.index] = run
        if replayed:
            stats.replayed += 1
        else:
            out.executed += 1
            if track.assigned_at is not None:
                stats.turnaround.observe(max(0.0, clock() - track.assigned_at))

    def _dead_letter(track: _Track, reason: str) -> None:
        ledger.dead(track.fp, reason)
        track.state = "dead"
        track.worker = ""
        out.quarantined[track.scenario.index] = reason
        stats.dead_lettered += 1
        if log is not None:
            log(
                f"scenario {track.scenario.slug} dead-lettered after "
                f"{track.attempt} attempt(s): {reason}"
            )

    def _fail(track: _Track, reason: str, now: float) -> None:
        """A genuine scenario failure: back off, or dead-letter."""
        if track.attempt >= max_attempts:
            _dead_letter(track, reason)
            return
        delay = retry.backoff_s(track.attempt, (track.fp,))
        stats.backoff_s += delay
        track.state = "pending"
        track.worker = ""
        track.not_before = now + delay
        stats.retries += 1
        if log is not None:
            log(
                f"scenario {track.scenario.slug} attempt "
                f"{track.attempt} failed ({reason}); retrying in "
                f"{delay:.2f}s"
            )

    if resume:
        for fp, entry in ledger.state.entries.items():
            track = tracks.get(fp)
            if track is None:
                continue  # matrix shrank relative to ledger? fp-checked
            track.attempt = entry.attempt
            if entry.state == "dead":
                track.state = "dead"
                out.quarantined[track.scenario.index] = (
                    entry.reason or "attempts exhausted"
                )
                stats.dead_lettered += 1
            else:
                # complete -> load the shard; assigned -> the previous
                # dispatcher incarnation is gone, steal immediately
                # (its lease deadlines live in a dead clock domain)
                run = load_result_shard(results_dir, fp,
                                        track.scenario.config)
                if run is not None:
                    _complete(track, run, replayed=True)
                elif entry.state == "assigned":
                    if entry.attempt >= max_attempts:
                        _dead_letter(
                            track,
                            f"lost with worker {entry.worker} on final "
                            "attempt",
                        )
                    else:
                        stats.steals += 1

    # -- fleet ---------------------------------------------------------

    def _finished() -> bool:
        return all(t.state in ("complete", "dead") for t in tracks.values())

    if _finished():
        workers = []  # a fully-replayed resume needs no fleet
    elif make_workers is not None:
        workers = list(make_workers(results_dir))
    else:
        workers = _default_make_workers(
            worker_count, worker_cmd, results_dir, cache_dir, heartbeat_s,
        )
    stats.workers = len(workers)
    by_id = {w.worker_id: w for w in workers}
    monitor = HeartbeatMonitor(timeout_s=3.0 * heartbeat_s, clock=clock)
    for w in workers:
        monitor.track(w.worker_id)
    busy: Dict[str, str] = {}  # worker_id -> fp in flight
    dead_workers: set = set()
    assigned_counts: Dict[str, int] = {w.worker_id: 0 for w in workers}

    # -- chaos wiring --------------------------------------------------

    victim_id: Optional[str] = None
    chaos_trigger = 0
    chaos_fired = False
    defer_until: Dict[str, float] = {}  # worker_id -> drop/defer window end
    slow_delay = 0.0
    deferred: List[tuple] = []  # (release_time, worker_id, msg)
    if chaos is not None and workers:
        victim_id = workers[chaos.victim(len(workers))].worker_id
        # a small matrix may hand the victim only one assignment ever;
        # clamp the trigger so the fault is guaranteed to fire
        chaos_trigger = (
            1 if len(scenarios) <= len(workers)
            else chaos.trigger_assignment()
        )
        if log is not None:
            log(
                f"chaos plan {chaos.kind.value} (seed {chaos.seed}): "
                f"victim {victim_id}, trigger assignment #{chaos_trigger}"
            )

    def _run_local_fallback(now: float) -> None:
        """Every worker is gone (or the fleet stalled): finish the
        campaign on the dispatcher itself, same executor as a
        single-node run."""
        if log is not None:
            remaining = sum(
                1 for t in tracks.values()
                if t.state in ("pending", "assigned")
            )
            log(
                f"all workers lost; degrading to local execution for "
                f"{remaining} remaining scenario(s)"
            )
        for fp in order:
            track = tracks[fp]
            while track.state in ("pending", "assigned"):
                run = load_result_shard(results_dir, fp,
                                        track.scenario.config)
                if run is not None:
                    stats.salvaged_shards += 1
                    _complete(track, run)
                    break
                track.attempt += 1
                track.state = "assigned"
                track.assigned_at = clock()
                ledger.assign(fp, track.scenario.index, "local",
                              track.attempt)
                stats.assignments += 1
                stats.local_fallback += 1
                try:
                    run = execute_scenario(records[fp], cache_dir=cache_dir)
                except Exception as exc:  # ReproError family
                    _fail(track, str(exc), now)
                else:
                    write_result_shard(results_dir, fp, run)
                    _complete(track, run)

    last_progress = clock()

    try:
        while not _finished():
            now = clock()

            # 1. collect worker messages (chaos may defer them)
            inbound: List[tuple] = []
            matured = [m for m in deferred if m[0] <= now]
            deferred = [m for m in deferred if m[0] > now]
            inbound.extend((wid, msg) for _, wid, msg in matured)
            for w in workers:
                for msg in w.poll():
                    wid = w.worker_id
                    if wid in defer_until:
                        if now < defer_until[wid]:
                            release = (
                                defer_until[wid]
                                if slow_delay == 0.0
                                else now + slow_delay
                            )
                            deferred.append((release, wid, msg))
                            continue
                        del defer_until[wid]
                    inbound.append((wid, msg))

            # 2. handle messages
            for wid, msg in inbound:
                monitor.beat(wid)
                t = msg.get("t")
                if t == "heartbeat":
                    stats.heartbeats += 1
                if t in ("done", "failed"):
                    fp = msg.get("fp")
                    track = tracks.get(fp)
                    if busy.get(wid) == fp:
                        del busy[wid]
                    if track is None:
                        continue
                    if track.state in ("complete", "dead"):
                        stats.duplicate_finishes += 1
                        continue
                    if t == "failed":
                        _fail(track, str(msg.get("error", "worker error")),
                              now)
                        continue
                    run = load_result_shard(results_dir, fp,
                                            track.scenario.config)
                    if run is None:
                        _fail(track, "result shard missing or corrupt",
                              now)
                    else:
                        _complete(track, run)
                        last_progress = now
                # any beat renews the lease of the sender's in-flight
                # scenario once less than half of it remains
                fp = busy.get(wid)
                if fp is not None:
                    track = tracks[fp]
                    if (track.state == "assigned"
                            and track.deadline - now < lease_s / 2.0):
                        track.deadline = ledger.renew(fp, wid)

            # 3. detect lost workers / expired leases -> salvage or steal
            for w in workers:
                wid = w.worker_id
                if wid in dead_workers:
                    continue
                if not w.alive():
                    dead_workers.add(wid)
                    stats.worker_deaths += 1
                    if log is not None:
                        log(f"worker {wid} died")
            for fp, track in tracks.items():
                if track.state != "assigned" or track.worker == "local":
                    continue
                holder = by_id.get(track.worker)
                lost = (
                    holder is None
                    or not holder.alive()
                    or not monitor.alive(track.worker)
                    or now >= track.deadline
                )
                if not lost:
                    continue
                if busy.get(track.worker) == fp:
                    del busy[track.worker]
                run = load_result_shard(results_dir, fp,
                                        track.scenario.config)
                if run is not None:
                    # the holder finished before it was lost: the shard
                    # *is* the result (idempotent completion)
                    stats.salvaged_shards += 1
                    _complete(track, run)
                    last_progress = now
                    continue
                stats.steals += 1
                if log is not None:
                    log(
                        f"stealing scenario {track.scenario.slug} from "
                        f"lost worker {track.worker} (attempt "
                        f"{track.attempt})"
                    )
                if track.attempt >= max_attempts:
                    _dead_letter(track, f"lost with worker {track.worker}")
                else:
                    track.state = "pending"
                    track.worker = ""
                    track.not_before = now

            # 4. assign pending scenarios to idle, healthy workers
            idle = [
                w for w in workers
                if w.alive() and w.worker_id not in busy
                and w.worker_id not in dead_workers
                and monitor.alive(w.worker_id)
            ]
            ready = [
                tracks[fp] for fp in order
                if tracks[fp].state == "pending"
                and now >= tracks[fp].not_before
            ]
            for w, track in zip(idle, ready):
                wid = w.worker_id
                track.attempt += 1
                track.state = "assigned"
                track.worker = wid
                track.assigned_at = now
                track.deadline = ledger.assign(
                    track.fp, track.scenario.index, wid, track.attempt,
                )
                stats.assignments += 1
                last_progress = now
                try:
                    w.send({"t": "run", "scenario": records[track.fp]})
                except OSError:
                    # died between checks; step 3 will steal next tick
                    pass
                assigned_counts[wid] += 1
                if (chaos is not None and not chaos_fired
                        and wid == victim_id
                        and assigned_counts[wid] >= chaos_trigger):
                    chaos_fired = True
                    if chaos.kind is DistChaosKind.NODE_KILL:
                        if log is not None:
                            log(f"chaos: killing worker {wid}")
                        w.kill()
                    elif chaos.kind is DistChaosKind.PARTITION:
                        window = chaos.partition_window(lease_s)
                        defer_until[wid] = now + window
                        slow_delay = 0.0
                        if log is not None:
                            log(f"chaos: partitioning worker {wid} "
                                f"for {window:.1f}s")
                    else:  # SLOW_WORKER
                        window = chaos.partition_window(lease_s)
                        defer_until[wid] = now + window
                        slow_delay = chaos.slow_delay(lease_s)
                        if log is not None:
                            log(f"chaos: slowing worker {wid} by "
                                f"{slow_delay:.1f}s for {window:.1f}s")

            if _finished():
                break

            # 5. degradation: fleet gone, or stalled beyond 4 leases
            fleet_dead = all(
                w.worker_id in dead_workers or not w.alive()
                for w in workers
            )
            stalled = now - last_progress > 4.0 * lease_s
            if fleet_dead or stalled:
                if stalled and not fleet_dead and log is not None:
                    log(
                        f"no progress for {now - last_progress:.1f}s "
                        "with unreachable workers"
                    )
                _run_local_fallback(now)
                break

            sleep(poll_s)

        # drain the stragglers a chaos window was still holding (plus
        # anything buffered on the wire), so a stolen scenario's late
        # duplicate finish is observed and deduped, not just dropped
        for w in workers:
            deferred.extend((0.0, w.worker_id, m) for m in w.poll())
        for _, wid, msg in deferred:
            if msg.get("t") not in ("done", "failed"):
                continue
            track = tracks.get(msg.get("fp"))
            if track is not None and track.state in ("complete", "dead"):
                stats.duplicate_finishes += 1
    finally:
        for w in workers:
            try:
                w.close()
            except OSError:
                pass
        ledger.close()

    out.dist_stats = stats.snapshot()
    if log is not None:
        log(
            f"distributed campaign done: {out.executed} executed, "
            f"{stats.replayed} replayed, {stats.steals} steal(s), "
            f"{stats.duplicate_finishes} duplicate finish(es), "
            f"{stats.dead_lettered} dead-lettered"
        )
    return out
