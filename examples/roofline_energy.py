#!/usr/bin/env python
"""Rooflines and energy: *why* the offload thresholds fall where they do.

Two analytical lenses on the paper's results:

* The **transfer roofline** puts the host-device link in the memory
  role — below its ridge point, a no-re-use offload is bound by the link
  rather than the GPU's compute.  Every non-square GEMM type sits below
  DAWN's ridge; whether that kills the offload then depends on how fast
  the CPU is on the same shape — the two-sided comparison the offload
  threshold formalizes (§IV-C).
* The **energy offload threshold** asks when the GPU wins on joules
  instead of seconds; on discrete systems it arrives earlier — the GPU
  can be slower yet greener (the Favaro et al. observation, §II).

Run:  python examples/roofline_energy.py
"""

from __future__ import annotations

from repro import Precision, get_system, make_model, system_names
from repro.analysis.energy import EnergyModel, profile_for
from repro.analysis.roofline import (
    classify_problems,
    cpu_roofline,
    gpu_roofline,
    transfer_roofline,
)
from repro.core.problem import GEMM_PROBLEM_TYPES


def roofline_study() -> None:
    print("=== Rooflines (single precision)")
    for system in system_names():
        spec = get_system(system)
        cpu = cpu_roofline(spec, Precision.SINGLE)
        gpu = gpu_roofline(spec, Precision.SINGLE)
        link = transfer_roofline(spec, Precision.SINGLE)
        print(f"\n  {system}: machine balance (FLOPs/byte) — "
              f"CPU {cpu.balance:6.1f}, GPU-HBM {gpu.balance:6.1f}, "
              f"GPU-over-link {link.balance:6.1f}")
        placements = classify_problems(
            link, list(GEMM_PROBLEM_TYPES), Precision.SINGLE
        )
        below = [p.problem_type.name for p in placements
                 if not p.compute_bound]
        print("    GEMM types below the link ridge — without data re-use"
              "\n    the GPU cannot reach its compute peak on these:")
        print(f"      {', '.join(below) or 'none'}")


def energy_study() -> None:
    print("\n=== Runtime vs energy offload thresholds "
          "(square SGEMM, 8 iterations)")
    for system in system_names():
        em = EnergyModel(make_model(system), profile_for(system))
        time_thr = em.time_offload_threshold(Precision.SINGLE, 8)
        energy_thr = em.energy_offload_threshold(Precision.SINGLE, 8)
        print(f"  {system:12s} time {time_thr} | energy {energy_thr}")
    print("\n  -> on DAWN a window exists where offloading *loses time but"
          "\n     saves energy*; on the GH200 the two nearly coincide.")


if __name__ == "__main__":
    roofline_study()
    energy_study()
